"""Shim so `python setup.py develop` works on environments without the
`wheel` package (PEP 660 editable installs need it; this box is offline)."""
from setuptools import setup

setup()
