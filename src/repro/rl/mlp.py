"""Minimal feed-forward neural network with manual backprop.

Stands in for the paper's TensorFlow 1.14 actor/critic networks (two
fully-connected hidden layers; the paper uses 512 units each, we default
to smaller nets for laptop-scale training — see DESIGN.md).  Only what
PPO needs: tanh hidden layers, linear output, Adam.
"""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam optimizer over a list of parameter arrays."""

    def __init__(self, params: list[np.ndarray], lr: float = 3e-4,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]
        self.t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise ValueError("gradient count mismatch")
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self.t
        bias2 = 1.0 - b2 ** self.t
        for p, g, m, v in zip(self.params, grads, self.m, self.v):
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


def _orthogonal(shape: tuple[int, int], gain: float, rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialization (the standard PPO choice)."""
    a = rng.normal(size=shape)
    u, _, vt = np.linalg.svd(a, full_matrices=False)
    q = u if u.shape == shape else vt
    return gain * q[:shape[0], :shape[1]]


class MLP:
    """Tanh MLP with a linear head; supports forward + backward passes."""

    def __init__(self, in_dim: int, hidden: tuple[int, ...], out_dim: int,
                 rng: np.random.Generator, out_gain: float = 0.01):
        sizes = [in_dim, *hidden, out_dim]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for i, (a, b) in enumerate(zip(sizes, sizes[1:])):
            last = i == len(sizes) - 2
            gain = out_gain if last else np.sqrt(2.0)
            self.weights.append(_orthogonal((a, b), gain, rng))
            self.biases.append(np.zeros(b))
        self._cache: list[np.ndarray] | None = None
        self.flops_per_forward = 2 * sum(a * b for a, b in zip(sizes, sizes[1:]))

    @property
    def params(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            out.extend((w, b))
        return out

    def forward(self, x: np.ndarray, cache: bool = False) -> np.ndarray:
        """Forward pass; ``x`` is (batch, in_dim)."""
        h = np.atleast_2d(x)
        activations = [h]
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i != last:
                h = np.tanh(h)
            activations.append(h)
        if cache:
            self._cache = activations
        return h

    def backward(self, grad_out: np.ndarray) -> list[np.ndarray]:
        """Backprop ``grad_out`` (batch, out_dim) through the cached forward.

        Returns gradients in the same order as :attr:`params`.
        """
        if self._cache is None:
            raise RuntimeError("backward() requires forward(cache=True) first")
        activations = self._cache
        grads_w: list[np.ndarray] = [np.empty(0)] * len(self.weights)
        grads_b: list[np.ndarray] = [np.empty(0)] * len(self.biases)
        delta = np.atleast_2d(grad_out)
        last = len(self.weights) - 1
        for i in range(last, -1, -1):
            inp = activations[i]
            grads_w[i] = inp.T @ delta
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = delta @ self.weights[i].T
                # activations[i] is the tanh output of layer i-1
                delta = delta * (1.0 - activations[i] ** 2)
        out: list[np.ndarray] = []
        for gw, gb in zip(grads_w, grads_b):
            out.extend((gw, gb))
        return out

    def num_params(self) -> int:
        return sum(p.size for p in self.params)
