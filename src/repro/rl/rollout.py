"""Rollout storage with Generalized Advantage Estimation."""

from __future__ import annotations

import numpy as np


class RolloutBuffer:
    """Accumulates transitions and finalizes advantages per trajectory."""

    def __init__(self, obs_dim: int, act_dim: int, capacity: int,
                 gamma: float = 0.99, lam: float = 0.95):
        self.obs = np.zeros((capacity, obs_dim))
        self.actions = np.zeros((capacity, act_dim))
        self.rewards = np.zeros(capacity)
        self.values = np.zeros(capacity)
        self.logps = np.zeros(capacity)
        self.advantages = np.zeros(capacity)
        self.returns = np.zeros(capacity)
        self.gamma = gamma
        self.lam = lam
        self.capacity = capacity
        self.ptr = 0
        self.path_start = 0

    @property
    def full(self) -> bool:
        return self.ptr >= self.capacity

    def store(self, obs, action, reward: float, value: float, logp: float) -> None:
        if self.full:
            raise RuntimeError("rollout buffer overflow")
        i = self.ptr
        self.obs[i] = obs
        self.actions[i] = action
        self.rewards[i] = reward
        self.values[i] = value
        self.logps[i] = logp
        self.ptr += 1

    def finish_path(self, last_value: float = 0.0) -> None:
        """Close the current trajectory and compute GAE-lambda advantages."""
        sl = slice(self.path_start, self.ptr)
        rewards = np.append(self.rewards[sl], last_value)
        values = np.append(self.values[sl], last_value)
        deltas = rewards[:-1] + self.gamma * values[1:] - values[:-1]
        adv = np.zeros_like(deltas)
        acc = 0.0
        for t in range(len(deltas) - 1, -1, -1):
            acc = deltas[t] + self.gamma * self.lam * acc
            adv[t] = acc
        self.advantages[sl] = adv
        self.returns[sl] = adv + self.values[sl]
        self.path_start = self.ptr

    def get(self, normalize: bool = True) -> dict[str, np.ndarray]:
        """Return the filled buffer with normalized advantages, then reset.

        ``normalize=False`` returns the raw GAE advantages instead —
        parallel rollout workers use this so the merged batch can be
        normalized once over *all* workers' data, keeping a W-worker
        update identical whether the workers ran forked or in-process.
        """
        if self.path_start != self.ptr:
            raise RuntimeError("finish_path() must be called before get()")
        n = self.ptr
        adv = self.advantages[:n].copy()
        if normalize:
            adv = normalize_advantages(adv)
        data = {
            "obs": self.obs[:n].copy(),
            "actions": self.actions[:n].copy(),
            "logps": self.logps[:n].copy(),
            "advantages": adv,
            "returns": self.returns[:n].copy(),
        }
        self.ptr = 0
        self.path_start = 0
        return data


def normalize_advantages(adv: np.ndarray) -> np.ndarray:
    """Zero-mean / unit-std advantage normalization (PPO standard)."""
    return (adv - adv.mean()) / (adv.std() + 1e-8)
