"""Pure-numpy reinforcement learning substrate (PPO actor-critic).

Replaces the paper's TensorFlow 1.14 + stable-baselines stack; see
DESIGN.md.
"""

from .mlp import MLP, Adam
from .policy import GaussianActorCritic
from .ppo import PPOConfig, PPOTrainer, PPOUpdater, TrainHistory
from .rollout import RolloutBuffer

__all__ = ["Adam", "GaussianActorCritic", "MLP", "PPOConfig", "PPOTrainer",
           "PPOUpdater", "RolloutBuffer", "TrainHistory"]
