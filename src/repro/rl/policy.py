"""Gaussian actor-critic policy for continuous rate-control actions."""

from __future__ import annotations

import math

import numpy as np

from .mlp import MLP

LOG_2PI = math.log(2.0 * math.pi)


class GaussianActorCritic:
    """Diagonal-Gaussian actor + value critic with shared input features.

    The actor outputs the action mean; a state-independent ``log_std``
    parameter controls exploration noise (standard PPO practice and what
    stable-baselines — the paper's training stack — does).
    """

    def __init__(self, obs_dim: int, act_dim: int = 1,
                 hidden: tuple[int, ...] = (64, 64), seed: int = 0,
                 init_log_std: float = -0.5):
        rng = np.random.default_rng(seed)
        self.obs_dim = obs_dim
        self.act_dim = act_dim
        self.actor = MLP(obs_dim, hidden, act_dim, rng, out_gain=0.01)
        self.critic = MLP(obs_dim, hidden, 1, rng, out_gain=1.0)
        self.log_std = np.full(act_dim, init_log_std)

    # -- acting ----------------------------------------------------------

    def act(self, obs: np.ndarray, rng: np.random.Generator,
            deterministic: bool = False) -> tuple[np.ndarray, float, float]:
        """Sample an action; returns (action, log-prob, value)."""
        obs2 = np.atleast_2d(np.asarray(obs, dtype=float))
        mean = self.actor.forward(obs2)[0]
        value = float(self.critic.forward(obs2)[0, 0])
        if deterministic:
            return mean.copy(), 0.0, value
        std = np.exp(self.log_std)
        action = mean + std * rng.normal(size=self.act_dim)
        logp = float(self._logp_terms(action, mean).sum())
        return action, logp, value

    def value(self, obs: np.ndarray) -> float:
        return float(self.critic.forward(np.atleast_2d(np.asarray(obs, dtype=float)))[0, 0])

    def _logp_terms(self, action: np.ndarray, mean: np.ndarray) -> np.ndarray:
        std = np.exp(self.log_std)
        z = (action - mean) / std
        return -0.5 * z ** 2 - self.log_std - 0.5 * LOG_2PI

    def logp(self, obs_batch: np.ndarray, act_batch: np.ndarray) -> np.ndarray:
        means = self.actor.forward(obs_batch)
        std = np.exp(self.log_std)
        z = (act_batch - means) / std
        return (-0.5 * z ** 2 - self.log_std - 0.5 * LOG_2PI).sum(axis=1)

    def entropy(self) -> float:
        return float((self.log_std + 0.5 * (LOG_2PI + 1.0)).sum())

    # -- parameters --------------------------------------------------------

    @property
    def params(self) -> list[np.ndarray]:
        return [*self.actor.params, self.log_std, *self.critic.params]

    def get_weights(self) -> dict[str, np.ndarray]:
        """Serialize to a flat dict (for .npz persistence)."""
        out: dict[str, np.ndarray] = {"log_std": self.log_std}
        for prefix, net in (("actor", self.actor), ("critic", self.critic)):
            for i, (w, b) in enumerate(zip(net.weights, net.biases)):
                out[f"{prefix}_w{i}"] = w
                out[f"{prefix}_b{i}"] = b
        return out

    def set_weights(self, weights: dict[str, np.ndarray]) -> None:
        self.log_std = np.asarray(weights["log_std"], dtype=float).reshape(self.act_dim)
        for prefix, net in (("actor", self.actor), ("critic", self.critic)):
            for i in range(len(net.weights)):
                w = np.asarray(weights[f"{prefix}_w{i}"], dtype=float)
                b = np.asarray(weights[f"{prefix}_b{i}"], dtype=float)
                if w.shape != net.weights[i].shape:
                    raise ValueError(
                        f"{prefix} layer {i} shape mismatch: "
                        f"{w.shape} vs {net.weights[i].shape}")
                net.weights[i] = w
                net.biases[i] = b

    def save(self, path: str) -> None:
        np.savez(path, **self.get_weights(),
                 obs_dim=self.obs_dim, act_dim=self.act_dim,
                 hidden=np.array([w.shape[1] for w in self.actor.weights[:-1]]))

    @classmethod
    def from_weights(cls, weights: dict) -> "GaussianActorCritic":
        """Rebuild a policy from a ``get_weights()`` dict alone.

        The architecture (obs/act dims, hidden sizes) is recovered from
        the actor matrices' shapes, so a checkpointed weight dict is
        self-describing — the training gate and resume path rely on it.
        """
        layers = sorted(k for k in weights if k.startswith("actor_w"))
        if not layers:
            raise KeyError("weight dict has no actor_w* entries")
        mats = [np.asarray(weights[k]) for k in layers]
        obs_dim = mats[0].shape[0]
        act_dim = mats[-1].shape[1]
        hidden = tuple(int(m.shape[1]) for m in mats[:-1])
        policy = cls(obs_dim, act_dim, hidden)
        policy.set_weights(weights)
        return policy

    @classmethod
    def load(cls, path: str) -> "GaussianActorCritic":
        data = np.load(path)
        hidden = tuple(int(h) for h in data["hidden"])
        policy = cls(int(data["obs_dim"]), int(data["act_dim"]), hidden)
        policy.set_weights({k: data[k] for k in data.files
                            if k not in ("obs_dim", "act_dim", "hidden")})
        return policy
