"""Proximal Policy Optimization (Schulman et al. 2017) in pure numpy.

PPO-clip with GAE(λ), minibatch Adam updates, entropy bonus, and a value
loss — the algorithm the paper trains Libra's DRL component with
(Alg. 2 / Sec. 5 "Implementation").

Two layers:

- :class:`PPOUpdater` owns the optimization half — policy, optimizer and
  the minibatch update over a finished rollout batch.  It has no notion
  of an environment, so the parallel training pipeline
  (:mod:`repro.train`) can feed it batches merged from many rollout
  workers.
- :class:`PPOTrainer` is the classic single-process loop: collect from
  one env, update, repeat.  It composes a :class:`PPOUpdater` with an
  in-process collection loop and keeps the original API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .mlp import Adam
from .policy import GaussianActorCritic
from .rollout import RolloutBuffer


@dataclass
class PPOConfig:
    steps_per_epoch: int = 512
    train_iters: int = 8
    minibatch_size: int = 64
    gamma: float = 0.99
    lam: float = 0.95
    clip_ratio: float = 0.2
    lr: float = 3e-4
    vf_coef: float = 0.5
    ent_coef: float = 0.003
    max_episode_steps: int = 64
    seed: int = 0


@dataclass
class TrainHistory:
    """Per-episode reward history — the learning curves of Fig. 5/6."""

    episode_rewards: list = field(default_factory=list)

    def smoothed(self, window: int = 20) -> list[float]:
        rewards = self.episode_rewards
        out = []
        for i in range(len(rewards)):
            lo = max(0, i - window + 1)
            out.append(sum(rewards[lo:i + 1]) / (i + 1 - lo))
        return out


class PPOUpdater:
    """The optimization half of PPO: minibatch Adam updates on a batch.

    Environment-free by design — rollout data can come from the local
    :class:`PPOTrainer` loop or be merged across forked rollout workers.
    ``rng`` drives only the minibatch permutations; passing an explicit
    generator lets callers checkpoint and restore its state exactly.
    """

    def __init__(self, policy: GaussianActorCritic,
                 config: PPOConfig | None = None,
                 rng: np.random.Generator | None = None):
        self.policy = policy
        self.config = config or PPOConfig()
        self.rng = rng if rng is not None \
            else np.random.default_rng(self.config.seed)
        self.optimizer = Adam(self.policy.params, lr=self.config.lr)

    def update(self, data: dict[str, np.ndarray]) -> dict[str, float]:
        cfg = self.config
        n = len(data["obs"])
        stats = {"pi_loss": 0.0, "v_loss": 0.0, "clip_frac": 0.0,
                 "approx_kl": 0.0, "batches": 0}
        for _ in range(cfg.train_iters):
            order = self.rng.permutation(n)
            for start in range(0, n, cfg.minibatch_size):
                idx = order[start:start + cfg.minibatch_size]
                batch_stats = self._update_minibatch(
                    data["obs"][idx], data["actions"][idx], data["logps"][idx],
                    data["advantages"][idx], data["returns"][idx])
                for key in ("pi_loss", "v_loss", "clip_frac", "approx_kl"):
                    stats[key] += batch_stats[key]
                stats["batches"] += 1
        for key in ("pi_loss", "v_loss", "clip_frac", "approx_kl"):
            stats[key] /= max(stats["batches"], 1)
        stats["entropy"] = self.policy.entropy()
        return stats

    def _update_minibatch(self, obs, actions, logp_old, adv, returns) -> dict[str, float]:
        cfg = self.config
        policy = self.policy
        batch = len(obs)
        std = np.exp(policy.log_std)

        means = policy.actor.forward(obs, cache=True)
        z = (actions - means) / std
        logp = (-0.5 * z ** 2 - policy.log_std - 0.5 * np.log(2 * np.pi)).sum(axis=1)
        ratio = np.exp(logp - logp_old)
        clipped = np.clip(ratio, 1.0 - cfg.clip_ratio, 1.0 + cfg.clip_ratio)
        surrogate = np.minimum(ratio * adv, clipped * adv)
        pi_loss = -surrogate.mean()
        approx_kl = float((logp_old - logp).mean())

        # Gradient of the clipped surrogate wrt logp: active only where the
        # unclipped branch is selected by the min().
        unclipped_active = ((adv >= 0) & (ratio <= 1.0 + cfg.clip_ratio)) | \
                           ((adv < 0) & (ratio >= 1.0 - cfg.clip_ratio))
        dL_dlogp = np.where(unclipped_active, -adv * ratio, 0.0) / batch

        # logp gradients: d logp / d mean = z/std ; d logp / d log_std = z^2-1
        dmean = (dL_dlogp[:, None]) * (z / std)
        dlog_std = (dL_dlogp[:, None] * (z ** 2 - 1.0)).sum(axis=0)
        dlog_std -= cfg.ent_coef  # entropy bonus: dH/dlog_std = 1 per dim

        actor_grads = policy.actor.backward(dmean)

        values = policy.critic.forward(obs, cache=True)[:, 0]
        v_err = values - returns
        v_loss = (v_err ** 2).mean()
        dvalue = (cfg.vf_coef * 2.0 * v_err / batch)[:, None]
        critic_grads = policy.critic.backward(dvalue)

        self.optimizer.step([*actor_grads, dlog_std, *critic_grads])
        return {"pi_loss": float(pi_loss), "v_loss": float(v_loss),
                "clip_frac": float((ratio != clipped).mean()),
                "approx_kl": approx_kl}


class PPOTrainer:
    """Trains a :class:`GaussianActorCritic` against a gym-like env.

    The environment must implement ``reset() -> obs`` and
    ``step(action) -> (obs, reward, done, info)`` with a 1-D numpy action.

    One :class:`numpy.random.Generator` (``rng``, seeded from the config
    when not given) drives both action sampling and the updater's
    minibatch permutations, so a seed fully determines a training run.
    """

    def __init__(self, env, policy: GaussianActorCritic,
                 config: PPOConfig | None = None,
                 rng: np.random.Generator | None = None):
        self.env = env
        self.policy = policy
        self.config = config or PPOConfig()
        self.rng = rng if rng is not None \
            else np.random.default_rng(self.config.seed)
        self.updater = PPOUpdater(policy, self.config, rng=self.rng)
        self.history = TrainHistory()

    @property
    def optimizer(self) -> Adam:
        return self.updater.optimizer

    # -- data collection ---------------------------------------------------

    def collect(self) -> dict[str, np.ndarray]:
        cfg = self.config
        buf = RolloutBuffer(self.policy.obs_dim, self.policy.act_dim,
                            cfg.steps_per_epoch, cfg.gamma, cfg.lam)
        obs = self.env.reset()
        episode_reward = 0.0
        episode_len = 0
        while not buf.full:
            action, logp, value = self.policy.act(obs, self.rng)
            next_obs, reward, done, _ = self.env.step(action)
            buf.store(obs, action, reward, value, logp)
            episode_reward += reward
            episode_len += 1
            obs = next_obs
            timeout = episode_len >= cfg.max_episode_steps
            if done or timeout or buf.full:
                last_value = 0.0 if done else self.policy.value(obs)
                buf.finish_path(last_value)
                if done or timeout:
                    self.history.episode_rewards.append(episode_reward)
                    obs = self.env.reset()
                    episode_reward = 0.0
                    episode_len = 0
        return buf.get()

    # -- optimization ----------------------------------------------------

    def update(self, data: dict[str, np.ndarray]) -> dict[str, float]:
        return self.updater.update(data)

    # -- driver ----------------------------------------------------------

    def train(self, epochs: int) -> TrainHistory:
        for _ in range(epochs):
            data = self.collect()
            self.update(data)
        return self.history
