"""Bandwidth traces for the bottleneck link.

A trace answers two questions for the link service process:

- ``rate_at(t)``      — instantaneous capacity in bits/second,
- ``time_to_send(t, nbytes)`` — how long transmitting ``nbytes`` starting
  at ``t`` takes, integrating the (piecewise-constant) capacity,

and one for the metrics layer:

- ``capacity_bytes(t0, t1)`` — total bytes the link could have carried.

Trace families mirror the paper's evaluation setups: constant-rate wired
traces, the step scenario of Fig. 2(a), and synthetic LTE traces standing
in for the recorded Pantheon/DeepCC cellular traces (see DESIGN.md for the
substitution rationale).
"""

from __future__ import annotations

import bisect
import math

import numpy as np

from ..units import mbps


class Trace:
    """Abstract bandwidth trace (piecewise-constant capacity)."""

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def time_to_send(self, t: float, nbytes: float) -> float:
        raise NotImplementedError

    def capacity_bytes(self, t0: float, t1: float) -> float:
        raise NotImplementedError

    def mean_rate(self, t0: float, t1: float) -> float:
        """Average capacity in bps over ``[t0, t1]``."""
        if t1 <= t0:
            return self.rate_at(t0)
        return self.capacity_bytes(t0, t1) * 8.0 / (t1 - t0)


class ConstantTrace(Trace):
    """Fixed-capacity link (the paper's wired traces)."""

    def __init__(self, rate_bps: float):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = float(rate_bps)

    def rate_at(self, t: float) -> float:
        return self.rate_bps

    def time_to_send(self, t: float, nbytes: float) -> float:
        return nbytes * 8.0 / self.rate_bps

    def capacity_bytes(self, t0: float, t1: float) -> float:
        return self.rate_bps * (t1 - t0) / 8.0

    def __repr__(self) -> str:
        return f"ConstantTrace({self.rate_bps / 1e6:.1f} Mbps)"


class PiecewiseTrace(Trace):
    """Piecewise-constant trace defined by breakpoints and rates.

    ``times`` are the left edges of the segments (``times[0]`` must be 0)
    and ``rates[i]`` holds in ``[times[i], times[i + 1])``.  Beyond the
    last breakpoint the trace either holds the last rate or repeats from
    the start (``loop=True``), which mirrors how Mahimahi replays traces.
    """

    def __init__(self, times, rates, loop: bool = True):
        self.times = [float(t) for t in times]
        self.rates = [float(r) for r in rates]
        if len(self.times) != len(self.rates):
            raise ValueError("times and rates must have equal length")
        if not self.times or self.times[0] != 0.0:
            raise ValueError("trace must start at t=0")
        for a, b in zip(self.times, self.times[1:]):
            if b <= a:
                raise ValueError("breakpoints must be strictly increasing")
        if min(self.rates) < 0:
            raise ValueError("rates must be non-negative")
        self.loop = loop
        self.period = self.times[-1] + (self.times[-1] - self.times[-2] if len(self.times) > 1 else 1.0)
        # Cumulative bytes at each breakpoint for O(log n) integration.
        self._cum_bytes = [0.0]
        for i in range(1, len(self.times)):
            seg = (self.times[i] - self.times[i - 1]) * self.rates[i - 1] / 8.0
            self._cum_bytes.append(self._cum_bytes[-1] + seg)
        self._period_bytes = self._cum_bytes[-1] + (self.period - self.times[-1]) * self.rates[-1] / 8.0

    def _local(self, t: float) -> float:
        if not self.loop:
            return t
        return math.fmod(t, self.period)

    def rate_at(self, t: float) -> float:
        lt = self._local(max(t, 0.0))
        if lt >= self.times[-1]:
            return self.rates[-1]
        idx = bisect.bisect_right(self.times, lt) - 1
        return self.rates[idx]

    def _bytes_from_zero(self, t: float) -> float:
        """Cumulative deliverable bytes in [0, t] (t within one period if looping)."""
        if self.loop:
            whole, frac = divmod(t, self.period)
            return whole * self._period_bytes + self._bytes_within_period(frac)
        return self._bytes_within_period(t)

    def _bytes_within_period(self, t: float) -> float:
        if t <= 0:
            return 0.0
        if t >= self.times[-1]:
            return self._cum_bytes[-1] + (t - self.times[-1]) * self.rates[-1] / 8.0
        idx = bisect.bisect_right(self.times, t) - 1
        return self._cum_bytes[idx] + (t - self.times[idx]) * self.rates[idx] / 8.0

    def capacity_bytes(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        return self._bytes_from_zero(t1) - self._bytes_from_zero(t0)

    def time_to_send(self, t: float, nbytes: float) -> float:
        """Duration to push ``nbytes`` starting at ``t`` (inverse of the integral)."""
        if nbytes <= 0:
            return 0.0
        target = self._bytes_from_zero(max(t, 0.0)) + nbytes
        # Walk segments forward from t until the cumulative budget is met.
        cur = max(t, 0.0)
        remaining = nbytes
        for _ in range(10_000_000):
            rate = self.rate_at(cur)
            seg_end = self._segment_end(cur)
            if rate > 0:
                seg_bytes = (seg_end - cur) * rate / 8.0
                if seg_bytes >= remaining or math.isinf(seg_end):
                    return cur + remaining * 8.0 / rate - max(t, 0.0)
                remaining -= seg_bytes
            elif math.isinf(seg_end):
                raise RuntimeError("trace has zero rate forever; packet never departs")
            cur = max(seg_end, cur + 1e-9)  # guard against fp stalls
        raise RuntimeError("time_to_send did not converge")

    def _segment_end(self, t: float) -> float:
        lt = self._local(t)
        base = t - lt
        if lt >= self.times[-1]:
            end = self.period if self.loop else math.inf
        else:
            idx = bisect.bisect_right(self.times, lt) - 1
            end = self.times[idx + 1]
        return base + end if not math.isinf(end) else end

    def __repr__(self) -> str:
        lo, hi = min(self.rates) / 1e6, max(self.rates) / 1e6
        return f"PiecewiseTrace({len(self.rates)} segments, {lo:.1f}-{hi:.1f} Mbps, loop={self.loop})"


def step_trace(levels_mbps, step_duration: float = 10.0) -> PiecewiseTrace:
    """The paper's step scenario: capacity changes every ``step_duration`` s.

    Fig. 2(a) uses a link whose available capacity changes every 10 s.
    """
    times = [i * step_duration for i in range(len(levels_mbps))]
    rates = [mbps(v) for v in levels_mbps]
    return PiecewiseTrace(times, rates, loop=True)


# -- Synthetic LTE traces ----------------------------------------------------
#
# The paper evaluates on LTE traces recorded by Pantheon and DeepCC in
# stationary / walking / driving conditions (0-40 Mbps, highly variable).
# We do not have the recordings, so we synthesise regime-switching
# random-walk traces whose variability grows from "stationary" to
# "driving".  The generator is fully deterministic given a seed.

_LTE_PROFILES = {
    # name: (mean Mbps, sigma per step, fade probability, fade depth)
    "stationary": (24.0, 0.8, 0.00, 1.0),
    "walking": (20.0, 2.0, 0.01, 0.5),
    "driving": (18.0, 4.5, 0.04, 0.25),
    "moving": (16.0, 3.2, 0.02, 0.35),
}


def lte_trace(kind: str = "stationary", duration: float = 120.0,
              interval: float = 0.2, seed: int = 1,
              max_mbps: float = 40.0, min_mbps: float = 0.5) -> PiecewiseTrace:
    """Synthetic LTE capacity trace.

    ``kind`` selects the mobility profile (``stationary``, ``walking``,
    ``driving`` or ``moving``).  Capacity follows a mean-reverting random
    walk sampled every ``interval`` seconds, with occasional deep fades for
    the mobile profiles, clipped to ``[min_mbps, max_mbps]`` — matching
    the 0-40 Mbps envelope the paper quotes for its TMobile traces.
    """
    if kind not in _LTE_PROFILES:
        raise ValueError(f"unknown LTE profile {kind!r}; choose from {sorted(_LTE_PROFILES)}")
    mean, sigma, fade_p, fade_depth = _LTE_PROFILES[kind]
    rng = np.random.default_rng(seed)
    n = max(2, int(math.ceil(duration / interval)))
    level = mean
    rates = []
    fade_left = 0
    for _ in range(n):
        level += 0.15 * (mean - level) + rng.normal(0.0, sigma)
        level = float(np.clip(level, min_mbps, max_mbps))
        if fade_left > 0:
            fade_left -= 1
            rates.append(max(min_mbps, level * fade_depth))
            continue
        if rng.random() < fade_p:
            fade_left = int(rng.integers(2, 8))
        rates.append(level)
    times = [i * interval for i in range(n)]
    return PiecewiseTrace(times, [mbps(r) for r in rates], loop=True)


def wired_trace(bandwidth_mbps: float) -> ConstantTrace:
    """Constant-capacity wired trace (paper's Wired#1-#4)."""
    return ConstantTrace(mbps(bandwidth_mbps))
