"""Trace-driven bottleneck link.

Models a store-and-forward link: arriving packets join a droptail queue,
a single server transmits them at the trace's instantaneous capacity, and
served packets are handed to a delivery callback after the propagation
delay.  Stochastic loss (the paper's 0-10 % sweeps) is applied on ingress.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Callable

import numpy as np

from .engine import EventLoop
from .packet import Packet
from .queue import DropTailQueue
from .trace import Trace

if TYPE_CHECKING:
    from ..telemetry import Recorder
    from .faults import FaultInjector


class BottleneckLink:
    """Single shared bottleneck with a droptail buffer.

    Parameters
    ----------
    loop:
        The simulation event loop.
    trace:
        Capacity trace governing the service rate.
    buffer_bytes:
        Droptail buffer size (the paper varies 10 KB - 5 MB).
    propagation_delay:
        One-way delay added after a packet finishes service.
    loss_rate:
        Bernoulli stochastic loss probability applied on ingress,
        independent of buffer overflow.
    deliver:
        Callback invoked with each packet that crosses the link.
    injector:
        Optional :class:`~repro.simnet.faults.FaultInjector` consulted on
        ingress (burst loss) and egress (delay spikes, reordering).
    recorder:
        Optional :class:`~repro.telemetry.Recorder`; when attached, the
        link emits ``link.drop`` events (queue overflow / AQM drops).
        ``None`` (the default) keeps the data path telemetry-free — each
        guarded site pays one attribute check.
    service_log_horizon:
        When set, service-log entries older than this many seconds are
        periodically compacted away (one boundary entry is kept so
        :meth:`served_bytes_between` stays exact for any window that
        starts inside the horizon).  ``None`` (the default) keeps the
        full log — post-run consumers such as the stress experiment
        query arbitrary whole-run windows from ``RunResult``.
    """

    #: compaction cadence (appends between prefix trims) — keeps the
    #: amortized cost of bounding the log at O(1) per served packet
    LOG_COMPACT_EVERY = 4096

    __slots__ = ("loop", "trace", "recorder", "queue", "propagation_delay",
                 "loss_rate", "deliver", "injector", "_rng", "_busy",
                 "arrived_packets", "random_drops", "fault_drops",
                 "served_bytes", "served_packets", "_first_arrival",
                 "_last_service", "_service_log", "service_log_horizon",
                 "_log_appends")

    def __init__(self, loop: EventLoop, trace: Trace, buffer_bytes: float,
                 propagation_delay: float, deliver: Callable[[Packet], None],
                 loss_rate: float = 0.0, seed: int = 0, aqm: str = "droptail",
                 injector: "FaultInjector | None" = None,
                 recorder: "Recorder | None" = None,
                 service_log_horizon: float | None = None):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loop = loop
        self.trace = trace
        self.recorder = recorder
        on_drop = self._record_drop if recorder is not None else None
        if aqm == "droptail":
            self.queue = DropTailQueue(buffer_bytes, on_drop=on_drop)
        elif aqm == "codel":
            from .codel import CoDelQueue
            self.queue = CoDelQueue(buffer_bytes, clock=lambda: loop.now,
                                    on_drop=on_drop)
        else:
            raise ValueError(f"unknown AQM {aqm!r}; use 'droptail' or 'codel'")
        self.propagation_delay = propagation_delay
        self.loss_rate = loss_rate
        self.deliver = deliver
        self.injector = injector
        self._rng = np.random.default_rng(seed)
        self._busy = False
        # statistics
        self.arrived_packets = 0
        self.random_drops = 0
        self.fault_drops = 0
        self.served_bytes = 0
        self.served_packets = 0
        self._first_arrival: float | None = None
        self._last_service: float = 0.0
        #: (service time, cumulative served bytes) — windowed utilization
        self._service_log: list[tuple[float, float]] = []
        if service_log_horizon is not None and service_log_horizon <= 0:
            raise ValueError("service_log_horizon must be positive")
        self.service_log_horizon = service_log_horizon
        self._log_appends = 0

    # -- ingress -------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Offer a packet to the link (may be dropped)."""
        self.arrived_packets += 1
        if self._first_arrival is None:
            self._first_arrival = self.loop.now
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.random_drops += 1
            return
        if self.injector is not None and self.injector.drop_data(self.loop.now):
            self.fault_drops += 1
            return
        if self.queue.push(packet) and not self._busy:
            self._start_service()

    def _record_drop(self, packet: Packet) -> None:
        """Queue drop hook (only wired for traced runs)."""
        self.recorder.event("link.drop", self.loop.now, flow=packet.flow_id,
                            seq=packet.seq, queue_bytes=self.queue.bytes)

    # -- service process -----------------------------------------------------

    def _start_service(self) -> None:
        head = self.queue.peek()
        if head is None:
            self._busy = False
            return
        self._busy = True
        duration = self.trace.time_to_send(self.loop.now, head.size)
        self.loop.schedule(duration, self._finish_service)

    def _finish_service(self) -> None:
        try:
            packet = self.queue.pop()
        except IndexError:
            # An AQM may have dropped the whole backlog mid-service.
            self._busy = False
            return
        self.served_bytes += packet.size
        self.served_packets += 1
        self._last_service = self.loop.now
        self._service_log.append((self.loop.now, float(self.served_bytes)))
        if self.service_log_horizon is not None:
            self._log_appends += 1
            if self._log_appends >= self.LOG_COMPACT_EVERY:
                self._log_appends = 0
                self._compact_service_log()
        delay = self.propagation_delay
        if self.injector is not None:
            delay += self.injector.delivery_extra_delay(self.loop.now)
        self.loop.schedule(delay, lambda p=packet: self.deliver(p))
        self._start_service()

    def _compact_service_log(self) -> None:
        """Trim entries older than the horizon, keeping one boundary entry.

        The retained boundary entry (the last one at or before the
        cutoff) carries the cumulative byte count, so
        :meth:`served_bytes_between` stays exact for every window whose
        start lies at or after the cutoff.
        """
        log = self._service_log
        cutoff = self.loop.now - self.service_log_horizon
        idx = bisect.bisect_right(log, (cutoff, float("inf"))) - 1
        if idx > 0:
            del log[:idx]

    # -- metrics ---------------------------------------------------------

    def queueing_delay(self) -> float:
        """Instantaneous queueing delay estimate (queue bytes / capacity)."""
        rate = self.trace.rate_at(self.loop.now)
        if rate <= 0:
            return float("inf") if self.queue.bytes else 0.0
        return self.queue.bytes * 8.0 / rate

    def served_bytes_between(self, t0: float, t1: float) -> float:
        """Bytes the link served inside ``[t0, t1]`` (from the service log)."""
        return _cumulative_at(self._service_log, t1) - \
            _cumulative_at(self._service_log, t0)

    def utilization(self, t0: float, t1: float) -> float:
        """Fraction of the link's byte capacity used over ``[t0, t1]``.

        Both the numerator (bytes served inside the window, from the
        per-packet service log) and the denominator (trace capacity over
        the window) are window-local, so a suffix window of an idle-start
        run no longer over-reports.
        """
        cap = self.trace.capacity_bytes(t0, t1)
        if cap <= 0:
            return 0.0
        return min(1.0, self.served_bytes_between(t0, t1) / cap)


def _cumulative_at(log: list[tuple[float, float]], t: float) -> float:
    """Cumulative served bytes at time ``t`` (inclusive) from a service log."""
    idx = bisect.bisect_right(log, (t, float("inf"))) - 1
    return log[idx][1] if idx >= 0 else 0.0
