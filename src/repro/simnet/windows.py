"""Sent-time ACK bucketing shared by Libra and the PCC family.

Utility for a candidate rate must be computed from the packets that were
*transmitted while that rate was applied*; their ACKs arrive up to one
(queue-inflated) RTT later.  An :class:`AckWindow` collects ACK and loss
feedback for packets sent inside a time interval and produces the
(throughput, RTT-gradient, loss) triple the utility functions consume.
"""

from __future__ import annotations

from .packet import AckSample, LossSample


def rtt_slope(samples: list[tuple[float, float]]) -> float:
    """Least-squares slope of (time, rtt) samples — d(RTT)/dt in s/s."""
    n = len(samples)
    if n < 2:
        return 0.0
    mean_t = sum(t for t, _ in samples) / n
    mean_r = sum(r for _, r in samples) / n
    num = sum((t - mean_t) * (r - mean_r) for t, r in samples)
    den = sum((t - mean_t) ** 2 for t, _ in samples)
    return num / den if den > 0 else 0.0


class AckWindow:
    """Buckets ACK/loss feedback by the time the data was sent."""

    __slots__ = ("start", "end", "acked_bytes", "acked", "lost", "rtt_samples")

    def __init__(self, start: float, end: float | None = None):
        self.start = start
        self.end = end
        self.acked_bytes = 0.0
        self.acked = 0
        self.lost = 0
        self.rtt_samples: list[tuple[float, float]] = []

    def contains(self, sent_time: float) -> bool:
        if sent_time < self.start:
            return False
        return self.end is None or sent_time < self.end

    def add_ack(self, ack: AckSample) -> None:
        self.acked_bytes += ack.acked_bytes
        self.acked += 1
        self.rtt_samples.append((ack.sent_time, ack.rtt))

    def add_loss(self, loss: LossSample) -> None:
        self.lost += 1

    def settled(self, now: float, srtt: float) -> bool:
        """Whether all feedback for this window should have arrived."""
        return self.end is not None and now >= self.end + 1.5 * srtt

    def measure(self) -> tuple[float, float, float] | None:
        """(throughput_bps, rtt_gradient, loss_rate), or None without ACKs."""
        if self.acked == 0 or self.end is None:
            return None
        duration = max(self.end - self.start, 1e-6)
        throughput = self.acked_bytes * 8.0 / duration
        gradient = rtt_slope(self.rtt_samples)
        loss_rate = self.lost / max(self.acked + self.lost, 1)
        return throughput, gradient, loss_rate
