"""Seeded impairment samplers shared by simulation and real transports.

:mod:`repro.simnet.faults` and :mod:`repro.netio.impairment` both need
the same stochastic building blocks — Bernoulli drop gates, uniform
jitter, and a Gilbert–Elliott two-state burst channel — with the same
determinism contract: every decision is a pure function of (seed, draw
order).  Factoring them here means a fault profile exercised in the
simulator and an impairment profile applied at the socket layer share
one implementation, so loopback tests reproduce the simulator's loss
processes exactly.

Draw discipline: each sampler documents how many RNG draws it consumes
per call, and callers that need bit-identical streams across refactors
must preserve call order.  :class:`~repro.simnet.faults.FaultInjector`
has consumed draws in this exact order since PR 2; the tests in
``tests/simnet/test_distributions.py`` pin it.
"""

from __future__ import annotations

import numpy as np

#: domain-separation tag for fault/impairment RNG streams (stable since
#: PR 2 — changing it would invalidate every cached faulted result)
FAULT_STREAM_TAG = 0xFA017

#: domain-separation tag for socket-layer impairment streams; distinct
#: from the fault tag so a netio run and a simnet run with the same seed
#: do not share a stream by accident
IMPAIRMENT_STREAM_TAG = 0x1E710

#: domain-separation tag for flow-churn workload streams (arrivals, flow
#: sizes, on/off phases, RTT classes, telemetry reservoir) — stable since
#: PR 10; changing it would invalidate every cached churn result
CHURN_STREAM_TAG = 0xC40124


def fault_rng(schedule_seed: int, run_seed: int) -> np.random.Generator:
    """The fault-decision stream used by :class:`~repro.simnet.faults.FaultInjector`."""
    return np.random.default_rng((FAULT_STREAM_TAG, schedule_seed, run_seed))


def impairment_rng(profile_seed: int, run_seed: int) -> np.random.Generator:
    """The socket-layer impairment stream used by ``LoopbackImpairment``."""
    return np.random.default_rng((IMPAIRMENT_STREAM_TAG, profile_seed,
                                  run_seed))


def churn_rng(spec_seed: int, run_seed: int) -> np.random.Generator:
    """The workload-churn stream used by :mod:`repro.scale.churn`.

    Keyed on the churn spec's own seed *and* the run seed so two sweeps
    over the same spec at different seeds see independent arrival
    realizations, while (spec, seed) pins the stream bit-for-bit.
    """
    return np.random.default_rng((CHURN_STREAM_TAG, spec_seed, run_seed))


def poisson_arrivals(rng: np.random.Generator, n: int,
                     window: float) -> np.ndarray:
    """``n`` Poisson-process arrival times over ``[0, window)``.

    Conditioned on the count, Poisson arrivals are i.i.d. uniform order
    statistics, so this consumes exactly one block of ``n`` uniform
    draws (``rng.random(n)``) and sorts them — no rejection, no
    data-dependent draw count.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if window <= 0:
        raise ValueError("window must be positive")
    return np.sort(rng.random(n)) * window


def bounded_pareto(rng: np.random.Generator, n: int, alpha: float,
                   lower: float, upper: float) -> np.ndarray:
    """``n`` bounded-Pareto(``alpha``) samples in ``[lower, upper]``.

    Inverse-CDF transform of exactly one block of ``n`` uniform draws;
    the heavy-tailed flow-size staple of datacenter workload studies.
    """
    if not (alpha > 0):
        raise ValueError("alpha must be positive")
    if not (0 < lower < upper):
        raise ValueError("need 0 < lower < upper")
    u = rng.random(n)
    ratio = (lower / upper) ** alpha
    return lower / (1.0 - u * (1.0 - ratio)) ** (1.0 / alpha)


def lognormal_sizes(rng: np.random.Generator, n: int, median: float,
                    sigma: float) -> np.ndarray:
    """``n`` lognormal samples with the given median and log-std.

    Consumes one block of ``n`` standard-normal draws
    (``rng.standard_normal(n)``).
    """
    if median <= 0:
        raise ValueError("median must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    return median * np.exp(sigma * rng.standard_normal(n))


def weighted_classes(rng: np.random.Generator, n: int,
                     weights) -> np.ndarray:
    """``n`` class indices drawn by weight (one uniform block).

    ``weights`` need not be normalized.  One ``rng.random(n)`` block is
    mapped through the cumulative weight vector with ``searchsorted`` —
    the same indices a per-sample loop over cumulative thresholds would
    produce.
    """
    w = np.asarray(list(weights), dtype=float)
    if w.size == 0 or np.any(w < 0) or w.sum() <= 0:
        raise ValueError("weights must be non-negative with a positive sum")
    cum = np.cumsum(w) / w.sum()
    return np.searchsorted(cum, rng.random(n), side="right")


def reservoir_indices(rng: np.random.Generator, n: int, cap: int) -> list[int]:
    """Algorithm-R reservoir sample of ``cap`` indices out of ``range(n)``.

    Consumes one uniform draw per index past the first ``cap`` (zero
    draws when ``n <= cap``).  Used to bound the number of
    densely-traced flows per churn run; returned in ascending order so
    the selection is stable to iterate.
    """
    if cap < 0:
        raise ValueError("cap must be non-negative")
    reservoir = list(range(min(cap, n)))
    for i in range(cap, n):
        j = int(rng.random() * (i + 1))
        if j < cap:
            reservoir[j] = i
    return sorted(reservoir)


def bernoulli(rng: np.random.Generator, probability: float) -> bool:
    """One Bernoulli trial (consumes exactly one draw)."""
    return rng.random() < probability


def uniform_jitter(rng: np.random.Generator, scale: float) -> float:
    """One uniform ``[0, scale)`` delay sample (consumes exactly one draw)."""
    return scale * rng.random()


class GilbertElliottSampler:
    """Two-state burst-loss channel evaluated once per packet.

    Per :meth:`step` call the sampler consumes one draw for the state
    transition and — only when the active state's loss probability is
    positive — one draw for the drop decision, matching the historical
    ``FaultInjector.drop_data`` draw order exactly.
    """

    __slots__ = ("p_enter", "p_exit", "loss_good", "loss_bad", "bad")

    def __init__(self, p_enter: float, p_exit: float,
                 loss_good: float = 0.0, loss_bad: float = 0.5):
        for name, p in (("p_enter", p_enter), ("p_exit", p_exit),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p!r}")
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    def step(self, rng: np.random.Generator) -> tuple[bool, bool]:
        """Advance the channel one packet; returns ``(drop, transitioned)``."""
        transitioned = False
        if self.bad:
            if rng.random() < self.p_exit:
                self.bad = False
                transitioned = True
        elif rng.random() < self.p_enter:
            self.bad = True
            transitioned = True
        loss = self.loss_bad if self.bad else self.loss_good
        drop = loss > 0.0 and rng.random() < loss
        return drop, transitioned
