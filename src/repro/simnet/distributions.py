"""Seeded impairment samplers shared by simulation and real transports.

:mod:`repro.simnet.faults` and :mod:`repro.netio.impairment` both need
the same stochastic building blocks — Bernoulli drop gates, uniform
jitter, and a Gilbert–Elliott two-state burst channel — with the same
determinism contract: every decision is a pure function of (seed, draw
order).  Factoring them here means a fault profile exercised in the
simulator and an impairment profile applied at the socket layer share
one implementation, so loopback tests reproduce the simulator's loss
processes exactly.

Draw discipline: each sampler documents how many RNG draws it consumes
per call, and callers that need bit-identical streams across refactors
must preserve call order.  :class:`~repro.simnet.faults.FaultInjector`
has consumed draws in this exact order since PR 2; the tests in
``tests/simnet/test_distributions.py`` pin it.
"""

from __future__ import annotations

import numpy as np

#: domain-separation tag for fault/impairment RNG streams (stable since
#: PR 2 — changing it would invalidate every cached faulted result)
FAULT_STREAM_TAG = 0xFA017

#: domain-separation tag for socket-layer impairment streams; distinct
#: from the fault tag so a netio run and a simnet run with the same seed
#: do not share a stream by accident
IMPAIRMENT_STREAM_TAG = 0x1E710


def fault_rng(schedule_seed: int, run_seed: int) -> np.random.Generator:
    """The fault-decision stream used by :class:`~repro.simnet.faults.FaultInjector`."""
    return np.random.default_rng((FAULT_STREAM_TAG, schedule_seed, run_seed))


def impairment_rng(profile_seed: int, run_seed: int) -> np.random.Generator:
    """The socket-layer impairment stream used by ``LoopbackImpairment``."""
    return np.random.default_rng((IMPAIRMENT_STREAM_TAG, profile_seed,
                                  run_seed))


def bernoulli(rng: np.random.Generator, probability: float) -> bool:
    """One Bernoulli trial (consumes exactly one draw)."""
    return rng.random() < probability


def uniform_jitter(rng: np.random.Generator, scale: float) -> float:
    """One uniform ``[0, scale)`` delay sample (consumes exactly one draw)."""
    return scale * rng.random()


class GilbertElliottSampler:
    """Two-state burst-loss channel evaluated once per packet.

    Per :meth:`step` call the sampler consumes one draw for the state
    transition and — only when the active state's loss probability is
    positive — one draw for the drop decision, matching the historical
    ``FaultInjector.drop_data`` draw order exactly.
    """

    __slots__ = ("p_enter", "p_exit", "loss_good", "loss_bad", "bad")

    def __init__(self, p_enter: float, p_exit: float,
                 loss_good: float = 0.0, loss_bad: float = 0.5):
        for name, p in (("p_enter", p_enter), ("p_exit", p_exit),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p!r}")
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    def step(self, rng: np.random.Generator) -> tuple[bool, bool]:
        """Advance the channel one packet; returns ``(drop, transitioned)``."""
        transitioned = False
        if self.bad:
            if rng.random() < self.p_exit:
                self.bad = False
                transitioned = True
        elif rng.random() < self.p_enter:
            self.bad = True
            transitioned = True
        loss = self.loss_bad if self.bad else self.loss_good
        drop = loss > 0.0 and rng.random() < loss
        return drop, transitioned
