"""Batched fast path for the simulation core.

The reference engine spends four heap events on every packet: the paced
send, the link service completion, the delivery, and the ACK arrival.
For the common case — droptail buffer, no faults that perturb the data
path mid-flight — the last three are *arithmetically determined the
moment the packet is accepted by the link*:

- service finish follows the FIFO recurrence
  ``finish = max(arrival, previous_finish) + time_to_send(start, size)``;
- delivery is ``finish + propagation_delay``;
- the ACK arrives one reverse-path delay after delivery.

So the batched engine commits the whole forward trajectory at ingress
and schedules exactly one fused delivery+ACK event per packet (via the
Timer-less :meth:`EventLoop.call_at`), halving the event count and
skipping the per-packet ``Timer``/closure/``Ack`` allocations.  Link
statistics are realized lazily — packets stay in the real
:class:`DropTailQueue` until their logical finish time has passed, and
:meth:`BatchedBottleneckLink.sync` settles them at every observation
point (arrivals, queue-sampling ticks, end of run) — so queue depths,
drop decisions, conservation audits and the service log are identical
to the reference engine at every instant anyone looks.

Exactness conditions (checked by :func:`batch_safe`): the AQM must be
droptail (CoDel re-decides drops at dequeue time), and the fault
schedule may only contain blackouts (folded into the trace, so the
finish recurrence sees them) and Gilbert–Elliott burst loss (drawn at
arrival time, same RNG order as the reference).  Delay spikes,
reordering and ACK faults perturb packets *after* commit, so scenarios
using them fall back to the reference components.  ``repro diff --mode
engine`` is the oracle that keeps all of this honest.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING

from .endpoint import MIN_PACING_RATE, PACING_JITTER, Receiver, Sender
from .link import BottleneckLink
from .packet import AckSample, Packet
from .trace import ConstantTrace

if TYPE_CHECKING:
    from .faults import FaultSchedule

#: jitter variates are drawn from the per-flow RNG in blocks of this many
#: — ``Generator.random(n)`` yields the identical sequence to n scalar
#: ``random()`` calls, so pacing delays stay bit-identical
JITTER_BLOCK = 512

_EMPTY_BLOCK: tuple = ()


def batch_safe(faults: "FaultSchedule | None") -> bool:
    """Whether a fault schedule preserves the batched engine's exactness.

    Blackouts live in the (deterministic) trace and burst loss draws its
    RNG at arrival time, so both survive batching bit-for-bit.  Delay
    spikes, reordering and ACK faults act on packets after the commit
    point and need the reference event structure.
    """
    if faults is None or not faults.active:
        return True
    return (not faults.delay_spikes and faults.reorder is None
            and faults.ack is None)


class BatchedBottleneckLink(BottleneckLink):
    """Droptail bottleneck that commits service schedules at ingress.

    Accepts the :class:`BottleneckLink` parameters (droptail only) minus
    the ``deliver`` callback: instead of a per-delivery event, the link
    pushes the fused delivery+ACK event straight onto the loop's heap at
    commit time, addressed to the :class:`FlowPipe` wired up by
    :meth:`connect`.
    """

    __slots__ = ("_finish_times", "_start_times", "_tail_finish", "_pipes",
                 "_const_rate", "_scalar", "_arrival_sched")

    def __init__(self, loop, trace, buffer_bytes: float,
                 propagation_delay: float,
                 loss_rate: float = 0.0, seed: int = 0,
                 injector=None, recorder=None,
                 service_log_horizon: float | None = None):
        super().__init__(loop, trace, buffer_bytes, propagation_delay,
                         deliver=_reference_only, loss_rate=loss_rate,
                         seed=seed, aqm="droptail", injector=injector,
                         recorder=recorder,
                         service_log_horizon=service_log_horizon)
        #: committed-but-unrealized service finish times, FIFO order;
        #: parallels the packets sitting in ``self.queue``
        self._finish_times: deque[float] = deque()
        #: matching service *start* times.  In the reference engine the
        #: completion event for a service is scheduled at the instant the
        #: service starts, and same-time events fire in scheduling order
        #: — so when a committed finish lands bit-exactly on an observer's
        #: instant (phase-locked quanta make this routine, not rare), the
        #: start time decides whether the phantom completion precedes the
        #: observer.  See the realize loops below.
        self._start_times: deque[float] = deque()
        self._tail_finish = 0.0
        #: scheduling time of the arrival event currently entering
        #: :meth:`send` — packet mode's channel for the tie-break above
        #: (scalar mode passes it as an argument instead)
        self._arrival_sched = 0.0
        self._pipes: "list[FlowPipe]" = []
        # Constant-rate traces (the wired presets) get their service time
        # computed inline — the exact expression ConstantTrace.time_to_send
        # evaluates, minus the method call per packet.
        self._const_rate = (self.trace.rate_bps
                            if self.trace.__class__ is ConstantTrace else None)
        # Scalar mode (flipped on by the dumbbell for untraced,
        # unsanitized runs): the queue holds packet *sizes* instead of
        # Packet objects, so the hot path never constructs one.  Only
        # the sanitizer (audit_queue iterates packets) and the drop
        # recorder (link.drop events carry flow/seq) ever look inside
        # the queue, and both force packet mode.
        self._scalar = False

    def connect(self, pipes: "list[FlowPipe]") -> None:
        """Wire up the per-flow pipes (indexed by flow id) before a run."""
        self._pipes = pipes

    # -- ingress -------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Accept a packet and commit its full forward trajectory."""
        self.arrived_packets += 1
        loop = self.loop
        now = loop.now
        if self._first_arrival is None:
            self._first_arrival = now
        finish_times = self._finish_times
        queue = self.queue
        if finish_times and finish_times[0] <= now:
            # _realize, inlined — the steady state settles one committed
            # service per arrival, so the call overhead is per packet.
            start_times = self._start_times
            sched = self._arrival_sched
            q = queue._q
            log = self._service_log
            horizon = self.service_log_horizon
            while finish_times:
                finish = finish_times[0]
                # Realize iff the phantom completion precedes this arrival
                # in the reference event order: strictly earlier fire
                # time, or the same fire time with an earlier scheduling
                # time (service start vs. this arrival's push time).
                if finish > now or (finish == now
                                    and start_times[0] >= sched):
                    break
                finish_times.popleft()
                start_times.popleft()
                served = q.popleft()
                queue.bytes -= served.size
                self.served_bytes += served.size
                self.served_packets += 1
                self._last_service = finish
                log.append((finish, float(self.served_bytes)))
                if horizon is not None:
                    self._log_appends += 1
                    if self._log_appends >= self.LOG_COMPACT_EVERY:
                        self._log_appends = 0
                        self._compact_service_log()
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.random_drops += 1
            return
        if self.injector is not None and self.injector.drop_data(now):
            self.fault_drops += 1
            return
        # DropTailQueue.push, inlined (same fields, same drop callback).
        size = packet.size
        if queue.bytes + size > queue.capacity_bytes:
            queue.dropped_packets += 1
            queue.dropped_bytes += size
            if queue.on_drop is not None:
                queue.on_drop(packet)
            return
        queue._q.append(packet)
        queue.bytes += size
        queue.enqueued_packets += 1
        if queue.bytes > queue.max_bytes_seen:
            queue.max_bytes_seen = queue.bytes
        # FIFO service recurrence — the same floats the reference engine
        # produces through its _finish_service/_start_service event chain.
        start = self._tail_finish if finish_times else now
        rate = self._const_rate
        if rate is not None:
            finish = start + size * 8.0 / rate
        else:
            finish = start + self.trace.time_to_send(start, size)
        finish_times.append(finish)
        self._start_times.append(start)
        self._tail_finish = finish
        # Commit the fused delivery+ACK event directly onto the heap —
        # a Timer-less entry with the loop's own seq counter, exactly
        # what EventLoop.call_at would push.  ``loop._heap`` must be
        # fetched per call: _compact() replaces the list object.
        pipe = self._pipes[packet.flow_id]
        delivery_time = finish + self.propagation_delay
        pipe.pending_t.append(delivery_time)
        pipe.pending_s.append(packet.seq)
        seq_no = loop._seq
        loop._seq = seq_no + 1
        if pipe.two_stage:
            pipe.deliver_t.append(delivery_time)
            heappush(loop._heap, (delivery_time, seq_no, pipe.deliver_cb))
        else:
            heappush(loop._heap, (delivery_time + pipe.ack_delay,
                                  seq_no, pipe.arrive_cb))

    def send_scalar(self, pipe: "FlowPipe", seq: int, size: int,
                    now: float, sched: float) -> None:
        """Scalar-mode ingress: :meth:`send` minus the Packet object.

        Only wired up when nothing can ever look inside the queue (no
        sanitizer, no recorder), so the queue carries bare sizes and the
        commit carries bare sequence numbers.  Byte counters, drop
        decisions and the service recurrence are the identical floats —
        drop events need no packet because ``on_drop`` is ``None`` in
        this mode by construction.  ``now`` is passed by the sender (it
        already holds ``loop.now``); ``sched`` is the scheduling time of
        the event that triggered this send, used to order same-instant
        phantom completions the way the reference engine would.
        """
        self.arrived_packets += 1
        loop = self.loop
        if self._first_arrival is None:
            self._first_arrival = now
        finish_times = self._finish_times
        queue = self.queue
        if finish_times and finish_times[0] <= now:
            start_times = self._start_times
            q = queue._q
            log = self._service_log
            horizon = self.service_log_horizon
            while finish_times:
                finish = finish_times[0]
                if finish > now or (finish == now
                                    and start_times[0] >= sched):
                    break
                finish_times.popleft()
                start_times.popleft()
                served_size = q.popleft()
                queue.bytes -= served_size
                self.served_bytes += served_size
                self.served_packets += 1
                self._last_service = finish
                log.append((finish, float(self.served_bytes)))
                if horizon is not None:
                    self._log_appends += 1
                    if self._log_appends >= self.LOG_COMPACT_EVERY:
                        self._log_appends = 0
                        self._compact_service_log()
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.random_drops += 1
            return
        if self.injector is not None and self.injector.drop_data(now):
            self.fault_drops += 1
            return
        if queue.bytes + size > queue.capacity_bytes:
            queue.dropped_packets += 1
            queue.dropped_bytes += size
            return
        queue._q.append(size)
        queue.bytes += size
        queue.enqueued_packets += 1
        if queue.bytes > queue.max_bytes_seen:
            queue.max_bytes_seen = queue.bytes
        start = self._tail_finish if finish_times else now
        rate = self._const_rate
        if rate is not None:
            finish = start + size * 8.0 / rate
        else:
            finish = start + self.trace.time_to_send(start, size)
        finish_times.append(finish)
        self._start_times.append(start)
        self._tail_finish = finish
        delivery_time = finish + self.propagation_delay
        pipe.pending_t.append(delivery_time)
        pipe.pending_s.append(seq)
        seq_no = loop._seq
        loop._seq = seq_no + 1
        if pipe.two_stage:
            pipe.deliver_t.append(delivery_time)
            heappush(loop._heap, (delivery_time, seq_no, pipe.deliver_cb))
        else:
            heappush(loop._heap, (delivery_time + pipe.ack_delay,
                                  seq_no, pipe.arrive_cb))

    # -- lazy realization ----------------------------------------------------

    def _realize(self, now: float, sched: float) -> None:
        """Settle every committed service due by an observer at ``now``.

        ``sched`` is the scheduling time of the observer's own event; a
        service finishing bit-exactly at ``now`` is realized only when
        its start (the phantom completion's scheduling time) is strictly
        earlier — the reference engine's same-instant ordering.
        """
        finish_times = self._finish_times
        start_times = self._start_times
        queue = self.queue
        q = queue._q  # DropTailQueue.pop, inlined below
        log = self._service_log
        scalar = self._scalar  # queue entries: sizes (scalar) or Packets
        while finish_times:
            finish = finish_times[0]
            if finish > now or (finish == now and start_times[0] >= sched):
                break
            finish_times.popleft()
            start_times.popleft()
            entry = q.popleft()
            size = entry if scalar else entry.size
            queue.bytes -= size
            self.served_bytes += size
            self.served_packets += 1
            self._last_service = finish
            log.append((finish, float(self.served_bytes)))
            if self.service_log_horizon is not None:
                self._log_appends += 1
                if self._log_appends >= self.LOG_COMPACT_EVERY:
                    self._log_appends = 0
                    self._compact_service_log()

    def sync(self, now: float, sched: float = float("inf")) -> None:
        """Bring link statistics up to date for an observer at ``now``.

        Called on queue-sampling ticks (which pass their own event's
        scheduling time as ``sched``, so a completion landing exactly on
        a tick realizes only if the reference would have fired it first)
        and at end of run (default ``sched`` — the horizon cut is
        inclusive regardless of scheduling order).
        """
        if self._finish_times and self._finish_times[0] <= now:
            self._realize(now, sched)


def _reference_only(packet) -> None:  # pragma: no cover
    raise AssertionError("batched link delivers via deliver_at, "
                         "not the per-event deliver callback")


class BatchedSender(Sender):
    """Sender with allocation-lean hot paths for the batched engine.

    Behaviour is bit-identical to :class:`Sender`: the same floats in
    the same order, the same controller callbacks.  What changes is the
    cost per packet — pacing events are scheduled through the
    Timer-less ``call_at`` (stale wakeups after ``stop()`` no-op on the
    ``_running`` guard instead of being cancelled), jitter variates are
    drawn in blocks, and the pre-bound callback avoids a bound-method
    allocation per send.
    """

    __slots__ = ("_jitter_block", "_jitter_i", "_send_cb", "_sample",
                 "_cwnd_simple", "_pace_simple", "_fast_link", "_pipe",
                 "_blink", "_userspace", "_track_window")

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._jitter_block = _EMPTY_BLOCK
        self._jitter_i = JITTER_BLOCK  # forces a refill on first use
        self._send_cb = self._send_loop
        # Scalar-mode binding (dumbbell sets both for untraced,
        # unsanitized runs): transmit via link.send_scalar with no
        # Packet construction.  None means packet mode.
        self._fast_link = None
        self._pipe = None
        # Batched-link handle, set for every batched run (both modes) —
        # packet mode posts the trigger's scheduling time through it
        # before transmitting (scalar mode passes it as an argument).
        self._blink = None
        # Devirtualization flags: when the controller inherits the stock
        # decision methods, the hot paths evaluate the same expressions
        # inline instead of paying a dynamic call per packet.  Subclasses
        # that override cwnd()/pacing_rate() (BBR, Libra, rate CCAs) take
        # the generic path.  Imported lazily — a module-level import would
        # cycle through repro.cca's package init.
        from ..cca.base import Controller, WindowController
        cls = type(self.controller)
        self._cwnd_simple = cls.cwnd is WindowController.cwnd
        self._pace_simple = cls.pacing_rate is Controller.pacing_rate
        # ``userspace`` is a class constant on every controller in the
        # tree (never assigned per instance), so cache the flag here.
        self._userspace = self.controller.userspace
        self._track_window = True
        # One AckSample, mutated per ACK.  Safe because no controller in
        # the tree retains the sample object past on_ack() — they all
        # copy scalar fields (verified across cca/, learning/, core/;
        # copa stores (now, rtt) value tuples, not the sample).  A future
        # controller that aliases the sample would diverge from the
        # reference engine and be caught by ``repro diff --mode engine``.
        self._sample = AckSample(0.0, 0, 0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0)

    def start(self) -> None:
        super().start()
        # Monitor-interval window stats are consumed only by the MI/
        # telemetry timers.  In scalar mode (untraced, unsanitized) with
        # a controller that requests no MI, ``start()`` scheduled no
        # such timer, so the per-packet window writes are dead — skip
        # them.  Evaluated after controller.start() so a controller that
        # decides its interval there is still honoured.
        if self._fast_link is not None and self.recorder is None and \
                self.controller.interval() is None:
            self._track_window = False
        # MI controllers get the two-stage pipe: their interval timer is
        # the one same-instant rival that snapshots sender state, so ACK
        # events must draw their heap seq at the delivery instant the
        # way the reference engine does (see FlowPipe).
        pipe = self._pipe
        if pipe is not None and self.controller.interval() is not None:
            pipe.two_stage = True

    def _send_loop(self, sched: float = 0.0) -> None:
        # ``sched`` is the scheduling time of the event driving this
        # send, consumed by the link's same-instant tie-break.  The
        # ACK-unblock path in FlowPipe.arrive passes the acked packet's
        # delivery time (when the reference pushed the ACK event).  The
        # 0.0 default — "never realize an exact tie" — covers the other
        # callers: flow-start events are pushed at setup before any
        # completion exists, interval-timer unblocks are pushed a full
        # MI before any in-flight service started, and pacing events
        # carry jittered offsets that cannot phase-lock onto a service
        # finish time.
        if not self._running:
            return
        limit = self.flow_bytes
        if limit is not None and \
                self.delivered_bytes + self.inflight_bytes >= limit:
            # Budget gate, same position as the reference _send_loop:
            # before the cwnd check and before any jitter draw, so the
            # pacing RNG streams stay aligned.
            self._blocked = True
            self._arm_fin_watchdog()
            return
        controller = self.controller
        mss = self.mss
        if self._cwnd_simple:
            # WindowController.cwnd, inlined (max() as a branch)
            cwnd = controller.cwnd_bytes
            floor = controller.min_cwnd_bytes
            if floor > cwnd:
                cwnd = floor
        else:
            cwnd = controller.cwnd()
        if cwnd is not None and self.inflight_bytes + mss > cwnd:
            self._blocked = True
            if limit is not None:
                # Same cwnd-block watchdog as the reference _send_loop:
                # a finite flow's tail losses must still time out.
                self._arm_fin_watchdog()
            return
        self._blocked = False
        loop = self.loop
        now = loop.now
        seq = self.next_seq
        self.next_seq = seq + 1
        marker = controller.marker
        self.outstanding[seq] = (now, mss, self.delivered_bytes, marker)
        self.send_order.append(seq)
        self.inflight_bytes += mss
        self.sent_bytes += mss
        self.stats.sent_packets += 1
        if self._track_window:
            window = self._window
            window.sent_packets += 1
            window.sent_bytes += mss
        if self._userspace:
            controller.meter.count("userspace_packet")
        link = self._fast_link
        if link is not None:
            link.send_scalar(self._pipe, seq, mss, now, sched)
        else:
            blink = self._blink
            if blink is not None:
                blink._arrival_sched = sched
            self.transmit(Packet(self.flow_id, seq, mss, now, marker))
        # _effective_rate, inlined to reuse the cwnd already fetched
        # above (the floats are the reference engine's, op for op).
        if self._pace_simple:
            rate = None  # Controller.pacing_rate returns None unconditionally
        else:
            rate = controller.pacing_rate()
        if rate is None:
            srtt = self.srtt
            if srtt <= 0:
                srtt = 0.1
            rate = (cwnd or mss * 10) * 8.0 / srtt
        if rate < MIN_PACING_RATE:
            rate = MIN_PACING_RATE
        delay = mss * 8.0 / rate
        i = self._jitter_i
        if i == JITTER_BLOCK:
            # tolist() up front: indexing a Python list yields a float
            # directly, where ndarray indexing allocates a numpy scalar
            # per packet.  The doubles are bit-identical either way.
            block = self._jitter_block = \
                self._jitter_rng.random(JITTER_BLOCK).tolist()
            i = 0
        else:
            block = self._jitter_block
        self._jitter_i = i + 1
        delay *= 1.0 + PACING_JITTER * (block[i] - 0.5)
        # loop.call_at, inlined: delay > 0, so the not-in-the-past guard
        # can never trip.  Fetch loop._heap per call (_compact replaces
        # the list object).
        seq_no = loop._seq
        loop._seq = seq_no + 1
        heappush(loop._heap, (now + delay, seq_no, self._send_cb))

class FlowPipe:
    """Per-flow fused delivery+ACK pipeline.

    The dumbbell appends the delivery time and sequence number at commit
    time and schedules :meth:`arrive` at the ACK arrival time.  Commits
    are FIFO per flow (the link serves in order), so one deque popleft
    pairs each event with its packet; the payload size is always the
    flow's MSS (senders emit nothing else), cached here so the pipe
    never needs the Packet object itself.  Receiver bookkeeping is
    stamped with the delivery time — the instant the reference engine's
    separate delivery event would have used — while the sender sees
    ``loop.now`` (the ACK arrival), exactly as it does in the reference
    engine.
    """

    __slots__ = ("pending_t", "pending_s", "receiver", "stats", "sender",
                 "mss", "ack_delay", "arrive_cb", "_nbins",
                 "two_stage", "deliver_t", "deliver_cb")

    def __init__(self, receiver: Receiver, sender: Sender, ack_delay: float):
        # Parallel columns (delivery time, seq), FIFO — two compact
        # deque appends per commit instead of a tuple allocation.
        self.pending_t: deque[float] = deque()
        self.pending_s: deque[int] = deque()
        self.receiver = receiver
        self.stats = receiver.stats
        self.sender = sender
        self.mss = sender.mss
        self.ack_delay = ack_delay
        self.arrive_cb = self.arrive
        # Two-stage mode, flipped on by BatchedSender.start() for
        # monitor-interval controllers: the fused event's heap seq is
        # assigned at *commit* time, but the reference assigns the ACK
        # event's seq at *delivery* time — so when an ACK lands
        # bit-exactly on an MI-timer tick (phase-locked quanta make
        # this real), the fused event can fire on the wrong side of the
        # MI report.  MI flows therefore commit a featherweight deliver
        # event instead, whose only job is to push the real ACK event
        # with a seq drawn at the delivery instant, restoring the
        # reference's tie order.  Flows without MI timers have no
        # same-instant rival that observes sender state, so they keep
        # the cheaper single fused event.
        self.two_stage = False
        self.deliver_t: deque[float] = deque()
        self.deliver_cb = self.deliver
        # Cached len(stats.delivered_bins).  Valid because in a batched
        # run every delivered-bin extension goes through this pipe
        # (arrive/flush) — Receiver.take is never on the delivery path.
        self._nbins = len(receiver.stats.delivered_bins)

    def deliver(self) -> None:
        """Two-stage first leg: schedule the ACK at the delivery instant.

        Runs at the packet's delivery time and does nothing but push
        :meth:`arrive` one reverse-path delay out — with a sequence
        number drawn *now*, exactly when the reference engine's ACK
        route would have drawn it.  All bookkeeping (receiver delivery
        stamping included) stays in :meth:`arrive`/:meth:`flush`, which
        read ``pending_t``/``pending_s`` untouched by this leg.
        """
        t = self.deliver_t.popleft()
        loop = self.sender.loop
        seq_no = loop._seq
        loop._seq = seq_no + 1
        heappush(loop._heap, (t + self.ack_delay, seq_no, self.arrive_cb))

    def arrive(self) -> None:
        """The fused delivery+ACK event — the hottest callback in a run.

        First half is :meth:`Receiver.take` inlined (delivery
        bookkeeping at delivery time); second half is
        :meth:`Sender.process_ack` flattened into straight-line code —
        the same floats in the same order, with ``min``/``max`` calls as
        branches and one mutated :class:`AckSample` instead of a fresh
        allocation per ACK (no controller retains the sample; the
        engine-diff oracle guards that invariant).  The sender clocks
        off ``loop.now`` — this event's fire time IS the ACK arrival
        instant, so no clock read is needed.
        """
        delivery_time = self.pending_t.popleft()
        seq = self.pending_s.popleft()
        # -- Receiver.take, inlined -------------------------------------
        size = self.mss
        self.receiver.delivered_bytes += size
        stats = self.stats
        stats.delivered_bytes += size
        idx = int((delivery_time - stats.start_time) / stats.bin_width)
        if idx < 0:
            idx = 0
        bins = stats.delivered_bins
        if idx >= self._nbins:
            bins.extend([0.0] * (idx - self._nbins + 1))
            self._nbins = idx + 1
        bins[idx] += size
        # -- Sender.process_ack, flattened ------------------------------
        s = self.sender
        if not s._running:
            return
        record = s.outstanding.pop(seq, None)
        if record is None:
            return  # already declared lost
        # This event fired at delivery_time + ack_delay — the exact
        # float pushed at commit, which run_until assigned to loop.now.
        now = delivery_time + self.ack_delay
        sent_time = record[0]
        rtt = now - sent_time
        # _update_rtt, inlined
        s.latest_rtt = rtt
        if rtt < s.min_rtt:
            s.min_rtt = rtt
        srtt = s.srtt
        if srtt == 0.0:
            s.srtt = srtt = rtt
            s.rttvar = rtt / 2
        else:
            dev = srtt - rtt  # abs() as a branch: sign flip is exact
            if dev < 0.0:
                dev = -dev
            s.rttvar = 0.75 * s.rttvar + 0.25 * dev
            s.srtt = srtt = 0.875 * srtt + 0.125 * rtt
        inflight = s.inflight_bytes - size
        if inflight < 0.0:
            inflight = 0.0
        s.inflight_bytes = inflight
        delivered = s.delivered_bytes = s.delivered_bytes + size
        s.last_ack_time = now
        # elapsed == now - sent_time == rtt, the exact same float
        delivery_rate = 0.0
        if rtt > 0:
            delivery_rate = (delivered - record[2]) * 8.0 / rtt

        stats.acked_packets += 1
        stats.rtt_sum += rtt
        stats.rtt_count += 1
        if rtt < stats.min_rtt:
            stats.min_rtt = rtt
        if rtt > stats.max_rtt:
            stats.max_rtt = rtt
        # rtt_count was just incremented, and every append in a batched
        # run happens here, so len(rtt_samples) == min(rtt_count - 1,
        # cap): the length test and this count test are equivalent.
        if stats.rtt_count <= 200_000:
            stats.rtt_samples.append((now, rtt))

        if s._track_window:
            window = s._window
            window.acked_packets += 1
            window.delivered_bytes += size
            window.rtt_t.append(now)
            window.rtt_r.append(rtt)

        if s.sanitizer is not None:
            s.sanitizer.check_ack_sample(s.flow_id, rtt, srtt,
                                         inflight, delivery_rate, now)
        controller = s.controller
        sample = s._sample
        sample.now = now
        sample.seq = seq
        sample.rtt = rtt
        sample.min_rtt = s.min_rtt
        sample.srtt = srtt
        sample.acked_bytes = size
        sample.delivery_rate = delivery_rate
        sample.inflight_bytes = inflight
        sample.sent_time = sent_time
        sample.marker = record[3]
        controller.on_ack(sample)
        if s._userspace:
            controller.meter.count("userspace_packet")

        # _detect_reorder_losses fast path: the in-order case pops the
        # head and the next head (> seq) ends the reference loop at once.
        order = s.send_order
        if order and order[0] == seq:
            order.popleft()
        else:
            s._detect_reorder_losses(seq)

        if s._blocked:
            # Re-read inflight: _detect_reorder_losses may have shrunk it.
            if s._cwnd_simple:
                cwnd = controller.cwnd_bytes
                floor = controller.min_cwnd_bytes
                if floor > cwnd:
                    cwnd = floor
            else:
                cwnd = controller.cwnd()
            if cwnd is None or s.inflight_bytes + s.mss <= cwnd:
                # The unblocked send happens inside this ACK event, which
                # the reference pushed at the acked packet's delivery
                # time — the link's tie-break needs exactly that instant.
                s._send_loop(delivery_time)
        if s.flow_bytes is not None and not s._finished and \
                s.delivered_bytes >= s.flow_bytes:
            s._finish(now)

    def flush(self, until: float) -> None:
        """Settle deliveries due by ``until`` whose ACKs never arrived.

        At end of run the reference engine has processed delivery events
        up to the horizon but not the ACK events beyond it; this applies
        the same cut to the fused pipeline (receiver bookkeeping only).
        """
        times = self.pending_t
        seqs = self.pending_s
        receiver = self.receiver
        stats = self.stats
        size = self.mss
        while times and times[0] <= until:
            seqs.popleft()
            now = times.popleft()
            # Receiver.take, inlined (the pipe carries no Packet).
            receiver.delivered_bytes += size
            stats.delivered_bytes += size
            idx = int((now - stats.start_time) / stats.bin_width)
            if idx < 0:
                idx = 0
            bins = stats.delivered_bins
            if idx >= self._nbins:
                bins.extend([0.0] * (idx - self._nbins + 1))
                self._nbins = idx + 1
            bins[idx] += size
