"""Mahimahi trace format import/export.

Mahimahi (the paper's emulator) describes a link as a text file with one
integer per line: the millisecond timestamps of 1500-byte packet delivery
opportunities, replayed cyclically.  These helpers convert between that
format and :class:`~repro.simnet.trace.PiecewiseTrace` so recorded
cellular traces (e.g. the Pantheon/DeepCC captures, if available) can be
replayed, and our synthetic traces can be exported for use with the real
Mahimahi.
"""

from __future__ import annotations

from collections import Counter

from .trace import PiecewiseTrace, Trace

MTU_BYTES = 1500
MS = 1e-3


def parse_mahimahi(lines, bin_ms: int = 100) -> PiecewiseTrace:
    """Build a trace from Mahimahi delivery-opportunity timestamps.

    Opportunities are aggregated into ``bin_ms`` buckets; each bucket's
    rate is ``opportunities * MTU * 8 / bin duration``.  The trace loops,
    like Mahimahi's replay.
    """
    stamps: list[int] = []
    for line in lines:
        text = str(line).strip()
        if not text or text.startswith("#"):
            continue
        value = int(text)
        if value < 0:
            raise ValueError(f"negative timestamp {value}")
        stamps.append(value)
    if not stamps:
        raise ValueError("empty mahimahi trace")
    stamps.sort()
    horizon_ms = stamps[-1] + 1
    n_bins = (horizon_ms + bin_ms - 1) // bin_ms
    counts = Counter(stamp // bin_ms for stamp in stamps)
    times = [i * bin_ms * MS for i in range(n_bins)]
    rates = [counts.get(i, 0) * MTU_BYTES * 8.0 / (bin_ms * MS)
             for i in range(n_bins)]
    # A zero-rate tail bin would deadlock a looping trace; floor at a
    # trickle the way mahimahi-like emulators effectively do.
    rates = [max(r, 1000.0) for r in rates]
    return PiecewiseTrace(times, rates, loop=True)


def load_mahimahi(path: str, bin_ms: int = 100) -> PiecewiseTrace:
    """Load a Mahimahi trace file from disk."""
    with open(path) as handle:
        return parse_mahimahi(handle, bin_ms=bin_ms)


def to_mahimahi(trace: Trace, duration: float) -> list[int]:
    """Export a trace as Mahimahi delivery-opportunity timestamps.

    Walks the trace and emits one timestamp per 1500-byte opportunity
    over ``duration`` seconds.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    stamps: list[int] = []
    t = 0.0
    while t < duration:
        step = trace.time_to_send(t, MTU_BYTES)
        if step <= 0:
            raise RuntimeError("trace emits opportunities infinitely fast")
        t += step
        if t < duration:
            stamps.append(int(t * 1000))
    return stamps


def save_mahimahi(trace: Trace, duration: float, path: str) -> None:
    """Write a Mahimahi-format trace file."""
    stamps = to_mahimahi(trace, duration)
    with open(path, "w") as handle:
        handle.write("\n".join(str(s) for s in stamps))
        handle.write("\n")
