"""Discrete-event, packet-level network simulator.

This package is the substrate standing in for the paper's Linux-kernel
datapath and the Mahimahi emulation testbed: trace-driven bottleneck
links, droptail buffers, paced ACK-clocked senders, and per-flow
monitoring.  See DESIGN.md for the substitution rationale.
"""

from .endpoint import FlowStats, Receiver, Sender
from .engine import EventLoop, Timer
from .codel import CoDelQueue
from .faults import (FAULT_PROFILES, AckFault, Blackout, BurstLoss, DelaySpike,
                     FaultInjector, FaultSchedule, FaultedTrace, Reorder)
from .link import BottleneckLink
from .mahimahi import load_mahimahi, parse_mahimahi, save_mahimahi, to_mahimahi
from .network import Dumbbell, RunResult
from .packet import Ack, AckSample, IntervalReport, LossSample, Packet
from .queue import DropTailQueue
from .trace import (ConstantTrace, PiecewiseTrace, Trace, lte_trace,
                    step_trace, wired_trace)

__all__ = [
    "Ack", "AckFault", "AckSample", "Blackout", "BottleneckLink", "BurstLoss",
    "CoDelQueue", "ConstantTrace", "DelaySpike", "DropTailQueue",
    "FAULT_PROFILES", "FaultInjector", "FaultSchedule", "FaultedTrace",
    "Reorder",
    "load_mahimahi", "parse_mahimahi", "save_mahimahi", "to_mahimahi",
    "Dumbbell", "EventLoop", "FlowStats", "IntervalReport", "LossSample",
    "Packet", "PiecewiseTrace", "Receiver", "RunResult", "Sender", "Timer",
    "Trace", "lte_trace", "step_trace", "wired_trace",
]
