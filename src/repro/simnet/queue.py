"""Bottleneck buffer implementations.

The paper evaluates exclusively with droptail (tail-drop) queues, which is
also what its convergence proof (Appendix A) assumes; an unbounded queue
is provided for diagnostics.
"""

from __future__ import annotations

from collections import deque

from .packet import Packet


class DropTailQueue:
    """FIFO byte-bounded droptail queue.

    ``capacity_bytes`` may be ``float('inf')`` for an unbounded buffer.
    Tracks occupancy and drop statistics for the monitors.  ``on_drop``
    is an optional callback invoked with each dropped packet — the link
    wires it to the telemetry recorder for traced runs.
    """

    __slots__ = ("capacity_bytes", "on_drop", "_q", "bytes",
                 "enqueued_packets", "dropped_packets", "dropped_bytes",
                 "max_bytes_seen")

    def __init__(self, capacity_bytes: float, on_drop=None):
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.on_drop = on_drop
        self._q: deque[Packet] = deque()
        self.bytes = 0
        self.enqueued_packets = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.max_bytes_seen = 0

    def push(self, packet: Packet) -> bool:
        """Enqueue ``packet``; returns False (and counts a drop) if full."""
        if self.bytes + packet.size > self.capacity_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += packet.size
            if self.on_drop is not None:
                self.on_drop(packet)
            return False
        self._q.append(packet)
        self.bytes += packet.size
        self.enqueued_packets += 1
        if self.bytes > self.max_bytes_seen:
            self.max_bytes_seen = self.bytes
        return True

    def pop(self) -> Packet:
        packet = self._q.popleft()
        self.bytes -= packet.size
        return packet

    def peek(self) -> Packet | None:
        return self._q[0] if self._q else None

    def iter_packets(self):
        """Iterate the queued packets in FIFO order (sanitizer audits)."""
        return iter(self._q)

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)
