"""Sender and receiver endpoints.

The sender is a paced, ACK-clocked transport: it transmits MSS-sized
segments at the controller's pacing rate (bounded by the congestion
window when one is exposed), samples RTTs and delivery rates from
acknowledgements, detects losses with a packet-reordering threshold plus
a retransmission-timeout fallback, and feeds the controller per-ACK,
per-loss and per-monitor-interval callbacks.

Retransmissions are not simulated: lost segments are counted (the loss
rate is what congestion control consumes) and throughput is measured at
the receiver, which is exactly how Pantheon/Mahimahi-style evaluations
score a CCA.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..units import DEFAULT_MSS

if TYPE_CHECKING:  # break the runtime import cycle with repro.cca
    from ..cca.base import Controller
    from ..telemetry import Recorder
from .engine import EventLoop
from .packet import Ack, AckSample, IntervalReport, LossSample, Packet

#: packets acknowledged past a hole before the hole is declared lost
REORDER_THRESHOLD = 3
#: lower bound for the retransmission-timeout fallback
MIN_RTO = 0.2
#: pacing floor so a flow can always probe a dead-looking link
MIN_PACING_RATE = 64_000.0
#: relative pacing jitter; breaks phase locks between paced senders that
#: would otherwise win/lose droptail slots systematically
PACING_JITTER = 0.10
#: sampling cadence for traced flows whose controller requests no MI
#: callbacks (window CCAs) — telemetry-only, never observed by the CCA
TELEMETRY_SAMPLE_INTERVAL = 0.05


#: Sent-packet records are plain tuples ``(sent_time, size,
#: delivered_at_send, marker)`` — one is allocated per packet on the
#: hottest path in the simulator, and a tuple literal is markedly
#: cheaper than any class construction.  Index layout:
REC_SENT_TIME, REC_SIZE, REC_DELIVERED, REC_MARKER = range(4)


@dataclass(slots=True)
class FlowStats:
    """Per-flow results assembled after a run."""

    flow_id: int
    start_time: float
    end_time: float
    #: byte budget for a finite flow (``None`` = long-lived / unbounded)
    flow_bytes: float | None = None
    #: instant the sender saw its full byte budget acknowledged (FIN);
    #: ``None`` for unbounded flows and for flows cut off by the horizon
    fin_time: float | None = None
    delivered_bytes: float = 0.0
    sent_packets: int = 0
    acked_packets: int = 0
    lost_packets: int = 0
    rtt_sum: float = 0.0
    rtt_count: int = 0
    min_rtt: float = float("inf")
    max_rtt: float = 0.0
    rtt_samples: list = field(default_factory=list)
    bin_width: float = 0.25
    delivered_bins: list = field(default_factory=list)
    lost_bins: list = field(default_factory=list)

    def _bump_bin(self, bins: list, when: float, amount: float) -> None:
        idx = max(int((when - self.start_time) / self.bin_width), 0)
        if idx >= len(bins):
            bins.extend([0.0] * (idx - len(bins) + 1))
        bins[idx] += amount

    @property
    def completed(self) -> bool:
        """Whether a finite flow acknowledged its full byte budget."""
        return self.fin_time is not None

    @property
    def fct(self) -> float | None:
        """Flow completion time (FIN minus start); ``None`` if no FIN."""
        if self.fin_time is None:
            return None
        return self.fin_time - self.start_time

    @property
    def duration(self) -> float:
        return max(self.end_time - self.start_time, 1e-9)

    @property
    def throughput_bps(self) -> float:
        return self.delivered_bytes * 8.0 / self.duration

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6

    @property
    def avg_rtt(self) -> float:
        return self.rtt_sum / self.rtt_count if self.rtt_count else 0.0

    @property
    def avg_rtt_ms(self) -> float:
        return self.avg_rtt * 1e3

    @property
    def min_rtt_ms(self) -> float:
        return self.min_rtt * 1e3 if self.rtt_count else 0.0

    @property
    def loss_rate(self) -> float:
        return self.lost_packets / self.sent_packets if self.sent_packets else 0.0

    def p95_rtt_ms(self) -> float:
        if not self.rtt_samples:
            return 0.0
        values = sorted(r for _, r in self.rtt_samples)
        return values[min(len(values) - 1, int(0.95 * len(values)))] * 1e3

    def throughput_series(self) -> tuple[list[float], list[float]]:
        """(bin centre times, Mbps) series of receiver-side throughput."""
        times = [self.start_time + (i + 0.5) * self.bin_width
                 for i in range(len(self.delivered_bins))]
        rates = [b * 8.0 / self.bin_width / 1e6 for b in self.delivered_bins]
        return times, rates


class Receiver:
    """Per-flow receiver: counts deliveries and emits acknowledgements."""

    __slots__ = ("loop", "flow_id", "ack_path", "stats", "delivered_bytes")

    def __init__(self, loop: EventLoop, flow_id: int,
                 ack_path: Callable[[Ack], None], stats: FlowStats):
        self.loop = loop
        self.flow_id = flow_id
        self.ack_path = ack_path
        self.stats = stats
        self.delivered_bytes = 0.0

    def take(self, packet: Packet, now: float) -> None:
        """Delivery bookkeeping at time ``now`` without emitting an ACK.

        The batched engine delivers and acknowledges in one fused event
        that fires at ACK-arrival time; it calls this with the earlier
        delivery time so receiver counters and bins land where the
        reference engine put them.  Routing is the caller's problem —
        no flow-id check here.
        """
        size = packet.size
        self.delivered_bytes += size
        stats = self.stats
        stats.delivered_bytes += size
        # _bump_bin, inlined: this runs once per delivered packet.
        idx = int((now - stats.start_time) / stats.bin_width)
        if idx < 0:
            idx = 0
        bins = stats.delivered_bins
        if idx >= len(bins):
            bins.extend([0.0] * (idx - len(bins) + 1))
        bins[idx] += size

    def on_packet(self, packet: Packet) -> None:
        if packet.flow_id != self.flow_id:
            raise ValueError("packet routed to wrong receiver")
        now = self.loop.now
        self.take(packet, now)
        self.ack_path(Ack(flow_id=packet.flow_id, seq=packet.seq, size=packet.size,
                          sent_time=packet.sent_time, recv_time=now,
                          delivered_bytes=self.delivered_bytes, marker=packet.marker))


class Sender:
    """Paced, ACK-clocked sender driven by a :class:`Controller`."""

    __slots__ = ("loop", "flow_id", "controller", "transmit", "mss", "stats",
                 "recorder", "_tel_channels", "sanitizer", "next_seq",
                 "inflight_bytes", "delivered_bytes", "sent_bytes",
                 "outstanding", "send_order", "srtt", "rttvar", "latest_rtt",
                 "min_rtt", "last_ack_time", "_running", "_blocked",
                 "_send_timer", "_interval_timer", "_window", "_jitter_rng",
                 "flow_bytes", "_finished", "_fin_timer")

    def __init__(self, loop: EventLoop, flow_id: int, controller: Controller,
                 transmit: Callable[[Packet], None], mss: int = DEFAULT_MSS,
                 stats: FlowStats | None = None,
                 recorder: "Recorder | None" = None,
                 sanitizer=None, flow_bytes: float | None = None):
        self.loop = loop
        self.flow_id = flow_id
        self.controller = controller
        self.transmit = transmit
        self.mss = mss
        self.stats = stats or FlowStats(flow_id=flow_id, start_time=0.0, end_time=0.0)
        # Telemetry: None for untraced runs (hot paths pay one attribute
        # check); channels are resolved once at start() so the per-MI
        # recording path never does a dict lookup.
        self.recorder = recorder
        self._tel_channels = None
        # Sanitizer follows the same pattern: None keeps every guarded
        # site at a single attribute check.
        self.sanitizer = sanitizer

        self.next_seq = 0
        self.inflight_bytes = 0.0
        self.delivered_bytes = 0.0
        self.sent_bytes = 0.0
        self.outstanding: dict[int, tuple] = {}
        self.send_order: deque[int] = deque()

        self.srtt = 0.0
        self.rttvar = 0.0
        self.latest_rtt = 0.0
        self.min_rtt = float("inf")
        self.last_ack_time = 0.0

        self._running = False
        self._blocked = False
        self._send_timer = None
        self._interval_timer = None
        self._window = _WindowStats()
        self._jitter_rng = np.random.default_rng(10_007 + flow_id)
        # Finite-size flows: stop injecting new data once the budget is
        # delivered-or-inflight, FIN when every budgeted byte is acked.
        # ``None`` (long-lived flows) keeps the hot paths at a single
        # attribute check.
        if flow_bytes is not None and flow_bytes <= 0:
            raise ValueError("flow_bytes must be positive (or None)")
        self.flow_bytes = flow_bytes
        self._finished = False
        self._fin_timer = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        now = self.loop.now
        self._running = True
        self.stats.start_time = now
        self.last_ack_time = now
        self.controller.start(now, self.mss)
        if self.recorder is not None:
            prefix = f"flow{self.flow_id}."
            self._tel_channels = tuple(
                self.recorder.series(prefix + name)
                for name in ("rate", "srtt", "cwnd", "inflight",
                             "throughput", "loss_rate"))
        self._window.reset(now)
        self._schedule_interval()
        self._send_loop()

    def stop(self) -> None:
        if self._finished:
            return  # FIN already closed the flow; keep its completion stamp
        self._running = False
        self.stats.end_time = self.loop.now
        if self._send_timer is not None:
            self._send_timer.cancel()
        if self._interval_timer is not None:
            self._interval_timer.cancel()
        if self._fin_timer is not None:
            self._fin_timer.cancel()
            self._fin_timer = None

    def _finish(self, now: float) -> None:
        """FIN: the whole byte budget is acknowledged — close the flow.

        Lost segments are replaced by fresh sends (the budget gate in
        :meth:`_send_loop` frees their bytes when the loss is declared),
        so completion means ``flow_bytes`` of *delivered* data, the FCT
        a retransmitting transport would report.
        """
        self._finished = True
        self._running = False
        stats = self.stats
        stats.fin_time = now
        stats.end_time = now
        if self._send_timer is not None:
            self._send_timer.cancel()
        if self._interval_timer is not None:
            self._interval_timer.cancel()
        if self._fin_timer is not None:
            self._fin_timer.cancel()
            self._fin_timer = None

    def _arm_fin_watchdog(self) -> None:
        """RTO-cadence probe while budget-paused with data still in flight.

        A window CCA schedules no monitor-interval timer, so a tail loss
        on the last budgeted segments would otherwise never be declared
        (reorder detection needs later ACKs that will never come) and
        the flow would hang short of its FIN until the horizon.
        """
        if self._fin_timer is None and self.outstanding:
            self._fin_timer = self.loop.schedule(self._rto(), self._fin_probe)

    def _fin_probe(self) -> None:
        self._fin_timer = None
        if not self._running:
            return
        self._check_timeout_losses()
        if self._running and self._blocked and self._window_allows():
            self._send_loop()
        if self._running and self._fin_timer is None and self.outstanding:
            self._fin_timer = self.loop.schedule(self._rto(), self._fin_probe)

    # -- pacing ----------------------------------------------------------

    def _effective_rate(self) -> float:
        rate = self.controller.pacing_rate()
        if rate is None:
            cwnd = self.controller.cwnd()
            srtt = self.srtt if self.srtt > 0 else 0.1
            rate = (cwnd or self.mss * 10) * 8.0 / srtt
        return max(rate, MIN_PACING_RATE)

    def _window_allows(self) -> bool:
        cwnd = self.controller.cwnd()
        return cwnd is None or self.inflight_bytes + self.mss <= cwnd

    def _send_loop(self) -> None:
        if not self._running:
            return
        limit = self.flow_bytes
        if limit is not None and \
                self.delivered_bytes + self.inflight_bytes >= limit:
            # Budget gate: every remaining byte is already in flight (a
            # declared loss frees its bytes and re-enters here), so pause
            # like a cwnd block — ACK/loss unblocks re-probe this path.
            self._blocked = True
            self._arm_fin_watchdog()
            return
        if not self._window_allows():
            self._blocked = True
            if limit is not None:
                # A finite flow blocked on cwnd with its tail in flight
                # can deadlock if those ACKs never come (window CCAs
                # have no MI timer to run the RTO sweep) — keep the fin
                # watchdog armed until the budget resolves.
                self._arm_fin_watchdog()
            return
        self._blocked = False
        now = self.loop.now
        seq = self.next_seq
        self.next_seq += 1
        marker = self.controller.marker
        packet = Packet(flow_id=self.flow_id, seq=seq, size=self.mss,
                        sent_time=now, marker=marker)
        self.outstanding[seq] = (now, self.mss, self.delivered_bytes, marker)
        self.send_order.append(seq)
        self.inflight_bytes += self.mss
        self.sent_bytes += self.mss
        self.stats.sent_packets += 1
        self._window.sent_packets += 1
        self._window.sent_bytes += self.mss
        if self.controller.userspace:
            self.controller.meter.count("userspace_packet")
        self.transmit(packet)
        delay = self.mss * 8.0 / self._effective_rate()
        delay *= 1.0 + PACING_JITTER * (self._jitter_rng.random() - 0.5)
        self._send_timer = self.loop.schedule(delay, self._send_loop)

    # -- acknowledgements --------------------------------------------------

    def on_ack_packet(self, ack: Ack) -> None:
        self.process_ack(ack.seq)

    def process_ack(self, seq: int) -> None:
        """Handle the acknowledgement of ``seq`` at the current sim time.

        Only the sequence number matters — every other signal (RTT,
        delivery rate, inflight) is derived from the sender's own sent
        record — so the batched engine calls this directly and skips
        constructing an :class:`Ack` per packet.
        """
        if not self._running:
            return
        record = self.outstanding.pop(seq, None)
        if record is None:
            return  # already declared lost
        now = self.loop.now
        sent_time = record[0]
        size = record[1]
        rtt = now - sent_time
        self._update_rtt(rtt, now)
        self.inflight_bytes = max(0.0, self.inflight_bytes - size)
        self.delivered_bytes += size
        self.last_ack_time = now

        elapsed = now - sent_time
        delivery_rate = 0.0
        if elapsed > 0:
            delivery_rate = (self.delivered_bytes - record[2]) * 8.0 / elapsed

        stats = self.stats
        stats.acked_packets += 1
        stats.rtt_sum += rtt
        stats.rtt_count += 1
        stats.min_rtt = min(stats.min_rtt, rtt)
        stats.max_rtt = max(stats.max_rtt, rtt)
        if len(stats.rtt_samples) < 200_000:
            stats.rtt_samples.append((now, rtt))

        win = self._window
        win.acked_packets += 1
        win.delivered_bytes += size
        win.add_rtt(now, rtt)

        if self.sanitizer is not None:
            self.sanitizer.check_ack_sample(self.flow_id, rtt, self.srtt,
                                            self.inflight_bytes,
                                            delivery_rate, now)
        sample = AckSample(now=now, seq=seq, rtt=rtt, min_rtt=self.min_rtt,
                           srtt=self.srtt, acked_bytes=size,
                           delivery_rate=delivery_rate,
                           inflight_bytes=self.inflight_bytes,
                           sent_time=sent_time, marker=record[3])
        self.controller.on_ack(sample)
        if self.controller.userspace:
            self.controller.meter.count("userspace_packet")

        self._detect_reorder_losses(seq)

        if self._blocked and self._window_allows():
            self._send_loop()
        if self.flow_bytes is not None and not self._finished and \
                self.delivered_bytes >= self.flow_bytes:
            self._finish(now)

    def _update_rtt(self, rtt: float, now: float) -> None:
        self.latest_rtt = rtt
        self.min_rtt = min(self.min_rtt, rtt)
        if self.srtt == 0.0:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt

    # -- loss detection ----------------------------------------------------

    def _detect_reorder_losses(self, acked_seq: int) -> None:
        threshold = acked_seq - REORDER_THRESHOLD
        order = self.send_order
        while order and order[0] <= acked_seq:
            seq = order[0]
            if seq not in self.outstanding:
                order.popleft()
                continue
            if seq <= threshold:
                order.popleft()
                self._declare_lost(seq)
            else:
                break

    def _rto(self) -> float:
        base = self.srtt + 4 * self.rttvar if self.srtt > 0 else 1.0
        return max(2.0 * base, MIN_RTO)

    def _check_timeout_losses(self) -> None:
        """RTO fallback for tail losses (no later ACK to reveal the hole)."""
        now = self.loop.now
        if not self.outstanding:
            return
        if now - self.last_ack_time < self._rto():
            return
        cutoff = now - self._rto()
        stale = [s for s, r in self.outstanding.items() if r[0] <= cutoff]
        for seq in stale:
            self._declare_lost(seq)

    def _declare_lost(self, seq: int) -> None:
        record = self.outstanding.pop(seq, None)
        if record is None:
            return
        size = record[1]
        self.inflight_bytes = max(0.0, self.inflight_bytes - size)
        self.stats.lost_packets += 1
        self.stats._bump_bin(self.stats.lost_bins, self.loop.now, size)
        self._window.lost_packets += 1
        self.controller.on_loss(LossSample(now=self.loop.now, seq=seq,
                                           lost_bytes=size,
                                           sent_time=record[0],
                                           inflight_bytes=self.inflight_bytes,
                                           marker=record[3]))
        if self._blocked and self._window_allows():
            self._send_loop()

    # -- monitor intervals ---------------------------------------------------

    def _schedule_interval(self) -> None:
        duration = self.controller.interval()
        if duration is None:
            if self._tel_channels is not None:
                # Traced window CCA: sample at a fixed cadence instead.
                self._interval_timer = self.loop.schedule(
                    TELEMETRY_SAMPLE_INTERVAL, self._fire_telemetry_sample)
            return
        duration = max(duration, 1e-3)
        self._interval_timer = self.loop.schedule(duration, self._fire_interval)

    def _fire_telemetry_sample(self) -> None:
        """Telemetry-only tick for controllers without monitor intervals."""
        if not self._running:
            return
        now = self.loop.now
        report = self._window.report(now, self.min_rtt)
        self._window.reset(now)
        self._record_interval(now, report)
        self._schedule_interval()

    def _record_interval(self, now: float, report: IntervalReport) -> None:
        """Per-MI telemetry sampling (traced runs only)."""
        rate_ch, srtt_ch, cwnd_ch, inflight_ch, tput_ch, loss_ch = \
            self._tel_channels
        rate_ch.add(now, self._effective_rate())
        srtt_ch.add(now, self.srtt)
        cwnd = self.controller.cwnd()
        if cwnd is not None:
            cwnd_ch.add(now, cwnd)
        inflight_ch.add(now, self.inflight_bytes)
        tput_ch.add(now, report.throughput)
        loss_ch.add(now, report.loss_rate)
        self.controller.meter.count("telemetry")

    def _fire_interval(self) -> None:
        if not self._running:
            return
        self._check_timeout_losses()
        now = self.loop.now
        report = self._window.report(now, self.min_rtt)
        self._window.reset(now)
        self.controller.meter.count("per_mi")
        if self._tel_channels is not None:
            self._record_interval(now, report)
        if self.sanitizer is not None:
            self.sanitizer.check_interval_report(self.flow_id, report)
            self.sanitizer.check_rate("simnet.pacing_rate",
                                      self._effective_rate(),
                                      flow=self.flow_id, now=now)
        self.controller.on_interval(report)
        if self._blocked and self._window_allows():
            self._send_loop()
        self._schedule_interval()


class _WindowStats:
    """Rolling statistics for one monitor interval.

    RTT samples live in two parallel ``array('d')`` columns rather than a
    list of tuples: one compact buffer append per ACK instead of a tuple
    allocation, and the column layout is what a vectorized reducer wants.
    The reductions in :meth:`report` iterate in the same order as the old
    tuple list, so derived floats are bit-identical.
    """

    __slots__ = ("start", "delivered_bytes", "sent_bytes", "sent_packets",
                 "acked_packets", "lost_packets", "rtt_t", "rtt_r")

    def __init__(self) -> None:
        self.reset(0.0)

    def reset(self, now: float) -> None:
        self.start = now
        self.delivered_bytes = 0.0
        self.sent_bytes = 0.0
        self.sent_packets = 0
        self.acked_packets = 0
        self.lost_packets = 0
        self.rtt_t = array("d")
        self.rtt_r = array("d")

    def add_rtt(self, now: float, rtt: float) -> None:
        self.rtt_t.append(now)
        self.rtt_r.append(rtt)

    def report(self, now: float, flow_min_rtt: float) -> IntervalReport:
        duration = max(now - self.start, 1e-9)
        throughput = self.delivered_bytes * 8.0 / duration
        send_rate = self.sent_bytes * 8.0 / duration
        rtts = self.rtt_r
        if rtts:
            avg_rtt = sum(rtts) / len(rtts)
            min_rtt = min(rtts)
            gradient = _slope(self.rtt_t, rtts)
        else:
            avg_rtt = 0.0
            min_rtt = flow_min_rtt if flow_min_rtt < float("inf") else 0.0
            gradient = 0.0
        denominator = self.sent_packets if self.sent_packets else 1
        return IntervalReport(now=now, duration=duration, throughput=throughput,
                              send_rate=send_rate, avg_rtt=avg_rtt,
                              min_rtt=min_rtt, rtt_gradient=gradient,
                              loss_rate=min(1.0, self.lost_packets / denominator),
                              acked_packets=self.acked_packets,
                              lost_packets=self.lost_packets,
                              sent_packets=self.sent_packets)


def _slope(times, rtts) -> float:
    """Least-squares slope of (time, rtt) columns — the RTT gradient."""
    n = len(rtts)
    if n < 2:
        return 0.0
    mean_t = sum(times) / n
    mean_r = sum(rtts) / n
    num = sum((t - mean_t) * (r - mean_r) for t, r in zip(times, rtts))
    den = sum((t - mean_t) ** 2 for t in times)
    if den <= 0:
        return 0.0
    return num / den
