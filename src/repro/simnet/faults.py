"""Deterministic network fault injection.

Mazilu et al. ("Learning-Based vs Human-Derived Congestion Control")
show learned CCAs degrade precisely under conditions a clean emulator
never produces: link outages, bursty loss, delay spikes, packet
reordering and ACK-path impairment.  This module makes those conditions
first-class, composable and reproducible:

- :class:`FaultSchedule` is a frozen, picklable description of every
  fault applied to one run.  It rides inside a
  :class:`~repro.scenarios.presets.Scenario`, so the content-addressed
  result cache keys it automatically — the same fault profile hits, a
  changed one misses.
- :class:`FaultedTrace` wraps any :class:`~repro.simnet.trace.Trace`
  with capacity→0 blackout windows; the service-process math
  (``time_to_send`` / ``capacity_bytes``) integrates around them, so
  utilization is always measured against the capacity that actually
  existed.
- :class:`FaultInjector` holds the per-run mutable state (seeded RNG,
  Gilbert–Elliott channel state) and exposes the thin hooks
  :class:`~repro.simnet.link.BottleneckLink` and
  :class:`~repro.simnet.network.Dumbbell` call on the data and ACK
  paths.

Two runs with the same schedule and seed are bit-identical; faults are
a pure function of (schedule, seed, packet sequence).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from .distributions import (GilbertElliottSampler, bernoulli, fault_rng,
                            uniform_jitter)
from .trace import Trace


def _window_active(now: float, start: float, stop: float | None) -> bool:
    return now >= start and (stop is None or now < stop)


@dataclass(frozen=True)
class Blackout:
    """Total link outage: capacity drops to zero in ``[start, start+duration)``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("blackout start must be non-negative")
        if self.duration <= 0:
            raise ValueError("blackout duration must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class DelaySpike:
    """Extra one-way delay on every delivery inside ``[start, start+duration)``.

    ``extra`` is added deterministically; ``jitter`` adds a uniform
    ``[0, jitter)`` per-packet component on top (seeded, so still
    reproducible).
    """

    start: float
    duration: float
    extra: float
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("spike duration must be positive")
        if self.extra < 0 or self.jitter < 0:
            raise ValueError("delays must be non-negative")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class BurstLoss:
    """Gilbert–Elliott two-state burst loss on the data path.

    The channel moves good→bad with probability ``p_enter`` and bad→good
    with ``p_exit`` per arriving packet; packets are dropped with
    ``loss_good`` / ``loss_bad`` in the respective state.  Defaults give
    ~1 burst per 100 packets lasting ~5 packets at 50 % loss.
    """

    p_enter: float = 0.01
    p_exit: float = 0.2
    loss_good: float = 0.0
    loss_bad: float = 0.5
    start: float = 0.0
    stop: float | None = None

    def __post_init__(self) -> None:
        for name in ("p_enter", "p_exit", "loss_good", "loss_bad"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p!r}")


@dataclass(frozen=True)
class Reorder:
    """Packet reordering: hold a packet back so later ones overtake it.

    Each delivered packet is independently selected with ``probability``
    and delayed by an extra ``extra`` seconds, which makes the sender's
    reorder-threshold loss detector see transient holes.
    """

    probability: float
    extra: float
    start: float = 0.0
    stop: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.extra <= 0:
            raise ValueError("reorder extra delay must be positive")


@dataclass(frozen=True)
class AckFault:
    """ACK-path impairment: Bernoulli ACK loss and/or ACK compression.

    ``compression`` quantizes ACK arrival times at the sender to
    multiples of the given quantum, so ACKs inside one quantum arrive
    back-to-back — the classic ACK-compression pattern that breaks
    ACK-clocked rate estimators.
    """

    loss: float = 0.0
    compression: float = 0.0
    start: float = 0.0
    stop: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("ack loss must be in [0, 1)")
        if self.compression < 0:
            raise ValueError("compression quantum must be non-negative")


@dataclass(frozen=True)
class FaultSchedule:
    """Composable, seeded description of every fault applied to a run.

    A frozen dataclass tree of plain floats, so it pickles across the
    worker pool and canonicalizes to a stable cache key via
    :func:`repro.parallel.jobs.canonical_spec`.  ``seed`` decouples the
    fault randomness (burst loss, jitter, reordering, ACK loss) from the
    network seed: sweeping network seeds under one fault realization and
    vice versa are both expressible.
    """

    name: str = "custom"
    blackouts: tuple[Blackout, ...] = ()
    delay_spikes: tuple[DelaySpike, ...] = ()
    burst_loss: BurstLoss | None = None
    reorder: Reorder | None = None
    ack: AckFault | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        # Tolerate lists at construction; store canonical tuples.
        object.__setattr__(self, "blackouts", tuple(self.blackouts))
        object.__setattr__(self, "delay_spikes", tuple(self.delay_spikes))

    @property
    def active(self) -> bool:
        return bool(self.blackouts or self.delay_spikes or self.burst_loss
                    or self.reorder or self.ack)

    def impairment_windows(self, duration: float) -> list[tuple[float, float]]:
        """Merged ``[start, end)`` windows in which any fault is active."""
        spans: list[tuple[float, float]] = []
        for b in self.blackouts:
            spans.append((b.start, min(b.end, duration)))
        for s in self.delay_spikes:
            spans.append((s.start, min(s.end, duration)))
        for f in (self.burst_loss, self.reorder, self.ack):
            if f is not None:
                spans.append((f.start, duration if f.stop is None
                              else min(f.stop, duration)))
        return _merge_spans([s for s in spans if s[1] > s[0]])


def _merge_spans(spans: list[tuple[float, float]]) -> list[tuple[float, float]]:
    merged: list[tuple[float, float]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class FaultedTrace(Trace):
    """A trace with capacity forced to zero inside blackout windows.

    Delegates to the base trace elsewhere; ``time_to_send`` walks across
    blackouts (a packet mid-service simply waits them out) and
    ``capacity_bytes`` excludes them, so utilization denominators only
    count capacity that was actually available.
    """

    def __init__(self, base: Trace, blackouts):
        self.base = base
        self.blackouts = tuple(_merge_spans([(b.start, b.end)
                                             for b in blackouts]))
        self._starts = [s for s, _ in self.blackouts]

    def _blackout_at(self, t: float) -> tuple[float, float] | None:
        idx = bisect.bisect_right(self._starts, t) - 1
        if idx >= 0 and t < self.blackouts[idx][1]:
            return self.blackouts[idx]
        return None

    def rate_at(self, t: float) -> float:
        if self._blackout_at(t) is not None:
            return 0.0
        return self.base.rate_at(t)

    def capacity_bytes(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        total = self.base.capacity_bytes(t0, t1)
        for start, end in self.blackouts:
            lo, hi = max(t0, start), min(t1, end)
            if hi > lo:
                total -= self.base.capacity_bytes(lo, hi)
        return max(total, 0.0)

    def time_to_send(self, t: float, nbytes: float) -> float:
        if nbytes <= 0:
            return 0.0
        t0 = max(t, 0.0)
        cur = t0
        remaining = nbytes
        for start, end in self.blackouts:
            if end <= cur:
                continue
            if cur >= start:          # mid-blackout: wait it out
                cur = end
                continue
            window = self.base.capacity_bytes(cur, start)
            if window >= remaining:
                return cur - t0 + self.base.time_to_send(cur, remaining)
            remaining -= window
            cur = end
        return cur - t0 + self.base.time_to_send(cur, remaining)

    def __repr__(self) -> str:
        return f"FaultedTrace({self.base!r}, {len(self.blackouts)} blackouts)"


class FaultInjector:
    """Per-run mutable fault state consulted by the link and ACK path.

    Deterministic given ``(schedule.seed, seed)``; every decision draws
    from one private RNG in packet-arrival order, which the event loop
    makes reproducible.
    """

    def __init__(self, schedule: FaultSchedule, seed: int = 0):
        self.schedule = schedule
        self.rng = fault_rng(schedule.seed, seed)
        ge = schedule.burst_loss
        self._ge = GilbertElliottSampler(
            ge.p_enter, ge.p_exit, ge.loss_good, ge.loss_bad) \
            if ge is not None else None
        self._spike_starts = [s.start for s in schedule.delay_spikes]
        # counters surfaced in run results / debugging
        self.data_drops = 0
        self.ack_drops = 0
        self.reordered = 0
        #: optional telemetry recorder (attached by the Dumbbell for
        #: traced runs); fault *state transitions* become events while
        #: per-packet decisions stay counter-only to bound volume
        self.telemetry = None

    def wrap_trace(self, trace: Trace) -> Trace:
        if not self.schedule.blackouts:
            return trace
        return FaultedTrace(trace, self.schedule.blackouts)

    # -- data path --------------------------------------------------------

    def drop_data(self, now: float) -> bool:
        """Gilbert–Elliott ingress drop decision for one data packet."""
        ge = self.schedule.burst_loss
        if ge is None or not _window_active(now, ge.start, ge.stop):
            return False
        drop, transitioned = self._ge.step(self.rng)
        if transitioned and self.telemetry is not None:
            self.telemetry.event("fault.ge_state", now, bad=self._ge.bad,
                                 drops=self.data_drops)
        if drop:
            self.data_drops += 1
        return drop

    def delivery_extra_delay(self, now: float) -> float:
        """Extra one-way delay for a packet leaving the link at ``now``."""
        extra = 0.0
        for spike in self.schedule.delay_spikes:
            if spike.start <= now < spike.end:
                extra += spike.extra
                if spike.jitter > 0.0:
                    extra += uniform_jitter(self.rng, spike.jitter)
        ro = self.schedule.reorder
        if ro is not None and _window_active(now, ro.start, ro.stop) \
                and bernoulli(self.rng, ro.probability):
            self.reordered += 1
            if self.telemetry is not None:
                self.telemetry.event("fault.reorder", now, extra=ro.extra)
            extra += ro.extra
        return extra

    # -- ACK path ---------------------------------------------------------

    def drop_ack(self, now: float) -> bool:
        ack = self.schedule.ack
        if ack is None or ack.loss <= 0.0 \
                or not _window_active(now, ack.start, ack.stop):
            return False
        if bernoulli(self.rng, ack.loss):
            self.ack_drops += 1
            return True
        return False

    def ack_release_time(self, arrival: float) -> float:
        """When an ACK nominally arriving at ``arrival`` is released."""
        ack = self.schedule.ack
        if ack is None or ack.compression <= 0.0 \
                or not _window_active(arrival, ack.start, ack.stop):
            return arrival
        quantum = ack.compression
        return math.ceil(arrival / quantum - 1e-9) * quantum


# -- canned profiles ---------------------------------------------------------
#
# The stress experiment sweeps these; they are deliberately severe.  All
# windows assume runs of >= ~12 s.

FAULT_PROFILES: dict[str, FaultSchedule] = {
    "blackout": FaultSchedule(
        name="blackout",
        blackouts=(Blackout(start=5.0, duration=2.0),)),
    "burst-loss": FaultSchedule(
        name="burst-loss",
        burst_loss=BurstLoss(p_enter=0.02, p_exit=0.2, loss_bad=0.5,
                             start=2.0)),
    "delay-spike": FaultSchedule(
        name="delay-spike",
        delay_spikes=(DelaySpike(start=4.0, duration=1.5, extra=0.15),
                      DelaySpike(start=8.0, duration=1.0, extra=0.25,
                                 jitter=0.02))),
    "reorder": FaultSchedule(
        name="reorder",
        reorder=Reorder(probability=0.05, extra=0.04, start=2.0)),
    "ack-storm": FaultSchedule(
        name="ack-storm",
        ack=AckFault(loss=0.2, compression=0.01, start=2.0)),
    "pathological": FaultSchedule(
        name="pathological",
        blackouts=(Blackout(start=5.0, duration=1.5),),
        delay_spikes=(DelaySpike(start=8.0, duration=1.0, extra=0.1,
                                 jitter=0.02),),
        burst_loss=BurstLoss(p_enter=0.01, p_exit=0.25, loss_bad=0.4,
                             start=2.0),
        ack=AckFault(loss=0.1, start=2.0)),
}
