"""Dumbbell topology: N senders share one trace-driven bottleneck.

This mirrors the paper's Mahimahi/Pantheon setup — every experiment in the
evaluation runs flows through a single emulated bottleneck with a droptail
buffer, a minimum RTT, and optional stochastic loss.  Per-flow extra delay
allows RTT heterogeneity; ACKs travel back over a lossless delay path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..units import DEFAULT_MSS

if TYPE_CHECKING:  # break the runtime import cycle with repro.cca
    from ..cca.base import Controller
    from ..telemetry import FlowTelemetry, Recorder
from ..sanitize import invariants as _sanitize
from .batched import (BatchedBottleneckLink, BatchedSender, FlowPipe,
                      batch_safe)
from .endpoint import FlowStats, Receiver, Sender
from .engine import EventLoop
from .faults import FaultInjector, FaultSchedule
from .link import BottleneckLink, _cumulative_at
from .packet import Ack
from .trace import Trace


@dataclass
class RunResult:
    """Results of one simulation run."""

    duration: float
    flows: list[FlowStats]
    link_served_bytes: float
    link_capacity_bytes: float
    link_dropped_packets: int
    link_random_drops: int
    queue_samples: list = field(default_factory=list)  # (time, queue_bytes)
    controllers: list = field(default_factory=list)
    #: (service time, cumulative served bytes) per packet — windowed metrics
    service_log: list = field(default_factory=list)
    #: structured trace of the run (``None`` unless telemetry was enabled);
    #: picklable, so it crosses the fork-pool boundary and the result cache
    telemetry: "FlowTelemetry | None" = None
    #: events the loop fired — the benchmark meter's events/sec numerator;
    #: engine-dependent by design, so never part of a metric fingerprint
    events_processed: int = 0
    #: which engine actually ran ("batched" may fall back to "reference"
    #: when the scenario's AQM or fault schedule needs per-event structure)
    engine_used: str = "reference"

    @property
    def utilization(self) -> float:
        """Aggregate link utilization (delivered bits / capacity bits)."""
        if self.link_capacity_bytes <= 0:
            return 0.0
        return min(1.0, self.link_served_bytes / self.link_capacity_bytes)

    def served_bytes_between(self, t0: float, t1: float) -> float:
        """Bytes the bottleneck served inside ``[t0, t1]``."""
        return _cumulative_at(self.service_log, t1) - \
            _cumulative_at(self.service_log, t0)

    @property
    def total_throughput_mbps(self) -> float:
        return sum(f.throughput_mbps for f in self.flows)

    @property
    def avg_rtt_ms(self) -> float:
        counts = sum(f.rtt_count for f in self.flows)
        if counts == 0:
            return 0.0
        return sum(f.rtt_sum for f in self.flows) / counts * 1e3

    @property
    def avg_loss_rate(self) -> float:
        sent = sum(f.sent_packets for f in self.flows)
        if sent == 0:
            return 0.0
        return sum(f.lost_packets for f in self.flows) / sent

    def flow(self, index: int) -> FlowStats:
        return self.flows[index]


@dataclass
class _FlowSpec:
    controller: Controller
    start: float
    stop: float | None
    extra_rtt: float
    #: byte budget for a finite flow (``None`` = runs until stop/horizon)
    flow_bytes: float | None = None
    #: whether this flow gets dense per-flow telemetry channels when the
    #: run is traced — churn runs cap the traced set reservoir-style so
    #: artifacts stay bounded at hundreds of concurrent flows
    traced: bool = True


class Dumbbell:
    """Single-bottleneck network builder.

    >>> from repro.simnet.trace import wired_trace
    >>> from repro.cca.cubic import Cubic
    >>> net = Dumbbell(wired_trace(12), buffer_bytes=150_000, rtt=0.03)
    >>> net.add_flow(Cubic())
    0
    >>> result = net.run(2.0)
    >>> result.flows[0].throughput_mbps > 1.0
    True
    """

    def __init__(self, trace: Trace, buffer_bytes: float, rtt: float,
                 loss_rate: float = 0.0, seed: int = 0, mss: int = DEFAULT_MSS,
                 aqm: str = "droptail", faults: FaultSchedule | None = None,
                 recorder: "Recorder | None" = None,
                 sanitizer: "_sanitize.SimSanitizer | None" = None,
                 service_log_horizon: float | None = None,
                 engine: str = "reference"):
        if rtt <= 0:
            raise ValueError("rtt must be positive")
        if engine not in ("reference", "batched"):
            raise ValueError(f"unknown engine {engine!r}; "
                             f"use 'reference' or 'batched'")
        self.loop = EventLoop()
        self.recorder = recorder
        # Invariant layer: explicit argument wins, else the process-wide
        # active sanitizer (installed by ``repro.sanitize.activate``).
        # ``None`` keeps every guarded site at one attribute check.
        self.sanitizer = sanitizer if sanitizer is not None \
            else _sanitize.ACTIVE
        self.loop.sanitizer = self.sanitizer
        self.injector = FaultInjector(faults, seed=seed) \
            if faults is not None and faults.active else None
        if self.injector is not None:
            # Blackouts live in the trace so service and capacity metrics
            # both see them; the injector handles the stochastic faults.
            trace = self.injector.wrap_trace(trace)
            self.injector.telemetry = recorder
        self.trace = trace
        self.rtt = rtt
        self.mss = mss
        self._specs: list[_FlowSpec] = []
        self._senders: list[Sender] = []
        self._receivers: list[Receiver] = []
        self._pipes: list[FlowPipe] = []
        # The batched fast path is only exact for droptail + batch-safe
        # faults; anything else silently runs the reference components
        # (``engine_used`` records the outcome, ``repro diff --mode
        # engine`` verifies the equivalence either way).
        self._batched = (engine == "batched" and aqm == "droptail"
                         and batch_safe(faults))
        self.engine = engine
        self.engine_used = "batched" if self._batched else "reference"
        if self._batched:
            self.link = BatchedBottleneckLink(
                self.loop, trace, buffer_bytes,
                propagation_delay=rtt / 2.0,
                loss_rate=loss_rate, seed=seed,
                injector=self.injector, recorder=recorder,
                service_log_horizon=service_log_horizon)
        else:
            self.link = BottleneckLink(
                self.loop, trace, buffer_bytes,
                propagation_delay=rtt / 2.0,
                deliver=self._deliver,
                loss_rate=loss_rate, seed=seed, aqm=aqm,
                injector=self.injector, recorder=recorder,
                service_log_horizon=service_log_horizon)
        self.queue_samples: list[tuple[float, int]] = []
        self._queue_sample_interval = 0.05
        # Scheduling time of the pending queue-sampling tick: the first
        # one is pushed during run() setup at loop time 0.0, each later
        # one during the preceding tick.
        self._sample_sched = 0.0
        if recorder is not None:
            self._tel_link = (recorder.series("link.queue_bytes"),
                              recorder.series("link.served_bytes"),
                              recorder.series("link.dropped_packets"),
                              recorder.series("link.active_flows"))
        else:
            self._tel_link = None

    # -- construction ------------------------------------------------------

    def add_flow(self, controller: Controller, start: float = 0.0,
                 stop: float | None = None, extra_rtt: float = 0.0,
                 flow_bytes: float | None = None, traced: bool = True) -> int:
        """Register a flow; returns its flow id.

        ``flow_bytes`` makes the flow finite: it stops injecting new
        data once the budget is delivered-or-inflight and FINs when the
        last budgeted byte is acknowledged (``FlowStats.fin_time`` /
        ``.fct``).  ``start`` schedules a mid-run attach; together they
        are the churn workload primitive.  ``traced=False`` keeps a flow
        out of the dense per-flow telemetry set on recorded runs.
        """
        if start < 0:
            raise ValueError("start must be non-negative")
        if flow_bytes is not None and flow_bytes <= 0:
            raise ValueError("flow_bytes must be positive (or None)")
        self._specs.append(_FlowSpec(controller, start, stop, extra_rtt,
                                     flow_bytes, traced))
        return len(self._specs) - 1

    # -- wiring ----------------------------------------------------------

    def _deliver(self, packet) -> None:
        self._receivers[packet.flow_id].on_packet(packet)

    def _ack_path(self, flow_id: int, extra_rtt: float) -> Callable[[Ack], None]:
        delay = self.rtt / 2.0 + extra_rtt
        sender_list = self._senders
        injector = self.injector

        def route(ack: Ack) -> None:
            d = delay
            if injector is not None:
                if injector.drop_ack(self.loop.now):
                    return
                arrival = self.loop.now + delay
                d = injector.ack_release_time(arrival) - self.loop.now
            self.loop.schedule(d, lambda: sender_list[flow_id].on_ack_packet(ack))

        return route

    def _sample_queue(self) -> None:
        now = self.loop.now
        if self._batched:
            # Settle lazily-realized link state so the sample (and the
            # audit below) observes exactly what the reference engine
            # would have at this instant.  The tick's own scheduling
            # time orders it against completions landing exactly on it.
            self.link.sync(now, self._sample_sched)
        self._sample_sched = now
        self.queue_samples.append((now, self.link.queue.bytes))
        if self.sanitizer is not None:
            # Conservation sweep piggybacks on the sampling tick so the
            # audit cadence is bounded (not per-packet).
            self.sanitizer.audit_network(self)
        if self._tel_link is not None:
            queue_ch, served_ch, dropped_ch, active_ch = self._tel_link
            queue_ch.add(now, self.link.queue.bytes)
            served_ch.add(now, self.link.served_bytes)
            dropped_ch.add(now, self.link.queue.dropped_packets
                           + self.link.random_drops + self.link.fault_drops)
            active_ch.add(now, sum(1 for s in self._senders if s._running))
        self.loop.schedule(self._queue_sample_interval, self._sample_queue)

    # -- execution -----------------------------------------------------------

    def run(self, duration: float) -> RunResult:
        """Simulate ``duration`` seconds and return aggregated results."""
        if not self._specs:
            raise ValueError("no flows registered")
        recorder = self.recorder
        if recorder is not None and self.injector is not None:
            # Blackout windows are static schedule facts; emit them as
            # events up front so traces are self-describing.
            for blackout in self.injector.schedule.blackouts:
                recorder.event("fault.blackout", blackout.start,
                               duration=blackout.duration, end=blackout.end)
        for flow_id, spec in enumerate(self._specs):
            stats = FlowStats(flow_id=flow_id, start_time=spec.start,
                              end_time=duration, flow_bytes=spec.flow_bytes)
            # Sampled telemetry: flows outside the traced set see no
            # recorder at all, so neither the per-MI channels nor the
            # controller's telemetry hooks materialize for them.  The
            # run-level recorder (link channels, events, meta) is
            # unaffected.
            flow_recorder = recorder if spec.traced else None
            if self._batched:
                receiver = Receiver(self.loop, flow_id, None, stats)
                sender = BatchedSender(self.loop, flow_id, spec.controller,
                                       self.link.send, mss=self.mss,
                                       stats=stats, recorder=flow_recorder,
                                       sanitizer=self.sanitizer,
                                       flow_bytes=spec.flow_bytes)
                self._pipes.append(FlowPipe(
                    receiver, sender, self.rtt / 2.0 + spec.extra_rtt))
            else:
                receiver = Receiver(self.loop, flow_id,
                                    self._ack_path(flow_id, spec.extra_rtt),
                                    stats)
                sender = Sender(self.loop, flow_id, spec.controller,
                                self.link.send, mss=self.mss, stats=stats,
                                recorder=flow_recorder,
                                sanitizer=self.sanitizer,
                                flow_bytes=spec.flow_bytes)
            if flow_recorder is not None:
                spec.controller.attach_telemetry(flow_recorder,
                                                 flow_id=flow_id)
            self._receivers.append(receiver)
            self._senders.append(sender)
            self.loop.schedule_at(spec.start, sender.start)
            stop = spec.stop if spec.stop is not None else duration
            self.loop.schedule_at(min(stop, duration), sender.stop)
        if self._batched:
            self.link.connect(self._pipes)
            # Every batched sender gets its link and pipe handles (the
            # tie-break plumbing and MI two-stage flag need them in
            # both modes); only ``_fast_link`` switches on scalar mode.
            for sender, pipe in zip(self._senders, self._pipes):
                sender._blink = self.link
                sender._pipe = pipe
            if recorder is None and self.sanitizer is None:
                # Nothing can look inside the queue or at drop events,
                # so the datapath runs scalar: sizes in the queue, seqs
                # in the pipes, zero Packet constructions per run.
                self.link._scalar = True
                for sender in self._senders:
                    sender._fast_link = self.link
        self.loop.schedule(0.0, self._sample_queue)
        self.loop.run_until(duration)
        if self._batched:
            # Settle the lazy link state, then apply the end-of-run cut
            # the reference engine gets for free: deliveries due by the
            # horizon count, ACKs beyond it never fire.
            self.link.sync(duration)
            for pipe in self._pipes:
                pipe.flush(duration)
        if self.sanitizer is not None:
            # Final sweep: the whole run must balance, not just the
            # sampled instants.
            self.sanitizer.audit_network(self)
        for sender in self._senders:
            if sender.stats.end_time == 0.0 or sender.stats.end_time > duration:
                sender.stats.end_time = duration
        telemetry = None
        if recorder is not None:
            meta = {
                "duration": duration,
                "flows": len(self._senders),
                "flows_traced": sum(1 for spec in self._specs if spec.traced),
                "flows_completed": sum(
                    1 for s in self._senders if s.stats.fin_time is not None),
                "mss": self.mss,
                "events_processed": self.loop.processed,
                "engine": self.engine_used,
                "link_served_bytes": float(self.link.served_bytes),
                "link_dropped_packets": self.link.queue.dropped_packets,
                "link_random_drops": self.link.random_drops,
                "link_fault_drops": self.link.fault_drops,
            }
            if self.injector is not None:
                meta.update(fault_data_drops=self.injector.data_drops,
                            fault_ack_drops=self.injector.ack_drops,
                            fault_reordered=self.injector.reordered)
            telemetry = recorder.finish(meta=meta)
        return RunResult(
            duration=duration,
            flows=[s.stats for s in self._senders],
            link_served_bytes=self.link.served_bytes,
            link_capacity_bytes=self.trace.capacity_bytes(0.0, duration),
            link_dropped_packets=self.link.queue.dropped_packets,
            link_random_drops=self.link.random_drops,
            queue_samples=self.queue_samples,
            controllers=[spec.controller for spec in self._specs],
            service_log=self.link._service_log,
            telemetry=telemetry,
            events_processed=self.loop.processed,
            engine_used=self.engine_used)
