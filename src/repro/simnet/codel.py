"""CoDel AQM queue (Nichols & Jacobson 2012).

The paper's flexibility discussion (Sec. 2) notes that keeping CUBIC's
queueing delay low classically requires an AQM such as CoDel in the
network devices — at extra cost — whereas Libra achieves it end-to-end.
This implementation lets the repo demonstrate exactly that comparison
(``examples`` and the AQM ablation bench): CUBIC+CoDel vs plain Libra.

Algorithm: packets are timestamped on enqueue; if the *sojourn time* at
dequeue stays above ``target`` (5 ms) for longer than ``interval``
(100 ms), CoDel enters a dropping state and drops packets at times
spaced by ``interval / sqrt(count)`` until the sojourn falls below
target.
"""

from __future__ import annotations

import math
from collections import deque

from .packet import Packet

TARGET = 0.005      # 5 ms sojourn target
INTERVAL = 0.1      # 100 ms initial interval


class CoDelQueue:
    """Byte-bounded FIFO with CoDel dropping at dequeue.

    Drop-compatible with :class:`~repro.simnet.queue.DropTailQueue` so
    :class:`~repro.simnet.link.BottleneckLink` can use either; the link
    passes the current time via ``set_now`` before each operation (kept
    implicit by reading ``now`` from the attached clock callable).
    """

    def __init__(self, capacity_bytes: float, clock,
                 target: float = TARGET, interval: float = INTERVAL,
                 on_drop=None):
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.clock = clock
        self.on_drop = on_drop
        self.target = target
        self.interval = interval
        self._q: deque[tuple[float, Packet]] = deque()
        self.bytes = 0
        self.enqueued_packets = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.max_bytes_seen = 0
        # CoDel state
        self._sojourn = 0.0
        self._first_above_time = 0.0
        self._dropping = False
        self._drop_next = 0.0
        self._count = 0

    # -- queue interface ---------------------------------------------------

    def push(self, packet: Packet) -> bool:
        if self.bytes + packet.size > self.capacity_bytes:
            self._drop(packet)
            return False
        self._q.append((self.clock(), packet))
        self.bytes += packet.size
        self.enqueued_packets += 1
        self.max_bytes_seen = max(self.max_bytes_seen, self.bytes)
        return True

    def _drop(self, packet: Packet) -> None:
        self.dropped_packets += 1
        self.dropped_bytes += packet.size
        if self.on_drop is not None:
            self.on_drop(packet)

    def _dequeue_raw(self) -> Packet | None:
        if not self._q:
            return None
        enq_time, packet = self._q.popleft()
        self.bytes -= packet.size
        self._sojourn = self.clock() - enq_time
        return packet

    def pop(self) -> Packet:
        """Dequeue with CoDel's dropping law applied."""
        now = self.clock()
        packet = self._dequeue_raw()
        if packet is None:
            raise IndexError("pop from empty queue")
        ok_to_drop = self._should_drop(now)
        if self._dropping:
            if not ok_to_drop:
                self._dropping = False
            else:
                while now >= self._drop_next and self._dropping:
                    self._drop(packet)
                    self._count += 1
                    packet = self._dequeue_raw()
                    if packet is None:
                        self._dropping = False
                        raise IndexError("pop from empty queue")
                    if not self._should_drop(now):
                        self._dropping = False
                    else:
                        self._drop_next += self.interval / math.sqrt(self._count)
        elif ok_to_drop and (now - self._drop_next < self.interval
                             or now - self._first_above_time >= self.interval):
            self._drop(packet)
            self._count = max(self._count - 2, 1) if \
                now - self._drop_next < self.interval else 1
            replacement = self._dequeue_raw()
            if replacement is None:
                raise IndexError("pop from empty queue")
            packet = replacement
            self._dropping = True
            self._drop_next = now + self.interval / math.sqrt(self._count)
        return packet

    def _should_drop(self, now: float) -> bool:
        """CoDel's sojourn-time test; updates first_above_time."""
        if self._sojourn < self.target or self.bytes < 2 * 1500:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return False
        return now >= self._first_above_time

    def peek(self) -> Packet | None:
        return self._q[0][1] if self._q else None

    def iter_packets(self):
        """Iterate the queued packets in FIFO order (sanitizer audits)."""
        return (packet for _, packet in self._q)

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)
