"""Packet and feedback records exchanged inside the simulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class Packet:
    """A data segment in flight from a sender towards the receiver."""

    flow_id: int
    seq: int
    size: int                 # bytes, including headers (MSS granularity)
    sent_time: float
    marker: int = 0           # opaque controller tag (Libra stages use it)


@dataclass(slots=True)
class Ack:
    """Acknowledgement travelling back to the sender.

    Carries everything needed for RTT sampling and BBR-style delivery-rate
    estimation: the echoed send timestamp plus the receiver's cumulative
    delivered counter at the moment the data packet arrived.
    """

    flow_id: int
    seq: int
    size: int
    sent_time: float
    recv_time: float
    delivered_bytes: float    # receiver cumulative counter at recv_time
    marker: int = 0


@dataclass(slots=True)
class AckSample:
    """Per-ACK feedback handed to a congestion controller."""

    now: float
    seq: int
    rtt: float
    min_rtt: float
    srtt: float
    acked_bytes: int
    delivery_rate: float      # bps estimate from delivered counters (0 early on)
    inflight_bytes: float
    sent_time: float
    marker: int = 0


@dataclass(slots=True)
class LossSample:
    """Per-loss feedback handed to a congestion controller."""

    now: float
    seq: int
    lost_bytes: int
    sent_time: float
    inflight_bytes: float
    marker: int = 0


@dataclass(slots=True)
class IntervalReport:
    """Aggregated statistics over one monitor interval (MI).

    Learning-based CCAs and Libra's evaluation machinery consume these
    instead of raw ACKs.  ``rtt_gradient`` is the least-squares slope of
    RTT samples over the window (s/s); ``loss_rate`` is a fraction of
    sent packets detected lost in the window.
    """

    now: float
    duration: float
    throughput: float         # delivered bps over the window
    send_rate: float          # pacing-side bps over the window
    avg_rtt: float
    min_rtt: float
    rtt_gradient: float
    loss_rate: float
    acked_packets: int
    lost_packets: int
    sent_packets: int

    @property
    def has_feedback(self) -> bool:
        """Whether any ACK arrived during the interval (paper Sec. 3)."""
        return self.acked_packets > 0
