"""Discrete-event simulation engine.

A tiny but fast event loop built on :mod:`heapq`.  Events are callbacks
scheduled at absolute simulation times; ties break in scheduling order so
runs are fully deterministic.  Timers can be cancelled, which simply marks
the heap entry dead (lazy deletion).
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..sanitize.errors import EventBudgetExceeded, describe_callback


class Timer:
    """Handle for a scheduled event; ``cancel()`` prevents it from firing."""

    __slots__ = ("time", "fn", "cancelled", "_loop")

    def __init__(self, time: float, fn: Callable[[], None],
                 loop: "EventLoop | None" = None):
        self.time = time
        self.fn = fn
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if self._loop is not None:
                self._loop._note_cancel()


class EventLoop:
    """Deterministic discrete-event loop.

    >>> loop = EventLoop()
    >>> out = []
    >>> _ = loop.schedule(1.0, lambda: out.append(loop.now))
    >>> loop.run_until(2.0)
    >>> out
    [1.0]
    """

    #: lazy deletion is compacted once this many cancelled entries exist
    #: AND they outnumber the live ones (long runs with many RTO
    #: reschedules would otherwise grow the heap unboundedly)
    COMPACT_THRESHOLD = 64

    #: default per-call event budget for ``run_until`` / ``run_all``; a
    #: zero-delay self-rescheduling timer would otherwise spin forever
    MAX_EVENTS = 10_000_000

    __slots__ = ("now", "_heap", "_seq", "_cancelled", "processed",
                 "sanitizer")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Timer]] = []
        # Tie-break counter.  A plain int (not itertools.count) so the
        # hot scheduling paths — including the batched engine's inlined
        # pushes — bump it without a call.
        self._seq = 0
        self._cancelled = 0
        #: events fired so far — surfaced in telemetry run metadata
        self.processed = 0
        #: optional :class:`repro.sanitize.SimSanitizer`; ``None`` keeps
        #: the hot loop at a single attribute check per event
        self.sanitizer = None

    def schedule(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        timer = Timer(time, fn, self)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, timer))
        return timer

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule a bare, uncancellable callback at absolute time ``time``.

        The batched-engine fast path: no :class:`Timer` handle is
        allocated, so callers that never cancel (the vast majority of
        per-packet events) skip one object construction per event.  Ties
        with ``schedule``/``schedule_at`` entries still break in global
        scheduling order — both paths draw from the same sequence counter.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, fn))

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if self._cancelled >= self.COMPACT_THRESHOLD and \
                self._cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify."""
        self._heap = [e for e in self._heap
                      if not (e[2].__class__ is Timer and e[2].cancelled)]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def run_until(self, end_time: float,
                  max_events: int | None = None) -> None:
        """Process events in order until ``end_time`` (inclusive).

        Each call may process at most ``max_events`` events (default
        :data:`MAX_EVENTS`); exceeding the budget raises
        :class:`~repro.sanitize.errors.EventBudgetExceeded` naming the
        callback that was running when the budget tripped.
        """
        budget = self.MAX_EVENTS if max_events is None else max_events
        heap = self._heap
        heappop = heapq.heappop
        # Hoisted once per call: attaching a sanitizer mid-run (nothing
        # does) would take effect on the next run_until call.  The loop
        # is duplicated so the common unsanitized case pays no per-event
        # check at all.
        sanitizer = self.sanitizer
        fired = 0
        fn = None
        try:
            if sanitizer is None:
                while heap and heap[0][0] <= end_time:
                    time, _, entry = heappop(heap)
                    # ``call_at`` pushes bare callables; only Timers cancel.
                    if entry.__class__ is Timer:
                        if entry.cancelled:
                            self._cancelled -= 1
                            continue
                        fn = entry.fn
                    else:
                        fn = entry
                    self.now = time
                    fired += 1
                    if fired > budget:
                        raise EventBudgetExceeded(
                            budget, self.now, describe_callback(fn))
                    fn()
                    heap = self._heap  # _compact may have replaced the list
            else:
                while heap and heap[0][0] <= end_time:
                    time, _, entry = heappop(heap)
                    if entry.__class__ is Timer:
                        if entry.cancelled:
                            self._cancelled -= 1
                            continue
                        fn = entry.fn
                    else:
                        fn = entry
                    sanitizer.check_event_time(time, self.now, fn)
                    self.now = time
                    fired += 1
                    if fired > budget:
                        raise EventBudgetExceeded(
                            budget, self.now, describe_callback(fn))
                    fn()
                    heap = self._heap
        finally:
            self.processed += fired
        if self.now < end_time:
            self.now = end_time

    def run_all(self, max_events: int | None = None) -> None:
        """Drain the event queue completely (bounded by ``max_events``)."""
        budget = self.MAX_EVENTS if max_events is None else max_events
        fn = None
        for _ in range(budget):
            heap = self._heap
            if not heap:
                return
            time, _, entry = heapq.heappop(heap)
            if entry.__class__ is Timer:
                if entry.cancelled:
                    self._cancelled -= 1
                    continue
                fn = entry.fn
            else:
                fn = entry
            if self.sanitizer is not None:
                self.sanitizer.check_event_time(time, self.now, fn)
            self.now = time
            self.processed += 1
            fn()
        if self._heap:
            raise EventBudgetExceeded(
                budget, self.now,
                describe_callback(fn) if fn is not None else "<none>")

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, t in self._heap
                   if not (t.__class__ is Timer and t.cancelled))
