"""Discrete-event simulation engine.

A tiny but fast event loop built on :mod:`heapq`.  Events are callbacks
scheduled at absolute simulation times; ties break in scheduling order so
runs are fully deterministic.  Timers can be cancelled, which simply marks
the heap entry dead (lazy deletion).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..sanitize.errors import EventBudgetExceeded, describe_callback


class Timer:
    """Handle for a scheduled event; ``cancel()`` prevents it from firing."""

    __slots__ = ("time", "fn", "cancelled", "_loop")

    def __init__(self, time: float, fn: Callable[[], None],
                 loop: "EventLoop | None" = None):
        self.time = time
        self.fn = fn
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if self._loop is not None:
                self._loop._note_cancel()


class EventLoop:
    """Deterministic discrete-event loop.

    >>> loop = EventLoop()
    >>> out = []
    >>> _ = loop.schedule(1.0, lambda: out.append(loop.now))
    >>> loop.run_until(2.0)
    >>> out
    [1.0]
    """

    #: lazy deletion is compacted once this many cancelled entries exist
    #: AND they outnumber the live ones (long runs with many RTO
    #: reschedules would otherwise grow the heap unboundedly)
    COMPACT_THRESHOLD = 64

    #: default per-call event budget for ``run_until`` / ``run_all``; a
    #: zero-delay self-rescheduling timer would otherwise spin forever
    MAX_EVENTS = 10_000_000

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Timer]] = []
        self._seq = itertools.count()
        self._cancelled = 0
        #: events fired so far — surfaced in telemetry run metadata
        self.processed = 0
        #: optional :class:`repro.sanitize.SimSanitizer`; ``None`` keeps
        #: the hot loop at a single attribute check per event
        self.sanitizer = None

    def schedule(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        timer = Timer(time, fn, self)
        heapq.heappush(self._heap, (time, next(self._seq), timer))
        return timer

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if self._cancelled >= self.COMPACT_THRESHOLD and \
                self._cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify."""
        self._heap = [e for e in self._heap if not e[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def run_until(self, end_time: float,
                  max_events: int | None = None) -> None:
        """Process events in order until ``end_time`` (inclusive).

        Each call may process at most ``max_events`` events (default
        :data:`MAX_EVENTS`); exceeding the budget raises
        :class:`~repro.sanitize.errors.EventBudgetExceeded` naming the
        callback that was running when the budget tripped.
        """
        budget = self.MAX_EVENTS if max_events is None else max_events
        heap = self._heap
        timer = None
        while heap and heap[0][0] <= end_time:
            time, _, timer = heapq.heappop(heap)
            if timer.cancelled:
                self._cancelled -= 1
                continue
            if self.sanitizer is not None:
                self.sanitizer.check_event_time(time, self.now, timer.fn)
            self.now = time
            self.processed += 1
            budget -= 1
            if budget < 0:
                raise EventBudgetExceeded(
                    self.MAX_EVENTS if max_events is None else max_events,
                    self.now, describe_callback(timer.fn))
            timer.fn()
            heap = self._heap  # _compact may have replaced the list
        if self.now < end_time:
            self.now = end_time

    def run_all(self, max_events: int | None = None) -> None:
        """Drain the event queue completely (bounded by ``max_events``)."""
        budget = self.MAX_EVENTS if max_events is None else max_events
        timer = None
        for _ in range(budget):
            heap = self._heap
            if not heap:
                return
            time, _, timer = heapq.heappop(heap)
            if timer.cancelled:
                self._cancelled -= 1
                continue
            if self.sanitizer is not None:
                self.sanitizer.check_event_time(time, self.now, timer.fn)
            self.now = time
            self.processed += 1
            timer.fn()
        if self._heap:
            raise EventBudgetExceeded(
                budget, self.now,
                describe_callback(timer.fn) if timer is not None else "<none>")

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, t in self._heap if not t.cancelled)
