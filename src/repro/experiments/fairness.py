"""Fairness experiments: Fig. 13 (inter-protocol) and Fig. 14
(intra-protocol) on a 48 Mbps / 100 ms / 1 BDP link (Sec. 5.3).

Inter-protocol: the CCA under test shares the bottleneck with one CUBIC
flow; the paper's bar chart is the normalized throughput split.  Libra
should hold Jain's index above ~98 % while pure learning-based CCAs
either starve CUBIC (Aurora) or get starved.
"""

from __future__ import annotations

import numpy as np

from ..metrics.fairness import jain_index
from ..registry import make_controller
from ..scenarios.presets import fairness_scenario
from .harness import format_table

FAIRNESS_CCAS = ("cubic", "bbr", "copa", "aurora", "proteus", "orca",
                 "modified-rl", "c-libra", "b-libra")


def run_inter(ccas=FAIRNESS_CCAS, seeds=(1, 2), duration: float = 30.0) -> dict:
    """Each CCA vs one CUBIC flow; returns splits and Jain indices."""
    scenario = fairness_scenario()
    out = {}
    for cca in ccas:
        splits, jains = [], []
        for seed in seeds:
            net = scenario.build(seed=seed)
            net.add_flow(make_controller(cca, seed=seed))
            net.add_flow(make_controller("cubic", seed=seed + 100))
            result = net.run(duration)
            pair = (result.flows[0].throughput_mbps,
                    result.flows[1].throughput_mbps)
            total = sum(pair) or 1.0
            splits.append((pair[0] / total, pair[1] / total))
            jains.append(jain_index(pair))
        out[cca] = {
            "cca_share": float(np.mean([s[0] for s in splits])),
            "cubic_share": float(np.mean([s[1] for s in splits])),
            "jain": float(np.mean(jains)),
        }
    return out


def run_intra(ccas=FAIRNESS_CCAS, seeds=(1, 2), duration: float = 30.0) -> dict:
    """Two flows of the same CCA; returns splits and Jain indices."""
    scenario = fairness_scenario()
    out = {}
    for cca in ccas:
        splits, jains = [], []
        for seed in seeds:
            net = scenario.build(seed=seed)
            net.add_flow(make_controller(cca, seed=seed))
            net.add_flow(make_controller(cca, seed=seed + 1000))
            result = net.run(duration)
            pair = (result.flows[0].throughput_mbps,
                    result.flows[1].throughput_mbps)
            total = sum(pair) or 1.0
            splits.append((pair[0] / total, pair[1] / total))
            jains.append(jain_index(pair))
        out[cca] = {
            "flow1_share": float(np.mean([s[0] for s in splits])),
            "flow2_share": float(np.mean([s[1] for s in splits])),
            "jain": float(np.mean(jains)),
        }
    return out


def main() -> None:
    inter = run_inter()
    rows = [[cca, m["cca_share"], m["cubic_share"], m["jain"]]
            for cca, m in inter.items()]
    print(format_table(["cca", "cca_share", "cubic_share", "jain"], rows,
                       title="Fig.13 Inter-protocol fairness (vs CUBIC)"))
    print()
    intra = run_intra()
    rows = [[cca, m["flow1_share"], m["flow2_share"], m["jain"]]
            for cca, m in intra.items()]
    print(format_table(["cca", "flow1", "flow2", "jain"], rows,
                       title="Fig.14 Intra-protocol fairness"))


if __name__ == "__main__":
    main()
