"""Fairness experiments: Fig. 13 (inter-protocol) and Fig. 14
(intra-protocol) on a 48 Mbps / 100 ms / 1 BDP link (Sec. 5.3).

Inter-protocol: the CCA under test shares the bottleneck with one CUBIC
flow; the paper's bar chart is the normalized throughput split.  Libra
should hold Jain's index above ~98 % while pure learning-based CCAs
either starve CUBIC (Aurora) or get starved.
"""

from __future__ import annotations

import numpy as np

from ..metrics.fairness import jain_index
from ..parallel import FlowSpec, Job
from ..scenarios.presets import fairness_scenario
from .harness import format_table, run_job_grid

FAIRNESS_CCAS = ("cubic", "bbr", "copa", "aurora", "proteus", "orca",
                 "modified-rl", "c-libra", "b-libra")


def _run_pairs(ccas, partner, seed_offset, seeds, duration, label,
               share_keys) -> dict:
    """Two-flow jobs per (CCA, seed): the CCA plus its bottleneck partner.

    ``partner=None`` pits the CCA against itself (intra-protocol); the
    second flow's controller seed is the run seed plus ``seed_offset``.
    """
    jobs = [Job(scenario=fairness_scenario(),
                flows=(FlowSpec.make(cca, seed=seed),
                       FlowSpec.make(partner or cca, seed=seed + seed_offset)),
                seed=seed, duration=duration)
            for cca in ccas for seed in seeds]
    results = iter(run_job_grid(jobs, label=label))
    out = {}
    for cca in ccas:
        splits, jains = [], []
        for _seed in seeds:
            result = next(results).result
            pair = (result.flows[0].throughput_mbps,
                    result.flows[1].throughput_mbps)
            total = sum(pair) or 1.0
            splits.append((pair[0] / total, pair[1] / total))
            jains.append(jain_index(pair))
        out[cca] = {
            share_keys[0]: float(np.mean([s[0] for s in splits])),
            share_keys[1]: float(np.mean([s[1] for s in splits])),
            "jain": float(np.mean(jains)),
        }
    return out


def run_inter(ccas=FAIRNESS_CCAS, seeds=(1, 2), duration: float = 30.0) -> dict:
    """Each CCA vs one CUBIC flow; returns splits and Jain indices."""
    return _run_pairs(ccas, "cubic", 100, seeds, duration, label="fig13",
                      share_keys=("cca_share", "cubic_share"))


def run_intra(ccas=FAIRNESS_CCAS, seeds=(1, 2), duration: float = 30.0) -> dict:
    """Two flows of the same CCA; returns splits and Jain indices."""
    return _run_pairs(ccas, None, 1000, seeds, duration, label="fig14",
                      share_keys=("flow1_share", "flow2_share"))


def main() -> None:
    inter = run_inter()
    rows = [[cca, m["cca_share"], m["cubic_share"], m["jain"]]
            for cca, m in inter.items()]
    print(format_table(["cca", "cca_share", "cubic_share", "jain"], rows,
                       title="Fig.13 Inter-protocol fairness (vs CUBIC)"))
    print()
    intra = run_intra()
    rows = [[cca, m["flow1_share"], m["flow2_share"], m["jain"]]
            for cca, m in intra.items()]
    print(format_table(["cca", "flow1", "flow2", "jain"], rows,
                       title="Fig.14 Intra-protocol fairness"))


if __name__ == "__main__":
    main()
