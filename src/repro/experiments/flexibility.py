"""Flexibility experiments: Fig. 11 (Sec. 5.2).

Libra's utility presets (default, Th-1/Th-2 scaling alpha, La-1/La-2
scaling beta) trade throughput against latency:

- Fig. 11(a)/(b): single flow on wired / cellular networks per preset,
- Fig. 11(c)/(d): one Libra flow competing with one CUBIC flow — the
  presets modulate aggressiveness (throughput share vs delay).
"""

from __future__ import annotations

import numpy as np

from ..metrics.fairness import throughput_ratio
from ..registry import make_controller
from ..scenarios.presets import FIG7_CELLULAR, FIG7_WIRED, fairness_scenario
from .harness import format_table, mean_metrics, run_seeds

PRESET_NAMES = ("th-2", "th-1", "default", "la-1", "la-2")
LIBRA_VARIANTS = ("c-libra", "b-libra")


def run_single_flow(variants=LIBRA_VARIANTS, presets=PRESET_NAMES,
                    seeds=(1,), duration: float = 16.0) -> dict:
    """Fig. 11(a)/(b): per-preset solo performance on wired and cellular."""
    out = {}
    for family, scenarios in (("wired", FIG7_WIRED[:2]),
                              ("cellular", FIG7_CELLULAR[:2])):
        per_variant = {}
        for variant in variants:
            for preset in presets:
                utils, delays = [], []
                for scenario in scenarios:
                    runs = run_seeds(variant, scenario, seeds,
                                     duration=duration,
                                     utility_preset=preset)
                    m = mean_metrics(runs)
                    utils.append(m["utilization"])
                    delays.append(m["avg_rtt_ms"])
                per_variant[f"{variant}-{preset}"] = {
                    "utilization": float(np.mean(utils)),
                    "avg_delay_ms": float(np.mean(delays)),
                }
        out[family] = per_variant
    return out


def run_vs_cubic(variants=LIBRA_VARIANTS, presets=PRESET_NAMES,
                 seeds=(1, 2), duration: float = 30.0) -> dict:
    """Fig. 11(c)/(d): Libra's bandwidth share against one CUBIC flow."""
    scenario = fairness_scenario()
    out = {}
    for variant in variants:
        for preset in presets:
            ratios, delays = [], []
            for seed in seeds:
                net = scenario.build(seed=seed)
                libra = make_controller(variant, seed=seed,
                                        utility_preset=preset)
                net.add_flow(libra)
                net.add_flow(make_controller("cubic", seed=seed + 100))
                result = net.run(duration)
                ratios.append(throughput_ratio(
                    result.flows[0].throughput_mbps,
                    result.flows[1].throughput_mbps))
                delays.append(result.flows[0].avg_rtt_ms)
            out[f"{variant}-{preset}"] = {
                "throughput_ratio": float(np.mean(ratios)),
                "avg_delay_ms": float(np.mean(delays)),
            }
    return out


def preset_orders_tradeoff(per_variant: dict, variant: str,
                           metric: str = "utilization") -> list[float]:
    """Metric sequence in Th-2 -> La-2 order, for monotonicity checks."""
    return [per_variant[f"{variant}-{p}"][metric] for p in PRESET_NAMES]


def main() -> None:
    solo = run_single_flow()
    rows = []
    for family, per_variant in solo.items():
        for key, m in per_variant.items():
            rows.append([family, key, m["utilization"], m["avg_delay_ms"]])
    print(format_table(["traces", "variant", "util", "delay_ms"], rows,
                       title="Fig.11(a)/(b) single-flow preset trade-off"))
    print()
    versus = run_vs_cubic()
    rows = [[key, m["throughput_ratio"], m["avg_delay_ms"]]
            for key, m in versus.items()]
    print(format_table(["variant", "thr_ratio_vs_cubic", "delay_ms"], rows,
                       title="Fig.11(c)/(d) aggressiveness vs CUBIC"))


if __name__ == "__main__":
    main()
