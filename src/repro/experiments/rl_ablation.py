"""RL-formulation ablations: Fig. 5, Fig. 6, Tab. 2, Tab. 3, Tab. 4
(Sec. 4.2).

All ablations train in the fluid environment.  The paper's setups use
the default network of 100 Mbps / 100 ms RTT / 1 BDP buffer; training
curves (Fig. 5/6) use randomized episodes.  Defaults are scaled down for
bench runtime (pass larger ``epochs`` for paper-scale curves).
"""

from __future__ import annotations

import numpy as np

from ..env.actions import AiadActions, MimdAuroraActions, MimdOrcaActions
from ..env.features import FeatureSet, STATE_SETS, TAB2_VARIANTS
from ..env.fluidenv import FluidEnvConfig, FluidLinkEnv, evaluate_policy
from ..env.reward import RewardConfig
from ..learning.aurora import Aurora
from ..metrics.fairness import jain_index
from ..registry import make_controller
from ..rl.policy import GaussianActorCritic
from ..rl.ppo import PPOConfig, PPOTrainer
from ..scenarios.presets import rl_default_scenario
from .harness import format_table

#: the paper's RL ablation network (Sec. 4.2)
DEFAULT_CAPACITY = 100e6
DEFAULT_RTT = 0.1
DEFAULT_BUFFER = DEFAULT_CAPACITY * DEFAULT_RTT / 8.0


def _train(feature_set: FeatureSet, action_space, reward: RewardConfig,
           epochs: int, seed: int, randomized: bool = True,
           ) -> tuple[GaussianActorCritic, list[float]]:
    config = FluidEnvConfig(
        seed=seed, episode_steps=64, loss_range=(0.0, 0.05),
        feature_set=feature_set, reward=reward)
    if not randomized:
        config.fixed_capacity = DEFAULT_CAPACITY
        config.fixed_rtt = DEFAULT_RTT
        config.fixed_buffer = DEFAULT_BUFFER
        config.fixed_loss = 0.0
    env = FluidLinkEnv(config, action_space)
    policy = GaussianActorCritic(env.obs_dim, hidden=(32, 32), seed=seed)
    trainer = PPOTrainer(env, policy, PPOConfig(
        steps_per_epoch=640, max_episode_steps=64, gamma=0.995, lam=0.97,
        seed=seed))
    history = trainer.train(epochs)
    return policy, history.smoothed(window=20)


def _evaluate(policy, feature_set: FeatureSet, action_space,
              steps: int = 256, seed: int = 0) -> dict[str, float]:
    env = FluidLinkEnv(FluidEnvConfig(
        seed=seed + 99, episode_steps=64, feature_set=feature_set,
        fixed_capacity=DEFAULT_CAPACITY, fixed_rtt=DEFAULT_RTT,
        fixed_buffer=DEFAULT_BUFFER, fixed_loss=0.0), action_space)
    return evaluate_policy(env, policy, steps=steps, seed=seed)


# -- Fig. 5: state-space comparison -----------------------------------------

def run_fig5(state_sets=("aurora", "rl-tcp", "pcc", "remy", "drl-cc",
                         "orca", "libra"),
             epochs: int = 10, seed: int = 1) -> dict:
    """Learning curves per named state space (Fig. 5)."""
    out = {}
    for name in state_sets:
        _, curve = _train(STATE_SETS[name], MimdOrcaActions(1.0),
                          RewardConfig(), epochs, seed)
        out[name] = {"curve": curve,
                     "final_reward": float(np.mean(curve[-10:]))}
    return out


# -- Tab. 2: add/remove states around the baseline ------------------------

def run_tab2(variants=None, epochs: int = 10, seed: int = 1) -> dict:
    """Reward / throughput / latency / loss deltas vs the Baseline set."""
    variants = variants or TAB2_VARIANTS
    raw = {}
    for label, feature_set in variants.items():
        policy, curve = _train(feature_set, MimdOrcaActions(1.0),
                               RewardConfig(), epochs, seed)
        evaluation = _evaluate(policy, feature_set, MimdOrcaActions(1.0),
                               seed=seed)
        raw[label] = {"reward": float(np.mean(curve[-10:])), **evaluation}
    base = raw["Baseline"]
    out = {}
    for label, m in raw.items():
        out[label] = {
            "reward_delta": _pct(m["reward"], base["reward"]),
            "throughput_delta": _pct(m["throughput_mbps"],
                                     base["throughput_mbps"]),
            "latency_delta": _pct(m["latency_ms"], base["latency_ms"]),
            "loss_delta": m["loss_rate"] - base["loss_rate"],
            "raw": m,
        }
    return out


def _pct(value: float, base: float) -> float:
    if abs(base) < 1e-9:
        return 0.0
    return (value - base) / abs(base) * 100.0


# -- Fig. 6: action-space comparison ----------------------------------------

def run_fig6(scales=(1.0, 5.0, 10.0), epochs: int = 10, seed: int = 1) -> dict:
    """AIAD vs MIMD learning curves per scale factor (Fig. 6)."""
    out = {"aiad": {}, "mimd": {}}
    for scale in scales:
        _, aiad_curve = _train(STATE_SETS["libra"], AiadActions(scale),
                               RewardConfig(), epochs, seed)
        _, mimd_curve = _train(STATE_SETS["libra"], MimdAuroraActions(scale),
                               RewardConfig(), epochs, seed)
        out["aiad"][scale] = aiad_curve
        out["mimd"][scale] = mimd_curve
    return out


def curve_rise_time(curve: list[float], fraction: float = 0.9) -> int:
    """Episodes needed to reach ``fraction`` of the final plateau."""
    if not curve:
        return 0
    final = np.mean(curve[-max(len(curve) // 10, 1):])
    lo = curve[0]
    target = lo + fraction * (final - lo)
    for i, value in enumerate(curve):
        if value >= target:
            return i
    return len(curve)


# -- Tab. 3: loss rate in the reward ----------------------------------------

def run_tab3(epochs: int = 12, seed: int = 1) -> dict:
    """Training with vs without the loss term (Tab. 3)."""
    out = {}
    for label, include_loss in (("with loss rate", True),
                                ("w/o loss rate", False)):
        reward = RewardConfig(include_loss=include_loss)
        policy, _ = _train(STATE_SETS["libra"], MimdOrcaActions(1.0),
                           reward, epochs, seed)
        out[label] = _evaluate(policy, STATE_SETS["libra"],
                               MimdOrcaActions(1.0), seed=seed)
    return out


# -- Tab. 4: r vs delta-r ----------------------------------------------------

def run_tab4(epochs: int = 12, seed: int = 1,
             fairness_duration: float = 16.0) -> dict:
    """Absolute vs difference reward, including 2-flow fairness (Tab. 4)."""
    out = {}
    for label, use_delta in (("r", False), ("delta-r", True)):
        reward = RewardConfig(use_delta=use_delta)
        policy, _ = _train(STATE_SETS["libra"], MimdOrcaActions(1.0),
                           reward, epochs, seed)
        metrics = _evaluate(policy, STATE_SETS["libra"], MimdOrcaActions(1.0),
                            seed=seed)
        metrics["fairness"] = _two_flow_fairness(policy, seed,
                                                 fairness_duration)
        out[label] = metrics
    return out


def _two_flow_fairness(policy, seed: int, duration: float) -> float:
    """Jain's index of two flows driven by the same trained policy."""
    scenario = rl_default_scenario()
    net = scenario.build(seed=seed)
    for i in range(2):
        controller = Aurora(policy, action_space=MimdOrcaActions(1.0),
                            feature_set=STATE_SETS["libra"],
                            seed=seed + i * 31)
        net.add_flow(controller)
    result = net.run(duration)
    return jain_index([f.throughput_mbps for f in result.flows])


def main() -> None:
    fig5 = run_fig5()
    rows = [[name, m["final_reward"]] for name, m in fig5.items()]
    print(format_table(["state space", "final reward"], rows,
                       title="Fig.5 State-space comparison"))
    print()
    tab3 = run_tab3()
    rows = [[label, m["throughput_mbps"], m["latency_ms"], m["loss_rate"]]
            for label, m in tab3.items()]
    print(format_table(["setting", "thr_mbps", "latency_ms", "loss"], rows,
                       title="Tab.3 Loss rate in the reward"))
    print()
    tab4 = run_tab4()
    rows = [[label, m["throughput_mbps"], m["latency_ms"], m["loss_rate"],
             m["fairness"]] for label, m in tab4.items()]
    print(format_table(["setting", "thr_mbps", "latency_ms", "loss", "jain"],
                       rows, title="Tab.4 r vs delta-r"))


if __name__ == "__main__":
    main()
