"""Safety assurance: Tab. 6 (Sec. 5.3, Remark 7).

Orca's stochastic per-MI DRL decisions make its link utilization vary
widely between repeated runs; Libra filters candidate rates through the
evaluation stage and stays within a few percent.  The table reports the
mean, range (max-min) and standard deviation of link utilization over
repeated trials on two wired and two LTE networks.
"""

from __future__ import annotations

from ..metrics.stats import summary
from ..scenarios.presets import LTE, WIRED
from .harness import run_single

SAFETY_CCAS = ("orca", "c-libra", "b-libra")
SAFETY_NETWORKS = {
    "Wired#1 (24Mbps)": WIRED["wired-24"],
    "Wired#2 (48Mbps)": WIRED["wired-48"],
    "LTE#1 (Stationary)": LTE["lte-stationary"],
    "LTE#2 (Moving)": LTE["lte-moving"],
}


def run_tab6(ccas=SAFETY_CCAS, networks=None, trials: int = 8,
             duration: float = 12.0) -> dict:
    """Utilization statistics over repeated trials (paper: 20 trials)."""
    networks = networks or SAFETY_NETWORKS
    out: dict[str, dict[str, dict[str, float]]] = {}
    for net_name, scenario in networks.items():
        per_cca = {}
        for cca in ccas:
            utils = [
                run_single(cca, scenario, seed=seed, duration=duration).utilization
                for seed in range(1, trials + 1)
            ]
            per_cca[cca] = summary(utils)
        out[net_name] = per_cca
    return out


def main() -> None:
    data = run_tab6()
    for net_name, per_cca in data.items():
        print(net_name)
        for cca, stats in per_cca.items():
            print(f"  {cca:10s} mean={stats['mean']:.3f} "
                  f"range={stats['range']:.3f} std={stats['std']:.3f}")


if __name__ == "__main__":
    main()
