"""Design-choice ablations beyond the paper's printed figures.

DESIGN.md calls out three design decisions worth ablating:

- **Evaluation order** (Sec. 4.1 / Fig. 4): "lower rate first" minimizes
  self-inflicted side effects.  We flip it and measure the damage.
- **AQM vs Libra** (Sec. 2): CUBIC needs CoDel in the network to get low
  delay; Libra achieves it end-to-end without touching the devices.
- **Other classic CCAs** (Sec. 7): the CUBIC/BBR parameter guidance is
  claimed to extend to Westwood and Illinois.
"""

from __future__ import annotations

from ..core.config import LibraConfig
from ..core.factory import make_libra
from ..registry import make_controller
from ..scenarios.presets import LTE, WIRED, Scenario
from .harness import format_table, mean_metrics, run_seeds


def run_eval_order(seeds=(1, 2), duration: float = 16.0) -> dict:
    """Lower-rate-first vs higher-rate-first evaluation (Fig. 4's claim)."""
    out = {}
    for order in ("lower-first", "higher-first"):
        utils, delays, losses = [], [], []
        for scenario in (WIRED["wired-24"], LTE["lte-walking"]):
            runs = run_seeds("c-libra", scenario, seeds, duration=duration,
                             config=LibraConfig(eval_order=order))
            m = mean_metrics(runs)
            utils.append(m["utilization"])
            delays.append(m["avg_rtt_ms"])
            losses.append(m["loss_rate"])
        out[order] = {
            "utilization": sum(utils) / len(utils),
            "avg_rtt_ms": sum(delays) / len(delays),
            "loss_rate": sum(losses) / len(losses),
        }
    return out


def run_aqm_comparison(seeds=(1,), duration: float = 16.0) -> dict:
    """CUBIC behind CoDel vs Libra end-to-end on a deep buffer (Sec. 2)."""
    base = WIRED["wired-24"].with_(buffer_bytes=600_000)
    out = {}
    for label, cca, aqm in (("cubic+droptail", "cubic", "droptail"),
                            ("cubic+codel", "cubic", "codel"),
                            ("c-libra+droptail", "c-libra", "droptail")):
        utils, delays = [], []
        for seed in seeds:
            net = base.build(seed=seed)
            if aqm == "codel":
                # rebuild with the AQM queue
                from ..simnet.network import Dumbbell
                net = Dumbbell(base.trace(seed), buffer_bytes=base.buffer_bytes,
                               rtt=base.rtt, seed=seed, aqm="codel")
            net.add_flow(make_controller(cca, seed=seed))
            result = net.run(duration)
            utils.append(result.utilization)
            delays.append(result.flows[0].avg_rtt_ms)
        out[label] = {"utilization": sum(utils) / len(utils),
                      "avg_rtt_ms": sum(delays) / len(delays)}
    return out


def run_other_classics(classics=("cubic", "bbr", "westwood", "illinois"),
                       seeds=(1,), duration: float = 16.0) -> dict:
    """Libra over alternative classic CCAs (Sec. 7)."""
    out = {}
    for classic in classics:
        utils, delays = [], []
        for scenario in (WIRED["wired-24"], LTE["lte-walking"]):
            for seed in seeds:
                net = scenario.build(seed=seed)
                net.add_flow(make_libra(classic, seed=seed))
                result = net.run(duration)
                utils.append(result.utilization)
                delays.append(result.flows[0].avg_rtt_ms)
        out[classic] = {"utilization": sum(utils) / len(utils),
                        "avg_rtt_ms": sum(delays) / len(delays)}
    return out


def main() -> None:
    order = run_eval_order()
    rows = [[label, m["utilization"], m["avg_rtt_ms"], m["loss_rate"]]
            for label, m in order.items()]
    print(format_table(["eval order", "util", "delay_ms", "loss"], rows,
                       title="Ablation: evaluation order (Sec. 4.1)"))
    print()
    aqm = run_aqm_comparison()
    rows = [[label, m["utilization"], m["avg_rtt_ms"]]
            for label, m in aqm.items()]
    print(format_table(["setup", "util", "delay_ms"], rows,
                       title="Ablation: AQM vs end-to-end Libra (Sec. 2)"))
    print()
    classics = run_other_classics()
    rows = [[name, m["utilization"], m["avg_rtt_ms"]]
            for name, m in classics.items()]
    print(format_table(["classic CCA", "util", "delay_ms"], rows,
                       title="Ablation: Libra over other classic CCAs (Sec. 7)"))


if __name__ == "__main__":
    main()
