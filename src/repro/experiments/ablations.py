"""Design-choice ablations beyond the paper's printed figures.

DESIGN.md calls out three design decisions worth ablating:

- **Evaluation order** (Sec. 4.1 / Fig. 4): "lower rate first" minimizes
  self-inflicted side effects.  We flip it and measure the damage.
- **AQM vs Libra** (Sec. 2): CUBIC needs CoDel in the network to get low
  delay; Libra achieves it end-to-end without touching the devices.
- **Other classic CCAs** (Sec. 7): the CUBIC/BBR parameter guidance is
  claimed to extend to Westwood and Illinois.
"""

from __future__ import annotations

from ..core.config import LibraConfig
from ..parallel import single_flow_job
from ..scenarios.presets import LTE, WIRED
from .harness import format_table, mean_metrics, run_grid


def run_eval_order(seeds=(1, 2), duration: float = 16.0) -> dict:
    """Lower-rate-first vs higher-rate-first evaluation (Fig. 4's claim)."""
    orders = ("lower-first", "higher-first")
    scenarios = (WIRED["wired-24"], LTE["lte-walking"])
    points = [(order, scenario) for order in orders for scenario in scenarios]
    jobs = [single_flow_job("c-libra", scenario, seed=s, duration=duration,
                            config=LibraConfig(eval_order=order))
            for order, scenario in points for s in seeds]
    summaries = iter(run_grid(jobs, label="eval-order"))
    metrics = {point: mean_metrics([next(summaries) for _ in seeds])
               for point in points}
    out = {}
    for order in orders:
        per_scenario = [metrics[(order, scenario)] for scenario in scenarios]
        out[order] = {
            "utilization": sum(m["utilization"] for m in per_scenario)
            / len(per_scenario),
            "avg_rtt_ms": sum(m["avg_rtt_ms"] for m in per_scenario)
            / len(per_scenario),
            "loss_rate": sum(m["loss_rate"] for m in per_scenario)
            / len(per_scenario),
        }
    return out


def run_aqm_comparison(seeds=(1,), duration: float = 16.0) -> dict:
    """CUBIC behind CoDel vs Libra end-to-end on a deep buffer (Sec. 2)."""
    base = WIRED["wired-24"].with_(buffer_bytes=600_000)
    setups = (("cubic+droptail", "cubic", "droptail"),
              ("cubic+codel", "cubic", "codel"),
              ("c-libra+droptail", "c-libra", "droptail"))
    jobs = [single_flow_job(cca, base.with_(aqm=aqm), seed=seed,
                            duration=duration)
            for _label, cca, aqm in setups for seed in seeds]
    summaries = iter(run_grid(jobs, label="aqm"))
    out = {}
    for label, _cca, _aqm in setups:
        runs = [next(summaries) for _ in seeds]
        out[label] = {
            "utilization": sum(r.utilization for r in runs) / len(runs),
            "avg_rtt_ms": sum(r.avg_rtt_ms for r in runs) / len(runs),
        }
    return out


def run_other_classics(classics=("cubic", "bbr", "westwood", "illinois"),
                       seeds=(1,), duration: float = 16.0) -> dict:
    """Libra over alternative classic CCAs (Sec. 7)."""
    scenarios = (WIRED["wired-24"], LTE["lte-walking"])
    jobs = [single_flow_job(f"libra:{classic}", scenario, seed=seed,
                            duration=duration)
            for classic in classics for scenario in scenarios for seed in seeds]
    summaries = iter(run_grid(jobs, label="classics"))
    out = {}
    for classic in classics:
        runs = [next(summaries) for _ in scenarios for _ in seeds]
        out[classic] = {
            "utilization": sum(r.utilization for r in runs) / len(runs),
            "avg_rtt_ms": sum(r.avg_rtt_ms for r in runs) / len(runs),
        }
    return out


def main() -> None:
    order = run_eval_order()
    rows = [[label, m["utilization"], m["avg_rtt_ms"], m["loss_rate"]]
            for label, m in order.items()]
    print(format_table(["eval order", "util", "delay_ms", "loss"], rows,
                       title="Ablation: evaluation order (Sec. 4.1)"))
    print()
    aqm = run_aqm_comparison()
    rows = [[label, m["utilization"], m["avg_rtt_ms"]]
            for label, m in aqm.items()]
    print(format_table(["setup", "util", "delay_ms"], rows,
                       title="Ablation: AQM vs end-to-end Libra (Sec. 2)"))
    print()
    classics = run_other_classics()
    rows = [[name, m["utilization"], m["avg_rtt_ms"]]
            for name, m in classics.items()]
    print(format_table(["classic CCA", "util", "delay_ms"], rows,
                       title="Ablation: Libra over other classic CCAs (Sec. 7)"))


if __name__ == "__main__":
    main()
