"""Practicality motivation experiments: Fig. 2(a) and Fig. 2(b) (Sec. 2).

- Fig. 2(a): throughput over the step scenario (capacity changes every
  10 s, 80 ms RTT, 1 BDP buffer) for Proteus, a clean-slate learner,
  Libra and Orca — showing who converges to each new capacity level.
- Fig. 2(b): CDF of link utilization over repeated LTE runs — the
  safety-assurance motivation (Orca/Proteus highly variable).
"""

from __future__ import annotations

import numpy as np

from ..metrics.stats import cdf_points
from ..scenarios.presets import LTE, step_scenario
from .harness import run_single

FIG2A_CCAS = ("proteus", "cl-libra", "c-libra", "orca")
FIG2B_CCAS = ("proteus", "cubic", "bbr", "c-libra", "orca")


def run_fig2a(ccas=FIG2A_CCAS, seed: int = 1,
              duration: float | None = None) -> dict:
    """Throughput time series over the step scenario."""
    scenario = step_scenario()
    out = {"levels": scenario.trace(seed), "series": {}}
    for cca in ccas:
        summary = run_single(cca, scenario, seed=seed, duration=duration)
        out["series"][cca] = summary.result.flows[0].throughput_series()
    return out


def run_fig2b(ccas=FIG2B_CCAS, trials: int = 12,
              duration: float = 12.0) -> dict:
    """CDF of per-run link utilization over repeated cellular runs.

    The paper uses 100 repetitions on a TMobile LTE link; the default
    here is scaled down (pass ``trials=100`` for paper scale).
    """
    scenario = LTE["lte-walking"]
    out = {}
    for cca in ccas:
        utils = [run_single(cca, scenario, seed=s, duration=duration).utilization
                 for s in range(1, trials + 1)]
        out[cca] = {
            "values": utils,
            "cdf": cdf_points(utils),
            "mean": float(np.mean(utils)),
            "std": float(np.std(utils)),
        }
    return out


def step_tracking_error(series: tuple, trace, duration: float) -> float:
    """Mean |throughput - capacity| / capacity over the run (lower=better)."""
    times, rates = series
    errors = []
    for t, r in zip(times, rates):
        if t > duration:
            break
        cap = trace.rate_at(t) / 1e6
        if cap > 0:
            errors.append(abs(r - cap) / cap)
    return float(np.mean(errors)) if errors else float("nan")


def main() -> None:
    data = run_fig2a()
    trace = data["levels"]
    print("Fig.2(a) step-scenario tracking error (mean |thr-cap|/cap):")
    for cca, series in data["series"].items():
        err = step_tracking_error(series, trace, 50.0)
        print(f"  {cca:10s} {err:.3f}")
    print()
    cdf = run_fig2b()
    print("Fig.2(b) utilization across repeated LTE runs (mean / std):")
    for cca, stats in cdf.items():
        print(f"  {cca:10s} {stats['mean']:.3f} / {stats['std']:.3f}")


if __name__ == "__main__":
    main()
