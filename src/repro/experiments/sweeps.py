"""Buffer-size and stochastic-loss sweeps: Fig. 9 and Fig. 10 (Sec. 5.1).

- Fig. 9:  60 Mbps / 100 ms link, droptail buffer from 10 KB to 1 MB;
  Libra keeps high utilization at low delay while CUBIC's delay grows
  with the buffer (bufferbloat) — low buffer sensitivity.
- Fig. 10: 0-10 % stochastic loss; B-Libra stays high (BBR heritage) and
  C-Libra recovers from spurious reductions via x_rl / x_prev.
"""

from __future__ import annotations

from ..scenarios.presets import (BUFFER_SWEEP_BYTES, LOSS_SWEEP,
                                 buffer_scenario, loss_scenario)
from .harness import format_table, mean_metrics, run_seeds

SWEEP_CCAS = ("cubic", "bbr", "copa", "proteus", "orca", "c-libra", "b-libra")


def run_fig9(ccas=SWEEP_CCAS, buffers=BUFFER_SWEEP_BYTES, seeds=(1,),
             duration: float = 16.0) -> dict:
    """Utilization and delay per (CCA, buffer size)."""
    out: dict[str, dict[int, dict[str, float]]] = {cca: {} for cca in ccas}
    for buffer_bytes in buffers:
        scenario = buffer_scenario(buffer_bytes)
        for cca in ccas:
            runs = run_seeds(cca, scenario, seeds, duration=duration)
            out[cca][int(buffer_bytes)] = mean_metrics(runs)
    return out


def run_fig10(ccas=SWEEP_CCAS, losses=LOSS_SWEEP, seeds=(1,),
              duration: float = 16.0) -> dict:
    """Utilization per (CCA, stochastic loss rate)."""
    out: dict[str, dict[float, dict[str, float]]] = {cca: {} for cca in ccas}
    for loss in losses:
        scenario = loss_scenario(loss)
        for cca in ccas:
            runs = run_seeds(cca, scenario, seeds, duration=duration)
            out[cca][loss] = mean_metrics(runs)
    return out


def buffer_sensitivity(fig9_cca: dict) -> float:
    """Delay growth from the smallest to the largest buffer (ms)."""
    sizes = sorted(fig9_cca)
    return fig9_cca[sizes[-1]]["avg_rtt_ms"] - fig9_cca[sizes[0]]["avg_rtt_ms"]


def main() -> None:
    fig9 = run_fig9()
    rows = []
    for cca, per_buffer in fig9.items():
        for size, m in sorted(per_buffer.items()):
            rows.append([cca, size // 1000, m["utilization"], m["avg_rtt_ms"]])
    print(format_table(["cca", "buffer_kb", "util", "delay_ms"], rows,
                       title="Fig.9 Impact of buffer size"))
    print()
    fig10 = run_fig10()
    rows = []
    for cca, per_loss in fig10.items():
        for loss, m in sorted(per_loss.items()):
            rows.append([cca, loss, m["utilization"]])
    print(format_table(["cca", "loss", "util"], rows,
                       title="Fig.10 Impact of stochastic loss"))


if __name__ == "__main__":
    main()
