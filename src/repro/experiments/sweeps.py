"""Buffer-size and stochastic-loss sweeps: Fig. 9 and Fig. 10 (Sec. 5.1).

- Fig. 9:  60 Mbps / 100 ms link, droptail buffer from 10 KB to 1 MB;
  Libra keeps high utilization at low delay while CUBIC's delay grows
  with the buffer (bufferbloat) — low buffer sensitivity.
- Fig. 10: 0-10 % stochastic loss; B-Libra stays high (BBR heritage) and
  C-Libra recovers from spurious reductions via x_rl / x_prev.
"""

from __future__ import annotations

from ..parallel import single_flow_job
from ..scenarios.presets import (BUFFER_SWEEP_BYTES, LOSS_SWEEP,
                                 buffer_scenario, loss_scenario)
from .harness import format_table, mean_metrics, run_grid

SWEEP_CCAS = ("cubic", "bbr", "copa", "proteus", "orca", "c-libra", "b-libra")


def _sweep(ccas, scenarios, seeds, duration, label) -> dict:
    """One batched (sweep point × CCA × seed) grid, grouped per point."""
    points = [(point, cca) for point in scenarios for cca in ccas]
    jobs = [single_flow_job(cca, scenario, seed=s, duration=duration)
            for (_point, scenario), cca in points for s in seeds]
    summaries = iter(run_grid(jobs, label=label))
    out: dict[str, dict] = {cca: {} for cca in ccas}
    for (point, _scenario), cca in points:
        runs = [next(summaries) for _ in seeds]
        out[cca][point] = mean_metrics(runs)
    return out


def run_fig9(ccas=SWEEP_CCAS, buffers=BUFFER_SWEEP_BYTES, seeds=(1,),
             duration: float = 16.0) -> dict:
    """Utilization and delay per (CCA, buffer size)."""
    scenarios = [(int(b), buffer_scenario(b)) for b in buffers]
    return _sweep(ccas, scenarios, seeds, duration, label="fig9")


def run_fig10(ccas=SWEEP_CCAS, losses=LOSS_SWEEP, seeds=(1,),
              duration: float = 16.0) -> dict:
    """Utilization per (CCA, stochastic loss rate)."""
    scenarios = [(loss, loss_scenario(loss)) for loss in losses]
    return _sweep(ccas, scenarios, seeds, duration, label="fig10")


def buffer_sensitivity(fig9_cca: dict) -> float:
    """Delay growth from the smallest to the largest buffer (ms)."""
    sizes = sorted(fig9_cca)
    return fig9_cca[sizes[-1]]["avg_rtt_ms"] - fig9_cca[sizes[0]]["avg_rtt_ms"]


def main() -> None:
    fig9 = run_fig9()
    rows = []
    for cca, per_buffer in fig9.items():
        for size, m in sorted(per_buffer.items()):
            rows.append([cca, size // 1000, m["utilization"], m["avg_rtt_ms"]])
    print(format_table(["cca", "buffer_kb", "util", "delay_ms"], rows,
                       title="Fig.9 Impact of buffer size"))
    print()
    fig10 = run_fig10()
    rows = []
    for cca, per_loss in fig10.items():
        for loss, m in sorted(per_loss.items()):
            rows.append([cca, loss, m["utilization"]])
    print(format_table(["cca", "loss", "util"], rows,
                       title="Fig.10 Impact of stochastic loss"))


if __name__ == "__main__":
    main()
