"""Convergence experiments: Fig. 15 and Tab. 5 (Sec. 5.3).

Three flows of the same CCA start 5 s apart on a 48 Mbps / 100 ms /
1 BDP link.  Tab. 5's metrics for the third flow: convergence time
(stable within ±25 % for 5 s), throughput deviation after convergence,
and average post-convergence throughput.
"""

from __future__ import annotations

from ..metrics.convergence import post_convergence_stats
from ..registry import make_controller
from ..scenarios.presets import fairness_scenario
from .harness import format_table

CONVERGENCE_CCAS = ("bbr", "cubic", "modified-rl", "indigo", "proteus",
                    "orca", "c-libra", "b-libra")
FLOW_STAGGER = 5.0
FLOW_COUNT = 3


def run_fig15(ccas=CONVERGENCE_CCAS, seed: int = 1,
              duration: float = 40.0) -> dict:
    """Per-flow throughput series for each CCA (Fig. 15's panels)."""
    scenario = fairness_scenario()
    out = {}
    for cca in ccas:
        net = scenario.build(seed=seed)
        for i in range(FLOW_COUNT):
            net.add_flow(make_controller(cca, seed=seed + i * 37),
                         start=i * FLOW_STAGGER)
        result = net.run(duration)
        out[cca] = {
            "series": [f.throughput_series() for f in result.flows],
            "throughputs": [f.throughput_mbps for f in result.flows],
            "utilization": result.utilization,
        }
    return out


def run_tab5(fig15: dict | None = None, seed: int = 1,
             duration: float = 40.0) -> dict:
    """Tab. 5: quantitative convergence of the third flow."""
    data = fig15 or run_fig15(seed=seed, duration=duration)
    entry = (FLOW_COUNT - 1) * FLOW_STAGGER
    out = {}
    for cca, runs in data.items():
        times, rates = runs["series"][FLOW_COUNT - 1]
        stats = post_convergence_stats(times, rates, entry)
        out[cca] = stats
    return out


def main() -> None:
    fig15 = run_fig15()
    tab5 = run_tab5(fig15)
    rows = []
    for cca, stats in tab5.items():
        conv = stats["convergence_time"]
        rows.append([
            cca,
            f"{conv:.1f}s" if conv is not None else "-",
            f"{stats['stability']:.2f}Mbps" if stats["stability"] is not None else "-",
            f"{stats['avg_throughput']:.1f}Mbps" if stats["avg_throughput"] is not None else "-",
        ])
    print(format_table(["cca", "conv_time", "thr_deviation", "avg_thr"],
                       rows, title="Tab.5 Convergence of the 3rd flow"))


if __name__ == "__main__":
    main()
