"""Soak experiment: the netio chaos suite as a reportable artifact.

Runs every scenario in :data:`repro.netio.chaos.CHAOS_SCENARIOS` against
real loopback sockets and prints one row per scenario — the robustness
analogue of the ``stress`` experiment's fault table.  Pass criteria (the
chaos checks, verbatim):

- after every scenario the server is back within budget: live sessions
  and buffered reorder-buffer bytes at zero, counters accounting for
  every aborted session;
- a graceful drain completes in-flight transfers without force-resets;
- a rejected, expired, or orphaned client aborts with a structured
  ``TransferAbort`` reason in seconds, never by grinding out its 120 s
  wall-clock timeout.

Environment knobs (the CI ``chaos-smoke`` job uses both):

- ``REPRO_SOAK_SEED`` — scenario seed (default 1).
- ``REPRO_SOAK_OUT``  — write the combined chaos telemetry (session
  lifecycle, RST, drain, sock-error events) to this JSONL file.

Exits nonzero when any scenario fails, so the experiment is CI-gateable.
"""

from __future__ import annotations

import os
import sys

from ..netio.chaos import run_chaos
from ..telemetry import Recorder, write_jsonl
from .harness import format_table


def main() -> None:
    seed = int(os.environ.get("REPRO_SOAK_SEED", "1"))
    out = os.environ.get("REPRO_SOAK_OUT")
    recorder = Recorder() if out else None
    reports = run_chaos(seed=seed, recorder=recorder)

    rows = []
    for report in reports:
        failed = sum(not check.passed for check in report.checks)
        rows.append([report.scenario,
                     "PASS" if report.passed else "FAIL",
                     f"{len(report.checks) - failed}/{len(report.checks)}",
                     f"{report.duration:.2f}",
                     report.error or "-"])
    print(format_table(["scenario", "status", "checks", "secs", "error"],
                       rows, title=f"Soak: netio chaos suite (seed {seed})"))
    for report in reports:
        for check in report.checks:
            if not check.passed:
                print(f"  {report.scenario}: {check}")
        if report.traceback:
            print(report.traceback, file=sys.stderr)

    if out and recorder is not None:
        telemetry = recorder.finish(meta={"suite": "chaos", "seed": seed})
        records = write_jsonl(telemetry, out)
        print(f"wrote {records} telemetry records to {out}")

    if not all(report.passed for report in reports):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
