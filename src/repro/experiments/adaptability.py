"""Adaptability experiments: Fig. 1, Fig. 7, Fig. 8 (Sec. 5.1).

- Fig. 1:  link utilization and average delay per scenario (wired 24/48/96
  + LTE stationary/walking/driving) for CUBIC, BBR, Orca, Proteus, Libra.
- Fig. 7:  normalized average throughput vs average delay, aggregated over
  four wired and four cellular traces, for the full CCA roster.
- Fig. 8:  throughput time series following a varying LTE link.
"""

from __future__ import annotations

import numpy as np

from ..parallel import single_flow_job
from ..scenarios.presets import FIG1_SCENARIOS, FIG7_CELLULAR, FIG7_WIRED, LTE
from .harness import format_table, mean_metrics, run_grid

FIG1_CCAS = ("cubic", "bbr", "orca", "proteus", "c-libra")

FIG7_CCAS = ("cubic", "bbr", "copa", "sprout", "remy", "indigo", "aurora",
             "vivace", "proteus", "orca", "modified-rl", "cl-libra",
             "c-libra", "b-libra")


def run_fig1(ccas=FIG1_CCAS, seeds=(1, 2), duration: float = 16.0) -> dict:
    """Per-scenario utilization and delay (Fig. 1's two bar charts)."""
    points = [(scenario, cca) for scenario in FIG1_SCENARIOS for cca in ccas]
    jobs = [single_flow_job(cca, scenario, seed=s, duration=duration)
            for scenario, cca in points for s in seeds]
    summaries = iter(run_grid(jobs, label="fig1"))
    out: dict[str, dict[str, dict[str, float]]] = {}
    for scenario, cca in points:
        runs = [next(summaries) for _ in seeds]
        out.setdefault(scenario.name, {})[cca] = mean_metrics(runs)
    return out


def run_fig7(ccas=FIG7_CCAS, seeds=(1,), duration: float = 16.0) -> dict:
    """Normalized throughput / delay scatter over wired and cellular."""
    families = (("wired", FIG7_WIRED), ("cellular", FIG7_CELLULAR))
    points = [(family, cca, scenario) for family, scenarios in families
              for cca in ccas for scenario in scenarios]
    jobs = [single_flow_job(cca, scenario, seed=s, duration=duration)
            for _family, cca, scenario in points for s in seeds]
    summaries = iter(run_grid(jobs, label="fig7"))
    metrics = {point: mean_metrics([next(summaries) for _ in seeds])
               for point in points}
    out = {}
    for family, scenarios in families:
        per_cca = {}
        for cca in ccas:
            family_metrics = [metrics[(family, cca, scenario)]
                              for scenario in scenarios]
            per_cca[cca] = {
                "normalized_throughput": float(np.mean(
                    [m["utilization"] for m in family_metrics])),
                "avg_delay_ms": float(np.mean(
                    [m["avg_rtt_ms"] for m in family_metrics])),
            }
        out[family] = per_cca
    return out


def run_fig8(ccas=("c-libra", "b-libra", "proteus", "cubic", "bbr", "orca"),
             duration: float = 24.0, seed: int = 3) -> dict:
    """Throughput time series on the driving LTE trace (user movement)."""
    scenario = LTE["lte-driving"]
    jobs = [single_flow_job(cca, scenario, seed=seed, duration=duration)
            for cca in ccas]
    out = {"capacity": None, "series": {}}
    for cca, summary in zip(ccas, run_grid(jobs, label="fig8")):
        times, rates = summary.result.flows[0].throughput_series()
        out["series"][cca] = (times, rates)
    trace = scenario.trace(seed)
    grid = np.arange(0.0, duration, 0.25)
    out["capacity"] = (grid.tolist(),
                       [trace.rate_at(t) / 1e6 for t in grid])
    return out


def format_fig1(data: dict) -> str:
    ccas = sorted(next(iter(data.values())).keys())
    rows = []
    for scenario, per_cca in data.items():
        for cca in ccas:
            m = per_cca[cca]
            rows.append([scenario, cca, m["utilization"], m["avg_rtt_ms"]])
    return format_table(["scenario", "cca", "link_util", "avg_delay_ms"], rows,
                        title="Fig.1 Adaptability under wired/cellular networks")


def format_fig7(data: dict) -> str:
    rows = []
    for family, per_cca in data.items():
        for cca, m in per_cca.items():
            rows.append([family, cca, m["normalized_throughput"],
                         m["avg_delay_ms"]])
    return format_table(["traces", "cca", "norm_throughput", "avg_delay_ms"],
                        rows, title="Fig.7 Throughput/delay over wired and "
                                    "cellular traces")


def main() -> None:
    print(format_fig1(run_fig1()))
    print()
    print(format_fig7(run_fig7()))


if __name__ == "__main__":
    main()
