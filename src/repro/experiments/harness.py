"""Generic experiment runner utilities shared by all figure/table modules.

Every experiment module exposes ``run_*`` functions returning plain
dicts/lists (so benches and tests can assert on them) and a ``main()``
that prints the paper-shaped table.  This module provides the common
single-flow runner, grid execution on top of :mod:`repro.parallel`
(worker pool + content-addressed result cache), multi-seed aggregation,
and text-table formatting.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from .. import parallel
from ..parallel import (FailedRun, Job, JobResult, ProgressReporter, execute,
                        single_flow_job)
from ..scenarios.presets import Scenario
from ..simnet.network import RunResult

log = logging.getLogger(__name__)


@dataclass
class FlowSummary:
    """Headline metrics of one single-flow run."""

    cca: str
    scenario: str
    utilization: float
    throughput_mbps: float
    avg_rtt_ms: float
    p95_rtt_ms: float
    loss_rate: float
    result: RunResult

    #: mirrored by FailedRun (True there) so mixed lists branch uniformly
    failed = False

    @property
    def queue_delay_ms(self) -> float:
        flow = self.result.flows[0]
        base = flow.min_rtt_ms if flow.rtt_count else 0.0
        return max(self.avg_rtt_ms - base, 0.0)

    @property
    def telemetry(self):
        """The run's :class:`~repro.telemetry.FlowTelemetry` (or None)."""
        return self.result.telemetry


def summarize(cca: str, scenario_name: str, result: RunResult,
              flow_index: int = 0) -> FlowSummary:
    """Build the headline summary of one flow from a finished run."""
    flow = result.flows[flow_index]
    return FlowSummary(cca=cca, scenario=scenario_name,
                       utilization=result.utilization,
                       throughput_mbps=flow.throughput_mbps,
                       avg_rtt_ms=flow.avg_rtt_ms,
                       p95_rtt_ms=flow.p95_rtt_ms(),
                       loss_rate=flow.loss_rate,
                       result=result)


def run_single(cca: str, scenario: Scenario, seed: int = 0,
               duration: float | None = None, strict: bool = True,
               telemetry: bool = False, sanitize: bool = False,
               **cca_kwargs) -> FlowSummary | FailedRun:
    """Run one flow of ``cca`` through ``scenario`` and summarize it.

    With ``strict=False`` a controller/simulator exception is converted
    into a structured :class:`~repro.parallel.FailedRun` instead of
    propagating, so a sweep loop can note the failure and keep going.
    With ``telemetry=True`` the summary's :attr:`FlowSummary.telemetry`
    carries the run's structured trace.  With ``sanitize=True`` the run
    executes under the :mod:`repro.sanitize` invariant layer — any
    conservation or signal-sanity breach raises (or, under
    ``strict=False``, becomes the run's failure).
    """
    job = single_flow_job(cca, scenario, seed=seed, duration=duration,
                          telemetry=telemetry, sanitize=sanitize,
                          **cca_kwargs)
    jr = execute(job, capture_errors=not strict)
    if jr.failure is not None:
        return jr.failure
    return summarize(cca, scenario.name, jr.result)


def run_job_grid(jobs: list[Job], workers: int | None = None,
                 cache=None, timeout: float | None = None,
                 retries: int | None = None, progress=None,
                 label: str = "grid",
                 on_error: str | None = None) -> list[JobResult]:
    """Execute a batch of jobs, in input order, through the sweep executor.

    Arguments left as ``None`` fall back to the process-wide
    :class:`repro.parallel.ExecutionConfig` (which the CLI's ``--jobs`` /
    ``--no-cache`` flags populate); library callers that pass nothing get
    the conservative serial, uncached defaults.  ``cache`` may be a
    :class:`~repro.parallel.ResultCache`, ``True``/``False``, or ``None``.
    ``progress`` may be a :class:`~repro.parallel.ProgressReporter`,
    ``True``/``False``, or ``None``.
    """
    config = parallel.get_execution_config()
    if workers is None:
        workers = config.jobs
    if cache is None:
        cache = config.cache
    if isinstance(cache, bool):
        cache = parallel.ResultCache(root=config.cache_dir) if cache else None
    if timeout is None:
        timeout = config.timeout
    if retries is None:
        retries = config.retries
    if progress is None:
        progress = config.progress
    if isinstance(progress, bool):
        progress = ProgressReporter(len(jobs), label=label) if progress \
            else None
    if on_error is None:
        on_error = config.on_error
    return parallel.run_jobs(jobs, workers=workers, cache=cache,
                             timeout=timeout, retries=retries,
                             progress=progress, on_error=on_error)


def run_grid(jobs: list[Job], **execution) -> list[FlowSummary | FailedRun]:
    """``run_job_grid`` for single-flow jobs, summarized per flow 0.

    Under ``on_error="collect"`` a failed job yields its
    :class:`~repro.parallel.FailedRun` in place of a summary.
    """
    results = run_job_grid(jobs, **execution)
    out: list[FlowSummary | FailedRun] = []
    for job, jr in zip(jobs, results):
        if jr.failure is not None:
            out.append(jr.failure)
        else:
            out.append(summarize(job.flows[0].cca, job.scenario.name,
                                 jr.result))
    return out


def run_seeds(cca: str, scenario: Scenario, seeds, duration: float | None = None,
              **cca_kwargs) -> list[FlowSummary]:
    """The paper averages 5 runs per point; this runs one per seed.

    Under ``on_error="collect"`` the grid may yield
    :class:`~repro.parallel.FailedRun` entries; those are filtered out
    here (with a logged count) so callers always get clean summaries —
    aggregate over the survivors via :func:`mean_metrics`.
    """
    results = run_grid([single_flow_job(cca, scenario, seed=s,
                                        duration=duration, **cca_kwargs)
                        for s in seeds])
    summaries = [r for r in results if not r.failed]
    failures = [r for r in results if r.failed]
    if failures:
        log.warning("run_seeds: %d/%d runs failed for %s @ %s (first: %s)",
                    len(failures), len(results), cca, scenario.name,
                    failures[0])
    return summaries


def mean_metrics(summaries: list[FlowSummary]) -> dict[str, float]:
    """Average the headline metrics, skipping failed runs explicitly.

    A mixed list (``on_error="collect"`` grids interleave
    :class:`~repro.parallel.FailedRun` entries) is tolerated: failures
    are excluded from every mean and surfaced in the ``failures`` count
    rather than crashing with an ``AttributeError``.
    """
    ok = [s for s in summaries if not s.failed]
    failures = len(summaries) - len(ok)
    if not ok:
        raise ValueError(
            f"no successful runs to aggregate ({failures} failures)"
            if failures else "no runs to aggregate")
    return {
        "utilization": float(np.mean([s.utilization for s in ok])),
        "throughput_mbps": float(np.mean([s.throughput_mbps for s in ok])),
        "avg_rtt_ms": float(np.mean([s.avg_rtt_ms for s in ok])),
        "loss_rate": float(np.mean([s.loss_rate for s in ok])),
        "runs": len(ok),
        "failures": failures,
    }


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width text table, the harness's output format."""
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append([
            f"{cell:.3f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
              else len(headers[i]) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
