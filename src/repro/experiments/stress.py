"""Stress experiment: CCAs under injected network faults.

Sweeps a CCA roster across the canned fault profiles
(:data:`repro.simnet.faults.FAULT_PROFILES` plus a clean baseline) on
the 40 Mbps / 60 ms stress link and reports, per (profile, CCA):

- overall link utilization (against the capacity that actually existed —
  blackout windows are excluded from the denominator),
- goodput while any fault was active (``impairment_windows``),
- recovery time after each blackout: how long past capacity restoration
  until a 0.5 s sliding window of served bytes reaches 80 % of link
  capacity,
- failures, collected as structured ``FailedRun`` entries instead of
  aborting the sweep (``on_error="collect"``).

``main()`` ends with two self-tests: the deliberately-crashing
``crash-test`` controller must surface as a structured
:class:`~repro.parallel.FailedRun`, and the differential oracle must
report sanitize-off vs. sanitize-on metric equality on a faulted run —
both degradation paths stay exercised on every CI run.
"""

from __future__ import annotations

import numpy as np

from ..parallel import FailedRun, single_flow_job
from ..scenarios.presets import (STRESS_BW_MBPS, STRESS_DURATION,
                                 stress_scenario)
from ..simnet.faults import FAULT_PROFILES
from .harness import format_table, run_grid, run_single

STRESS_CCAS = ("cubic", "bbr", "c-libra", "b-libra")
STRESS_PROFILES = ("clean",) + tuple(sorted(FAULT_PROFILES))

#: sliding-window parameters for blackout recovery detection
RECOVERY_WINDOW = 0.5
RECOVERY_THRESHOLD = 0.8


def recovery_time(result, blackout, capacity_bps: float,
                  window: float = RECOVERY_WINDOW,
                  threshold: float = RECOVERY_THRESHOLD) -> float | None:
    """Seconds past ``blackout.end`` until throughput recovers.

    Recovery = the first ``t >= blackout.end`` where the served bytes in
    ``[t, t + window]`` reach ``threshold`` of the link capacity for that
    window.  Returns ``None`` if the run never recovers before the end.
    """
    need = threshold * capacity_bps * window / 8.0
    t = blackout.end
    step = window / 10.0
    while t + window <= result.duration + 1e-9:
        if result.served_bytes_between(t, t + window) >= need:
            return t - blackout.end
        t += step
    return None


def _impaired_goodput_mbps(result, schedule) -> float | None:
    """Mean goodput (Mbps) inside the schedule's impairment windows."""
    windows = schedule.impairment_windows(result.duration)
    total_time = sum(end - start for start, end in windows)
    if total_time <= 0:
        return None
    served = sum(result.served_bytes_between(start, end)
                 for start, end in windows)
    return served * 8.0 / total_time / 1e6


def run_stress(ccas=STRESS_CCAS, profiles=STRESS_PROFILES, seeds=(1, 2),
               duration: float = STRESS_DURATION,
               sanitize: bool = False) -> dict:
    """Sweep ``ccas`` × ``profiles`` × ``seeds``; aggregate per cell.

    Returns ``{profile: {cca: row}}`` where ``row`` has ``utilization``,
    ``impaired_goodput_mbps``, ``recovery_s`` (each ``None`` when not
    applicable), ``failures`` (list of :class:`FailedRun`), and ``runs``
    (count of successful runs).  With ``sanitize=True`` every run
    executes under the :mod:`repro.sanitize` invariant layer, so a fault
    profile that breaks packet conservation surfaces as a failure rather
    than a silently wrong row.
    """
    jobs, meta = [], []
    scenarios = {p: stress_scenario(p) for p in profiles}
    for profile in profiles:
        for cca in ccas:
            for seed in seeds:
                jobs.append(single_flow_job(cca, scenarios[profile],
                                            seed=seed, duration=duration,
                                            sanitize=sanitize))
                meta.append((profile, cca))
    summaries = run_grid(jobs, on_error="collect", label="stress")

    cells: dict[tuple[str, str], dict] = {
        (p, c): {"utils": [], "goodputs": [], "recoveries": [],
                 "failures": []}
        for p in profiles for c in ccas}
    for (profile, cca), summary in zip(meta, summaries):
        cell = cells[(profile, cca)]
        if summary.failed:
            cell["failures"].append(summary)
            continue
        result = summary.result
        cell["utils"].append(summary.utilization)
        schedule = scenarios[profile].faults
        if schedule is not None:
            goodput = _impaired_goodput_mbps(result, schedule)
            if goodput is not None:
                cell["goodputs"].append(goodput)
            for blackout in schedule.blackouts:
                rec = recovery_time(result, blackout,
                                    STRESS_BW_MBPS * 1e6)
                cell["recoveries"].append(
                    rec if rec is not None else float("inf"))

    out: dict[str, dict[str, dict]] = {}
    for profile in profiles:
        per_cca = {}
        for cca in ccas:
            cell = cells[(profile, cca)]
            per_cca[cca] = {
                "utilization": float(np.mean(cell["utils"]))
                if cell["utils"] else None,
                "impaired_goodput_mbps": float(np.mean(cell["goodputs"]))
                if cell["goodputs"] else None,
                "recovery_s": float(np.mean(cell["recoveries"]))
                if cell["recoveries"] else None,
                "failures": cell["failures"],
                "runs": len(cell["utils"]),
            }
        out[profile] = per_cca
    return out


def run_failure_selftest() -> FailedRun:
    """Prove the collection path works: run a controller that raises.

    Returns the captured :class:`FailedRun`; raises ``AssertionError``
    if the failure did not surface structurally.
    """
    summary = run_single("crash-test", stress_scenario("clean"), seed=1,
                         duration=2.0, strict=False, crash_after=5)
    assert isinstance(summary, FailedRun), \
        f"expected a FailedRun, got {type(summary).__name__}"
    assert "crash-test controller raised" in summary.error, summary.error
    return summary


def run_diff_selftest():
    """Differential oracle spot-check on the stress link.

    Runs one faulted stress job under sanitizers off vs. on and demands
    exact metric equality — the invariant layer must observe, never
    perturb.  Returns the :class:`~repro.sanitize.diff.DiffReport`;
    raises :class:`~repro.sanitize.diff.DifferentialMismatch` on drift.
    """
    from ..sanitize.diff import run_diff

    job = single_flow_job("c-libra", stress_scenario("burst-loss"),
                          seed=1, duration=4.0)
    return run_diff(job, mode="sanitize").raise_if_unequal()


def _fmt(value, suffix: str = "") -> str:
    if value is None:
        return "-"
    if value == float("inf"):
        return "never"
    return f"{value:.3f}{suffix}"


def main() -> None:
    data = run_stress()
    rows = []
    for profile, per_cca in data.items():
        for cca, row in per_cca.items():
            failures = len(row["failures"])
            rows.append([profile, cca, _fmt(row["utilization"]),
                         _fmt(row["impaired_goodput_mbps"]),
                         _fmt(row["recovery_s"]),
                         str(failures) if failures else "0"])
    print(format_table(
        ["profile", "cca", "util", "impaired Mbps", "recovery s", "failed"],
        rows, title="Stress: CCAs under injected faults "
                    f"({STRESS_BW_MBPS:.0f} Mbps / 60 ms)"))
    for profile, per_cca in data.items():
        for cca, row in per_cca.items():
            for failure in row["failures"]:
                print(f"  {failure}")
    failed = run_failure_selftest()
    print(f"failure-collection selftest: captured {failed}")
    diff = run_diff_selftest()
    print(f"diff-oracle selftest: sanitize-off vs sanitize-on EQUAL "
          f"({len(diff.fingerprint_a)} metrics)")


if __name__ == "__main__":
    main()
