"""Parameter sensitivity: Fig. 19 and Tab. 7 (Sec. 7, Appendix B).

- Fig. 19: C-Libra with stage duration configs [explore, EI, exploit] in
  RTTs from [1, 0.5, 1] up to [3, 1, 3], on wired and cellular traces.
  Longer stages cost utilization on highly varying cellular links;
  longer EIs waste time evaluating improper candidates.
- Tab. 7: the early-exit threshold th1 swept over 0.1x-0.4x.
"""

from __future__ import annotations

import numpy as np

from ..core.config import LibraConfig
from ..scenarios.presets import LTE, WIRED
from .harness import format_table, mean_metrics, run_seeds

#: Fig. 19's x axis: (explore RTTs, EI RTTs, exploit RTTs)
DURATION_CONFIGS = ((1, 0.5, 1), (1, 1, 1), (2, 0.5, 2), (2, 1, 2),
                    (3, 0.5, 3), (3, 1, 3))
TH1_SWEEP = (0.1, 0.2, 0.3, 0.4)

_FAMILIES = {
    "wired": (WIRED["wired-24"], WIRED["wired-48"]),
    "cellular": (LTE["lte-walking"], LTE["lte-driving"]),
}


def _run_config(config: LibraConfig, seeds, duration: float) -> dict:
    out = {}
    for family, scenarios in _FAMILIES.items():
        utils, delays = [], []
        for scenario in scenarios:
            runs = run_seeds("c-libra", scenario, seeds, duration=duration,
                             config=config)
            m = mean_metrics(runs)
            utils.append(m["utilization"])
            delays.append(m["avg_rtt_ms"])
        out[family] = {"utilization": float(np.mean(utils)),
                       "avg_delay_ms": float(np.mean(delays))}
    return out


def run_fig19(configs=DURATION_CONFIGS, seeds=(1,),
              duration: float = 16.0) -> dict:
    """Stage-duration sensitivity of C-Libra."""
    out = {}
    for explore, ei, exploit in configs:
        config = LibraConfig(explore_rtts=float(explore), ei_rtts=float(ei),
                             exploit_rtts=float(exploit))
        out[f"[{explore},{ei},{exploit}]"] = _run_config(config, seeds,
                                                         duration)
    return out


def run_tab7(thresholds=TH1_SWEEP, seeds=(1,), duration: float = 16.0) -> dict:
    """Early-exit-threshold sensitivity of C-Libra."""
    out = {}
    for th1 in thresholds:
        config = LibraConfig(th1_fraction=th1)
        out[f"{th1:.1f}x"] = _run_config(config, seeds, duration)
    return out


def main() -> None:
    fig19 = run_fig19()
    rows = []
    for label, families in fig19.items():
        for family, m in families.items():
            rows.append([label, family, m["utilization"], m["avg_delay_ms"]])
    print(format_table(["stages[RTT]", "traces", "util", "delay_ms"], rows,
                       title="Fig.19 Stage-duration sensitivity"))
    print()
    tab7 = run_tab7()
    rows = []
    for label, families in tab7.items():
        for family, m in families.items():
            rows.append([label, family, m["utilization"], m["avg_delay_ms"]])
    print(format_table(["th1", "traces", "util", "delay_ms"], rows,
                       title="Tab.7 Switching-threshold sensitivity"))


if __name__ == "__main__":
    main()
