"""Parameter sensitivity: Fig. 19 and Tab. 7 (Sec. 7, Appendix B).

- Fig. 19: C-Libra with stage duration configs [explore, EI, exploit] in
  RTTs from [1, 0.5, 1] up to [3, 1, 3], on wired and cellular traces.
  Longer stages cost utilization on highly varying cellular links;
  longer EIs waste time evaluating improper candidates.
- Tab. 7: the early-exit threshold th1 swept over 0.1x-0.4x.
"""

from __future__ import annotations

import numpy as np

from ..core.config import LibraConfig
from ..parallel import single_flow_job
from ..scenarios.presets import LTE, WIRED
from .harness import format_table, mean_metrics, run_grid

#: Fig. 19's x axis: (explore RTTs, EI RTTs, exploit RTTs)
DURATION_CONFIGS = ((1, 0.5, 1), (1, 1, 1), (2, 0.5, 2), (2, 1, 2),
                    (3, 0.5, 3), (3, 1, 3))
TH1_SWEEP = (0.1, 0.2, 0.3, 0.4)

_FAMILIES = {
    "wired": (WIRED["wired-24"], WIRED["wired-48"]),
    "cellular": (LTE["lte-walking"], LTE["lte-driving"]),
}


def _run_configs(configs: dict[str, LibraConfig], seeds, duration: float,
                 label: str) -> dict:
    """One batched (config × family scenario × seed) C-Libra grid."""
    points = [(name, family, scenario) for name in configs
              for family, scenarios in _FAMILIES.items()
              for scenario in scenarios]
    jobs = [single_flow_job("c-libra", scenario, seed=s, duration=duration,
                            config=configs[name])
            for name, _family, scenario in points for s in seeds]
    summaries = iter(run_grid(jobs, label=label))
    metrics = {point: mean_metrics([next(summaries) for _ in seeds])
               for point in points}
    out: dict[str, dict] = {}
    for name in configs:
        out[name] = {}
        for family, scenarios in _FAMILIES.items():
            family_metrics = [metrics[(name, family, scenario)]
                              for scenario in scenarios]
            out[name][family] = {
                "utilization": float(np.mean(
                    [m["utilization"] for m in family_metrics])),
                "avg_delay_ms": float(np.mean(
                    [m["avg_rtt_ms"] for m in family_metrics])),
            }
    return out


def run_fig19(configs=DURATION_CONFIGS, seeds=(1,),
              duration: float = 16.0) -> dict:
    """Stage-duration sensitivity of C-Libra."""
    grid = {
        f"[{explore},{ei},{exploit}]": LibraConfig(
            explore_rtts=float(explore), ei_rtts=float(ei),
            exploit_rtts=float(exploit))
        for explore, ei, exploit in configs
    }
    return _run_configs(grid, seeds, duration, label="fig19")


def run_tab7(thresholds=TH1_SWEEP, seeds=(1,), duration: float = 16.0) -> dict:
    """Early-exit-threshold sensitivity of C-Libra."""
    grid = {f"{th1:.1f}x": LibraConfig(th1_fraction=th1)
            for th1 in thresholds}
    return _run_configs(grid, seeds, duration, label="tab7")


def main() -> None:
    fig19 = run_fig19()
    rows = []
    for label, families in fig19.items():
        for family, m in families.items():
            rows.append([label, family, m["utilization"], m["avg_delay_ms"]])
    print(format_table(["stages[RTT]", "traces", "util", "delay_ms"], rows,
                       title="Fig.19 Stage-duration sensitivity"))
    print()
    tab7 = run_tab7()
    rows = []
    for label, families in tab7.items():
        for family, m in families.items():
            rows.append([label, family, m["utilization"], m["avg_delay_ms"]])
    print(format_table(["th1", "traces", "util", "delay_ms"], rows,
                       title="Tab.7 Switching-threshold sensitivity"))


if __name__ == "__main__":
    main()
