"""Experiment harness: one module per paper figure/table.

See DESIGN.md's per-experiment index for the mapping from paper artifact
to module and bench target.
"""

from . import (adaptability, convergence, deep_dive, fairness, flexibility,
               internet, overhead, practical_issues, rl_ablation, safety,
               sensitivity, sweeps)
from .harness import (FlowSummary, format_table, mean_metrics, run_grid,
                      run_job_grid, run_seeds, run_single, summarize)

__all__ = [
    "FlowSummary", "adaptability", "convergence", "deep_dive", "fairness",
    "flexibility", "format_table", "internet", "mean_metrics", "overhead",
    "practical_issues", "rl_ablation", "run_grid", "run_job_grid",
    "run_seeds", "run_single", "safety", "sensitivity", "summarize", "sweeps",
]
