"""Scale experiment: CCAs under datacenter-style flow churn.

Sweeps offered load × flow count × CCA over the named churn workloads
(:data:`repro.scale.churn.CHURN_PRESETS`) on the 96 Mbps / 40 ms scale
link and reports, per cell:

- tail flow-completion time (p50/p99) by size class (mouse/elephant),
- windowed Jain fairness over the flows active in each 1 s window
  (partial-lifetime flows weighted by their active fraction),
- aggregate utilization and peak concurrency,
- completion rate inside the horizon, with failures collected as
  structured :class:`~repro.parallel.FailedRun` entries.

The load axis stretches each preset's arrival window: ``load=0.5``
doubles the window (half the offered rate), ``load=1.0`` runs the
preset as published.  Every row is backed by a schema-validated
:func:`repro.scale.summary.build_summary` document — the same artifact
CI's scale-smoke job uploads.
"""

from __future__ import annotations

import numpy as np

from ..parallel import FailedRun
from ..scale import build_summary, churn_job, churn_preset, validate_summary
from ..scenarios.presets import scale_scenario
from .harness import format_table, run_job_grid

SCALE_CCAS = ("cubic", "bbr", "c-libra")
SCALE_WORKLOADS = ("churn-128", "churn-256", "churn-512")
#: multipliers on each preset's offered rate (via the arrival window)
SCALE_LOADS = (0.5, 1.0)


def load_spec(workload: str, load: float):
    """The churn spec for ``workload`` at a load multiplier.

    ``load`` scales the offered rate by shrinking/stretching the arrival
    window, leaving sizes (hence FCT size classes) untouched; the name
    records the multiplier so cells stay distinguishable downstream.
    """
    if load <= 0:
        raise ValueError("load multiplier must be positive")
    spec = churn_preset(workload)
    if load == 1.0:
        return spec
    return spec.with_(arrival_window=spec.arrival_window / load,
                      name=f"{spec.name}@x{load:g}")


def run_scale(ccas=SCALE_CCAS, workloads=SCALE_WORKLOADS, loads=SCALE_LOADS,
              seeds=(1,), duration: float | None = None,
              sanitize: bool = False) -> dict:
    """Sweep ``workloads`` × ``loads`` × ``ccas`` × ``seeds``.

    Returns ``{workload: {load: {cca: row}}}`` where ``row`` aggregates
    the per-run summary documents over seeds: ``completion_rate``,
    ``jain_mean``, ``utilization``, ``concurrency_peak``, per-class
    ``fct`` (p50/p99 means), plus ``failures`` and ``runs``.  With
    ``sanitize=True`` every run executes under the invariant layer —
    attach/detach conservation breaches fail the cell instead of
    skewing it.
    """
    scenario = scale_scenario()
    jobs, meta = [], []
    specs = {}
    for workload in workloads:
        for load in loads:
            specs[(workload, load)] = load_spec(workload, load)
            for cca in ccas:
                for seed in seeds:
                    jobs.append(churn_job(specs[(workload, load)], cca,
                                          scenario, seed=seed,
                                          duration=duration,
                                          sanitize=sanitize))
                    meta.append((workload, load, cca, seed))
    results = run_job_grid(jobs, on_error="collect", label="scale")

    cells: dict[tuple, dict] = {
        (w, lo, c): {"docs": [], "failures": []}
        for w in workloads for lo in loads for c in ccas}
    for (workload, load, cca, seed), jr in zip(meta, results):
        cell = cells[(workload, load, cca)]
        if jr.failure is not None:
            cell["failures"].append(jr.failure)
            continue
        doc = build_summary(jr.result, specs[(workload, load)], cca)
        doc["scenario"] = scenario.name
        doc["seed"] = seed
        cell["docs"].append(validate_summary(doc))

    def _mean(values):
        values = [v for v in values if v is not None]
        return float(np.mean(values)) if values else None

    out: dict = {}
    for workload in workloads:
        out[workload] = {}
        for load in loads:
            per_cca = {}
            for cca in ccas:
                cell = cells[(workload, load, cca)]
                docs = cell["docs"]
                fct: dict[str, dict] = {}
                for name in ("mouse", "medium", "elephant"):
                    klass = [d["fct"]["classes"].get(name) for d in docs]
                    klass = [k for k in klass if k]
                    if klass:
                        fct[name] = {
                            "p50": _mean([k.get("p50") for k in klass]),
                            "p99": _mean([k.get("p99") for k in klass]),
                            "completion_rate": _mean(
                                [k["completion_rate"] for k in klass]),
                        }
                per_cca[cca] = {
                    "offered_load": _mean([d["offered_load"] for d in docs]),
                    "flows": int(docs[0]["flows"]) if docs else 0,
                    "completion_rate": _mean([d["completion_rate"]
                                              for d in docs]),
                    "jain_mean": _mean([d["fairness"]["jain_mean"]
                                        for d in docs]),
                    "utilization": _mean([d["utilization"]["mean"]
                                          for d in docs]),
                    "concurrency_peak": _mean([d["concurrency"]["peak"]
                                               for d in docs]),
                    "fct": fct,
                    "failures": cell["failures"],
                    "runs": len(docs),
                }
            out[workload][load] = per_cca
    return out


def run_engine_selftest():
    """Differential oracle spot-check on a churn workload.

    Runs the smoke churn population once per engine and demands exact
    fingerprint equality (FIN stamps included) — attach/detach must not
    open daylight between the reference and batched cores.  Returns the
    :class:`~repro.sanitize.diff.DiffReport`; raises on drift.
    """
    from ..sanitize.diff import run_diff

    job = churn_job(churn_preset("churn-smoke"), "cubic", scale_scenario(),
                    seed=1)
    return run_diff(job, mode="engine").raise_if_unequal()


def _fmt(value, digits: int = 3) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


def main() -> None:
    data = run_scale()
    rows = []
    for workload, per_load in data.items():
        for load, per_cca in per_load.items():
            for cca, row in per_cca.items():
                mouse = row["fct"].get("mouse", {})
                elephant = row["fct"].get("elephant", {})
                rows.append([
                    workload, f"x{load:g}", cca, row["flows"],
                    _fmt(row["completion_rate"]),
                    _fmt(row["concurrency_peak"], 1),
                    _fmt(row["utilization"]),
                    _fmt(row["jain_mean"]),
                    _fmt(mouse.get("p99")),
                    _fmt(elephant.get("p99"), 1),
                    str(len(row["failures"])),
                ])
    print(format_table(
        ["workload", "load", "cca", "flows", "done", "conc", "util",
         "jain", "mouse p99", "eleph p99", "failed"],
        rows, title="Scale: CCAs under flow churn (96 Mbps / 40 ms)"))
    for per_load in data.values():
        for per_cca in per_load.values():
            for row in per_cca.values():
                for failure in row["failures"]:
                    print(f"  {failure}")
    diff = run_engine_selftest()
    print(f"engine-diff selftest: reference vs batched EQUAL on churn "
          f"({len(diff.fingerprint_a)} metrics)")


if __name__ == "__main__":
    main()
