"""Overhead experiments: Fig. 2(c) and Fig. 12 (Sec. 5.3).

CPU utilization is the operation-metered proxy of
:mod:`repro.overhead.costmodel` (see DESIGN.md for the substitution
rationale); memory is the static footprint model.  Fig. 12 sweeps the
link capacity from 10 to 200 Mbps and reports Libra's overhead next to
its underlying classic CCAs and the learning-based baselines.
"""

from __future__ import annotations

import numpy as np

from ..overhead.costmodel import cpu_utilization, memory_units
from ..registry import make_controller
from ..scenarios.presets import LTE, ConstTraceFactory, Scenario
from ..units import KB, mbps, ms
from .harness import format_table

FIG2C_CCAS = ("cubic", "bbr", "c-libra", "orca", "indigo", "copa", "proteus")
FIG12_CCAS = ("cubic", "bbr", "c-libra", "b-libra", "orca", "indigo",
              "copa", "proteus")
FIG12_CAPACITIES_MBPS = (10, 20, 30, 50, 100, 200)


def _measure(cca: str, scenario: Scenario, seed: int, duration: float) -> dict:
    net = scenario.build(seed=seed)
    controller = make_controller(cca, seed=seed)
    net.add_flow(controller)
    net.run(duration)
    return {
        "cpu": cpu_utilization(controller, duration),
        "memory": memory_units(controller),
    }


def run_fig2c(ccas=FIG2C_CCAS, seed: int = 1, duration: float = 12.0) -> dict:
    """Normalized CPU and memory on an LTE-class link (Fig. 2(c))."""
    scenario = LTE["lte-stationary"]
    raw = {cca: _measure(cca, scenario, seed, duration) for cca in ccas}
    max_cpu = max(v["cpu"] for v in raw.values()) or 1.0
    max_mem = max(v["memory"] for v in raw.values()) or 1.0
    return {cca: {"cpu": v["cpu"], "cpu_normalized": v["cpu"] / max_cpu,
                  "memory_normalized": v["memory"] / max_mem}
            for cca, v in raw.items()}


def run_fig12(ccas=FIG12_CCAS, capacities_mbps=FIG12_CAPACITIES_MBPS,
              seed: int = 1, duration: float = 10.0) -> dict:
    """CPU utilization vs link capacity (Fig. 12)."""
    out: dict[str, dict[int, float]] = {cca: {} for cca in ccas}
    for cap in capacities_mbps:
        scenario = Scenario(name=f"overhead-{cap}",
                            trace_factory=ConstTraceFactory(float(cap)),
                            rtt=ms(30), buffer_bytes=max(150 * KB,
                                                         mbps(cap) * ms(30) / 8.0))
        for cca in ccas:
            out[cca][cap] = _measure(cca, scenario, seed, duration)["cpu"]
    return out


def libra_reduction(fig12: dict, baseline: str,
                    libra: str = "c-libra") -> float:
    """Average relative CPU reduction of Libra vs a baseline (Remark 5)."""
    reductions = []
    for cap, cpu in fig12[baseline].items():
        if cpu > 0:
            reductions.append(1.0 - fig12[libra][cap] / cpu)
    return float(np.mean(reductions)) if reductions else 0.0


def main() -> None:
    data = run_fig2c()
    rows = [[cca, v["cpu"], v["cpu_normalized"], v["memory_normalized"]]
            for cca, v in data.items()]
    print(format_table(["cca", "cpu", "cpu_norm", "mem_norm"], rows,
                       title="Fig.2(c) normalized overhead"))
    print()
    fig12 = run_fig12()
    headers = ["cca"] + [f"{c}Mbps" for c in FIG12_CAPACITIES_MBPS]
    rows = [[cca] + [fig12[cca][c] for c in FIG12_CAPACITIES_MBPS]
            for cca in fig12]
    print(format_table(headers, rows, title="Fig.12 CPU vs sending rate"))
    for base in ("orca", "cl-libra", "indigo", "copa", "proteus"):
        if base in fig12:
            print(f"  Libra CPU reduction vs {base}: "
                  f"{libra_reduction(fig12, base):.0%}")


if __name__ == "__main__":
    main()
