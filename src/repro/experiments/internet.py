"""Live-Internet surrogate: Fig. 16 (Sec. 5.4).

The paper transfers between EC2 instances across continents; we emulate
inter-continental paths (180 ms RTT, ~1 % stochastic loss, shaped and
jittery capacity) and intra-continental paths (40 ms RTT, clean), per
the substitution note in DESIGN.md.  Reported values are normalized to
the best performer per scenario, matching the paper's axes.
"""

from __future__ import annotations

import numpy as np

from ..scenarios.presets import INTERNET
from .harness import format_table, mean_metrics, run_seeds

INTERNET_CCAS = ("c-libra", "b-libra", "proteus", "bbr", "cubic", "orca")


def run_fig16(ccas=INTERNET_CCAS, seeds=(1, 2), duration: float = 20.0) -> dict:
    out = {}
    for name, scenario in INTERNET.items():
        raw = {}
        for cca in ccas:
            runs = run_seeds(cca, scenario, seeds, duration=duration)
            raw[cca] = mean_metrics(runs)
        best_thr = max(v["throughput_mbps"] for v in raw.values()) or 1.0
        best_delay = min(v["avg_rtt_ms"] for v in raw.values()) or 1.0
        out[name] = {
            cca: {
                "normalized_throughput": v["throughput_mbps"] / best_thr,
                "normalized_delay": v["avg_rtt_ms"] / best_delay,
            }
            for cca, v in raw.items()
        }
    return out


def main() -> None:
    data = run_fig16()
    rows = []
    for scenario, per_cca in data.items():
        for cca, m in per_cca.items():
            rows.append([scenario, cca, m["normalized_throughput"],
                         m["normalized_delay"]])
    print(format_table(["scenario", "cca", "norm_thr", "norm_delay"], rows,
                       title="Fig.16 Live-Internet (emulated WAN) results"))


if __name__ == "__main__":
    main()
