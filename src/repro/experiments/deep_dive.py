"""Deep dive into the combination mechanism: Fig. 17 and Fig. 18 (Sec. 5.5).

- Fig. 17: how often each candidate rate (x_prev, x_rl, x_cl) wins a
  control cycle, per scenario family — every kind of decision matters.
- Fig. 18: Libra's measured utility over time against the offline ideal
  combination (pointwise-max utility of CUBIC and CL-Libra run alone).
"""

from __future__ import annotations

import numpy as np

from ..core.ideal import ideal_series, normalize_utilities, utility_series
from ..parallel import single_flow_job
from ..scenarios.presets import LTE, WIRED, step_scenario
from .harness import format_table, run_grid

FIG17_SCENARIOS = {
    "step": step_scenario(),
    "cellular": LTE["lte-walking"],
    "wired": WIRED["wired-48"],
}


def run_fig17(variants=("c-libra", "b-libra"), seeds=(1, 2),
              duration: float = 20.0) -> dict:
    """Fraction of control cycles won by each candidate rate."""
    points = [(variant, name, scenario) for variant in variants
              for name, scenario in FIG17_SCENARIOS.items()]
    jobs = [single_flow_job(variant, scenario, seed=seed, duration=duration)
            for variant, _name, scenario in points for seed in seeds]
    summaries = iter(run_grid(jobs, label="fig17"))
    out: dict[str, dict[str, dict[str, float]]] = {}
    for variant, name, _scenario in points:
        fractions = [next(summaries).result.controllers[0].applied_fractions()
                     for _ in seeds]
        out.setdefault(variant, {})[name] = {
            key: float(np.mean([f[key] for f in fractions]))
            for key in ("prev", "rl", "cl")
        }
    return out


def run_fig18(variant: str = "c-libra", seed: int = 2,
              duration: float = 24.0, window: float = 1.0) -> dict:
    """Libra vs the offline ideal combination on a cellular trace."""
    scenario = LTE["lte-walking"]
    jobs = [single_flow_job(cca, scenario, seed=seed, duration=duration)
            for cca in (variant, "cubic", "cl-libra")]
    libra_run, cubic_run, clean_run = run_grid(jobs, label="fig18")

    times, libra_u = utility_series(libra_run.result.flows[0], window)
    ideal_t, ideal_u = ideal_series(
        [cubic_run.result.flows[0], clean_run.result.flows[0]], window)
    n = min(len(libra_u), len(ideal_u))
    libra_n, ideal_n = normalize_utilities(libra_u[:n], ideal_u[:n])
    return {
        "times": times[:n].tolist(),
        "libra": libra_n.tolist(),
        "ideal": ideal_n.tolist(),
        "libra_mean": float(np.mean(libra_n)),
        "ideal_mean": float(np.mean(ideal_n)),
    }


def main() -> None:
    fig17 = run_fig17()
    rows = []
    for variant, per_scenario in fig17.items():
        for scenario, fr in per_scenario.items():
            rows.append([variant, scenario, fr["prev"], fr["rl"], fr["cl"]])
    print(format_table(["variant", "scenario", "x_prev", "x_rl", "x_cl"],
                       rows, title="Fig.17 Fraction of applied decisions"))
    print()
    fig18 = run_fig18()
    print(f"Fig.18 normalized mean utility: libra={fig18['libra_mean']:.3f} "
          f"ideal={fig18['ideal_mean']:.3f}")


if __name__ == "__main__":
    main()
