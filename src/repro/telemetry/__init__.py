"""Structured flow telemetry: typed channels, run artifacts, exporters.

The observability layer for every simulation run: a low-overhead
:class:`Recorder` with sampled series channels and structured event
channels, a picklable :class:`FlowTelemetry` artifact that crosses the
fork-pool boundary and the content-addressed result cache, and
JSONL/CSV exporters with schema validation.

Enable per run (``Job.with_telemetry()``, ``single_flow_job(...,
telemetry=True)``, or ``python -m repro trace``); when disabled, hot
paths pay a single attribute check and no recorder is ever constructed.
"""

from __future__ import annotations

from .artifact import SUMMARY_PERCENTILES, FlowTelemetry
from .export import (TelemetrySchemaError, format_summary, validate_jsonl,
                     write_csv, write_jsonl)
from .recorder import (DEFAULT_CONFIG, NULL_RECORDER, SCHEMA_VERSION, Event,
                       EventChannel, NullRecorder, Recorder, SeriesChannel,
                       TelemetryConfig)

__all__ = [
    "DEFAULT_CONFIG", "Event", "EventChannel", "FlowTelemetry",
    "NULL_RECORDER", "NullRecorder", "Recorder", "SCHEMA_VERSION",
    "SUMMARY_PERCENTILES", "SeriesChannel", "TelemetryConfig",
    "TelemetrySchemaError", "format_summary", "validate_jsonl", "write_csv",
    "write_jsonl",
]
