"""Low-overhead structured flow telemetry recorder.

Diagnosing a stage machine like Libra's (exploration → evaluation →
exploitation) requires *time series* — per-MI rates, utility comparisons
at cycle boundaries, watchdog and backoff transitions — not end-of-run
scalars.  The :class:`Recorder` collects two kinds of typed channels:

- :class:`SeriesChannel` — sampled numeric time series (rate, srtt,
  cwnd, queue occupancy, link service/drops) stored in preallocated
  column buffers that grow by doubling, with optional per-channel
  decimation (``min_interval``) so per-packet producers cannot flood the
  buffer.
- :class:`EventChannel` — structured events (Libra stage transitions,
  per-cycle utility verdicts, RL-arm bench/unbench, watchdog
  freeze/recover, fault activations) stored as typed
  :class:`Event` tuples, capped per kind with an explicit dropped
  counter so pathological runs degrade gracefully instead of eating
  memory.

Overhead discipline: telemetry is *opt-in per run*.  Hot paths (per-ACK,
per-packet) hold a plain attribute that is ``None`` when telemetry is
disabled and pay exactly one attribute check; the recorder itself is
only ever constructed for traced runs.  ``tests/telemetry/test_overhead``
enforces both properties structurally via :mod:`repro.overhead.meter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

#: version of the on-disk/artifact schema; bumped whenever channel
#: semantics or export layout change.  Participates in the job cache key
#: (see :class:`repro.parallel.jobs.Job`), so enabling telemetry — or
#: changing its schema — can never serve stale scalar-only cache hits.
SCHEMA_VERSION = 1


class Event(NamedTuple):
    """One structured event: a timestamp, a kind, and a payload dict."""

    t: float
    kind: str
    fields: dict


@dataclass(frozen=True)
class TelemetryConfig:
    """Tunable recorder limits.

    ``max_events_per_kind`` replaces the hard-coded 100 000-entry cap
    that used to live inside ``LibraController._log``; Libra's decision
    log is now an :class:`EventChannel` governed by this knob (see
    ``LibraConfig.telemetry``).
    """

    #: minimum spacing between accepted samples of one series channel;
    #: 0 accepts every sample (per-MI producers are already sparse)
    sample_interval: float = 0.0
    #: per-kind event cap; further events are counted in ``dropped``
    max_events_per_kind: int = 100_000
    #: initial column-buffer capacity of each series channel
    initial_capacity: int = 256


DEFAULT_CONFIG = TelemetryConfig()


class SeriesChannel:
    """Columnar (time, value) buffer with amortized O(1) appends."""

    __slots__ = ("name", "min_interval", "_t", "_v", "_n", "_last_t",
                 "decimated")

    def __init__(self, name: str, capacity: int = 256,
                 min_interval: float = 0.0):
        self.name = name
        self.min_interval = min_interval
        self._t = np.empty(max(capacity, 4), dtype=np.float64)
        self._v = np.empty(max(capacity, 4), dtype=np.float64)
        self._n = 0
        self._last_t = -np.inf
        #: samples skipped by the ``min_interval`` decimator
        self.decimated = 0

    def add(self, t: float, value: float) -> bool:
        """Append one sample; returns False if decimated away."""
        if t - self._last_t < self.min_interval:
            self.decimated += 1
            return False
        n = self._n
        if n == len(self._t):
            self._t = np.concatenate([self._t, np.empty_like(self._t)])
            self._v = np.concatenate([self._v, np.empty_like(self._v)])
        self._t[n] = t
        self._v[n] = value
        self._n = n + 1
        self._last_t = t
        return True

    def __len__(self) -> int:
        return self._n

    def data(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) trimmed to the filled region (copies)."""
        return self._t[:self._n].copy(), self._v[:self._n].copy()


class EventChannel:
    """Append-only list of :class:`Event` of one kind, with a cap."""

    __slots__ = ("kind", "cap", "events", "dropped")

    def __init__(self, kind: str, cap: int = 100_000):
        self.kind = kind
        self.cap = cap
        self.events: list[Event] = []
        #: events discarded after the cap was reached
        self.dropped = 0

    def add(self, t: float, **fields) -> Event | None:
        if len(self.events) >= self.cap:
            self.dropped += 1
            return None
        event = Event(t, self.kind, fields)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)


class Recorder:
    """Typed-channel telemetry sink for one simulation run.

    Producers obtain their channel once (``series(name)`` /
    ``channel(kind)`` are memoized) and append through it, so the per
    sample cost is one bounds check and two array stores.  ``finish()``
    freezes everything into a picklable
    :class:`~repro.telemetry.artifact.FlowTelemetry`.
    """

    #: mirrors the NullRecorder protocol; always True for real recorders
    enabled = True

    def __init__(self, config: TelemetryConfig | None = None):
        self.config = config or DEFAULT_CONFIG
        self._series: dict[str, SeriesChannel] = {}
        self._events: dict[str, EventChannel] = {}
        self.meta: dict = {}

    # -- channels ---------------------------------------------------------

    def series(self, name: str, min_interval: float | None = None) -> SeriesChannel:
        """The (memoized) series channel called ``name``."""
        channel = self._series.get(name)
        if channel is None:
            channel = SeriesChannel(
                name, capacity=self.config.initial_capacity,
                min_interval=self.config.sample_interval
                if min_interval is None else min_interval)
            self._series[name] = channel
        return channel

    def channel(self, kind: str) -> EventChannel:
        """The (memoized) event channel for ``kind``."""
        channel = self._events.get(kind)
        if channel is None:
            channel = EventChannel(kind, cap=self.config.max_events_per_kind)
            self._events[kind] = channel
        return channel

    # -- convenience producers -------------------------------------------

    def sample(self, name: str, t: float, value: float) -> None:
        self.series(name).add(t, value)

    def event(self, kind: str, t: float, **fields) -> None:
        self.channel(kind).add(t, **fields)

    # -- consumers --------------------------------------------------------

    def events(self, kind: str | None = None) -> list[Event]:
        """All events of ``kind`` (or every kind, time-ordered)."""
        if kind is not None:
            channel = self._events.get(kind)
            return list(channel.events) if channel is not None else []
        merged: list[Event] = []
        for channel in self._events.values():
            merged.extend(channel.events)
        merged.sort(key=lambda e: e.t)
        return merged

    def series_names(self) -> list[str]:
        return sorted(self._series)

    def event_kinds(self) -> list[str]:
        return sorted(self._events)

    def adopt(self, other: "Recorder") -> None:
        """Absorb another recorder's channels (used when a controller's
        private recorder is redirected to the run-wide one)."""
        for name, channel in other._series.items():
            if name not in self._series:
                self._series[name] = channel
        for kind, channel in other._events.items():
            mine = self.channel(kind)
            for event in channel.events:
                mine.add(event.t, **event.fields)
            mine.dropped += channel.dropped

    def finish(self, meta: dict | None = None):
        """Freeze into a picklable :class:`FlowTelemetry` artifact."""
        from .artifact import FlowTelemetry

        merged_meta = dict(self.meta)
        if meta:
            merged_meta.update(meta)
        return FlowTelemetry(
            schema_version=SCHEMA_VERSION,
            series={name: ch.data() for name, ch in sorted(self._series.items())},
            events={kind: tuple(ch.events)
                    for kind, ch in sorted(self._events.items())},
            dropped_events={kind: ch.dropped
                            for kind, ch in sorted(self._events.items())
                            if ch.dropped},
            meta=merged_meta)


class NullRecorder:
    """Inert stand-in exposing the Recorder protocol as no-ops.

    Hot paths should prefer ``recorder is not None`` guards (one
    attribute check); the null object exists for code that wants to call
    unconditionally at non-hot frequency.
    """

    enabled = False

    def series(self, name: str, min_interval: float | None = None):
        return _NULL_SERIES

    def channel(self, kind: str):
        return _NULL_EVENTS

    def sample(self, name: str, t: float, value: float) -> None:
        pass

    def event(self, kind: str, t: float, **fields) -> None:
        pass

    def events(self, kind: str | None = None) -> list[Event]:
        return []

    def series_names(self) -> list[str]:
        return []

    def event_kinds(self) -> list[str]:
        return []

    def finish(self, meta: dict | None = None):
        from .artifact import FlowTelemetry

        return FlowTelemetry(schema_version=SCHEMA_VERSION, series={},
                             events={}, dropped_events={}, meta=meta or {})


class _NullSeries:
    __slots__ = ()
    decimated = 0

    def add(self, t: float, value: float) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def data(self):
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy()


class _NullEvents:
    __slots__ = ()
    dropped = 0

    def add(self, t: float, **fields):
        return None

    def __len__(self) -> int:
        return 0


_NULL_SERIES = _NullSeries()
_NULL_EVENTS = _NullEvents()

#: shared inert recorder; safe because it holds no state
NULL_RECORDER = NullRecorder()
