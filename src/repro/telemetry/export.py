"""Exporters for :class:`~repro.telemetry.artifact.FlowTelemetry`.

Two formats:

- **JSONL** — one JSON object per line.  The first line is a ``header``
  record carrying the schema version, metadata and the channel/event
  inventory; ``sample`` records follow per series point and ``event``
  records per structured event, each time-ordered within its channel.
  :func:`validate_jsonl` re-reads a file and checks it against the
  schema — CI runs it on every traced smoke flow.
- **CSV** — a long-format table (``t,record,channel,value,fields``)
  that loads directly into pandas/spreadsheets; events serialize their
  payload as a JSON string in the ``fields`` column.
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import IO

from .artifact import FlowTelemetry
from .recorder import SCHEMA_VERSION


class TelemetrySchemaError(ValueError):
    """A JSONL trace failed schema validation."""


def _json_safe(value):
    """Coerce a payload value into something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return _json_safe(value.item())
    return repr(value)


def _open(path_or_file, mode: str):
    if hasattr(path_or_file, "write") or hasattr(path_or_file, "read"):
        return path_or_file, False
    return open(path_or_file, mode), True


# -- JSONL -------------------------------------------------------------------

def write_jsonl(telemetry: FlowTelemetry, path_or_file) -> int:
    """Write one trace as JSON Lines; returns the number of lines."""
    fh, owned = _open(path_or_file, "w")
    try:
        lines = 0
        header = {
            "type": "header",
            "schema_version": telemetry.schema_version,
            "series": telemetry.series_names(),
            "events": telemetry.event_kinds(),
            "dropped_events": dict(telemetry.dropped_events),
            "meta": _json_safe(telemetry.meta),
        }
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        lines += 1
        for name in telemetry.series_names():
            times, values = telemetry.samples(name)
            for t, v in zip(times.tolist(), values.tolist()):
                fh.write(json.dumps({"type": "sample", "channel": name,
                                     "t": t, "v": _json_safe(v)}) + "\n")
                lines += 1
        for kind in telemetry.event_kinds():
            for event in telemetry.events_of(kind):
                fh.write(json.dumps({"type": "event", "kind": kind,
                                     "t": event.t,
                                     "fields": _json_safe(event.fields)}) + "\n")
                lines += 1
        return lines
    finally:
        if owned:
            fh.close()


def validate_jsonl(path_or_file) -> dict:
    """Validate a JSONL trace; returns ``{"samples": n, "events": n, ...}``.

    Raises :class:`TelemetrySchemaError` on a missing/invalid header,
    unknown record types, records referencing undeclared channels, or
    malformed lines.
    """
    fh, owned = _open(path_or_file, "r")
    try:
        header = None
        samples = 0
        events = 0
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetrySchemaError(
                    f"line {lineno}: invalid JSON ({exc})") from exc
            if not isinstance(record, dict) or "type" not in record:
                raise TelemetrySchemaError(
                    f"line {lineno}: record has no 'type'")
            kind = record["type"]
            if lineno == 1:
                if kind != "header":
                    raise TelemetrySchemaError("first line must be a header")
                if record.get("schema_version") != SCHEMA_VERSION:
                    raise TelemetrySchemaError(
                        f"schema_version {record.get('schema_version')!r} != "
                        f"{SCHEMA_VERSION}")
                for key in ("series", "events", "meta"):
                    if key not in record:
                        raise TelemetrySchemaError(f"header lacks {key!r}")
                header = record
                continue
            if header is None:
                raise TelemetrySchemaError("missing header line")
            if kind == "sample":
                if record.get("channel") not in header["series"]:
                    raise TelemetrySchemaError(
                        f"line {lineno}: undeclared channel "
                        f"{record.get('channel')!r}")
                if not isinstance(record.get("t"), (int, float)):
                    raise TelemetrySchemaError(f"line {lineno}: bad 't'")
                samples += 1
            elif kind == "event":
                if record.get("kind") not in header["events"]:
                    raise TelemetrySchemaError(
                        f"line {lineno}: undeclared event kind "
                        f"{record.get('kind')!r}")
                if not isinstance(record.get("fields"), dict):
                    raise TelemetrySchemaError(f"line {lineno}: bad 'fields'")
                events += 1
            else:
                raise TelemetrySchemaError(
                    f"line {lineno}: unknown record type {kind!r}")
        if header is None:
            raise TelemetrySchemaError("empty trace file")
        return {"samples": samples, "events": events,
                "schema_version": header["schema_version"],
                "series": list(header["series"]),
                "event_kinds": list(header["events"])}
    finally:
        if owned:
            fh.close()


# -- CSV ---------------------------------------------------------------------

def write_csv(telemetry: FlowTelemetry, path_or_file) -> int:
    """Write a long-format CSV; returns the number of data rows."""
    fh, owned = _open(path_or_file, "w")
    try:
        writer = csv.writer(fh, lineterminator="\n")
        writer.writerow(["t", "record", "channel", "value", "fields"])
        rows = 0
        for name in telemetry.series_names():
            times, values = telemetry.samples(name)
            for t, v in zip(times.tolist(), values.tolist()):
                writer.writerow([repr(t), "sample", name, repr(v), ""])
                rows += 1
        for kind in telemetry.event_kinds():
            for event in telemetry.events_of(kind):
                writer.writerow([repr(event.t), "event", kind, "",
                                 json.dumps(_json_safe(event.fields),
                                            sort_keys=True)])
                rows += 1
        return rows
    finally:
        if owned:
            fh.close()


# -- pretty-printing ---------------------------------------------------------

def format_summary(telemetry: FlowTelemetry, tail: int = 0) -> str:
    """Human-readable channel/event summary for the ``trace`` CLI."""
    info = telemetry.summary()
    out = io.StringIO()
    out.write(f"telemetry schema v{info['schema_version']}: "
              f"{telemetry.sample_count} samples / "
              f"{telemetry.event_count} events\n")
    if info["series"]:
        out.write("\nseries channels:\n")
        header = (f"  {'channel':32}  {'count':>6}  {'mean':>12}  "
                  f"{'p50':>12}  {'p95':>12}  {'p99':>12}\n")
        out.write(header)
        for name in sorted(info["series"]):
            stats = info["series"][name]
            if not stats["count"]:
                out.write(f"  {name:32}  {0:>6}\n")
                continue
            out.write(f"  {name:32}  {stats['count']:>6}  "
                      f"{stats['mean']:>12.4g}  {stats['p50']:>12.4g}  "
                      f"{stats['p95']:>12.4g}  {stats['p99']:>12.4g}\n")
    if info["events"]:
        out.write("\nevent channels:\n")
        for kind in sorted(info["events"]):
            dropped = info["dropped_events"].get(kind, 0)
            extra = f"  (+{dropped} dropped past cap)" if dropped else ""
            out.write(f"  {kind:32}  {info['events'][kind]:>6}{extra}\n")
    if tail > 0:
        events = telemetry.all_events()[-tail:]
        if events:
            out.write(f"\nlast {len(events)} events:\n")
            for event in events:
                fields = ", ".join(f"{k}={_json_safe(v)!r}"
                                   for k, v in event.fields.items())
                out.write(f"  t={event.t:10.4f}  {event.kind:24} {fields}\n")
    return out.getvalue().rstrip("\n")
