"""Picklable run-telemetry artifact and its summary reducers.

A :class:`FlowTelemetry` is what a traced run carries back from the
worker pool: frozen numpy column arrays per series channel, tuples of
:class:`~repro.telemetry.recorder.Event` per event kind, and a metadata
dict.  Everything inside is plain numpy / builtin types, so the artifact
pickles across the fork-pool boundary and through the content-addressed
result cache unchanged.

The reducers answer the common diagnostic questions without exporting:
``summary()`` gives count/mean/min/max and p50/p95/p99 per channel,
``downsample()`` thins a series for plotting, ``events_of()`` filters
events by kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .recorder import Event

#: percentiles reported by :meth:`FlowTelemetry.summary`
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass
class FlowTelemetry:
    """Frozen telemetry of one simulation run."""

    schema_version: int
    #: channel name -> (times, values) numpy column pair
    series: dict[str, tuple[np.ndarray, np.ndarray]]
    #: event kind -> time-ordered tuple of events
    events: dict[str, tuple[Event, ...]]
    #: event kind -> number of events discarded past the cap
    dropped_events: dict[str, int] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    # -- accessors --------------------------------------------------------

    def series_names(self) -> list[str]:
        return sorted(self.series)

    def event_kinds(self) -> list[str]:
        return sorted(self.events)

    def samples(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) of one series channel."""
        return self.series[name]

    def events_of(self, kind: str) -> list[Event]:
        """Events of one kind (empty list if the kind never fired)."""
        return list(self.events.get(kind, ()))

    def all_events(self) -> list[Event]:
        """Every event across kinds, time-ordered."""
        merged: list[Event] = []
        for events in self.events.values():
            merged.extend(events)
        merged.sort(key=lambda e: e.t)
        return merged

    @property
    def sample_count(self) -> int:
        return sum(len(t) for t, _ in self.series.values())

    @property
    def event_count(self) -> int:
        return sum(len(e) for e in self.events.values())

    # -- reducers ---------------------------------------------------------

    def summary(self) -> dict:
        """Per-channel descriptive statistics.

        ``{"series": {name: {count, mean, min, max, p50, p95, p99}},
        "events": {kind: count}, "dropped_events": {...}}`` — the shape
        the ``repro trace`` CLI pretty-prints.
        """
        series = {}
        for name, (times, values) in self.series.items():
            if len(values) == 0:
                series[name] = {"count": 0}
                continue
            stats = {
                "count": int(len(values)),
                "mean": float(np.mean(values)),
                "min": float(np.min(values)),
                "max": float(np.max(values)),
                "t0": float(times[0]),
                "t1": float(times[-1]),
            }
            for pct, value in zip(SUMMARY_PERCENTILES,
                                  np.percentile(values, SUMMARY_PERCENTILES)):
                stats[f"p{pct:g}"] = float(value)
            series[name] = stats
        return {
            "schema_version": self.schema_version,
            "series": series,
            "events": {kind: len(ev) for kind, ev in sorted(self.events.items())},
            "dropped_events": dict(self.dropped_events),
        }

    def downsample(self, name: str, max_points: int) -> tuple[np.ndarray, np.ndarray]:
        """Thin one series to at most ``max_points`` via strided selection.

        Keeps the first and last sample so plot extents survive; an
        already-small series is returned unchanged (copies).
        """
        if max_points < 2:
            raise ValueError("max_points must be >= 2")
        times, values = self.series[name]
        n = len(times)
        if n <= max_points:
            return times.copy(), values.copy()
        idx = np.linspace(0, n - 1, max_points).round().astype(int)
        idx = np.unique(idx)
        return times[idx], values[idx]
