"""Aurora (Jay et al., ICML 2019): pure DRL rate control.

A PPO policy observes latency-derived features once per monitor interval
and adjusts the sending rate multiplicatively with a damped update
(delta = 0.025).  Aurora runs in userspace and invokes its network every
MI — both reflected in the cost model.
"""

from __future__ import annotations

import numpy as np

from ..cca.base import RateController
from ..env.actions import ActionSpace, MimdAuroraActions
from ..env.features import FeatureSet, STATE_SETS, StateBuilder
from ..simnet.packet import AckSample, IntervalReport
from ..env.bridge import measurement_from_report


class Aurora(RateController):
    """Per-MI PPO rate control with Aurora's MIMD action mapping."""

    name = "aurora"
    userspace = True

    def __init__(self, policy, action_space: ActionSpace | None = None,
                 feature_set: FeatureSet | None = None, history: int = 8,
                 deterministic: bool = True, seed: int = 0,
                 initial_rate_bps: float = 1_500_000.0,
                 use_startup: bool = True):
        super().__init__(initial_rate_bps)
        self.policy = policy
        self.action_space = action_space or MimdAuroraActions(scale=10.0)
        self.builder = StateBuilder(feature_set or STATE_SETS["aurora"], history)
        self.deterministic = deterministic
        self.rng = np.random.default_rng(seed)
        self._srtt = 0.1
        self._min_rtt = float("inf")
        self._starting = use_startup
        if policy is not None and policy.obs_dim != self.builder.dim:
            raise ValueError(
                f"policy expects obs_dim={policy.obs_dim}, "
                f"feature set provides {self.builder.dim}")

    def on_ack(self, ack: AckSample) -> None:
        self._srtt = ack.srtt
        self._min_rtt = min(self._min_rtt, ack.min_rtt)
        if self._starting and ack.rtt > 1.4 * ack.min_rtt:
            self._starting = False

    def on_loss(self, loss) -> None:
        self._starting = False

    def interval(self) -> float:
        return max(self._srtt, 0.01)

    def on_interval(self, report: IntervalReport) -> None:
        min_rtt = self._min_rtt if self._min_rtt < float("inf") else self._srtt
        measurement = measurement_from_report(report, self.rate_bps, min_rtt)
        state = self.builder.push(measurement)
        if self._starting:
            # Startup: double per MI until delay or loss feedback, like the
            # reference implementations (Aurora starts near link rate, Orca
            # inherits slow start).  This also primes the feature
            # normalizer with a realistic maximum delivery rate.
            if report.throughput > 0 and self.rate_bps > 2.0 * report.throughput:
                # Sending far above what comes back: the pipe is full.
                self._starting = False
                self.set_rate(report.throughput)
            else:
                self.set_rate(self.rate_bps * 2.0)
                return
        if self.policy is None or not report.has_feedback:
            return
        action, _, _ = self.policy.act(state, self.rng,
                                       deterministic=self.deterministic)
        self.meter.count("nn_forward", self.policy.actor.flops_per_forward)
        self.set_rate(self.action_space.apply(self.rate_bps, float(action[0])))

    def cwnd(self) -> float:
        # Safety cap like the reference implementation's flow control.
        return max(2.0 * self.rate_bps * max(self._srtt, 0.01) / 8.0,
                   4.0 * self.mss)
