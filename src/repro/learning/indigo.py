"""Indigo-like offline-trained controller (Yan et al., ATC 2018).

Indigo learns a cwnd policy by imitation from an oracle that knows the
true bandwidth-delay product.  We stand in for the trained LSTM with the
oracle-tracking behaviour it imitates: the window follows an EWMA
estimate of ``delivery_rate * min_rtt`` with a conservative gain, and —
mirroring Indigo's documented weakness outside its training envelope —
the window is clamped to the emulator ranges Indigo was trained on,
which reproduces its under-utilization equilibrium in Tab. 5/Fig. 15.
See DESIGN.md for the substitution note.
"""

from __future__ import annotations

from ..cca.base import Controller
from ..simnet.packet import AckSample, IntervalReport

#: conservative fraction of the estimated BDP Indigo holds in flight
TARGET_GAIN = 0.85
#: Indigo's training envelope, as reported by the Pantheon paper (Mbps)
TRAIN_MIN_MBPS = 1.0
TRAIN_MAX_MBPS = 192.0


class Indigo(Controller):
    """Imitation-learned window control (oracle-tracking stand-in)."""

    name = "indigo"
    userspace = True

    def __init__(self, initial_cwnd_packets: int = 10):
        super().__init__()
        self._initial_cwnd_packets = initial_cwnd_packets
        self.cwnd_bytes = 10.0 * 1500
        self.bw_est = 0.0
        self._min_rtt = float("inf")
        self._srtt = 0.1

    def start(self, now: float, mss: int) -> None:
        super().start(now, mss)
        self.cwnd_bytes = float(self._initial_cwnd_packets * mss)

    def on_ack(self, ack: AckSample) -> None:
        self.meter.count("per_ack")
        self._srtt = ack.srtt
        self._min_rtt = min(self._min_rtt, ack.min_rtt)
        if ack.delivery_rate > 0:
            if self.bw_est == 0.0:
                self.bw_est = ack.delivery_rate
            else:
                self.bw_est = 0.95 * self.bw_est + 0.05 * ack.delivery_rate

    def interval(self) -> float:
        return max(self._srtt / 2.0, 0.01)

    def on_interval(self, report: IntervalReport) -> None:
        if self.bw_est <= 0 or self._min_rtt == float("inf"):
            self.cwnd_bytes += 2.0 * self.mss  # initial ramp
            return
        if report.avg_rtt <= 1.15 * self._min_rtt:
            # No standing queue: the oracle would have a larger BDP, so
            # probe upward (this is how the imitation policy ramps).
            self.cwnd_bytes += 2.0 * self.mss
            return
        # Clamp the bandwidth estimate to the training envelope: outside
        # it the learned policy extrapolates poorly (paper Sec. 2).
        bw = min(max(self.bw_est, TRAIN_MIN_MBPS * 1e6), TRAIN_MAX_MBPS * 1e6)
        target = TARGET_GAIN * bw * self._min_rtt / 8.0
        self.cwnd_bytes += 0.3 * (target - self.cwnd_bytes)
        self.cwnd_bytes = max(self.cwnd_bytes, 2.0 * self.mss)

    def cwnd(self) -> float:
        return self.cwnd_bytes
