"""PCC Proteus (Meng et al., SIGCOMM 2020) — primary-mode flavour.

Proteus extends Vivace with utility functions tailored to application
roles; its primary mode emphasizes latency stability (penalizing RTT
deviation more heavily) while remaining a Vivace-style online learner.
We model Proteus-P as Vivace with a latency-sensitised utility
(doubled RTT-gradient weight); the scavenger mode is out of the paper's
evaluation scope.  The paper evaluates "Proteus&Vivace" as online
learning baselines; both inherit the micro-experiment overhead.
"""

from __future__ import annotations

from ..core.utility import UtilityParams
from .vivace import Vivace


class Proteus(Vivace):
    """Vivace with Proteus-P's latency-sensitised utility."""

    name = "proteus"

    def __init__(self, initial_rate_bps: float = 1_500_000.0, seed: int = 0):
        params = UtilityParams(t=0.9, alpha=1.0, beta=1800.0, gamma=11.35)
        super().__init__(initial_rate_bps, params=params, seed=seed)
