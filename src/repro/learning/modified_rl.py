"""Modified RL — the paper's ablation baseline (Sec. 5 Setup).

"Modified RL" applies Libra's utility function (Eq. 1) as the reward of
a pure RL-based CCA, *without* the combined framework.  The paper uses
it to show that Eq. 1 alone does not deliver fairness or convergence
(Fig. 13-15, Remark 6): the RL policy's adjustments carry no equilibrium
guarantee even when the reward has one.

Structurally it is an Aurora-style per-MI rate controller with Libra's
state space and action space, trained on the Eq. 1 reward
(see :func:`repro.training.train_policy` with ``kind='modified-rl'``).
"""

from __future__ import annotations

from ..env.actions import MimdOrcaActions
from ..env.features import STATE_SETS
from .aurora import Aurora


class ModifiedRL(Aurora):
    """Pure RL with Eq. 1 as the reward and no combined framework."""

    name = "modified-rl"

    def __init__(self, policy, history: int = 8, deterministic: bool = True,
                 seed: int = 0, initial_rate_bps: float = 1_500_000.0):
        super().__init__(policy,
                         action_space=MimdOrcaActions(scale=1.0),
                         feature_set=STATE_SETS["libra"],
                         history=history,
                         deterministic=deterministic,
                         seed=seed,
                         initial_rate_bps=initial_rate_bps)
