"""PCC Vivace (Dong et al., NSDI 2018): online-learning rate control.

Vivace runs continuous micro-experiments: from a base rate ``r`` it sends
one monitor interval at ``r(1+eps)`` and one at ``r(1-eps)``, computes the
utility of each from the packets *sent during that MI* (feedback arrives
an RTT later and is attributed by sent-time bucketing), and moves the
rate along the estimated utility gradient with a confidence amplifier
(consecutive same-sign moves take bigger steps) and a dynamic step
boundary.

The utility is the PCC-family function — identical in form to Libra's
Eq. 1 (the paper credits PCC for it, Sec. 1).  Gradient probing every
pair of MIs plus userspace packet handling is why Vivace/Proteus sit at
the top of the overhead charts (Fig. 2(c), Fig. 12).
"""

from __future__ import annotations

from ..cca.base import RateController
from ..core.utility import UtilityParams, utility
from ..simnet.packet import AckSample, IntervalReport, LossSample
from ..simnet.windows import AckWindow

EPSILON = 0.05
#: gradient step scale, Mbps moved per unit utility-gradient
THETA = 0.5
#: dynamic boundary: max relative rate change per decision, grows with
#: the confidence amplifier
OMEGA_BASE = 0.05
OMEGA_STEP = 0.05
MAX_AMPLIFIER = 5

_STARTING, _PROBE_UP, _PROBE_DOWN, _MOVING = range(4)


class Vivace(RateController):
    """PCC Vivace with the default latency-aware utility."""

    name = "vivace"
    userspace = True

    def __init__(self, initial_rate_bps: float = 1_500_000.0,
                 params: UtilityParams | None = None, seed: int = 0):
        super().__init__(initial_rate_bps)
        self.params = params or UtilityParams()
        self.state = _STARTING
        self.base_rate = self.rate_bps
        #: (probe kind, applied rate, ack window), oldest first
        self._experiments: list[tuple[int, float, AckWindow]] = []
        self._probe_results: dict[int, float] = {}
        self._last_utility: float | None = None
        self._amplifier = 0
        self._last_direction = 0
        self._srtt = 0.1
        self._min_rtt = float("inf")
        self._current_window: AckWindow | None = None

    # -- feedback plumbing ---------------------------------------------------

    def on_ack(self, ack: AckSample) -> None:
        self._srtt = ack.srtt
        self._min_rtt = min(self._min_rtt, ack.min_rtt)
        for _, _, window in self._experiments:
            if window.contains(ack.sent_time):
                window.add_ack(ack)
                break

    def on_loss(self, loss: LossSample) -> None:
        for _, _, window in self._experiments:
            if window.contains(loss.sent_time):
                window.add_loss(loss)
                break

    def interval(self) -> float:
        return max(self._srtt, 0.01)

    # -- control loop ------------------------------------------------------

    def on_interval(self, report: IntervalReport) -> None:
        self.meter.count("gradient_probe")
        now = report.now
        if self._current_window is not None:
            self._current_window.end = now
            self._current_window = None
        self._harvest(now)
        self._schedule_next(now)

    def _harvest(self, now: float) -> None:
        """Consume experiments whose feedback has fully arrived."""
        while self._experiments:
            kind, rate, window = self._experiments[0]
            if not window.settled(now, self._srtt):
                break
            self._experiments.pop(0)
            measured = window.measure()
            if measured is None:
                continue
            throughput, gradient, loss_rate = measured
            value = utility(throughput / 1e6, gradient, loss_rate, self.params)
            self._consume(kind, rate, value)

    def _consume(self, kind: int, rate: float, value: float) -> None:
        if kind == _STARTING:
            if self._last_utility is not None and value < self._last_utility:
                if self.state == _STARTING:
                    self.state = _PROBE_UP
                    self.base_rate = max(rate / 2.0, self.MIN_RATE)
            self._last_utility = value
        elif kind in (_PROBE_UP, _PROBE_DOWN):
            self._probe_results[kind] = value
            if len(self._probe_results) == 2:
                self._finish_probe_pair()
        else:
            self._last_utility = value

    def _finish_probe_pair(self) -> None:
        u_up = self._probe_results.pop(_PROBE_UP)
        u_down = self._probe_results.pop(_PROBE_DOWN)
        base_mbps = self.base_rate / 1e6
        gradient = (u_up - u_down) / max(2.0 * EPSILON * base_mbps, 1e-9)
        direction = 1 if gradient > 0 else -1
        if direction == self._last_direction:
            self._amplifier = min(self._amplifier + 1, MAX_AMPLIFIER)
        else:
            self._amplifier = 0
        self._last_direction = direction
        step_mbps = THETA * (1 + self._amplifier) * gradient
        boundary = (OMEGA_BASE + self._amplifier * OMEGA_STEP) * base_mbps
        step_mbps = max(-boundary, min(boundary, step_mbps))
        self.base_rate = max((base_mbps + step_mbps) * 1e6, self.MIN_RATE)

    def _schedule_next(self, now: float) -> None:
        if self.state == _STARTING:
            self.base_rate = min(self.base_rate * 2.0, self.MAX_RATE)
            kind, rate = _STARTING, self.base_rate
        elif self.state == _PROBE_UP:
            kind, rate = _PROBE_UP, self.base_rate * (1.0 + EPSILON)
            self.state = _PROBE_DOWN
        elif self.state == _PROBE_DOWN:
            kind, rate = _PROBE_DOWN, self.base_rate * (1.0 - EPSILON)
            self.state = _MOVING
        else:
            kind, rate = _MOVING, self.base_rate
            self.state = _PROBE_UP
        window = AckWindow(now)
        self._current_window = window
        self._experiments.append((kind, rate, window))
        if len(self._experiments) > 32:
            self._experiments.pop(0)  # stale feedback guard
        self.set_rate(rate)

    def cwnd(self) -> float:
        return max(2.0 * self.rate_bps * max(self._srtt, 0.01) / 8.0,
                   4.0 * self.mss)
