"""Remy-like computer-generated rule table (Winstein & Balakrishnan 2013).

RemyCC maps a three-feature congestion signature — EWMA of ACK
inter-arrivals, EWMA of send inter-arrivals, and the RTT ratio — to a
window action (multiplier, increment, minimum send spacing) through a
table optimized offline for an assumed network model.  We ship a small
hand-constructed table with the qualitative structure Remy's optimizer
produces (aggressive growth while signals look uncongested, sharp
multiplicative backoff as the RTT ratio climbs); outside the assumed
model Remy degrades, as the paper observes.  Substitution documented in
DESIGN.md (the Remy optimizer itself is days of CPU time).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cca.base import Controller
from ..simnet.packet import AckSample, LossSample

EWMA_ALPHA = 0.125


@dataclass(frozen=True)
class RemyRule:
    """One table entry: signature bounds -> window action."""

    rtt_ratio_max: float     # rule applies while rtt_ratio < this bound
    window_multiple: float
    window_increment: float  # packets per RTT


#: ordered rule table (first matching row wins)
DEFAULT_TABLE: tuple[RemyRule, ...] = (
    RemyRule(rtt_ratio_max=1.05, window_multiple=1.0, window_increment=2.0),
    RemyRule(rtt_ratio_max=1.20, window_multiple=1.0, window_increment=1.0),
    RemyRule(rtt_ratio_max=1.60, window_multiple=1.0, window_increment=0.25),
    RemyRule(rtt_ratio_max=2.50, window_multiple=0.98, window_increment=0.0),
    RemyRule(rtt_ratio_max=float("inf"), window_multiple=0.85, window_increment=0.0),
)


class Remy(Controller):
    """Rule-table window control on (ack EWMA, send EWMA, RTT ratio)."""

    name = "remy"
    userspace = True

    def __init__(self, table: tuple[RemyRule, ...] = DEFAULT_TABLE,
                 initial_cwnd_packets: int = 10):
        super().__init__()
        self.table = table
        self._initial_cwnd_packets = initial_cwnd_packets
        self.cwnd_bytes = initial_cwnd_packets * 1500.0
        self.ack_ewma = 0.0
        self.send_ewma = 0.0
        self._last_ack_time: float | None = None
        self._last_send_time: float | None = None
        self._min_rtt = float("inf")
        self._last_apply = 0.0

    def start(self, now: float, mss: int) -> None:
        super().start(now, mss)
        self.cwnd_bytes = float(self._initial_cwnd_packets * mss)

    def _update_ewmas(self, ack: AckSample) -> None:
        if self._last_ack_time is not None:
            gap = ack.now - self._last_ack_time
            self.ack_ewma = ((1 - EWMA_ALPHA) * self.ack_ewma
                             + EWMA_ALPHA * gap) if self.ack_ewma else gap
        self._last_ack_time = ack.now
        if self._last_send_time is not None:
            gap = ack.sent_time - self._last_send_time
            self.send_ewma = ((1 - EWMA_ALPHA) * self.send_ewma
                              + EWMA_ALPHA * gap) if self.send_ewma else gap
        self._last_send_time = ack.sent_time

    def on_ack(self, ack: AckSample) -> None:
        self.meter.count("per_ack")
        self._min_rtt = min(self._min_rtt, ack.min_rtt)
        self._update_ewmas(ack)
        rtt_ratio = ack.rtt / self._min_rtt if self._min_rtt > 0 else 1.0
        rule = self._match(rtt_ratio)
        per_ack_increment = rule.window_increment * self.mss * ack.acked_bytes \
            / max(self.cwnd_bytes, self.mss)
        self.cwnd_bytes += per_ack_increment
        # Apply the multiple at most once per RTT (a whole-window action).
        if ack.now - self._last_apply >= ack.srtt and rule.window_multiple != 1.0:
            self._last_apply = ack.now
            self.cwnd_bytes *= rule.window_multiple
        self.cwnd_bytes = max(self.cwnd_bytes, 2.0 * self.mss)

    def _match(self, rtt_ratio: float) -> RemyRule:
        for rule in self.table:
            if rtt_ratio < rule.rtt_ratio_max:
                return rule
        return self.table[-1]

    def on_loss(self, loss: LossSample) -> None:
        # Remy's signature-driven rules dominate; losses only nudge it.
        self.cwnd_bytes = max(self.cwnd_bytes * 0.95, 2.0 * self.mss)

    def cwnd(self) -> float:
        return self.cwnd_bytes
