"""Orca (Abbasloo et al., SIGCOMM 2020): classic-meets-modern baseline.

Orca runs CUBIC in the kernel and, once per monitor interval, lets a DRL
agent rescale the congestion window: ``cwnd <- cwnd * 2^a`` with
``a in [-2, 2]``.  Unlike Libra there is no evaluation stage — the
agent's decision is applied directly, which is exactly the failure mode
the paper highlights (Fig. 2(a)/(b)): an occasional bad action degrades
performance with nothing to catch it.

The agent samples its action from the policy distribution (the reference
implementation keeps the stochastic policy at inference), which is the
source of Orca's run-to-run variability in Tab. 6.
"""

from __future__ import annotations

import numpy as np

from ..cca.base import Controller
from ..cca.cubic import Cubic
from ..env.features import FeatureSet, STATE_SETS, StateBuilder
from ..simnet.packet import AckSample, IntervalReport, LossSample
from ..env.bridge import measurement_from_report

ACTION_CLIP = 2.0


class Orca(Controller):
    """CUBIC + per-MI DRL cwnd multiplier (no evaluation safeguard)."""

    name = "orca"

    def __init__(self, policy, feature_set: FeatureSet | None = None,
                 history: int = 8, deterministic: bool = False, seed: int = 0):
        super().__init__()
        self.policy = policy
        self.cubic = Cubic()
        self.cubic.meter = self.meter
        self.builder = StateBuilder(feature_set or STATE_SETS["orca"], history)
        self.deterministic = deterministic
        self.rng = np.random.default_rng(seed)
        self._srtt = 0.1
        self._min_rtt = float("inf")
        if policy is not None and policy.obs_dim != self.builder.dim:
            raise ValueError(
                f"policy expects obs_dim={policy.obs_dim}, "
                f"feature set provides {self.builder.dim}")

    def start(self, now: float, mss: int) -> None:
        super().start(now, mss)
        self.cubic.start(now, mss)

    def on_ack(self, ack: AckSample) -> None:
        self._srtt = ack.srtt
        self._min_rtt = min(self._min_rtt, ack.min_rtt)
        self.cubic.on_ack(ack)

    def on_loss(self, loss: LossSample) -> None:
        self.cubic.on_loss(loss)

    def interval(self) -> float:
        return max(self._srtt, 0.01)

    def on_interval(self, report: IntervalReport) -> None:
        min_rtt = self._min_rtt if self._min_rtt < float("inf") else self._srtt
        rate = self.cubic.rate_estimate(max(self._srtt, 1e-3))
        state = self.builder.push(measurement_from_report(report, rate, min_rtt))
        if self.policy is None or not report.has_feedback:
            return
        action, _, _ = self.policy.act(state, self.rng,
                                       deterministic=self.deterministic)
        self.meter.count("nn_forward", self.policy.actor.flops_per_forward)
        a = float(np.clip(action[0], -ACTION_CLIP, ACTION_CLIP))
        self.cubic.cwnd_bytes = max(self.cubic.cwnd_bytes * 2.0 ** a,
                                    self.cubic.min_cwnd_bytes)

    def pacing_rate(self) -> float | None:
        return None

    def cwnd(self) -> float:
        return self.cubic.cwnd()
