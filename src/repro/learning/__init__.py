"""Learning-based congestion control baselines.

From-scratch implementations of the published control laws of Aurora,
Orca, PCC Vivace, PCC Proteus, Indigo, Remy, and the paper's Modified RL
ablation.  See DESIGN.md for where stand-ins were necessary.
"""

from .aurora import Aurora
from .indigo import Indigo
from .modified_rl import ModifiedRL
from .orca import Orca
from .proteus import Proteus
from .remy import Remy
from .vivace import Vivace

__all__ = ["Aurora", "Indigo", "ModifiedRL", "Orca", "Proteus", "Remy",
           "Vivace"]
