"""Operation metering for the overhead cost model.

Real CPU utilization of a Python simulator says nothing about the paper's
kernel/userspace deployment, so overhead is reproduced *structurally*:
every controller meters the work it performs (per-ACK updates, per-MI
updates, neural-network forward/backward passes, gradient
micro-experiments), and :mod:`repro.overhead.costmodel` converts the
counters into a pseudo-CPU utilization.  This preserves exactly the effect
the paper measures in Fig. 2(c)/Fig. 12: Libra runs its DRL agent only in
the exploration stage, Orca every MI, and PCC-style CCAs burn cycles on
userspace per-packet processing plus continuous micro-experiments.
"""

from __future__ import annotations


class CostMeter:
    """Accumulates labelled operation counts for one controller instance."""

    __slots__ = ("counts",)

    CATEGORIES = (
        "per_ack",         # classic per-ACK bookkeeping
        "per_mi",          # monitor-interval bookkeeping
        "nn_forward",      # flops of NN forward passes
        "nn_backward",     # flops of NN backward passes
        "gradient_probe",  # PCC-style utility-gradient micro-experiments
        "userspace_packet",  # per-packet userspace datapath handling
        "telemetry",       # trace-recording operations (zero when disabled;
                           # the overhead guard test asserts exactly that)
    )

    def __init__(self) -> None:
        self.counts: dict[str, float] = {c: 0.0 for c in self.CATEGORIES}

    def count(self, category: str, amount: float = 1.0) -> None:
        if category not in self.counts:
            raise KeyError(f"unknown meter category {category!r}")
        self.counts[category] += amount

    def merge(self, other: "CostMeter") -> None:
        for key, value in other.counts.items():
            self.counts[key] += value

    def total(self, weights: dict[str, float]) -> float:
        """Weighted total cost (abstract cost units)."""
        return sum(self.counts[c] * weights.get(c, 0.0) for c in self.CATEGORIES)

    def reset(self) -> None:
        for key in self.counts:
            self.counts[key] = 0.0

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.0f}" for k, v in self.counts.items() if v)
        return f"CostMeter({inner})"
