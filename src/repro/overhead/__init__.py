"""Overhead metering and the pseudo-CPU cost model (Fig. 2(c), Fig. 12)."""

from .meter import CostMeter

__all__ = ["CostMeter"]
