"""Pseudo-CPU cost model (Fig. 2(c), Fig. 12).

Converts metered operation counts into a CPU-utilization proxy.  The
weights encode the structural cost differences the paper measures:

- kernel CCAs pay a small per-ACK cost (``per_ack``),
- userspace CCAs additionally pay a per-packet datapath cost
  (``userspace_packet``) — this is why Copa/Indigo/Vivace/Proteus sit
  high even without neural networks,
- DRL agents pay their network's flops per inference (``nn_forward``),
- PCC-style online learners pay for gradient micro-experiments.

``CPU_BUDGET`` (cost units one core executes per second) is calibrated
so PCC Proteus lands near the paper's 88.7 % CPU on a 24 Mbps LTE-class
link; every other number is then *derived*, not fitted.  EXPERIMENTS.md
records where the derived ratios deviate from the paper's.
"""

from __future__ import annotations

from ..cca.base import Controller

WEIGHTS: dict[str, float] = {
    "per_ack": 10.0,
    "per_mi": 200.0,
    "nn_forward": 1.0,        # per flop
    "nn_backward": 1.0,       # per flop
    "gradient_probe": 30_000.0,
    "userspace_packet": 150.0,
}

#: abstract cost units per second of one saturated core
CPU_BUDGET = 1.8e6

#: normalized memory-footprint model (Fig. 2(c) right bars): a kernel CCA
#: holds per-socket state only; userspace stacks buffer packets; DRL
#: agents additionally hold their model and framework runtime.
MEMORY_UNITS = {"kernel": 1.0, "userspace": 4.0, "nn_runtime": 6.0}


def controller_cost_units(controller: Controller) -> float:
    """Total metered cost of one controller, in abstract units."""
    return controller.meter.total(WEIGHTS)


def cpu_utilization(controller: Controller, duration: float) -> float:
    """CPU utilization proxy in [0, 1] for a flow that ran ``duration`` s."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    return min(controller_cost_units(controller) / duration / CPU_BUDGET, 1.0)


def memory_units(controller: Controller) -> float:
    """Relative memory footprint for the Fig. 2(c) memory bars."""
    units = MEMORY_UNITS["kernel"]
    if controller.userspace:
        units += MEMORY_UNITS["userspace"]
    policy = getattr(controller, "policy", None)
    if policy is not None:
        units += MEMORY_UNITS["nn_runtime"]
        units += sum(p.size for p in policy.params) / 20_000.0
    # Libra's classic component lives in the kernel; its RL agent is the
    # only userspace part, which the `policy` term already covers.
    return units
