"""Seeded flow-churn workload generator.

A :class:`ChurnSpec` describes a dynamic flow population; -
:func:`churn_flows` realizes it into a tuple of
:class:`~repro.parallel.jobs.FlowSpec` — plain data, so a churn job is a
regular :class:`~repro.parallel.jobs.Job` and inherits the fork pool,
the content-addressed cache (the spec's parameters land in the key via
the flow tuple), the sanitizer and the differential oracle for free.

Determinism contract: all randomness comes from one
:func:`~repro.simnet.distributions.churn_rng` stream keyed on
``(CHURN_STREAM_TAG, spec.seed, run_seed)``, consumed in a fixed,
documented order:

1. **arrivals** — one uniform block of ``n_flows`` draws
   (:func:`~repro.simnet.distributions.poisson_arrivals`);
2. **sizes** — one block of ``n_flows`` draws (uniform for
   bounded-Pareto, standard-normal for lognormal);
3. **on/off gate** — one uniform block of ``n_flows`` draws, *only*
   when ``onoff_fraction > 0``;
4. **off gaps** — one exponential block of
   ``n_onoff * (onoff_phases - 1)`` draws, only when some flow gated
   on/off;
5. **RTT classes** — one uniform block of ``n_flows`` draws
   (:func:`~repro.simnet.distributions.weighted_classes`), *only* when
   the spec has more than one RTT class;
6. **trace reservoir** — one uniform draw per emitted flow past
   ``trace_cap`` (:func:`~repro.simnet.distributions.reservoir_indices`).

Identical ``(spec, run_seed)`` therefore yields a bit-identical flow
tuple on any platform, serially or inside a fork-pool child.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..parallel.jobs import FlowSpec, Job
from ..simnet.distributions import (bounded_pareto, churn_rng,
                                    lognormal_sizes, poisson_arrivals,
                                    reservoir_indices, weighted_classes)

KB = 1000.0


@dataclass(frozen=True)
class ChurnSpec:
    """One dynamic-workload description (frozen: hashable, cache-stable).

    ``n_flows`` application sessions arrive as a Poisson process over
    ``[0, arrival_window)``.  Each draws a flow size from the configured
    heavy-tailed distribution; a fraction of sessions are *on/off
    applications* whose size is split evenly across ``onoff_phases``
    finite flows launched open-loop — phase ``k`` starts an exponential
    think-gap after phase ``k-1``'s start, independent of completion,
    the standard open-loop session model.  RTT heterogeneity comes from
    weighted ``(extra_rtt_s, weight)`` classes.  ``trace_cap`` bounds
    how many emitted flows carry dense telemetry on traced runs
    (reservoir-sampled, so the traced subset is unbiased).
    """

    name: str
    n_flows: int
    arrival_window: float
    duration: float
    size_dist: str = "pareto"         # "pareto" | "lognormal"
    pareto_alpha: float = 1.2
    min_kb: float = 30.0
    max_kb: float = 10_000.0
    lognormal_median_kb: float = 200.0
    lognormal_sigma: float = 1.5
    onoff_fraction: float = 0.0
    onoff_phases: int = 3
    off_mean_s: float = 0.5
    #: weighted (extra one-way-ish delay in seconds, weight) classes
    rtt_classes: tuple = ((0.0, 1.0),)
    trace_cap: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_flows <= 0:
            raise ValueError("n_flows must be positive")
        if self.arrival_window <= 0 or self.duration <= 0:
            raise ValueError("arrival_window and duration must be positive")
        if self.size_dist not in ("pareto", "lognormal"):
            raise ValueError(f"unknown size_dist {self.size_dist!r}")
        if not 0.0 <= self.onoff_fraction <= 1.0:
            raise ValueError("onoff_fraction must be a fraction")
        if self.onoff_phases < 2 and self.onoff_fraction > 0:
            raise ValueError("on/off sessions need at least two phases")
        if self.trace_cap < 0:
            raise ValueError("trace_cap must be non-negative")

    def with_(self, **changes) -> "ChurnSpec":
        return replace(self, **changes)

    def offered_load(self, capacity_bps: float) -> float:
        """Mean offered load as a fraction of ``capacity_bps``.

        Expected total bytes (distribution mean × ``n_flows``) turned
        into a rate over the arrival window — the normalized load knob
        the scale experiment sweeps.
        """
        if self.size_dist == "pareto":
            a, lo, hi = self.pareto_alpha, self.min_kb * KB, self.max_kb * KB
            if a == 1.0:
                import math

                mean = math.log(hi / lo) / (1.0 / lo - 1.0 / hi)
            else:
                mean = (a * lo ** a) / (a - 1.0) \
                    * (lo ** (1.0 - a) - hi ** (1.0 - a)) \
                    / (1.0 - (lo / hi) ** a)
        else:
            import math

            mean = self.lognormal_median_kb * KB \
                * math.exp(self.lognormal_sigma ** 2 / 2.0)
        return self.n_flows * mean * 8.0 / self.arrival_window / capacity_bps


def churn_flows(spec: ChurnSpec, cca: str,
                run_seed: int = 0) -> tuple[FlowSpec, ...]:
    """Realize ``spec`` into a deterministic tuple of flow specs.

    Flow seeds are sequential over emitted flows, so every sender gets
    an independent controller stream; ``run_seed`` varies the workload
    realization without touching the spec (see module docstring for the
    exact draw order).
    """
    rng = churn_rng(spec.seed, run_seed)
    n = spec.n_flows
    arrivals = poisson_arrivals(rng, n, spec.arrival_window)
    if spec.size_dist == "pareto":
        sizes = bounded_pareto(rng, n, spec.pareto_alpha,
                               spec.min_kb * KB, spec.max_kb * KB)
    else:
        sizes = lognormal_sizes(rng, n, spec.lognormal_median_kb * KB,
                                spec.lognormal_sigma)
    if spec.onoff_fraction > 0.0:
        onoff = rng.random(n) < spec.onoff_fraction
        gaps = rng.exponential(spec.off_mean_s,
                               size=int(onoff.sum()) * (spec.onoff_phases - 1))
    else:
        onoff = None
        gaps = None
    if len(spec.rtt_classes) > 1:
        class_idx = weighted_classes(rng, n,
                                     [w for _, w in spec.rtt_classes])
    else:
        class_idx = None

    flows = []
    gap_i = 0
    for i in range(n):
        start = float(arrivals[i])
        size = max(float(sizes[i]), 1500.0)
        extra_rtt = 0.0 if class_idx is None \
            else float(spec.rtt_classes[int(class_idx[i])][0])
        if onoff is not None and onoff[i]:
            phase_bytes = size / spec.onoff_phases
            when = start
            for k in range(spec.onoff_phases):
                if k > 0:
                    when += float(gaps[gap_i])
                    gap_i += 1
                flows.append((when, phase_bytes, extra_rtt))
        else:
            flows.append((start, size, extra_rtt))

    traced = set(reservoir_indices(rng, len(flows), spec.trace_cap))
    return tuple(
        FlowSpec.make(cca, seed=idx, start=start, bytes=size,
                      extra_rtt=extra_rtt, traced=idx in traced)
        for idx, (start, size, extra_rtt) in enumerate(flows))


def churn_job(spec: ChurnSpec, cca: str, scenario, seed: int = 0,
              duration: float | None = None, telemetry: bool = False,
              sanitize: bool = False) -> Job:
    """A regular :class:`Job` running ``spec``'s flow population.

    The churn parameters reach the parallel cache key through the flow
    tuple (sizes, starts, traced flags are all FlowSpec fields), so two
    different specs can never collide on a cached result.
    """
    job = Job(scenario=scenario, flows=churn_flows(spec, cca, seed),
              seed=seed, duration=duration if duration is not None
              else spec.duration, sanitize=1 if sanitize else 0)
    return job.with_telemetry() if telemetry else job


#: the named workloads the scale experiment, bench and CI address
CHURN_PRESETS: dict[str, ChurnSpec] = {
    "churn-smoke": ChurnSpec(
        name="churn-smoke", n_flows=32, arrival_window=4.0, duration=10.0,
        min_kb=30.0, max_kb=2_000.0, trace_cap=8, seed=101),
    "churn-128": ChurnSpec(
        name="churn-128", n_flows=128, arrival_window=8.0, duration=20.0,
        min_kb=30.0, max_kb=5_000.0, onoff_fraction=0.25,
        rtt_classes=((0.0, 0.5), (0.02, 0.3), (0.05, 0.2)),
        trace_cap=16, seed=102),
    "churn-256": ChurnSpec(
        name="churn-256", n_flows=256, arrival_window=10.0, duration=25.0,
        min_kb=30.0, max_kb=5_000.0, onoff_fraction=0.25,
        rtt_classes=((0.0, 0.5), (0.02, 0.3), (0.05, 0.2)),
        trace_cap=16, seed=103),
    # 512 sessions arriving inside 2 s with sizes far above the
    # per-flow fair share — concurrency peaks near the full population
    # (the acceptance target for `repro experiment scale`).
    "churn-512": ChurnSpec(
        name="churn-512", n_flows=512, arrival_window=2.0, duration=30.0,
        pareto_alpha=1.1, min_kb=200.0, max_kb=5_000.0,
        rtt_classes=((0.0, 0.5), (0.02, 0.3), (0.05, 0.2)),
        trace_cap=16, seed=104),
}


def churn_preset(name: str) -> ChurnSpec:
    """Look up a named churn workload (KeyError lists the options)."""
    try:
        return CHURN_PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown churn preset {name!r}; choose from "
                       f"{sorted(CHURN_PRESETS)}") from None
