"""Flow-churn workloads: dynamic multi-flow populations at scale.

:mod:`repro.scale.churn` generates seeded workloads — Poisson arrivals,
heavy-tailed flow sizes, on/off application sessions, per-class RTT
heterogeneity — as plain :class:`~repro.parallel.jobs.FlowSpec` tuples,
so churn jobs ride the existing parallel/cache/sanitize machinery
unchanged.  :mod:`repro.scale.summary` reduces a churn run to the
schema-versioned FCT/fairness summary document the scale experiment and
CI publish.
"""

from .churn import (CHURN_PRESETS, ChurnSpec, churn_flows, churn_job,
                    churn_preset)
from .summary import (SUMMARY_SCHEMA_VERSION, build_summary,
                      validate_summary)

__all__ = ["CHURN_PRESETS", "ChurnSpec", "SUMMARY_SCHEMA_VERSION",
           "build_summary", "churn_flows", "churn_job", "churn_preset",
           "validate_summary"]
