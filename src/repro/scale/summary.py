"""Schema-versioned summary documents for churn runs.

One churn run reduces to a small JSON-serializable document — tail FCT
by size class, windowed fairness, utilization vs. concurrency — that the
scale experiment aggregates and the CI smoke job publishes as an
artifact.  :func:`validate_summary` is the dependency-free schema check
(the container has no ``jsonschema``): required keys, types and ranges,
raising ``ValueError`` with the offending path.
"""

from __future__ import annotations

from ..metrics import fct_summary, window_series

SUMMARY_SCHEMA_VERSION = 1

#: windowed metrics use this window width (seconds)
WINDOW_S = 1.0


def build_summary(result, spec, cca: str) -> dict:
    """Reduce one churn :class:`~repro.simnet.network.RunResult`.

    ``spec`` is the :class:`~repro.scale.churn.ChurnSpec` that generated
    the run's flow population; the document carries everything the scale
    tables and the CI artifact need, and nothing per-packet.
    """
    duration = result.duration
    capacity_bps = result.link_capacity_bytes * 8.0 / max(duration, 1e-9)
    windows = window_series(result.flows, duration, WINDOW_S, capacity_bps)
    jains = [w["jain"] for w in windows if w["jain"] is not None]
    utils = [w["utilization"] for w in windows]
    concs = [w["concurrency"] for w in windows]
    completed = sum(1 for s in result.flows if s.fin_time is not None)
    doc = {
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "workload": spec.name,
        "cca": cca,
        "scenario": "",          # filled by the caller (experiment/CI)
        "seed": 0,               # filled by the caller
        "engine": result.engine_used,
        "duration": float(duration),
        "offered_load": spec.offered_load(capacity_bps),
        "flows": len(result.flows),
        "completed": completed,
        "completion_rate": completed / len(result.flows)
        if result.flows else 0.0,
        "fct": fct_summary(result.flows),
        "fairness": {
            "windows": len(jains),
            "jain_mean": sum(jains) / len(jains) if jains else None,
            "jain_min": min(jains) if jains else None,
        },
        "utilization": {
            "mean": sum(utils) / len(utils) if utils else 0.0,
            "peak": max(utils) if utils else 0.0,
        },
        "concurrency": {
            "mean": sum(concs) / len(concs) if concs else 0.0,
            "peak": max(concs) if concs else 0.0,
        },
    }
    return doc


def _expect(doc: dict, key: str, kinds, where: str) -> None:
    if key not in doc:
        raise ValueError(f"summary missing {where}{key}")
    if not isinstance(doc[key], kinds):
        raise ValueError(f"summary field {where}{key} has type "
                         f"{type(doc[key]).__name__}, expected "
                         f"{'/'.join(k.__name__ for k in kinds)}")


def validate_summary(doc: dict) -> dict:
    """Structural schema check; returns ``doc`` so calls compose."""
    if not isinstance(doc, dict):
        raise ValueError("summary must be a dict")
    _expect(doc, "schema_version", (int,), "")
    if doc["schema_version"] != SUMMARY_SCHEMA_VERSION:
        raise ValueError(f"summary schema_version {doc['schema_version']} "
                         f"!= {SUMMARY_SCHEMA_VERSION}")
    for key in ("workload", "cca", "scenario", "engine"):
        _expect(doc, key, (str,), "")
    _expect(doc, "seed", (int,), "")
    for key in ("duration", "offered_load", "completion_rate"):
        _expect(doc, key, (int, float), "")
    for key in ("flows", "completed"):
        _expect(doc, key, (int,), "")
        if doc[key] < 0:
            raise ValueError(f"summary field {key} is negative")
    if doc["completed"] > doc["flows"]:
        raise ValueError("summary reports more completions than flows")
    if not 0.0 <= doc["completion_rate"] <= 1.0:
        raise ValueError("completion_rate outside [0, 1]")

    _expect(doc, "fct", (dict,), "")
    fct = doc["fct"]
    _expect(fct, "classes", (dict,), "fct.")
    _expect(fct, "overall", (dict,), "fct.")
    for name, cell in list(fct["classes"].items()) + [("overall",
                                                       fct["overall"])]:
        where = f"fct.{name}."
        for key in ("count", "completed"):
            _expect(cell, key, (int,), where)
        _expect(cell, "completion_rate", (int, float), where)
        for key in ("p50", "p95", "p99", "mean"):
            if key in cell and not isinstance(cell[key], (int, float)):
                raise ValueError(f"summary field {where}{key} must be "
                                 f"numeric")
        if cell["completed"] and "p99" not in cell:
            raise ValueError(f"summary field {where}p99 missing despite "
                             f"completed flows")

    _expect(doc, "fairness", (dict,), "")
    _expect(doc["fairness"], "windows", (int,), "fairness.")
    for key in ("jain_mean", "jain_min"):
        value = doc["fairness"].get(key)
        if value is not None and not 0.0 <= value <= 1.0 + 1e-9:
            raise ValueError(f"summary field fairness.{key}={value!r} "
                             f"outside [0, 1]")
    for group in ("utilization", "concurrency"):
        _expect(doc, group, (dict,), "")
        for key in ("mean", "peak"):
            _expect(doc[group], key, (int, float), f"{group}.")
            if doc[group][key] < 0:
                raise ValueError(f"summary field {group}.{key} is negative")
    if doc["utilization"]["peak"] > 1.0 + 1e-9:
        raise ValueError("utilization.peak exceeds 1")
    return doc
