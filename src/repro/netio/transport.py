"""Asyncio UDP transport: the real-socket serving path.

``NetioServer`` is the receive side: it answers a JSON ``SYN``
handshake, feeds every data datagram through a
:class:`~repro.netio.rxbuf.SRReceiver`, and acknowledges each one with
cumulative + SACK feedback and its delivered-bytes counter.
``NetioClient`` is the send side: an :class:`AsyncClock`-driven pacing
loop that transmits at whatever rate the (unchanged) congestion
controller decides, a :class:`~repro.netio.arq.SRSender` for
reliability, and a :class:`~repro.netio.adapter.CCAAdapter` feeding the
controller the same signal stream the simulator produces.

The sender deliberately mirrors :class:`repro.simnet.endpoint.Sender`'s
structure — pacing gate, congestion-window gate, monitor-interval timer,
RTO fallback — so a controller cannot tell which datapath it is on;
that is the sim-to-real claim the loopback parity test pins down.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from ..units import DEFAULT_MSS
from .adapter import CCAAdapter
from .arq import SRSender, TransferAbort
from .framing import (ACK, DATA, FIN, FINACK, SYN, SYNACK, AckPacket,
                      ControlPacket, DataPacket, FramingError, decode,
                      encode_ack, encode_control, encode_data)
from .impairment import ImpairmentProfile, LoopbackImpairment
from .rxbuf import SRReceiver

#: default UDP payload size: safely under the 1500-byte ethernet MTU
#: once UDP/IP headers are added
DEFAULT_UDP_MSS = 1200

#: handshake / teardown retry policy
CONTROL_RETRIES = 8
CONTROL_TIMEOUT = 0.5

#: idle cap on the send loop's wait so RTO checks always run
MAX_IDLE_WAIT = 0.05


class TransferTimeout(RuntimeError):
    """The transfer did not complete within the wall-clock budget."""


class AsyncClock:
    """Monotonic run-relative clock over the asyncio event loop.

    Centralizing ``now()`` keeps every timestamp the controller observes
    on one origin-zero axis — the same convention as the simulator's
    event loop, so telemetry from both datapaths lines up at t=0.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self.origin = loop.time()

    def now(self) -> float:
        return self._loop.time() - self.origin

    async def sleep(self, duration: float) -> None:
        if duration > 0:
            await asyncio.sleep(duration)


# -- server ------------------------------------------------------------------

@dataclass
class TransferStats:
    """Receive-side summary of one completed (or aborted) transfer."""

    peer: str
    started_at: float
    finished_at: float = 0.0
    bytes_released: float = 0.0     # in-order payload bytes
    bytes_delivered: float = 0.0    # novel payload bytes, any order
    received_packets: int = 0
    duplicate_packets: int = 0
    meta: dict = field(default_factory=dict)
    complete: bool = False

    @property
    def duration(self) -> float:
        return max(self.finished_at - self.started_at, 1e-9)

    @property
    def goodput_bps(self) -> float:
        return self.bytes_released * 8.0 / self.duration

    def summary(self) -> dict:
        return {"peer": self.peer, "bytes": self.bytes_released,
                "duration_s": round(self.duration, 6),
                "goodput_mbps": round(self.goodput_bps / 1e6, 4),
                "packets": self.received_packets,
                "duplicates": self.duplicate_packets,
                "complete": self.complete, "meta": self.meta}


class _Session:
    __slots__ = ("rx", "stats", "finished")

    def __init__(self, initial_seq: int, peer: str, now: float, meta: dict):
        self.rx = SRReceiver(initial_seq=initial_seq)
        self.stats = TransferStats(peer=peer, started_at=now, meta=meta)
        self.finished = False


class _ServerProtocol(asyncio.DatagramProtocol):
    def __init__(self, server: "NetioServer"):
        self.server = server
        self.transport = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.server._on_datagram(data, addr)

    def error_received(self, exc) -> None:  # pragma: no cover — OS-dependent
        pass


class NetioServer:
    """Reliable-UDP receive endpoint serving any number of transfers."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False):
        self.host = host
        self.port = port
        self.verbose = verbose
        self._transport = None
        self._sessions: dict = {}
        self._completed: asyncio.Queue = asyncio.Queue()
        self._clock: AsyncClock | None = None

    async def start(self) -> tuple[str, int]:
        loop = asyncio.get_running_loop()
        self._clock = AsyncClock(loop)
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _ServerProtocol(self), local_addr=(self.host, self.port))
        sockname = self._transport.get_extra_info("sockname")
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_one(self, timeout: float | None = None) -> TransferStats:
        """Wait for the next transfer to finish and return its stats."""
        return await asyncio.wait_for(self._completed.get(), timeout)

    async def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # -- datagram handling -------------------------------------------------

    def _on_datagram(self, data: bytes, addr) -> None:
        try:
            packet = decode(data)
        except FramingError:
            return  # garbage on the port: not our problem
        now = self._clock.now()
        peer = f"{addr[0]}:{addr[1]}"
        if isinstance(packet, ControlPacket):
            self._on_control(packet, addr, peer, now)
        elif isinstance(packet, DataPacket):
            session = self._sessions.get(addr)
            if session is None or session.finished:
                return  # no handshake (or late duplicate): client retries
            result = session.rx.on_data(packet)
            stats = session.stats
            stats.received_packets += 1
            if result.duplicate:
                stats.duplicate_packets += 1
            stats.bytes_delivered = result.delivered_bytes
            stats.bytes_released = session.rx.released_bytes
            self._transport.sendto(
                encode_ack(result.cum_ack, packet.seq, int(result.delivered_bytes),
                           result.sack_blocks), addr)

    def _on_control(self, packet: ControlPacket, addr, peer: str,
                    now: float) -> None:
        if packet.ptype == SYN:
            session = self._sessions.get(addr)
            if session is None or session.finished:
                isn = int(packet.meta.get("isn", 0))
                self._sessions[addr] = _Session(isn, peer, now, packet.meta)
                if self.verbose:
                    print(f"netio: {peer} connected "
                          f"({packet.meta.get('bytes', '?')} bytes, "
                          f"cca={packet.meta.get('cca', '?')})", flush=True)
            self._transport.sendto(encode_control(SYNACK, packet.seq), addr)
        elif packet.ptype == FIN:
            self._transport.sendto(encode_control(FINACK, packet.seq), addr)
            session = self._sessions.get(addr)
            if session is not None and not session.finished:
                session.finished = True
                stats = session.stats
                stats.finished_at = now
                expected = session.stats.meta.get("bytes")
                stats.complete = expected is None or \
                    stats.bytes_released >= expected
                self._completed.put_nowait(stats)
                if self.verbose:
                    print(f"netio: {peer} finished "
                          f"{stats.bytes_released:.0f} bytes in "
                          f"{stats.duration:.3f}s "
                          f"({stats.goodput_bps / 1e6:.2f} Mbps)", flush=True)


# -- client ------------------------------------------------------------------

@dataclass
class NetioResult:
    """Send-side summary of one reliable-UDP transfer."""

    cca: str
    bytes_total: int
    bytes_acked: float
    duration: float
    sent_packets: int
    acked_packets: int
    lost_packets: int
    retransmissions: int
    srtt: float
    min_rtt: float
    avg_rtt: float
    mi_reports: int
    impairment: dict = field(default_factory=dict)
    telemetry: object = None    # FlowTelemetry when the run was traced

    @property
    def throughput_bps(self) -> float:
        return self.bytes_acked * 8.0 / max(self.duration, 1e-9)

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6

    @property
    def loss_rate(self) -> float:
        return self.lost_packets / self.sent_packets if self.sent_packets \
            else 0.0

    def summary(self) -> dict:
        return {"cca": self.cca, "bytes": self.bytes_total,
                "bytes_acked": self.bytes_acked,
                "duration_s": round(self.duration, 6),
                "throughput_mbps": round(self.throughput_mbps, 4),
                "sent_packets": self.sent_packets,
                "acked_packets": self.acked_packets,
                "lost_packets": self.lost_packets,
                "retransmissions": self.retransmissions,
                "loss_rate": round(self.loss_rate, 6),
                "srtt_ms": round(self.srtt * 1e3, 3),
                "min_rtt_ms": round(self.min_rtt * 1e3, 3)
                if self.min_rtt != float("inf") else None,
                "avg_rtt_ms": round(self.avg_rtt * 1e3, 3),
                "mi_reports": self.mi_reports,
                "impairment": self.impairment}


class _ClientProtocol(asyncio.DatagramProtocol):
    def __init__(self, client: "NetioClient"):
        self.client = client
        self.transport = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.client._on_datagram(data)

    def error_received(self, exc) -> None:  # pragma: no cover — OS-dependent
        pass


class NetioClient:
    """Reliable-UDP send endpoint driven by one congestion controller."""

    def __init__(self, controller, data: bytes, mss: int = DEFAULT_UDP_MSS,
                 impairment: ImpairmentProfile | None = None, seed: int = 0,
                 recorder=None, initial_seq: int = 0, window: int = 1024,
                 cca_name: str | None = None):
        if mss <= 0 or mss > DEFAULT_MSS * 4:
            raise ValueError(f"mss must be in (0, {DEFAULT_MSS * 4}]")
        self.controller = controller
        self.cca_name = cca_name or getattr(controller, "name", "unknown")
        self.data = data
        self.mss = mss
        self.recorder = recorder
        self.arq = SRSender(window=window, initial_seq=initial_seq)
        self.adapter = CCAAdapter(controller, mss, recorder=recorder)
        self.impairment = LoopbackImpairment(impairment, seed=seed) \
            if impairment is not None and impairment.active else None
        self._offset = 0
        self._running = False
        self._ack_event: asyncio.Event | None = None
        self._control_waiters: dict[int, asyncio.Future] = {}
        self._transport = None
        self._clock: AsyncClock | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._rtt_sum = 0.0
        self._rtt_count = 0
        self._mi_reports = 0

    # -- top-level ---------------------------------------------------------

    async def run(self, host: str, port: int,
                  timeout: float = 120.0) -> NetioResult:
        """Transfer the payload; returns a :class:`NetioResult`."""
        self._loop = asyncio.get_running_loop()
        self._clock = AsyncClock(self._loop)
        self._ack_event = asyncio.Event()
        self._transport, _ = await self._loop.create_datagram_endpoint(
            lambda: _ClientProtocol(self), remote_addr=(host, port))
        try:
            return await asyncio.wait_for(self._run_inner(), timeout)
        except asyncio.TimeoutError:
            raise TransferTimeout(
                f"transfer of {len(self.data)} bytes to {host}:{port} "
                f"exceeded {timeout}s "
                f"({self.arq.acked_packets}/{self.arq.sent_packets} acked)") \
                from None
        finally:
            self._running = False
            self._transport.close()

    async def _run_inner(self) -> NetioResult:
        await self._handshake()
        start = self._clock.now()
        self.adapter.start(start)
        if self.recorder is not None:
            self.recorder.event("netio.handshake", start,
                                bytes=len(self.data), mss=self.mss,
                                cca=self.cca_name)
        self._running = True
        mi_task = asyncio.ensure_future(self._mi_loop())
        try:
            await self._send_loop()
        finally:
            self._running = False
            mi_task.cancel()
        end = self._clock.now()
        # Close out the final (possibly only) monitor interval so even a
        # transfer shorter than one telemetry tick produces samples.
        self.adapter.fire_interval(end, self.arq.inflight_bytes)
        self._mi_reports += 1
        await self._teardown(end)
        return self._result(end - start)

    # -- handshake / teardown ---------------------------------------------

    async def _control_roundtrip(self, ptype: int, reply: int, seq: int,
                                 meta: dict | None = None) -> None:
        datagram = encode_control(ptype, seq, meta)
        for _ in range(CONTROL_RETRIES):
            future = self._loop.create_future()
            self._control_waiters[reply] = future
            self._transport.sendto(datagram)
            try:
                await asyncio.wait_for(future, CONTROL_TIMEOUT)
                return
            except asyncio.TimeoutError:
                continue
            finally:
                self._control_waiters.pop(reply, None)
        raise TransferAbort(f"no response to control packet type {ptype} "
                            f"after {CONTROL_RETRIES} attempts")

    async def _handshake(self) -> None:
        await self._control_roundtrip(
            SYN, SYNACK, self.arq.next_seq,
            meta={"bytes": len(self.data), "mss": self.mss,
                  "cca": self.cca_name, "isn": self.arq.next_seq})

    async def _teardown(self, now: float) -> None:
        if self.recorder is not None:
            self.recorder.event("netio.fin", now,
                                retransmissions=self.arq.retransmissions)
        await self._control_roundtrip(FIN, FINACK, self.arq.next_seq)

    # -- send loop ---------------------------------------------------------

    def _all_queued(self) -> bool:
        return self._offset >= len(self.data)

    async def _send_loop(self) -> None:
        arq = self.arq
        adapter = self.adapter
        clock = self._clock
        next_send_time = clock.now()
        while True:
            now = clock.now()
            self._apply_outcome(arq.check_timeouts(now), now, timeout=True)
            if arq.done(self._all_queued()):
                return
            sent_bytes = 0
            if now >= next_send_time and \
                    adapter.window_allows(arq.inflight_bytes):
                if arq.has_retransmits:
                    record = arq.next_retransmit(now)
                    if record is not None:
                        self._transmit(record.seq, record.payload, True, now)
                        sent_bytes = len(record.payload)
                elif not self._all_queued() and arq.can_send_new():
                    chunk = self.data[self._offset:self._offset + self.mss]
                    seq = arq.register_send(chunk, now, marker=adapter.marker)
                    self._offset += len(chunk)
                    self._transmit(seq, chunk, False, now)
                    sent_bytes = len(chunk)
            if sent_bytes:
                pace = sent_bytes * 8.0 / adapter.effective_rate()
                next_send_time = max(next_send_time, now) + pace
                await asyncio.sleep(0)   # let inbound ACK callbacks run
                continue
            await self._idle_wait(now, next_send_time)

    async def _idle_wait(self, now: float, next_send_time: float) -> None:
        """Block until the pacing gate opens, an RTO could fire, or an
        ACK arrives — whichever comes first."""
        wait = MAX_IDLE_WAIT
        more_to_send = self.arq.has_retransmits or \
            (not self._all_queued() and self.arq.can_send_new())
        if more_to_send and next_send_time > now:
            wait = min(wait, next_send_time - now)
        deadline = self.arq.next_timeout_deadline()
        if deadline is not None:
            wait = min(wait, deadline - now)
        wait = max(wait, 0.0005)
        try:
            await asyncio.wait_for(self._ack_event.wait(), wait)
        except asyncio.TimeoutError:
            pass
        self._ack_event.clear()

    def _transmit(self, seq: int, payload: bytes, retransmit: bool,
                  now: float) -> None:
        datagram = encode_data(seq, payload, retransmit)
        if self.impairment is not None:
            self.impairment.send_data(self._loop, self._transport.sendto,
                                      datagram, retransmit)
        else:
            self._transport.sendto(datagram)
        self.adapter.on_sent(len(payload))
        if retransmit and self.recorder is not None:
            self.recorder.event("netio.retransmit", now, seq=seq)

    # -- inbound -----------------------------------------------------------

    def _on_datagram(self, data: bytes) -> None:
        try:
            packet = decode(data)
        except FramingError:
            return
        now = self._clock.now()
        if isinstance(packet, AckPacket):
            if not self._running:
                return
            if self.impairment is not None \
                    and not self.impairment.deliver_ack():
                return
            self._apply_outcome(self.arq.on_ack(packet, now), now)
            self._ack_event.set()
        elif isinstance(packet, ControlPacket):
            future = self._control_waiters.get(packet.ptype)
            if future is not None and not future.done():
                future.set_result(packet)

    def _apply_outcome(self, outcome, now: float, timeout: bool = False) -> None:
        arq = self.arq
        for seq, record, rtt in outcome.acked:
            if rtt is not None:
                self._rtt_sum += rtt
                self._rtt_count += 1
            elapsed = max(now - record.first_send, 1e-9)
            delivery_rate = (arq.delivered_bytes - record.delivered_at_send) \
                * 8.0 / elapsed
            self.adapter.on_acked(
                now, seq, len(record.payload), rtt, arq.srtt, arq.min_rtt,
                delivery_rate, arq.inflight_bytes, record.first_send,
                record.marker)
        for seq, record in outcome.newly_lost:
            self.adapter.on_lost(now, seq, len(record.payload),
                                 record.first_send, arq.inflight_bytes,
                                 record.marker)
        if timeout and outcome.newly_lost and self.recorder is not None:
            self.recorder.event("netio.rto", now,
                                lost=len(outcome.newly_lost),
                                rto=arq.rto)
        if outcome.newly_lost:
            self._ack_event.set()

    # -- monitor intervals -------------------------------------------------

    async def _mi_loop(self) -> None:
        while self._running:
            await self._clock.sleep(self.adapter.tick_interval())
            if not self._running:
                return
            now = self._clock.now()
            self._apply_outcome(self.arq.check_timeouts(now), now,
                                timeout=True)
            self.adapter.fire_interval(now, self.arq.inflight_bytes)
            self._mi_reports += 1

    # -- results -----------------------------------------------------------

    def _result(self, duration: float) -> NetioResult:
        arq = self.arq
        impairment = self.impairment.counters() if self.impairment else {}
        telemetry = None
        if self.recorder is not None:
            meta = {
                "transport": "netio-udp",
                "duration": duration,
                "flows": 1,
                "mss": self.mss,
                "cca": self.cca_name,
                "bytes_total": len(self.data),
                "bytes_acked": arq.delivered_bytes,
                "sent_packets": arq.sent_packets,
                "acked_packets": arq.acked_packets,
                "lost_packets": arq.lost_packets,
                "retransmissions": arq.retransmissions,
            }
            meta.update({f"impairment_{k}": v for k, v in impairment.items()})
            telemetry = self.recorder.finish(meta=meta)
        return NetioResult(
            cca=self.cca_name, bytes_total=len(self.data),
            bytes_acked=arq.delivered_bytes, duration=duration,
            sent_packets=arq.sent_packets, acked_packets=arq.acked_packets,
            lost_packets=arq.lost_packets,
            retransmissions=arq.retransmissions,
            srtt=arq.srtt, min_rtt=arq.min_rtt,
            avg_rtt=self._rtt_sum / self._rtt_count if self._rtt_count else 0.0,
            mi_reports=self._mi_reports, impairment=impairment,
            telemetry=telemetry)


async def send_payload(host: str, port: int, controller, data: bytes,
                       mss: int = DEFAULT_UDP_MSS,
                       impairment: ImpairmentProfile | None = None,
                       seed: int = 0, recorder=None, timeout: float = 120.0,
                       initial_seq: int = 0,
                       cca_name: str | None = None) -> NetioResult:
    """One-call client: transfer ``data`` to a :class:`NetioServer`."""
    client = NetioClient(controller, data, mss=mss, impairment=impairment,
                         seed=seed, recorder=recorder,
                         initial_seq=initial_seq, cca_name=cca_name)
    return await client.run(host, port, timeout=timeout)
