"""Asyncio UDP transport: the real-socket serving path.

``NetioServer`` is the receive side: it answers a JSON ``SYN``
handshake, feeds every data datagram through a
:class:`~repro.netio.rxbuf.SRReceiver`, and acknowledges each one with
cumulative + SACK feedback and its delivered-bytes counter.  Unlike the
happy-path-only first cut, the server is *supervised*: admission
control refuses SYNs past :class:`~repro.netio.lifecycle.ServerLimits`
(session cap, metadata validation, draining) with an explicit ``RST``,
a :class:`~repro.netio.lifecycle.DeadlineWheel`-driven reaper expires
idle sessions so a dead peer cannot leak its reorder buffer, and
:meth:`NetioServer.drain` performs a graceful shutdown — stop accepting
SYNs, finish in-flight transfers up to a deadline, flush telemetry.

``NetioClient`` is the send side: an :class:`AsyncClock`-driven pacing
loop that transmits at whatever rate the (unchanged) congestion
controller decides, a :class:`~repro.netio.arq.SRSender` for
reliability, and a :class:`~repro.netio.adapter.CCAAdapter` feeding the
controller the same signal stream the simulator produces.  It fails
fast instead of grinding into its wall-clock timeout: a server ``RST``
or a run of consecutive RTOs aborts the transfer with a structured
:class:`~repro.netio.arq.TransferAbort` reason, and handshake retries
back off exponentially with seeded jitter.

The sender deliberately mirrors :class:`repro.simnet.endpoint.Sender`'s
structure — pacing gate, congestion-window gate, monitor-interval timer,
RTO fallback — so a controller cannot tell which datapath it is on;
that is the sim-to-real claim the loopback parity test pins down.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from ..units import DEFAULT_MSS
from .adapter import CCAAdapter
from .arq import SRSender, TransferAbort
from .framing import (ACK, DATA, FIN, FINACK, RST, SYN, SYNACK, AckPacket,
                      ControlPacket, DataPacket, FramingError, decode,
                      encode_ack, encode_control, encode_data)
from .impairment import ImpairmentProfile, LoopbackImpairment
from .lifecycle import (RST_BAD_SYN, RST_DRAIN_DEADLINE, RST_DRAINING,
                        RST_IDLE_EXPIRED, RST_NO_SESSION, RST_SESSION_CAP,
                        DeadlineWheel, ServerLimits, validate_syn_meta)
from .rxbuf import SRReceiver

#: default UDP payload size: safely under the 1500-byte ethernet MTU
#: once UDP/IP headers are added
DEFAULT_UDP_MSS = 1200

#: handshake / teardown retry policy: per-attempt timeout doubles from
#: CONTROL_TIMEOUT up to CONTROL_TIMEOUT_CAP, with a seeded uniform
#: [0, CONTROL_JITTER) pause between attempts so concurrent clients
#: retrying a busy server desynchronize instead of thundering
CONTROL_RETRIES = 8
CONTROL_TIMEOUT = 0.5
CONTROL_TIMEOUT_CAP = 2.0
CONTROL_JITTER = 0.1

#: consecutive RTO firings without a single acked packet before the
#: client declares the peer gone (backstop for a lost RST)
MAX_CONSECUTIVE_RTOS = 6

#: idle cap on the send loop's wait so RTO checks always run
MAX_IDLE_WAIT = 0.05

#: finished-transfer stats queued before the oldest are dropped (a
#: server nobody calls serve_one() on must not grow without bound)
COMPLETED_BACKLOG = 4096


class TransferTimeout(RuntimeError):
    """The transfer did not complete within the wall-clock budget."""


class AsyncClock:
    """Monotonic run-relative clock over the asyncio event loop.

    Centralizing ``now()`` keeps every timestamp the controller observes
    on one origin-zero axis — the same convention as the simulator's
    event loop, so telemetry from both datapaths lines up at t=0.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self.origin = loop.time()

    def now(self) -> float:
        return self._loop.time() - self.origin

    async def sleep(self, duration: float) -> None:
        if duration > 0:
            await asyncio.sleep(duration)


# -- server ------------------------------------------------------------------

@dataclass
class TransferStats:
    """Receive-side summary of one completed (or aborted) transfer."""

    peer: str
    started_at: float
    finished_at: float = 0.0
    bytes_released: float = 0.0     # in-order payload bytes
    bytes_delivered: float = 0.0    # novel payload bytes, any order
    received_packets: int = 0
    duplicate_packets: int = 0
    buffer_drops: int = 0           # packets refused by the buffer cap
    sock_errors: int = 0            # socket-level errors during the session
    meta: dict = field(default_factory=dict)
    complete: bool = False
    aborted: str | None = None      # RST reason when the server closed it

    @property
    def duration(self) -> float:
        """Wall-clock lifetime; 0.0 while the session is still open, so
        an aborted session can never report absurd goodput."""
        if self.finished_at <= self.started_at:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def goodput_bps(self) -> float:
        duration = self.duration
        return self.bytes_released * 8.0 / duration if duration > 0 else 0.0

    def summary(self) -> dict:
        return {"peer": self.peer, "bytes": self.bytes_released,
                "duration_s": round(self.duration, 6),
                "goodput_mbps": round(self.goodput_bps / 1e6, 4),
                "packets": self.received_packets,
                "duplicates": self.duplicate_packets,
                "buffer_drops": self.buffer_drops,
                "sock_errors": self.sock_errors,
                "complete": self.complete, "aborted": self.aborted,
                "meta": self.meta}


class _Session:
    __slots__ = ("rx", "stats", "last_activity", "sock_errors_at_open")

    def __init__(self, initial_seq: int, peer: str, now: float, meta: dict,
                 max_buffer_bytes: int, sock_errors_at_open: int):
        self.rx = SRReceiver(initial_seq=initial_seq,
                             max_buffer_bytes=max_buffer_bytes)
        self.stats = TransferStats(peer=peer, started_at=now, meta=meta)
        self.last_activity = now
        self.sock_errors_at_open = sock_errors_at_open


class _ServerProtocol(asyncio.DatagramProtocol):
    def __init__(self, server: "NetioServer"):
        self.server = server
        self.transport = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.server._on_datagram(data, addr)

    def error_received(self, exc) -> None:
        self.server._on_sock_error(exc)


class NetioServer:
    """Reliable-UDP receive endpoint serving any number of transfers.

    ``limits`` is the server's operational budget (see
    :class:`~repro.netio.lifecycle.ServerLimits`); the health counters
    (``sessions_opened`` / ``sessions_reaped`` / ``sessions_rejected`` /
    ``rst_sent`` / ``sock_errors`` / ``malformed_datagrams``) and the
    ``live_sessions`` / ``buffered_bytes`` properties are what the chaos
    harness asserts its budgets against.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False, limits: ServerLimits | None = None,
                 recorder=None):
        self.host = host
        self.port = port
        self.verbose = verbose
        self.limits = limits or ServerLimits()
        self.recorder = recorder
        self._transport = None
        self._sessions: dict = {}
        self._completed: asyncio.Queue = asyncio.Queue(
            maxsize=COMPLETED_BACKLOG)
        self._clock: AsyncClock | None = None
        self._wheel = DeadlineWheel(granularity=self.limits.reap_granularity)
        self._reaper: asyncio.Task | None = None
        self._draining = False
        #: frozen FlowTelemetry after a drain (when a recorder was given)
        self.telemetry = None
        self.sessions_opened = 0
        self.sessions_reaped = 0
        self.sessions_rejected = 0
        self.rst_sent = 0
        self.sock_errors = 0
        self.malformed_datagrams = 0
        self.completed_dropped = 0

    async def start(self) -> tuple[str, int]:
        loop = asyncio.get_running_loop()
        self._clock = AsyncClock(loop)
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _ServerProtocol(self), local_addr=(self.host, self.port))
        sockname = self._transport.get_extra_info("sockname")
        self.host, self.port = sockname[0], sockname[1]
        self._reaper = loop.create_task(self._reap_loop())
        return self.host, self.port

    async def serve_one(self, timeout: float | None = None) -> TransferStats:
        """Wait for the next transfer to finish and return its stats."""
        return await asyncio.wait_for(self._completed.get(), timeout)

    def drain_completed(self) -> list[TransferStats]:
        """Every finished-transfer stats currently queued, non-blocking."""
        out = []
        while True:
            try:
                out.append(self._completed.get_nowait())
            except asyncio.QueueEmpty:
                return out

    @property
    def live_sessions(self) -> int:
        return len(self._sessions)

    @property
    def buffered_bytes(self) -> int:
        """Out-of-order bytes currently held across all live sessions."""
        return sum(s.rx.buffered_bytes for s in self._sessions.values())

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, deadline: float | None = None) -> dict:
        """Graceful shutdown: refuse new SYNs, wait up to ``deadline``
        (default ``limits.drain_deadline``) for in-flight transfers to
        finish, force-RST the stragglers, and flush telemetry.

        Returns a report dict; the frozen telemetry artifact (when the
        server was constructed with a recorder) lands on
        ``self.telemetry``.  The socket stays open so the final FINs and
        RSTs are deliverable — call :meth:`close` afterwards.
        """
        if deadline is None:
            deadline = self.limits.drain_deadline
        self._draining = True
        if self._clock is None:         # never started: nothing to wait on
            return {"waited_s": 0.0, "forced": 0, "completed_pending": 0}
        start = self._clock.now()
        self._record("netio.drain", start, phase="start",
                     sessions=len(self._sessions))
        poll = min(self.limits.reap_granularity, 0.05)
        while self._sessions and self._clock.now() - start < deadline:
            await asyncio.sleep(poll)
        now = self._clock.now()
        forced = len(self._sessions)
        for addr in list(self._sessions):
            self._abort_session(addr, RST_DRAIN_DEADLINE, now)
        self._record("netio.drain", now, phase="done", forced=forced)
        if self.verbose:
            print(f"netio: drain complete in {now - start:.3f}s "
                  f"({forced} session(s) force-reset)", flush=True)
        if self.recorder is not None:
            self.telemetry = self.recorder.finish(meta={
                "transport": "netio-udp", "role": "server",
                "sessions_opened": self.sessions_opened,
                "sessions_reaped": self.sessions_reaped,
                "sessions_rejected": self.sessions_rejected,
                "rst_sent": self.rst_sent,
                "sock_errors": self.sock_errors,
                "malformed_datagrams": self.malformed_datagrams,
                "drain_forced": forced})
        return {"waited_s": round(now - start, 6), "forced": forced,
                "completed_pending": self._completed.qsize()}

    async def close(self) -> None:
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # -- supervision -------------------------------------------------------

    async def _reap_loop(self) -> None:
        """Expire idle sessions at wheel granularity, O(expired) per tick."""
        while True:
            await asyncio.sleep(self.limits.reap_granularity)
            now = self._clock.now()
            for addr in self._wheel.expire(now):
                session = self._sessions.get(addr)
                if session is None:
                    continue
                self.sessions_reaped += 1
                self._record("netio.session_expired", now,
                             peer=session.stats.peer,
                             idle=round(now - session.last_activity, 6))
                self._abort_session(addr, RST_IDLE_EXPIRED, now)

    def _abort_session(self, addr, reason: str, now: float) -> None:
        session = self._sessions.pop(addr, None)
        if session is None:
            return
        self._wheel.cancel(addr)
        self._send_rst(addr, reason, now)
        self._finalize(session, now, complete=False, aborted=reason)

    def _finalize(self, session: _Session, now: float, complete: bool,
                  aborted: str | None = None) -> None:
        stats = session.stats
        stats.finished_at = now
        stats.complete = complete
        stats.aborted = aborted
        stats.buffer_drops = session.rx.buffer_drops
        stats.sock_errors = self.sock_errors - session.sock_errors_at_open
        self._record("netio.session_close", now, peer=stats.peer,
                     complete=complete, bytes=stats.bytes_released,
                     aborted=aborted or "")
        try:
            self._completed.put_nowait(stats)
        except asyncio.QueueFull:
            self.completed_dropped += 1
        if self.verbose:
            if complete:
                print(f"netio: {stats.peer} finished "
                      f"{stats.bytes_released:.0f} bytes in "
                      f"{stats.duration:.3f}s "
                      f"({stats.goodput_bps / 1e6:.2f} Mbps)", flush=True)
            else:
                print(f"netio: {stats.peer} aborted ({aborted}) after "
                      f"{stats.bytes_released:.0f} bytes", flush=True)

    def _send_rst(self, addr, reason: str, now: float,
                  detail: str | None = None) -> None:
        meta = {"reason": reason}
        if detail:
            meta["detail"] = detail
        self._transport.sendto(encode_control(RST, 0, meta), addr)
        self.rst_sent += 1
        self._record("netio.rst", now, peer=f"{addr[0]}:{addr[1]}",
                     reason=reason)

    def _record(self, kind: str, t: float, **fields) -> None:
        if self.recorder is not None:
            self.recorder.event(kind, t, **fields)

    def _on_sock_error(self, exc) -> None:
        self.sock_errors += 1
        now = self._clock.now() if self._clock is not None else 0.0
        self._record("netio.sock_error", now, error=type(exc).__name__)

    # -- datagram handling -------------------------------------------------

    def _on_datagram(self, data: bytes, addr) -> None:
        try:
            packet = decode(data)
        except FramingError:
            self.malformed_datagrams += 1
            return
        now = self._clock.now()
        if isinstance(packet, ControlPacket):
            self._on_control(packet, addr, f"{addr[0]}:{addr[1]}", now)
        elif isinstance(packet, DataPacket):
            session = self._sessions.get(addr)
            if session is None:
                # No handshake, or the session was reaped: tell the peer
                # explicitly so it aborts instead of retrying into RTO.
                self._send_rst(addr, RST_NO_SESSION, now)
                return
            session.last_activity = now
            self._wheel.touch(addr, now + self.limits.idle_timeout)
            result = session.rx.on_data(packet)
            stats = session.stats
            stats.received_packets += 1
            if result.duplicate:
                stats.duplicate_packets += 1
            if result.dropped:
                return  # over the buffer cap: no ACK, the sender retries
            stats.bytes_delivered = result.delivered_bytes
            stats.bytes_released = session.rx.released_bytes
            self._transport.sendto(
                encode_ack(result.cum_ack, packet.seq, int(result.delivered_bytes),
                           result.sack_blocks), addr)

    def _on_control(self, packet: ControlPacket, addr, peer: str,
                    now: float) -> None:
        if packet.ptype == SYN:
            self._on_syn(packet, addr, peer, now)
        elif packet.ptype == FIN:
            # FINACK is idempotent so a retransmitted FIN (session already
            # finalized and removed) still completes the teardown.
            self._transport.sendto(encode_control(FINACK, packet.seq), addr)
            session = self._sessions.pop(addr, None)
            if session is not None:
                self._wheel.cancel(addr)
                if session.rx.sanitizer is not None:
                    # Teardown audit: the reorder buffer must balance
                    # before the session's accounting is frozen.
                    session.rx.sanitizer.audit_rx(session.rx)
                stats = session.stats
                expected = stats.meta.get("bytes")
                complete = expected is None or \
                    stats.bytes_released >= expected
                self._finalize(session, now, complete=complete)

    def _on_syn(self, packet: ControlPacket, addr, peer: str,
                now: float) -> None:
        session = self._sessions.get(addr)
        if session is not None:
            # Duplicate SYN (lost SYNACK): refresh and re-ack the handshake.
            session.last_activity = now
            self._wheel.touch(addr, now + self.limits.idle_timeout)
            self._transport.sendto(encode_control(SYNACK, packet.seq), addr)
            return
        if self._draining:
            self.sessions_rejected += 1
            self._send_rst(addr, RST_DRAINING, now)
            return
        if len(self._sessions) >= self.limits.max_sessions:
            self.sessions_rejected += 1
            self._send_rst(addr, RST_SESSION_CAP, now)
            return
        problem = validate_syn_meta(packet.meta, self.limits)
        if problem is not None:
            self.sessions_rejected += 1
            self._send_rst(addr, RST_BAD_SYN, now, detail=problem)
            return
        self._sessions[addr] = _Session(
            packet.meta.get("isn", 0), peer, now, packet.meta,
            self.limits.session_buffer_bytes, self.sock_errors)
        self._wheel.schedule(addr, now + self.limits.idle_timeout)
        self.sessions_opened += 1
        self._record("netio.session_open", now, peer=peer,
                     bytes=packet.meta.get("bytes", -1),
                     cca=str(packet.meta.get("cca", "?")))
        if self.verbose:
            print(f"netio: {peer} connected "
                  f"({packet.meta.get('bytes', '?')} bytes, "
                  f"cca={packet.meta.get('cca', '?')})", flush=True)
        self._transport.sendto(encode_control(SYNACK, packet.seq), addr)


# -- client ------------------------------------------------------------------

@dataclass
class NetioResult:
    """Send-side summary of one reliable-UDP transfer."""

    cca: str
    bytes_total: int
    bytes_acked: float
    duration: float
    sent_packets: int
    acked_packets: int
    lost_packets: int
    retransmissions: int
    srtt: float
    min_rtt: float
    avg_rtt: float
    mi_reports: int
    sock_errors: int = 0
    impairment: dict = field(default_factory=dict)
    telemetry: object = None    # FlowTelemetry when the run was traced

    @property
    def throughput_bps(self) -> float:
        return self.bytes_acked * 8.0 / max(self.duration, 1e-9)

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6

    @property
    def loss_rate(self) -> float:
        return self.lost_packets / self.sent_packets if self.sent_packets \
            else 0.0

    def summary(self) -> dict:
        return {"cca": self.cca, "bytes": self.bytes_total,
                "bytes_acked": self.bytes_acked,
                "duration_s": round(self.duration, 6),
                "throughput_mbps": round(self.throughput_mbps, 4),
                "sent_packets": self.sent_packets,
                "acked_packets": self.acked_packets,
                "lost_packets": self.lost_packets,
                "retransmissions": self.retransmissions,
                "loss_rate": round(self.loss_rate, 6),
                "srtt_ms": round(self.srtt * 1e3, 3),
                "min_rtt_ms": round(self.min_rtt * 1e3, 3)
                if self.min_rtt != float("inf") else None,
                "avg_rtt_ms": round(self.avg_rtt * 1e3, 3),
                "mi_reports": self.mi_reports,
                "sock_errors": self.sock_errors,
                "impairment": self.impairment}


class _ClientProtocol(asyncio.DatagramProtocol):
    def __init__(self, client: "NetioClient"):
        self.client = client
        self.transport = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.client._on_datagram(data)

    def error_received(self, exc) -> None:
        self.client._on_sock_error(exc)


class NetioClient:
    """Reliable-UDP send endpoint driven by one congestion controller."""

    def __init__(self, controller, data: bytes, mss: int = DEFAULT_UDP_MSS,
                 impairment: ImpairmentProfile | None = None, seed: int = 0,
                 recorder=None, initial_seq: int = 0, window: int = 1024,
                 cca_name: str | None = None,
                 max_consecutive_rtos: int = MAX_CONSECUTIVE_RTOS):
        if mss <= 0 or mss > DEFAULT_MSS * 4:
            raise ValueError(f"mss must be in (0, {DEFAULT_MSS * 4}]")
        if max_consecutive_rtos <= 0:
            raise ValueError("max_consecutive_rtos must be positive")
        self.controller = controller
        self.cca_name = cca_name or getattr(controller, "name", "unknown")
        self.data = data
        self.mss = mss
        self.recorder = recorder
        self.max_consecutive_rtos = max_consecutive_rtos
        self.arq = SRSender(window=window, initial_seq=initial_seq)
        self.adapter = CCAAdapter(controller, mss, recorder=recorder)
        self.impairment = LoopbackImpairment(impairment, seed=seed) \
            if impairment is not None and impairment.active else None
        self.sock_errors = 0
        self._ctrl_rng = random.Random(seed ^ 0x5EED)
        self._offset = 0
        self._running = False
        self._abort: TransferAbort | None = None
        self._ack_event: asyncio.Event | None = None
        self._control_waiters: dict[int, asyncio.Future] = {}
        self._transport = None
        self._clock: AsyncClock | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._rtt_sum = 0.0
        self._rtt_count = 0
        self._mi_reports = 0

    # -- top-level ---------------------------------------------------------

    async def run(self, host: str, port: int,
                  timeout: float = 120.0) -> NetioResult:
        """Transfer the payload; returns a :class:`NetioResult`.

        Raises :class:`TransferTimeout` when the wall-clock budget runs
        out, :class:`~repro.netio.arq.TransferAbort` (with a structured
        ``reason``) when the transfer cannot continue: the server reset
        it (``rst:*``), the peer stopped acking (``rto-exhausted``,
        ``max-retries``), or a control exchange never completed
        (``handshake-timeout`` / ``teardown-timeout``).
        """
        self._loop = asyncio.get_running_loop()
        self._clock = AsyncClock(self._loop)
        self._ack_event = asyncio.Event()
        self._transport, _ = await self._loop.create_datagram_endpoint(
            lambda: _ClientProtocol(self), remote_addr=(host, port))
        try:
            return await asyncio.wait_for(self._run_inner(), timeout)
        except TransferAbort as exc:
            if self.recorder is not None:
                self.recorder.event("netio.abort", self._clock.now(),
                                    reason=exc.reason, error=str(exc))
            raise
        except asyncio.TimeoutError:
            raise TransferTimeout(
                f"transfer of {len(self.data)} bytes to {host}:{port} "
                f"exceeded {timeout}s "
                f"({self.arq.acked_packets}/{self.arq.sent_packets} acked)") \
                from None
        finally:
            self._running = False
            if self._transport is not None:
                self._transport.close()

    async def _run_inner(self) -> NetioResult:
        await self._handshake()
        start = self._clock.now()
        self.adapter.start(start)
        if self.recorder is not None:
            self.recorder.event("netio.handshake", start,
                                bytes=len(self.data), mss=self.mss,
                                cca=self.cca_name)
        self._running = True
        mi_task = asyncio.ensure_future(self._mi_loop())
        try:
            await self._send_loop()
        finally:
            self._running = False
            mi_task.cancel()
        end = self._clock.now()
        # Close out the final (possibly only) monitor interval so even a
        # transfer shorter than one telemetry tick produces samples.
        self.adapter.fire_interval(end, self.arq.inflight_bytes)
        self._mi_reports += 1
        await self._teardown(end)
        return self._result(end - start)

    # -- handshake / teardown ---------------------------------------------

    async def _control_roundtrip(self, ptype: int, reply: int, seq: int,
                                 meta: dict | None = None,
                                 label: str = "control") -> None:
        datagram = encode_control(ptype, seq, meta)
        timeout = CONTROL_TIMEOUT
        for _ in range(CONTROL_RETRIES):
            if self._abort is not None:
                raise self._abort
            future = self._loop.create_future()
            self._control_waiters[reply] = future
            self._transport.sendto(datagram)
            try:
                await asyncio.wait_for(future, timeout)
                return
            except asyncio.TimeoutError:
                pass
            finally:
                self._control_waiters.pop(reply, None)
            timeout = min(timeout * 2.0, CONTROL_TIMEOUT_CAP)
            await asyncio.sleep(self._ctrl_rng.uniform(0.0, CONTROL_JITTER))
        raise TransferAbort(
            f"no response to control packet type {ptype} "
            f"after {CONTROL_RETRIES} attempts",
            reason=f"{label}-timeout", attempts=CONTROL_RETRIES)

    async def _handshake(self) -> None:
        await self._control_roundtrip(
            SYN, SYNACK, self.arq.next_seq,
            meta={"bytes": len(self.data), "mss": self.mss,
                  "cca": self.cca_name, "isn": self.arq.next_seq},
            label="handshake")

    async def _teardown(self, now: float) -> None:
        if self.recorder is not None:
            self.recorder.event("netio.fin", now,
                                retransmissions=self.arq.retransmissions)
        await self._control_roundtrip(FIN, FINACK, self.arq.next_seq,
                                      label="teardown")

    # -- send loop ---------------------------------------------------------

    def _all_queued(self) -> bool:
        return self._offset >= len(self.data)

    async def _send_loop(self) -> None:
        arq = self.arq
        adapter = self.adapter
        clock = self._clock
        next_send_time = clock.now()
        while True:
            if self._abort is not None:
                raise self._abort
            now = clock.now()
            self._apply_outcome(arq.check_timeouts(now), now, timeout=True)
            if arq.done(self._all_queued()):
                if arq.sanitizer is not None:
                    # Completion audit: the whole transfer must balance.
                    arq.sanitizer.audit_tx(arq)
                return
            sent_bytes = 0
            if now >= next_send_time and \
                    adapter.window_allows(arq.inflight_bytes):
                if arq.has_retransmits:
                    record = arq.next_retransmit(now)
                    if record is not None:
                        self._transmit(record.seq, record.payload, True, now)
                        sent_bytes = len(record.payload)
                elif not self._all_queued() and arq.can_send_new():
                    chunk = self.data[self._offset:self._offset + self.mss]
                    seq = arq.register_send(chunk, now, marker=adapter.marker)
                    self._offset += len(chunk)
                    self._transmit(seq, chunk, False, now)
                    sent_bytes = len(chunk)
            if sent_bytes:
                pace = sent_bytes * 8.0 / adapter.effective_rate()
                next_send_time = max(next_send_time, now) + pace
                await asyncio.sleep(0)   # let inbound ACK callbacks run
                continue
            await self._idle_wait(now, next_send_time)

    async def _idle_wait(self, now: float, next_send_time: float) -> None:
        """Block until the pacing gate opens, an RTO could fire, or an
        ACK arrives — whichever comes first."""
        wait = MAX_IDLE_WAIT
        more_to_send = self.arq.has_retransmits or \
            (not self._all_queued() and self.arq.can_send_new())
        if more_to_send and next_send_time > now:
            wait = min(wait, next_send_time - now)
        deadline = self.arq.next_timeout_deadline()
        if deadline is not None:
            wait = min(wait, deadline - now)
        wait = max(wait, 0.0005)
        try:
            await asyncio.wait_for(self._ack_event.wait(), wait)
        except asyncio.TimeoutError:
            pass
        self._ack_event.clear()

    def _sendto(self, datagram: bytes) -> None:
        """Datagram send that tolerates a just-closed transport — delayed
        impairment sends can fire after an abort tore the socket down."""
        if self._transport is not None and not self._transport.is_closing():
            self._transport.sendto(datagram)

    def _transmit(self, seq: int, payload: bytes, retransmit: bool,
                  now: float) -> None:
        datagram = encode_data(seq, payload, retransmit)
        if self.impairment is not None:
            self.impairment.send_data(self._loop, self._sendto, datagram,
                                      retransmit)
        else:
            self._sendto(datagram)
        self.adapter.on_sent(len(payload))
        if retransmit and self.recorder is not None:
            self.recorder.event("netio.retransmit", now, seq=seq)

    # -- inbound -----------------------------------------------------------

    def _on_datagram(self, data: bytes) -> None:
        try:
            packet = decode(data)
        except FramingError:
            return
        now = self._clock.now()
        if isinstance(packet, AckPacket):
            if not self._running:
                return
            if self.impairment is not None \
                    and not self.impairment.deliver_ack():
                return
            self._apply_outcome(self.arq.on_ack(packet, now), now)
            self._ack_event.set()
        elif isinstance(packet, ControlPacket):
            if packet.ptype == RST:
                self._on_rst(packet)
                return
            future = self._control_waiters.get(packet.ptype)
            if future is not None and not future.done():
                future.set_result(packet)

    def _on_rst(self, packet: ControlPacket) -> None:
        """The server refused or tore down the session: fail fast with
        its structured reason instead of retrying into RTO backoff."""
        reason = packet.meta.get("reason")
        if not isinstance(reason, str) or not reason:
            reason = "unspecified"
        details = {}
        if isinstance(packet.meta.get("detail"), str):
            details["detail"] = packet.meta["detail"]
        abort = TransferAbort(f"server reset the transfer: {reason}",
                              reason=f"rst:{reason}", **details)
        if self._abort is None:
            self._abort = abort
        for future in list(self._control_waiters.values()):
            if not future.done():
                future.set_exception(abort)
        if self._ack_event is not None:
            self._ack_event.set()

    def _on_sock_error(self, exc) -> None:
        self.sock_errors += 1
        if self.recorder is not None and self._clock is not None:
            self.recorder.event("netio.sock_error", self._clock.now(),
                                error=type(exc).__name__)

    def _apply_outcome(self, outcome, now: float, timeout: bool = False) -> None:
        arq = self.arq
        for seq, record, rtt in outcome.acked:
            if rtt is not None:
                self._rtt_sum += rtt
                self._rtt_count += 1
            elapsed = max(now - record.first_send, 1e-9)
            delivery_rate = (arq.delivered_bytes - record.delivered_at_send) \
                * 8.0 / elapsed
            self.adapter.on_acked(
                now, seq, len(record.payload), rtt, arq.srtt, arq.min_rtt,
                delivery_rate, arq.inflight_bytes, record.first_send,
                record.marker)
        for seq, record in outcome.newly_lost:
            self.adapter.on_lost(now, seq, len(record.payload),
                                 record.first_send, arq.inflight_bytes,
                                 record.marker)
        if timeout and outcome.newly_lost and self.recorder is not None:
            self.recorder.event("netio.rto", now,
                                lost=len(outcome.newly_lost),
                                rto=arq.rto)
        if timeout and self._abort is None and \
                arq.consecutive_rtos >= self.max_consecutive_rtos:
            self._abort = TransferAbort(
                f"{arq.consecutive_rtos} consecutive RTOs without progress "
                f"— giving up on the peer",
                reason="rto-exhausted",
                consecutive_rtos=arq.consecutive_rtos, rto=arq.rto)
        if outcome.newly_lost or self._abort is not None:
            self._ack_event.set()

    # -- monitor intervals -------------------------------------------------

    async def _mi_loop(self) -> None:
        while self._running:
            await self._clock.sleep(self.adapter.tick_interval())
            if not self._running:
                return
            now = self._clock.now()
            self._apply_outcome(self.arq.check_timeouts(now), now,
                                timeout=True)
            self.adapter.fire_interval(now, self.arq.inflight_bytes)
            self._mi_reports += 1

    # -- results -----------------------------------------------------------

    def _result(self, duration: float) -> NetioResult:
        arq = self.arq
        impairment = self.impairment.counters() if self.impairment else {}
        telemetry = None
        if self.recorder is not None:
            meta = {
                "transport": "netio-udp",
                "duration": duration,
                "flows": 1,
                "mss": self.mss,
                "cca": self.cca_name,
                "bytes_total": len(self.data),
                "bytes_acked": arq.delivered_bytes,
                "sent_packets": arq.sent_packets,
                "acked_packets": arq.acked_packets,
                "lost_packets": arq.lost_packets,
                "retransmissions": arq.retransmissions,
                "sock_errors": self.sock_errors,
            }
            meta.update({f"impairment_{k}": v for k, v in impairment.items()})
            telemetry = self.recorder.finish(meta=meta)
        return NetioResult(
            cca=self.cca_name, bytes_total=len(self.data),
            bytes_acked=arq.delivered_bytes, duration=duration,
            sent_packets=arq.sent_packets, acked_packets=arq.acked_packets,
            lost_packets=arq.lost_packets,
            retransmissions=arq.retransmissions,
            srtt=arq.srtt, min_rtt=arq.min_rtt,
            avg_rtt=self._rtt_sum / self._rtt_count if self._rtt_count else 0.0,
            mi_reports=self._mi_reports, sock_errors=self.sock_errors,
            impairment=impairment, telemetry=telemetry)


async def send_payload(host: str, port: int, controller, data: bytes,
                       mss: int = DEFAULT_UDP_MSS,
                       impairment: ImpairmentProfile | None = None,
                       seed: int = 0, recorder=None, timeout: float = 120.0,
                       initial_seq: int = 0,
                       cca_name: str | None = None,
                       max_consecutive_rtos: int = MAX_CONSECUTIVE_RTOS) \
        -> NetioResult:
    """One-call client: transfer ``data`` to a :class:`NetioServer`."""
    client = NetioClient(controller, data, mss=mss, impairment=impairment,
                         seed=seed, recorder=recorder,
                         initial_seq=initial_seq, cca_name=cca_name,
                         max_consecutive_rtos=max_consecutive_rtos)
    return await client.run(host, port, timeout=timeout)
