"""Seeded socket-layer impairment for loopback runs.

Real-network effects — loss, propagation delay, jitter, reordering,
bursts — do not exist on ``127.0.0.1``, so loopback tests could never
exercise congestion behaviour without help.  :class:`LoopbackImpairment`
injects them at the datagram boundary of the *sender* process, drawing
every decision from the same seeded sampler primitives the simulator's
fault injector uses (:mod:`repro.simnet.distributions`), which makes the
drop pattern a deterministic function of ``(profile, seed, packet
index)`` even though wall-clock timing is not.

Placement: outbound DATA datagrams pass :meth:`send_data` (loss, delay,
jitter, reorder, optional Gilbert–Elliott bursts); inbound ACKs pass
:meth:`deliver_ack` (Bernoulli ACK loss).  Keeping both ends of the
impairment inside the sender process means one seed controls the whole
realization — no cross-process RNG coordination.

For *real* impairment, see the ``netem/`` profile scripts, which shape
an actual interface with ``tc`` instead (root required, not CI-gated).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simnet.distributions import (GilbertElliottSampler, bernoulli,
                                    impairment_rng, uniform_jitter)


@dataclass(frozen=True)
class ImpairmentProfile:
    """Frozen description of one loopback impairment realization.

    ``delay`` is applied to every data datagram (it plays the role of
    the one-way propagation delay, so the observed RTT on loopback is
    ``delay`` + ACK turnaround); ``jitter`` adds a seeded uniform
    ``[0, jitter)`` component; ``reorder_probability`` holds selected
    datagrams back an extra ``reorder_extra`` seconds so later ones
    overtake them, mirroring :class:`repro.simnet.faults.Reorder`.
    """

    loss: float = 0.0                  # Bernoulli data-datagram loss
    delay: float = 0.0                 # one-way extra delay, seconds
    jitter: float = 0.0                # uniform [0, jitter) on top
    reorder_probability: float = 0.0
    reorder_extra: float = 0.0
    ack_loss: float = 0.0              # Bernoulli inbound-ACK loss
    burst: tuple | None = None         # (p_enter, p_exit, loss_good, loss_bad)
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("loss", "reorder_probability", "ack_loss"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p!r}")
        for name in ("delay", "jitter", "reorder_extra"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.reorder_probability > 0 and self.reorder_extra <= 0:
            raise ValueError("reorder_probability needs reorder_extra > 0")

    @property
    def active(self) -> bool:
        return bool(self.loss or self.delay or self.jitter
                    or self.reorder_probability or self.ack_loss
                    or self.burst)


class LoopbackImpairment:
    """Per-run mutable impairment state wrapping a datagram send path."""

    def __init__(self, profile: ImpairmentProfile, seed: int = 0):
        self.profile = profile
        self.rng = impairment_rng(profile.seed, seed)
        self._ge = GilbertElliottSampler(*profile.burst) \
            if profile.burst is not None else None
        self.data_drops = 0
        self.ack_drops = 0
        self.reordered = 0
        self.delayed = 0

    # -- data path (outbound) ---------------------------------------------

    def data_verdict(self, retransmit: bool = False) -> float | None:
        """Decide one outbound data datagram's fate.

        Returns ``None`` to drop it, or the extra delay in seconds
        (possibly ``0.0``) to apply before the socket write.  Decisions
        consume RNG draws in a fixed per-packet order, so the stream is
        reproducible regardless of wall-clock timing.
        """
        p = self.profile
        if p.loss > 0.0 and bernoulli(self.rng, p.loss):
            self.data_drops += 1
            return None
        if self._ge is not None:
            drop, _ = self._ge.step(self.rng)
            if drop:
                self.data_drops += 1
                return None
        extra = p.delay
        if p.jitter > 0.0:
            extra += uniform_jitter(self.rng, p.jitter)
        if p.reorder_probability > 0.0 \
                and bernoulli(self.rng, p.reorder_probability):
            self.reordered += 1
            extra += p.reorder_extra
        if extra > 0.0:
            self.delayed += 1
        return extra

    def send_data(self, loop, sendto, datagram: bytes,
                  retransmit: bool = False) -> bool:
        """Send one data datagram through the impairment; False if dropped."""
        verdict = self.data_verdict(retransmit)
        if verdict is None:
            return False
        if verdict <= 0.0:
            sendto(datagram)
        else:
            loop.call_later(verdict, sendto, datagram)
        return True

    # -- ACK path (inbound) -----------------------------------------------

    def deliver_ack(self) -> bool:
        """Whether one inbound ACK survives the impairment."""
        p = self.profile
        if p.ack_loss > 0.0 and bernoulli(self.rng, p.ack_loss):
            self.ack_drops += 1
            return False
        return True

    def counters(self) -> dict:
        return {"data_drops": self.data_drops, "ack_drops": self.ack_drops,
                "reordered": self.reordered, "delayed": self.delayed}
