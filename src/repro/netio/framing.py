"""Wire format for the reliable-UDP datapath.

One UDP datagram carries exactly one protocol packet.  Sequence numbers
live on a mod-2^16 ring (the classic selective-repeat formulation; see
SNIPPETS.md snippet 2), so the header stays 8 bytes and a transfer of
any length simply wraps.  The ring helpers here are the single source of
sequence arithmetic for the sender, the receiver, and the tests.

Packet layouts (all network byte order):

- ``DATA``  — ``!BBHHH`` (type, flags, seq, length, reserved) + payload.
  Flag bit 0 marks a retransmission (Karn's rule: the receiver echoes it
  so the sender never RTT-samples an ambiguous ACK).
- ``ACK``   — ``!BBHHQ`` (type, n_sack, cum_ack, echo_seq, delivered)
  + ``n_sack`` × ``!HH`` SACK blocks, each ``[start, end)`` on the ring.
  ``cum_ack`` is the next in-order sequence the receiver expects;
  ``echo_seq`` is the data packet that triggered this ACK;
  ``delivered`` is the receiver's cumulative count of novel payload
  bytes — the counterpart of :class:`repro.simnet.packet.Ack`'s
  ``delivered_bytes`` used for delivery-rate estimation.
- ``SYN`` / ``SYNACK`` / ``FIN`` / ``FINACK`` / ``RST`` — ``!BBHHH``
  control packets; SYN carries a JSON metadata payload (total bytes,
  mss, CCA name), FIN carries the final sequence boundary in ``seq``,
  and RST carries a ``reason`` code (see
  :mod:`repro.netio.lifecycle`) so a rejected or expired client can
  abort with a structured explanation instead of retrying into its RTO
  backoff.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

SEQ_MOD = 1 << 16
SEQ_MASK = SEQ_MOD - 1

#: packet types
DATA, ACK, SYN, SYNACK, FIN, FINACK, RST = range(1, 8)
_CONTROL = {SYN, SYNACK, FIN, FINACK, RST}

#: byte cap on a control packet's JSON payload — far above any honest
#: SYN/RST metadata, low enough that a hostile frame cannot make
#: ``json.loads`` chew on megabytes (or recurse on kilobytes of "[")
MAX_CONTROL_BYTES = 4096

#: DATA flag bits
FLAG_RETRANSMIT = 0x01

#: most SACK blocks one ACK can carry (beyond this the nearest-to-cum
#: blocks win; farther holes are re-reported by later ACKs)
MAX_SACK_BLOCKS = 8

_HEADER = struct.Struct("!BBHHH")
_ACK_HEADER = struct.Struct("!BBHHQ")
_SACK_BLOCK = struct.Struct("!HH")


class FramingError(ValueError):
    """A datagram failed to parse as a protocol packet."""


# -- mod-2^16 ring helpers ---------------------------------------------------

def seq_add(seq: int, inc: int = 1) -> int:
    return (seq + inc) & SEQ_MASK


def seq_dist(start: int, end: int) -> int:
    """Unsigned ring distance from ``start`` forward to ``end``."""
    return (end - start) & SEQ_MASK


def seq_in_window(seq: int, start: int, size: int) -> bool:
    """True iff ``seq`` lies in ``[start, start + size)`` on the ring."""
    return seq_dist(start, seq) < size


# -- encode ------------------------------------------------------------------

def encode_data(seq: int, payload: bytes, retransmit: bool = False) -> bytes:
    flags = FLAG_RETRANSMIT if retransmit else 0
    return _HEADER.pack(DATA, flags, seq & SEQ_MASK, len(payload), 0) + payload


def encode_ack(cum_ack: int, echo_seq: int, delivered_bytes: int,
               sack_blocks: tuple[tuple[int, int], ...] = ()) -> bytes:
    blocks = sack_blocks[:MAX_SACK_BLOCKS]
    out = _ACK_HEADER.pack(ACK, len(blocks), cum_ack & SEQ_MASK,
                           echo_seq & SEQ_MASK, delivered_bytes)
    for start, end in blocks:
        out += _SACK_BLOCK.pack(start & SEQ_MASK, end & SEQ_MASK)
    return out


def encode_control(ptype: int, seq: int = 0, meta: dict | None = None) -> bytes:
    if ptype not in _CONTROL:
        raise FramingError(f"not a control packet type: {ptype}")
    payload = json.dumps(meta, sort_keys=True).encode() if meta else b""
    if len(payload) > MAX_CONTROL_BYTES:
        raise FramingError(f"control metadata too large: {len(payload)} "
                           f"> {MAX_CONTROL_BYTES} bytes")
    return _HEADER.pack(ptype, 0, seq & SEQ_MASK, len(payload), 0) + payload


# -- decode ------------------------------------------------------------------

@dataclass(slots=True)
class DataPacket:
    seq: int
    payload: bytes
    retransmit: bool


@dataclass(slots=True)
class AckPacket:
    cum_ack: int
    echo_seq: int
    delivered_bytes: int
    sack_blocks: tuple[tuple[int, int], ...]


@dataclass(slots=True)
class ControlPacket:
    ptype: int
    seq: int
    meta: dict


def decode(datagram: bytes) -> DataPacket | AckPacket | ControlPacket:
    """Parse one datagram; raises :class:`FramingError` on malformed input."""
    if len(datagram) < 2:
        raise FramingError("datagram shorter than any header")
    ptype = datagram[0]
    if ptype == ACK:
        if len(datagram) < _ACK_HEADER.size:
            raise FramingError("truncated ACK header")
        _, n_sack, cum_ack, echo_seq, delivered = \
            _ACK_HEADER.unpack_from(datagram)
        if n_sack > MAX_SACK_BLOCKS:
            raise FramingError(f"ACK claims {n_sack} SACK blocks "
                               f"(max {MAX_SACK_BLOCKS})")
        need = _ACK_HEADER.size + n_sack * _SACK_BLOCK.size
        if len(datagram) < need:
            raise FramingError("truncated SACK blocks")
        blocks = tuple(
            _SACK_BLOCK.unpack_from(datagram,
                                    _ACK_HEADER.size + i * _SACK_BLOCK.size)
            for i in range(n_sack))
        for start, end in blocks:
            if start == end:
                raise FramingError("empty SACK block")
        return AckPacket(cum_ack, echo_seq, delivered, blocks)
    if len(datagram) < _HEADER.size:
        raise FramingError("truncated header")
    ptype, flags, seq, length, _reserved = _HEADER.unpack_from(datagram)
    body = datagram[_HEADER.size:]
    if len(body) != length:
        raise FramingError(f"length field {length} != payload {len(body)}")
    if ptype == DATA:
        return DataPacket(seq, body, bool(flags & FLAG_RETRANSMIT))
    if ptype in _CONTROL:
        if length > MAX_CONTROL_BYTES:
            raise FramingError(f"control metadata too large: {length} "
                               f"> {MAX_CONTROL_BYTES} bytes")
        try:
            meta = json.loads(body.decode()) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError,
                RecursionError) as exc:
            # RecursionError: kilobytes of "[[[[..." blow the parser's
            # stack well inside MAX_CONTROL_BYTES; that is a framing
            # problem, not a server crash.
            raise FramingError(f"bad control metadata: "
                               f"{type(exc).__name__}") from exc
        if not isinstance(meta, dict):
            raise FramingError("control metadata must be a JSON object")
        return ControlPacket(ptype, seq, meta)
    raise FramingError(f"unknown packet type {ptype}")
