"""Selective-repeat ARQ receiver: reorder buffer and SACK generation.

The receiver keeps a cumulative pointer (``rcv_next``) and an
out-of-order store on the mod-2^16 ring.  Every data packet — novel or
duplicate — produces an acknowledgement carrying the cumulative pointer,
up to :data:`~repro.netio.framing.MAX_SACK_BLOCKS` SACK blocks for the
out-of-order islands, and the receiver's cumulative count of novel
payload bytes (the delivery-rate counter the sender's congestion
controller consumes, mirroring :class:`repro.simnet.packet.Ack`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sanitize import invariants as _sanitize
from .framing import MAX_SACK_BLOCKS, DataPacket, seq_add, seq_dist


@dataclass(slots=True)
class RxResult:
    """Effect of one data packet on the receive buffer."""

    delivered: list            # in-order payloads released by this packet
    duplicate: bool
    cum_ack: int
    sack_blocks: tuple
    delivered_bytes: float
    #: packet refused because holding it would breach the buffer cap;
    #: it is *not* covered by cum_ack/SACK, so the sender retransmits
    dropped: bool = False


class SRReceiver:
    """Reorder buffer for one inbound flow.

    ``max_buffer_bytes`` caps the out-of-order store: an out-of-order
    payload that would push the held bytes past the cap is dropped
    *unacked* (counted in ``buffer_drops``), so the sender's ARQ
    retransmits it once the hole in front is repaired.  In-order
    packets always pass — they release immediately and hold nothing.
    """

    def __init__(self, initial_seq: int = 0, window: int = 4096,
                 max_buffer_bytes: int | None = None):
        self.rcv_next = initial_seq & 0xFFFF
        self.window = window
        self.max_buffer_bytes = max_buffer_bytes
        self._held: dict[int, bytes] = {}
        self.buffered_bytes = 0        # payload bytes currently held
        self.buffer_drops = 0          # packets refused by the cap
        self.delivered_bytes = 0.0     # novel payload bytes, any order
        self.released_bytes = 0.0      # payload bytes released in order
        self.received_packets = 0
        self.duplicate_packets = 0
        # Invariant layer: captured at construction, None = disabled.
        self.sanitizer = _sanitize.ACTIVE
        self._packets_since_audit = 0

    def on_data(self, packet: DataPacket) -> RxResult:
        self.received_packets += 1
        if self.sanitizer is not None:
            self._packets_since_audit += 1
            if self._packets_since_audit >= self.sanitizer.AUDIT_EVERY:
                self._packets_since_audit = 0
                self.sanitizer.audit_rx(self)
        seq = packet.seq
        delivered: list[bytes] = []
        dropped = False
        behind = seq_dist(seq, self.rcv_next)
        duplicate = (0 < behind <= self.window) or seq in self._held
        if duplicate:
            self.duplicate_packets += 1
        elif seq_dist(self.rcv_next, seq) >= self.window:
            # Outside the receive window entirely: drop, still ACK state.
            self.duplicate_packets += 1
            duplicate = True
        elif seq == self.rcv_next:
            self.delivered_bytes += len(packet.payload)
            delivered.append(packet.payload)
            self.released_bytes += len(packet.payload)
            self.rcv_next = seq_add(self.rcv_next)
            while self.rcv_next in self._held:
                payload = self._held.pop(self.rcv_next)
                self.buffered_bytes -= len(payload)
                delivered.append(payload)
                self.released_bytes += len(payload)
                self.rcv_next = seq_add(self.rcv_next)
        elif self.max_buffer_bytes is not None and \
                self.buffered_bytes + len(packet.payload) \
                > self.max_buffer_bytes:
            self.buffer_drops += 1
            dropped = True
        else:
            self.delivered_bytes += len(packet.payload)
            self._held[seq] = packet.payload
            self.buffered_bytes += len(packet.payload)
        return RxResult(delivered=delivered, duplicate=duplicate,
                        cum_ack=self.rcv_next,
                        sack_blocks=self.sack_blocks(),
                        delivered_bytes=self.delivered_bytes,
                        dropped=dropped)

    def sack_blocks(self) -> tuple[tuple[int, int], ...]:
        """Contiguous out-of-order runs as ``[start, end)`` ring blocks,
        nearest-to-cumulative first, capped at the wire limit."""
        if not self._held:
            return ()
        seqs = sorted(self._held, key=lambda s: seq_dist(self.rcv_next, s))
        blocks: list[tuple[int, int]] = []
        start = prev = seqs[0]
        for seq in seqs[1:]:
            if seq == seq_add(prev):
                prev = seq
                continue
            blocks.append((start, seq_add(prev)))
            start = prev = seq
        blocks.append((start, seq_add(prev)))
        return tuple(blocks[:MAX_SACK_BLOCKS])

    @property
    def holes(self) -> int:
        """Out-of-order packets currently awaiting the hole in front."""
        return len(self._held)
