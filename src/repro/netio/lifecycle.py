"""Session lifecycle and overload protection for the netio server.

PR 6's server was happy-path only: a session, once created, lived
forever — a dead peer leaked its reorder buffer, a SYN flood grew the
session table without bound, and shutdown dropped in-flight transfers
on the floor.  This module holds the pure-logic half of the fix; the
asyncio wiring lives in :class:`~repro.netio.transport.NetioServer`:

- :class:`ServerLimits` — the operational budget of one server: session
  cap, idle timeout, per-session receive-buffer byte cap, drain
  deadline, SYN metadata size cap.  Frozen so a server's budget cannot
  drift at runtime and chaos assertions can cite it verbatim.
- :class:`DeadlineWheel` — a hashed timing wheel over the server's
  monotonic clock.  Idle reaping must stay O(expired), not O(sessions),
  to survive exactly the regime it protects against (thousands of
  half-open sessions); a naive per-tick scan over the session table
  would make the flood it guards against more expensive to survive.
  Rescheduling is lazy: ``schedule`` simply overwrites the deadline and
  drops the key into its new bucket; stale bucket entries are skipped
  (deadline moved or cancelled) or re-bucketed at sweep time.
- :func:`validate_syn_meta` — admission-time validation of the JSON SYN
  metadata, so a malformed or hostile handshake is refused with an RST
  instead of creating a poisoned session that crashes the datagram
  handler later (``int("abc")`` on ``isn``, ``float >= str`` on
  ``bytes``...).

RST reason codes are defined here because both sides speak them: the
server stamps one into the RST's metadata, the client surfaces it as
the structured :class:`~repro.netio.arq.TransferAbort` reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from .framing import SEQ_MOD

#: RST reason codes (server -> client, in the RST meta's ``reason``)
RST_SESSION_CAP = "session-cap"      # global max-sessions limit hit
RST_BAD_SYN = "bad-syn"              # SYN metadata failed validation
RST_DRAINING = "draining"            # server is draining, no new sessions
RST_IDLE_EXPIRED = "idle-expired"    # session reaped by the idle deadline
RST_NO_SESSION = "no-session"        # data for an unknown/reaped session
RST_DRAIN_DEADLINE = "drain-deadline"  # drain gave up waiting on the session

#: every reason the server can emit, for CLI/docs enumeration
RST_REASONS = (RST_SESSION_CAP, RST_BAD_SYN, RST_DRAINING, RST_IDLE_EXPIRED,
               RST_NO_SESSION, RST_DRAIN_DEADLINE)


@dataclass(frozen=True)
class ServerLimits:
    """Operational budget of one :class:`~repro.netio.transport.NetioServer`.

    The chaos harness asserts against exactly these numbers: after any
    scenario the live-session count must be <= ``max_sessions`` and the
    summed reorder-buffer bytes <= ``max_sessions *
    session_buffer_bytes`` (and both return to their idle values once
    the scenario's sessions are reaped).
    """

    #: concurrent sessions before new SYNs are refused with an RST
    max_sessions: int = 256
    #: seconds without any datagram from a peer before its session is
    #: reaped (RST + stats flushed with ``complete=False``)
    idle_timeout: float = 30.0
    #: byte cap on one session's out-of-order reorder buffer; packets
    #: that would exceed it are dropped unacked (the sender retransmits
    #: once the hole is repaired — flow control by silence)
    session_buffer_bytes: int = 4 * 1024 * 1024
    #: seconds a graceful drain waits for in-flight transfers before
    #: force-resetting the stragglers
    drain_deadline: float = 15.0
    #: serialized-JSON size cap on SYN metadata
    max_meta_bytes: int = 1024

    def __post_init__(self) -> None:
        if self.max_sessions <= 0:
            raise ValueError("max_sessions must be positive")
        for name in ("idle_timeout", "session_buffer_bytes",
                     "drain_deadline", "max_meta_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def reap_granularity(self) -> float:
        """Wheel slot width / reaper cadence: fine enough that a session
        expires within ~1/8 of the idle timeout of its deadline, coarse
        enough that an idle server wakes at most twice a second."""
        return min(max(self.idle_timeout / 8.0, 0.02), 0.5)


class DeadlineWheel:
    """Hashed timing wheel: O(1) schedule/cancel, O(expired) sweep.

    Keys are opaque (the server uses peer addresses).  Time is whatever
    monotonic axis the caller sweeps with — the server passes its
    :class:`~repro.netio.transport.AsyncClock` values.  ``expire`` must
    be called with non-decreasing ``now``; the cursor only moves
    forward (deadlines are origin-zero and non-negative).
    """

    __slots__ = ("granularity", "_deadlines", "_buckets", "_cursor")

    def __init__(self, granularity: float = 0.1):
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.granularity = granularity
        self._deadlines: dict = {}          # key -> current deadline
        self._buckets: dict[int, set] = {}  # slot index -> keys
        self._cursor = 0                    # next slot to sweep

    def _slot(self, deadline: float) -> int:
        # +1 so a deadline is swept by the first tick strictly after it:
        # never early, at most one granularity late.
        return int(deadline / self.granularity) + 1

    def schedule(self, key, deadline: float) -> None:
        """(Re)arm ``key`` to expire at ``deadline``.  Later-moving
        reschedules are lazy: the old bucket entry is skipped or
        re-bucketed when its slot is swept."""
        self._deadlines[key] = deadline
        self._buckets.setdefault(max(self._slot(deadline), self._cursor),
                                 set()).add(key)

    def touch(self, key, deadline: float) -> None:
        """Per-activity reschedule on the hot path: when ``key`` is
        already tracked, only the deadline moves (its bucket entry is
        fixed up at sweep time), so touching a busy session is one dict
        write instead of a bucket insert per datagram."""
        if key in self._deadlines:
            self._deadlines[key] = deadline
        else:
            self.schedule(key, deadline)

    def cancel(self, key) -> None:
        self._deadlines.pop(key, None)

    def expire(self, now: float) -> list:
        """Sweep every slot up to ``now``; returns the expired keys."""
        expired = []
        target = int(now / self.granularity)
        while self._cursor <= target:
            bucket = self._buckets.pop(self._cursor, None)
            self._cursor += 1
            if not bucket:
                continue
            for key in bucket:
                deadline = self._deadlines.get(key)
                if deadline is None:
                    continue                      # cancelled: drop lazily
                if deadline <= now:
                    del self._deadlines[key]
                    expired.append(key)
                else:                             # rescheduled later
                    self._buckets.setdefault(
                        max(self._slot(deadline), self._cursor),
                        set()).add(key)
        return expired

    def __len__(self) -> int:
        return len(self._deadlines)

    def __contains__(self, key) -> bool:
        return key in self._deadlines


def validate_syn_meta(meta: dict, limits: ServerLimits) -> str | None:
    """Admission check for SYN metadata; returns a reason string when the
    handshake must be refused, ``None`` when it is acceptable.

    Everything the server later *computes with* is type- and
    range-checked here, so the datagram handler can use the metadata
    without defensive casts: ``isn`` seeds the reorder buffer, ``bytes``
    is compared against the released-byte counter at FIN, ``mss`` and
    ``cca`` only flow into logs/stats.
    """
    import json

    try:
        encoded = len(json.dumps(meta, sort_keys=True))
    except (TypeError, ValueError):       # non-serializable: decode() never
        return "meta not serializable"    # produces this, but be safe
    if encoded > limits.max_meta_bytes:
        return f"meta too large ({encoded} > {limits.max_meta_bytes} bytes)"

    def _is_int(value) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    expected = meta.get("bytes")
    if expected is not None and (not _is_int(expected) or expected < 0):
        return f"bad bytes field: {expected!r}"
    isn = meta.get("isn", 0)
    if not _is_int(isn) or not 0 <= isn < SEQ_MOD:
        return f"bad isn field: {isn!r}"
    mss = meta.get("mss")
    if mss is not None and (not _is_int(mss) or not 0 < mss <= 65_535):
        return f"bad mss field: {mss!r}"
    cca = meta.get("cca")
    if cca is not None and not isinstance(cca, str):
        return f"bad cca field: {cca!r}"
    return None


__all__ = ["DeadlineWheel", "RST_BAD_SYN", "RST_DRAINING",
           "RST_DRAIN_DEADLINE", "RST_IDLE_EXPIRED", "RST_NO_SESSION",
           "RST_REASONS", "RST_SESSION_CAP", "ServerLimits",
           "validate_syn_meta"]
