"""repro.netio — reliable-UDP serving path with pluggable CCAs.

The sim-to-real bridge (ROADMAP item 3): the *unchanged* controllers
from :mod:`repro.cca` and :mod:`repro.core` drive a real asyncio UDP
datapath — a selective-repeat ARQ with per-packet SACK feedback and
adaptive RTO — through :class:`~repro.netio.adapter.CCAAdapter`, which
feeds them the exact :class:`~repro.simnet.packet.AckSample` /
:class:`~repro.simnet.packet.LossSample` /
:class:`~repro.simnet.packet.IntervalReport` stream the simulator
produces.  Runs are traceable with the same schema-versioned
:class:`~repro.telemetry.FlowTelemetry` artifacts as simnet runs.

Quickstart (two processes, or one event loop as below)::

    import asyncio
    from repro import make_controller
    from repro.netio import ImpairmentProfile, NetioServer, send_payload

    async def main():
        server = NetioServer()
        host, port = await server.start()
        result = await send_payload(
            host, port, make_controller("libra:cubic"),
            data=bytes(1_048_576),
            impairment=ImpairmentProfile(loss=0.02, delay=0.02, seed=1))
        print(result.summary())
        await server.close()

    asyncio.run(main())

CLI front-ends: ``python -m repro serve`` / ``python -m repro send``.
"""

from .adapter import CCAAdapter
from .arq import REORDER_THRESHOLD, AckOutcome, SRSender, TransferAbort
from .framing import (FramingError, decode, encode_ack, encode_control,
                      encode_data, seq_add, seq_dist, seq_in_window)
from .impairment import ImpairmentProfile, LoopbackImpairment
from .lifecycle import (RST_REASONS, DeadlineWheel, ServerLimits,
                        validate_syn_meta)
from .rxbuf import SRReceiver
from .transport import (DEFAULT_UDP_MSS, MAX_CONSECUTIVE_RTOS, AsyncClock,
                        NetioClient, NetioResult, NetioServer, TransferStats,
                        TransferTimeout, send_payload)

__all__ = [
    "AckOutcome", "AsyncClock", "CCAAdapter", "DEFAULT_UDP_MSS",
    "DeadlineWheel", "FramingError", "ImpairmentProfile",
    "LoopbackImpairment", "MAX_CONSECUTIVE_RTOS", "NetioClient",
    "NetioResult", "NetioServer", "REORDER_THRESHOLD", "RST_REASONS",
    "SRReceiver", "SRSender", "ServerLimits", "TransferAbort",
    "TransferStats", "TransferTimeout", "decode", "encode_ack",
    "encode_control", "encode_data", "send_payload", "seq_add", "seq_dist",
    "seq_in_window", "validate_syn_meta",
]
