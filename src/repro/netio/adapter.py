"""Bridge between the async datapath and the synchronous CCA step API.

The whole point of :mod:`repro.netio` is that the congestion controllers
under ``repro/cca`` and ``repro/core`` run *unchanged* over a real
socket.  The adapter guarantees that by speaking their exact dialect:

- per-ACK :class:`~repro.simnet.packet.AckSample` records (RTT, srtt,
  min-RTT, delivery rate from delivered-counter deltas, inflight),
- per-loss :class:`~repro.simnet.packet.LossSample` records,
- per-monitor-interval :class:`~repro.simnet.packet.IntervalReport`
  aggregates, produced by the same ``_WindowStats`` accumulator the
  simulator's sender uses — so throughput/loss/RTT-gradient semantics
  are identical by construction, not by reimplementation.

Rate/window decisions flow the other way through
:meth:`effective_rate` / :meth:`window_allows`, mirroring
:class:`repro.simnet.endpoint.Sender`'s pacing semantics (pacing floor
included).  Telemetry lands in the same ``flow<N>.*`` channels the
simulator records, so one ``FlowTelemetry`` schema covers both
datapaths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..simnet.endpoint import (MIN_PACING_RATE, TELEMETRY_SAMPLE_INTERVAL,
                               _WindowStats)
from ..simnet.packet import AckSample, IntervalReport, LossSample

if TYPE_CHECKING:  # import cycle hygiene, same pattern as simnet
    from ..cca.base import Controller
    from ..telemetry import Recorder


class CCAAdapter:
    """Drives one :class:`~repro.cca.base.Controller` from ARQ events."""

    def __init__(self, controller: "Controller", mss: int,
                 recorder: "Recorder | None" = None, flow_id: int = 0):
        self.controller = controller
        self.mss = mss
        self.flow_id = flow_id
        self.recorder = recorder
        self._tel_channels = None
        self._window = _WindowStats()
        self._started = False
        self.min_rtt = float("inf")
        self.srtt = 0.0

    # -- lifecycle -------------------------------------------------------

    def start(self, now: float) -> None:
        self.controller.start(now, self.mss)
        if self.recorder is not None:
            self.controller.attach_telemetry(self.recorder,
                                             flow_id=self.flow_id)
            prefix = f"flow{self.flow_id}."
            self._tel_channels = tuple(
                self.recorder.series(prefix + name)
                for name in ("rate", "srtt", "cwnd", "inflight",
                             "throughput", "loss_rate"))
        self._window.reset(now)
        self._started = True

    @property
    def marker(self) -> int:
        return self.controller.marker

    # -- MI cadence ------------------------------------------------------

    def interval(self) -> float | None:
        """The controller's requested MI duration (``None`` = no MI)."""
        return self.controller.interval()

    def tick_interval(self) -> float:
        """Housekeeping cadence for the transport's interval loop."""
        duration = self.controller.interval()
        if duration is None:
            return TELEMETRY_SAMPLE_INTERVAL
        return max(duration, 1e-3)

    # -- feedback from the ARQ layer --------------------------------------

    def on_sent(self, nbytes: int) -> None:
        self._window.sent_packets += 1
        self._window.sent_bytes += nbytes
        if self.controller.userspace:
            self.controller.meter.count("userspace_packet")

    def on_acked(self, now: float, seq: int, nbytes: int, rtt: float | None,
                 srtt: float, min_rtt: float, delivery_rate: float,
                 inflight_bytes: float, sent_time: float, marker: int) -> None:
        self.srtt = srtt
        if min_rtt < self.min_rtt:
            self.min_rtt = min_rtt
        win = self._window
        win.acked_packets += 1
        win.delivered_bytes += nbytes
        if rtt is not None:
            win.add_rtt(now, rtt)
        sample = AckSample(
            now=now, seq=seq, rtt=rtt if rtt is not None else srtt,
            min_rtt=self.min_rtt, srtt=srtt, acked_bytes=nbytes,
            delivery_rate=delivery_rate, inflight_bytes=inflight_bytes,
            sent_time=sent_time, marker=marker)
        self.controller.on_ack(sample)
        if self.controller.userspace:
            self.controller.meter.count("userspace_packet")

    def on_lost(self, now: float, seq: int, nbytes: int, sent_time: float,
                inflight_bytes: float, marker: int) -> None:
        self._window.lost_packets += 1
        self.controller.on_loss(LossSample(
            now=now, seq=seq, lost_bytes=nbytes, sent_time=sent_time,
            inflight_bytes=inflight_bytes, marker=marker))

    def fire_interval(self, now: float,
                      inflight_bytes: float) -> IntervalReport:
        """Close the current monitor interval and feed the controller.

        Called by the transport's interval loop at :meth:`tick_interval`
        cadence.  Controllers that request no MI (window CCAs) still get
        telemetry sampled here, exactly like the simulator's
        telemetry-only tick.
        """
        report = self._window.report(now, self.min_rtt)
        self._window.reset(now)
        if self._tel_channels is not None:
            self._record_interval(now, report, inflight_bytes)
        if self.controller.interval() is not None:
            self.controller.meter.count("per_mi")
            self.controller.on_interval(report)
        return report

    def _record_interval(self, now: float, report: IntervalReport,
                         inflight_bytes: float) -> None:
        rate_ch, srtt_ch, cwnd_ch, inflight_ch, tput_ch, loss_ch = \
            self._tel_channels
        rate_ch.add(now, self.effective_rate())
        srtt_ch.add(now, self.srtt)
        cwnd = self.controller.cwnd()
        if cwnd is not None:
            cwnd_ch.add(now, cwnd)
        inflight_ch.add(now, inflight_bytes)
        tput_ch.add(now, report.throughput)
        loss_ch.add(now, report.loss_rate)
        self.controller.meter.count("telemetry")

    # -- decisions towards the datapath ------------------------------------

    def effective_rate(self) -> float:
        """Pacing rate in bps (same derivation as the simulator's sender)."""
        rate = self.controller.pacing_rate()
        if rate is None:
            cwnd = self.controller.cwnd()
            srtt = self.srtt if self.srtt > 0 else 0.1
            rate = (cwnd or self.mss * 10) * 8.0 / srtt
        return max(rate, MIN_PACING_RATE)

    def window_allows(self, inflight_bytes: float) -> bool:
        cwnd = self.controller.cwnd()
        return cwnd is None or inflight_bytes + self.mss <= cwnd
