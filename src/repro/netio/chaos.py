"""Chaos harness for the netio serving path.

Every hardening claim in :mod:`repro.netio.lifecycle` is an invariant
("the server returns to budget after X") — this module turns each one
into a seeded, self-checking scenario against a *real* server on real
loopback sockets:

- ``kill-client``   — a client dies mid-transfer; the idle reaper must
  RST the session, flush its stats (``complete=False``,
  ``aborted="idle-expired"``), and return the server to zero live
  sessions and zero buffered bytes.
- ``syn-flood``     — half-open SYNs from many source ports; admission
  control must pin live sessions at ``max_sessions``, RST the overflow
  with ``session-cap``, and reap the half-open remainder after the idle
  timeout.
- ``fuzz``          — seeded garbage at the server socket (random bytes,
  truncations, bit-flips of valid frames); the server must count them as
  malformed and keep serving real transfers.
- ``server-restart``— the server dies and comes back mid-transfer; the
  restarted server's ``no-session`` RST must abort the client with a
  structured reason in seconds, not its 120 s wall-clock timeout.
- ``drain``         — graceful shutdown with a transfer in flight; the
  transfer must finish, a SYN arriving during the drain must be refused
  with ``draining``, and nothing may need force-reset.

Scenarios return :class:`Check` lists; failures (and crashes) are
collected into FailedRun-style :class:`ChaosReport` records (mirroring
:class:`repro.parallel.FailedRun`) rather than aborting the suite, so
one run reports every broken invariant at once.  Entry points:
:func:`run_chaos` (library), ``python -m repro chaos`` (CLI), and the
``soak`` experiment (:mod:`repro.experiments.soak`).
"""

from __future__ import annotations

import asyncio
import random
import traceback as _traceback
from dataclasses import dataclass, field

from .arq import TransferAbort
from .framing import (RST, SYN, ControlPacket, FramingError, decode,
                      encode_control, encode_data)
from .impairment import ImpairmentProfile
from .lifecycle import (RST_DRAINING, RST_IDLE_EXPIRED, RST_NO_SESSION,
                        RST_SESSION_CAP, ServerLimits)
from .transport import NetioClient, NetioServer

#: default CCA for chaos transfers: deterministic, dependency-free
CHAOS_CCA = "cubic"

#: per-scenario wall-clock budget; a hung scenario is itself a failure
SCENARIO_TIMEOUT = 30.0


@dataclass(slots=True)
class Check:
    """One asserted invariant inside a scenario."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f" ({self.detail})"
                                          if self.detail else "")


@dataclass
class ChaosReport:
    """Outcome of one chaos scenario (FailedRun-style: never raises)."""

    scenario: str
    seed: int
    passed: bool
    checks: list = field(default_factory=list)
    duration: float = 0.0
    error: str | None = None
    traceback: str | None = None

    def summary(self) -> dict:
        return {"scenario": self.scenario, "seed": self.seed,
                "passed": self.passed,
                "duration_s": round(self.duration, 3),
                "checks": [{"name": c.name, "passed": c.passed,
                            "detail": c.detail} for c in self.checks],
                "error": self.error}

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        line = f"{self.scenario}: {status} ({len(self.checks)} checks, " \
               f"{self.duration:.2f}s)"
        if self.error:
            line += f" — {self.error}"
        return line


# -- scenario plumbing -------------------------------------------------------

class _RawPeer(asyncio.DatagramProtocol):
    """A hand-rolled UDP peer: sends raw datagrams, queues decoded
    replies.  Used to speak *wrong* protocol (half-open SYNs, garbage)
    that :class:`NetioClient` is too well-behaved to produce."""

    def __init__(self):
        self.transport = None
        self.inbox: asyncio.Queue = asyncio.Queue()

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            self.inbox.put_nowait(decode(data))
        except FramingError:
            pass

    def send(self, datagram: bytes) -> None:
        self.transport.sendto(datagram)

    async def expect_rst(self, timeout: float = 2.0) -> str | None:
        """Reason of the next inbound RST, or ``None`` on timeout."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                return None
            try:
                packet = await asyncio.wait_for(self.inbox.get(), remaining)
            except asyncio.TimeoutError:
                return None
            if isinstance(packet, ControlPacket) and packet.ptype == RST:
                return packet.meta.get("reason")

    def close(self) -> None:
        if self.transport is not None:
            self.transport.close()


async def _open_peer(host: str, port: int) -> _RawPeer:
    loop = asyncio.get_running_loop()
    _, protocol = await loop.create_datagram_endpoint(
        _RawPeer, remote_addr=(host, port))
    return protocol


def _controller(seed: int):
    from ..registry import make_controller

    return make_controller(CHAOS_CCA, seed=seed)


async def _wait_until(predicate, timeout: float, poll: float = 0.01) -> bool:
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(poll)
    return predicate()


def _reap_budget(limits: ServerLimits) -> float:
    """How long a session may legitimately outlive its last datagram:
    the idle timeout, plus one wheel slot of lateness, plus one reaper
    cadence, plus scheduling slack."""
    return limits.idle_timeout + 2 * limits.reap_granularity + 1.0


# -- scenarios ---------------------------------------------------------------

async def scenario_kill_client(seed: int, recorder=None) -> list[Check]:
    """Kill a client mid-transfer; the server must reap and recover."""
    limits = ServerLimits(max_sessions=8, idle_timeout=0.4,
                          session_buffer_bytes=256 * 1024,
                          drain_deadline=2.0)
    server = NetioServer(limits=limits, recorder=recorder)
    host, port = await server.start()
    checks: list[Check] = []
    try:
        # Delay stretches the transfer so "mid-transfer" exists.
        client = NetioClient(
            _controller(seed), bytes(512 * 1024),
            impairment=ImpairmentProfile(delay=0.02, seed=seed), seed=seed)
        task = asyncio.ensure_future(client.run(host, port, timeout=20.0))
        mid = await _wait_until(
            lambda: server.live_sessions == 1 and any(
                s.stats.received_packets > 0
                for s in server._sessions.values()), 5.0)
        checks.append(Check("transfer reached the server", mid,
                            f"live={server.live_sessions}"))
        task.cancel()           # the client process "dies": no FIN, ever
        try:
            await task
        except (asyncio.CancelledError, TransferAbort):
            pass
        reaped = await _wait_until(lambda: server.live_sessions == 0,
                                   _reap_budget(limits))
        checks.append(Check("idle reaper cleared the session", reaped,
                            f"live={server.live_sessions} "
                            f"reaped={server.sessions_reaped}"))
        checks.append(Check("reorder buffer returned to zero",
                            server.buffered_bytes == 0,
                            f"buffered={server.buffered_bytes}"))
        stats = server.drain_completed()
        aborted = [s for s in stats if s.aborted == RST_IDLE_EXPIRED]
        checks.append(Check("aborted stats flushed with idle-expired reason",
                            len(aborted) == 1 and not aborted[0].complete,
                            f"stats={[s.aborted for s in stats]}"))
        sane = all(s.duration >= 0.0 and s.goodput_bps >= 0.0
                   and s.finished_at > 0.0 for s in stats)
        checks.append(Check("aborted stats have sane duration/goodput",
                            bool(stats) and sane))
    finally:
        await server.close()
    return checks


async def scenario_syn_flood(seed: int, recorder=None) -> list[Check]:
    """Half-open SYN flood: cap admissions, RST overflow, reap the rest."""
    limits = ServerLimits(max_sessions=6, idle_timeout=0.4,
                          session_buffer_bytes=64 * 1024,
                          drain_deadline=2.0)
    server = NetioServer(limits=limits, recorder=recorder)
    host, port = await server.start()
    flood = 3 * limits.max_sessions
    peers = []
    checks: list[Check] = []
    try:
        for i in range(flood):
            peer = await _open_peer(host, port)
            peers.append(peer)
            peer.send(encode_control(SYN, 0, {"bytes": 1000, "isn": 0,
                                              "cca": "flood", "mss": 1200}))
        await _wait_until(
            lambda: server.sessions_opened + server.sessions_rejected
            >= flood, 5.0)
        checks.append(Check(
            "live sessions pinned at the cap",
            server.live_sessions == limits.max_sessions,
            f"live={server.live_sessions} cap={limits.max_sessions}"))
        checks.append(Check(
            "overflow SYNs refused",
            server.sessions_rejected == flood - limits.max_sessions,
            f"rejected={server.sessions_rejected}"))
        reason = await peers[-1].expect_rst()
        checks.append(Check("rejected peer got an explicit session-cap RST",
                            reason == RST_SESSION_CAP, f"reason={reason!r}"))
        reaped = await _wait_until(lambda: server.live_sessions == 0,
                                   _reap_budget(limits))
        checks.append(Check(
            "half-open sessions reaped after the idle timeout", reaped,
            f"live={server.live_sessions} reaped={server.sessions_reaped}"))
        checks.append(Check("every half-open session flushed as aborted",
                            server.sessions_reaped == limits.max_sessions,
                            f"reaped={server.sessions_reaped}"))
    finally:
        for peer in peers:
            peer.close()
        await server.close()
    return checks


def fuzz_corpus(seed: int, count: int = 400) -> list[bytes]:
    """Seeded hostile datagrams: random bytes, truncations of valid
    frames, and bit-flipped valid frames.  Shared with the framing fuzz
    test so the wire-level corpus and the socket-level corpus agree."""
    rng = random.Random(seed)
    valid = [
        encode_data(rng.randrange(1 << 16), bytes(rng.randrange(1, 64))),
        encode_control(SYN, 1, {"bytes": 4096, "isn": 3, "cca": "x"}),
        encode_control(RST, 0, {"reason": "fuzz"}),
    ]
    corpus: list[bytes] = []
    for _ in range(count):
        kind = rng.randrange(3)
        if kind == 0:                      # pure noise
            corpus.append(rng.randbytes(rng.randrange(0, 96)))
        elif kind == 1:                    # truncation of a valid frame
            frame = rng.choice(valid)
            corpus.append(frame[:rng.randrange(0, len(frame))])
        else:                              # single bit flip in a valid frame
            frame = bytearray(rng.choice(valid))
            pos = rng.randrange(len(frame))
            frame[pos] ^= 1 << rng.randrange(8)
            corpus.append(bytes(frame))
    # the adversarial deep-nesting payload that used to blow the JSON
    # parser's stack (now refused by MAX_CONTROL_BYTES)
    corpus.append(b"\x03\x00\x00\x00\x0f\xa0\x00\x00" + b"[" * 4000)
    return corpus


async def scenario_fuzz(seed: int, recorder=None) -> list[Check]:
    """Garbage at the socket must not take the server down."""
    limits = ServerLimits(max_sessions=8, idle_timeout=0.5,
                          session_buffer_bytes=256 * 1024,
                          drain_deadline=2.0)
    server = NetioServer(limits=limits, recorder=recorder)
    host, port = await server.start()
    checks: list[Check] = []
    peer = await _open_peer(host, port)
    try:
        for datagram in fuzz_corpus(seed):
            peer.send(datagram)
        await _wait_until(lambda: server.malformed_datagrams > 50, 5.0)
        checks.append(Check("garbage counted, not crashed on",
                            server.malformed_datagrams > 50,
                            f"malformed={server.malformed_datagrams}"))
        # The proof of life: a real transfer still completes.
        result = await NetioClient(_controller(seed), bytes(64 * 1024),
                                   seed=seed).run(host, port, timeout=15.0)
        checks.append(Check("real transfer completes after the fuzz",
                            result.bytes_acked >= result.bytes_total,
                            f"acked={result.bytes_acked}"))
        checks.append(Check("session budget held during the fuzz",
                            server.live_sessions <= limits.max_sessions,
                            f"live={server.live_sessions}"))
        # Bit-flipped SYNs may have opened junk sessions; they must age out.
        recovered = await _wait_until(lambda: server.live_sessions == 0,
                                      _reap_budget(limits))
        checks.append(Check("server back to zero sessions after the fuzz",
                            recovered and server.buffered_bytes == 0,
                            f"live={server.live_sessions} "
                            f"buffered={server.buffered_bytes}"))
    finally:
        peer.close()
        await server.close()
    return checks


async def scenario_server_restart(seed: int, recorder=None) -> list[Check]:
    """Server dies and returns mid-transfer; the client must fail fast."""
    limits = ServerLimits(max_sessions=8, idle_timeout=1.0,
                          session_buffer_bytes=256 * 1024,
                          drain_deadline=2.0)
    loop = asyncio.get_running_loop()
    server = NetioServer(limits=limits, recorder=recorder)
    host, port = await server.start()
    replacement = None
    checks: list[Check] = []
    try:
        client = NetioClient(
            _controller(seed), bytes(512 * 1024),
            impairment=ImpairmentProfile(delay=0.02, seed=seed), seed=seed)
        task = asyncio.ensure_future(client.run(host, port, timeout=60.0))
        await _wait_until(
            lambda: server.live_sessions == 1 and any(
                s.stats.received_packets > 10
                for s in server._sessions.values()), 5.0)
        await server.close()    # the "crash": state gone, port released
        restart_at = loop.time()
        replacement = NetioServer(host=host, port=port, limits=limits,
                                  recorder=recorder)
        # asyncio releases the UDP socket a beat after close() returns;
        # rebinding the same port needs a short retry, like a real
        # restarting daemon.
        for _ in range(100):
            try:
                await replacement.start()
                break
            except OSError:
                await asyncio.sleep(0.02)
        else:
            raise RuntimeError(f"could not rebind {host}:{port}")
        abort: TransferAbort | None = None
        try:
            await task
        except TransferAbort as exc:
            abort = exc
        elapsed = loop.time() - restart_at
        checks.append(Check(
            "client aborted with the server's no-session RST",
            abort is not None and abort.reason == f"rst:{RST_NO_SESSION}",
            f"reason={getattr(abort, 'reason', None)!r}"))
        checks.append(Check(
            "abort was fast, not a 120s timeout grind", elapsed < 5.0,
            f"elapsed={elapsed:.2f}s"))
        checks.append(Check(
            "restarted server carried no ghost sessions",
            replacement.live_sessions == 0 and replacement.rst_sent >= 1,
            f"live={replacement.live_sessions} "
            f"rst_sent={replacement.rst_sent}"))
        # And the replacement actually serves:
        result = await NetioClient(_controller(seed + 1), bytes(64 * 1024),
                                   seed=seed + 1).run(host, port,
                                                      timeout=15.0)
        checks.append(Check("replacement server serves a fresh transfer",
                            result.bytes_acked >= result.bytes_total))
    finally:
        await server.close()
        if replacement is not None:
            await replacement.close()
    return checks


async def scenario_drain(seed: int, recorder=None) -> list[Check]:
    """Graceful drain: in-flight finishes, new SYNs bounce, nothing forced."""
    limits = ServerLimits(max_sessions=8, idle_timeout=2.0,
                          session_buffer_bytes=256 * 1024,
                          drain_deadline=10.0)
    server = NetioServer(limits=limits, recorder=recorder)
    host, port = await server.start()
    checks: list[Check] = []
    peer = None
    try:
        client = NetioClient(
            _controller(seed), bytes(256 * 1024),
            impairment=ImpairmentProfile(delay=0.02, seed=seed), seed=seed)
        task = asyncio.ensure_future(client.run(host, port, timeout=20.0))
        await _wait_until(lambda: server.live_sessions == 1, 5.0)
        drain_task = asyncio.ensure_future(server.drain())
        await _wait_until(lambda: server.draining, 1.0)
        peer = await _open_peer(host, port)
        peer.send(encode_control(SYN, 0, {"bytes": 10, "isn": 0}))
        reason = await peer.expect_rst()
        checks.append(Check("SYN during drain refused with draining RST",
                            reason == RST_DRAINING, f"reason={reason!r}"))
        result = await task
        checks.append(Check("in-flight transfer completed during drain",
                            result.bytes_acked >= result.bytes_total,
                            f"acked={result.bytes_acked}"))
        report = await drain_task
        checks.append(Check("drain finished without force-resets",
                            report["forced"] == 0, f"report={report}"))
        stats = server.drain_completed()
        checks.append(Check(
            "drained transfer's stats are complete",
            len(stats) == 1 and stats[0].complete and stats[0].aborted is None,
            f"stats={[(s.complete, s.aborted) for s in stats]}"))
    finally:
        if peer is not None:
            peer.close()
        await server.close()
    return checks


CHAOS_SCENARIOS = {
    "kill-client": scenario_kill_client,
    "syn-flood": scenario_syn_flood,
    "fuzz": scenario_fuzz,
    "server-restart": scenario_server_restart,
    "drain": scenario_drain,
}


# -- runner ------------------------------------------------------------------

async def _run_one(name: str, seed: int, recorder=None) -> ChaosReport:
    loop = asyncio.get_running_loop()
    start = loop.time()
    report = ChaosReport(scenario=name, seed=seed, passed=False)
    try:
        checks = await asyncio.wait_for(
            CHAOS_SCENARIOS[name](seed, recorder=recorder), SCENARIO_TIMEOUT)
        report.checks = checks
        report.passed = all(check.passed for check in checks)
        if not report.passed:
            failed = [check.name for check in checks if not check.passed]
            report.error = f"failed checks: {', '.join(failed)}"
    except asyncio.TimeoutError:
        report.error = f"scenario exceeded {SCENARIO_TIMEOUT}s"
    except Exception as exc:    # FailedRun-style: collect, never abort
        report.error = f"{type(exc).__name__}: {exc}"
        report.traceback = _traceback.format_exc()
    report.duration = loop.time() - start
    return report


def run_chaos(names=None, seed: int = 1, recorder=None) -> list[ChaosReport]:
    """Run the named scenarios (default: all), each in a fresh event
    loop so a scenario that leaks tasks cannot poison the next one."""
    if names is None:
        names = list(CHAOS_SCENARIOS)
    unknown = [n for n in names if n not in CHAOS_SCENARIOS]
    if unknown:
        raise ValueError(f"unknown chaos scenario(s) {unknown}; "
                         f"choose from {sorted(CHAOS_SCENARIOS)}")
    return [asyncio.run(_run_one(name, seed, recorder=recorder))
            for name in names]


__all__ = ["CHAOS_SCENARIOS", "ChaosReport", "Check", "fuzz_corpus",
           "run_chaos"]
