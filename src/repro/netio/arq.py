"""Selective-repeat ARQ sender state machine.

Pure synchronous logic — no sockets, no event loop — so the transport
layer stays thin and every corner (sequence wrap, Karn's rule, SACK
reorder detection, RTO backoff) is unit-testable.  The shape follows the
``SRSender`` exemplar in SNIPPETS.md snippet 2: a mod-2^16 window of
outstanding packets, RFC 6298 srtt/rttvar RTO estimation, and explicit
retransmission bookkeeping.

The sender does not talk to the congestion controller itself; it emits
:class:`AckOutcome` records (newly acked / newly lost packets plus RTT
samples) that :class:`repro.netio.adapter.CCAAdapter` translates into
the exact :class:`~repro.simnet.packet.AckSample` /
:class:`~repro.simnet.packet.LossSample` stream the simulator produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sanitize import invariants as _sanitize
from .framing import MAX_SACK_BLOCKS, SEQ_MOD, AckPacket, seq_add, seq_dist

#: SACKed packets past a hole before the hole is declared lost — the
#: same reorder threshold the simulator's sender uses
REORDER_THRESHOLD = 3

#: RFC 6298 constants (per SNIPPETS.md snippet 2's SRSender)
RTO_ALPHA = 1.0 / 8.0
RTO_BETA = 1.0 / 4.0
RTO_K = 4.0
MIN_RTO = 0.2
MAX_RTO = 4.0
INITIAL_RTO = 1.0


@dataclass(slots=True)
class TxRecord:
    """One outstanding (sent, not yet acked) data packet."""

    seq: int
    payload: bytes
    first_send: float
    last_send: float
    delivered_at_send: float
    marker: int = 0
    retries: int = 0
    retransmitted: bool = False
    lost: bool = False            # declared lost, awaiting retransmission


@dataclass(slots=True)
class AckOutcome:
    """What one inbound ACK did to the sender state."""

    acked: list = field(default_factory=list)       # [(seq, TxRecord, rtt|None)]
    newly_lost: list = field(default_factory=list)  # [(seq, TxRecord)]
    duplicate: bool = False


class SRSender:
    """Sliding-window selective-repeat sender with adaptive RTO.

    ``window`` bounds the number of simultaneously outstanding packets;
    it must stay well below the half-ring (2^15) so window membership is
    unambiguous under wrap.
    """

    def __init__(self, window: int = 1024, initial_seq: int = 0,
                 max_retries: int = 20):
        if not 0 < window <= SEQ_MOD // 4:
            raise ValueError(f"window must be in (0, {SEQ_MOD // 4}]")
        self.window = window
        self.max_retries = max_retries
        self.base = initial_seq & (SEQ_MOD - 1)      # oldest unacked
        self.next_seq = self.base                    # next fresh sequence
        self.outstanding: dict[int, TxRecord] = {}
        self.rtx_queue: list[int] = []               # lost seqs awaiting resend

        self.srtt = 0.0
        self.rttvar = 0.0
        self.latest_rtt = 0.0
        self.min_rtt = float("inf")
        self.rto = INITIAL_RTO
        self._rto_backoff = 1.0

        self.inflight_bytes = 0.0
        self.delivered_bytes = 0.0   # sender-side cumulative acked payload
        self.sent_packets = 0
        self.acked_packets = 0
        self.lost_packets = 0
        self.retransmissions = 0
        self.last_ack_time = 0.0
        #: RTO firings since the last ACK that acked anything — the
        #: transport's give-up policy reads this to decide the peer is gone
        self.consecutive_rtos = 0
        # Invariant layer: captured once at construction (same pattern
        # as the simulator's endpoints); ``None`` keeps the ACK path at
        # one attribute check.
        self.sanitizer = _sanitize.ACTIVE
        self._acks_since_audit = 0

    # -- sending ----------------------------------------------------------

    def can_send_new(self) -> bool:
        """Whether a fresh sequence number fits in the send window."""
        return seq_dist(self.base, self.next_seq) < self.window

    def register_send(self, payload: bytes, now: float, marker: int = 0) -> int:
        """Record a fresh packet send; returns its sequence number."""
        if not self.can_send_new():
            raise RuntimeError("send window full")
        seq = self.next_seq
        self.next_seq = seq_add(self.next_seq)
        self.outstanding[seq] = TxRecord(
            seq=seq, payload=payload, first_send=now, last_send=now,
            delivered_at_send=self.delivered_bytes, marker=marker)
        self.inflight_bytes += len(payload)
        self.sent_packets += 1
        return seq

    def next_retransmit(self, now: float) -> TxRecord | None:
        """Pop the next lost packet to resend, updating its bookkeeping."""
        while self.rtx_queue:
            seq = self.rtx_queue.pop(0)
            record = self.outstanding.get(seq)
            if record is None or not record.lost:
                continue
            record.lost = False
            record.last_send = now
            record.retries += 1
            record.retransmitted = True
            self.inflight_bytes += len(record.payload)
            self.retransmissions += 1
            if record.retries > self.max_retries:
                raise TransferAbort(
                    f"seq {seq} exceeded {self.max_retries} retries",
                    reason="max-retries", seq=seq, retries=record.retries)
            return record
        return None

    @property
    def has_retransmits(self) -> bool:
        return bool(self.rtx_queue)

    def done(self, total_sent: bool) -> bool:
        """All data acked: nothing outstanding, nothing queued for resend."""
        return total_sent and not self.outstanding and not self.rtx_queue

    # -- acknowledgements --------------------------------------------------

    def on_ack(self, ack: AckPacket, now: float) -> AckOutcome:
        """Apply one ACK; returns the newly acked / newly lost packets."""
        outcome = AckOutcome()
        self.last_ack_time = now
        if self.sanitizer is not None:
            self.sanitizer.check_ack_window(self, ack)
            self._acks_since_audit += 1
            if self._acks_since_audit >= self.sanitizer.AUDIT_EVERY:
                self._acks_since_audit = 0
                self.sanitizer.audit_tx(self)

        # Cumulative part: everything before cum_ack is delivered.  A
        # cum_ack "behind" base (a reordered old ACK) wraps to a huge
        # forward distance and is ignored.
        if seq_dist(self.base, ack.cum_ack) <= self.window:
            while self.base != ack.cum_ack:
                self._ack_one(self.base, now, outcome)
                self.base = seq_add(self.base)
        # SACK part: individually acknowledged packets past the hole.
        highest_sacked = None
        for start, end in ack.sack_blocks:
            seq = start
            guard = 0
            while seq != end and guard < SEQ_MOD:
                self._ack_one(seq, now, outcome)
                if highest_sacked is None or \
                        seq_dist(self.base, seq) > seq_dist(self.base,
                                                            highest_sacked):
                    highest_sacked = seq
                seq = seq_add(seq)
                guard += 1
        if not outcome.acked:
            outcome.duplicate = True
        else:
            self._rto_backoff = 1.0
            self.consecutive_rtos = 0
        if highest_sacked is not None and outcome.acked:
            newest_send = max(record.last_send
                              for _, record, _ in outcome.acked)
            self._detect_reorder_losses(highest_sacked, newest_send, outcome)
        self._advance_base()
        return outcome

    def _ack_one(self, seq: int, now: float, outcome: AckOutcome) -> None:
        record = self.outstanding.pop(seq, None)
        if record is None:
            return
        if not record.lost:
            self.inflight_bytes = max(0.0,
                                      self.inflight_bytes - len(record.payload))
        self.delivered_bytes += len(record.payload)
        self.acked_packets += 1
        rtt = None
        if not record.retransmitted:   # Karn: ambiguous samples are skipped
            rtt = now - record.last_send
            self._update_rtt(rtt)
        outcome.acked.append((seq, record, rtt))

    def _advance_base(self) -> None:
        """Slide base over holes that were individually SACKed away."""
        while self.base != self.next_seq and self.base not in self.outstanding:
            self.base = seq_add(self.base)

    def _update_rtt(self, rtt: float) -> None:
        self.latest_rtt = rtt
        self.min_rtt = min(self.min_rtt, rtt)
        if self.srtt == 0.0:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - RTO_BETA) * self.rttvar \
                + RTO_BETA * abs(self.srtt - rtt)
            self.srtt = (1 - RTO_ALPHA) * self.srtt + RTO_ALPHA * rtt
        self.rto = min(max(self.srtt + RTO_K * self.rttvar, MIN_RTO), MAX_RTO)

    # -- loss detection ----------------------------------------------------

    def _detect_reorder_losses(self, highest_sacked: int, newest_send: float,
                               outcome: AckOutcome) -> None:
        """Declare holes ``REORDER_THRESHOLD`` packets behind the highest
        SACKed sequence lost (the SACK analogue of dupack counting).

        ``newest_send`` guards retransmissions still in flight: a hole
        only counts as lost if some packet *sent after its last
        transmission* has already been SACKed — otherwise every ACK
        arriving while a retransmission travels would re-declare it lost
        and spray duplicates.
        """
        for seq in sorted(self.outstanding,
                          key=lambda s: seq_dist(self.base, s)):
            record = self.outstanding[seq]
            if record.lost or record.last_send >= newest_send:
                continue
            if seq_dist(seq, highest_sacked) >= REORDER_THRESHOLD \
                    and seq_dist(self.base, seq) < seq_dist(self.base,
                                                            highest_sacked):
                self._declare_lost(seq, record, outcome)

    def check_timeouts(self, now: float) -> AckOutcome:
        """RTO fallback for tail losses; backs the timer off once per firing."""
        outcome = AckOutcome()
        if not self.outstanding:
            return outcome
        timeout = self.rto * self._rto_backoff
        if now - self.last_ack_time < timeout:
            return outcome
        cutoff = now - timeout
        fired = False
        for seq, record in list(self.outstanding.items()):
            if not record.lost and record.last_send <= cutoff:
                self._declare_lost(seq, record, outcome)
                fired = True
        if fired:
            self._rto_backoff = min(self._rto_backoff * 2.0, 16.0)
            self.last_ack_time = now   # one backoff step per quiet period
            self.consecutive_rtos += 1
        return outcome

    def next_timeout_deadline(self) -> float | None:
        """Absolute time at which :meth:`check_timeouts` could next fire."""
        if not self.outstanding:
            return None
        return self.last_ack_time + self.rto * self._rto_backoff

    def _declare_lost(self, seq: int, record: TxRecord,
                      outcome: AckOutcome) -> None:
        record.lost = True
        self.inflight_bytes = max(0.0, self.inflight_bytes - len(record.payload))
        self.lost_packets += 1
        self.rtx_queue.append(seq)
        outcome.newly_lost.append((seq, record))


class TransferAbort(RuntimeError):
    """The transfer cannot continue — a structured give-up.

    ``reason`` is a stable machine-readable code (``max-retries``,
    ``rto-exhausted``, ``handshake-timeout``, ``teardown-timeout``, or
    ``rst:<server reason>`` — see :data:`repro.netio.lifecycle.
    RST_REASONS`); ``details`` carries whatever context the raiser had.
    The CLI and the chaos harness branch on ``reason``, never on the
    message text.
    """

    def __init__(self, message: str, reason: str = "unknown", **details):
        super().__init__(message)
        self.reason = reason
        self.details = details

    def summary(self) -> dict:
        """Machine-readable form for JSON output and chaos reports."""
        return {"reason": self.reason, "error": str(self), **self.details}


def sack_coverage(blocks: tuple[tuple[int, int], ...]) -> int:
    """Total packets covered by a SACK block set (diagnostics)."""
    return sum(seq_dist(start, end) for start, end in blocks)


__all__ = ["AckOutcome", "MAX_SACK_BLOCKS", "REORDER_THRESHOLD", "SRSender",
           "TransferAbort", "TxRecord", "sack_coverage"]
