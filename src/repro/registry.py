"""Name-based controller registry used by the experiment harness.

``make_controller("c-libra", seed=3)`` builds a fresh controller for one
flow.  Learning-based CCAs load their bundled pretrained policies; Libra
variants accept a ``utility_preset`` (Fig. 11's Th-1/Th-2/La-1/La-2).
"""

from __future__ import annotations

from typing import Callable

from .cca import (Bbr, Controller, Copa, CrashTestController, Cubic, Illinois,
                  NewReno, Sprout, Vegas, Westwood)
from .core.factory import make_b_libra, make_c_libra, make_clean_slate
from .learning import Aurora, Indigo, ModifiedRL, Orca, Proteus, Remy, Vivace


def _classic(cls) -> Callable[..., Controller]:
    def build(seed: int = 0, **_ignored) -> Controller:
        return cls()
    return build


def _aurora(seed: int = 0, **_ignored) -> Controller:
    from .assets import load_policy
    return Aurora(load_policy("aurora"), seed=seed)


def _orca(seed: int = 0, **_ignored) -> Controller:
    from .assets import load_policy
    return Orca(load_policy("orca"), seed=seed)


def _modified_rl(seed: int = 0, **_ignored) -> Controller:
    from .assets import load_policy
    return ModifiedRL(load_policy("modified-rl"), seed=seed)


def _vivace(seed: int = 0, **_ignored) -> Controller:
    return Vivace(seed=seed)


def _proteus(seed: int = 0, **_ignored) -> Controller:
    return Proteus(seed=seed)


def _c_libra(seed: int = 0, utility_preset=None, config=None, **_ignored) -> Controller:
    return make_c_libra(utility_preset=utility_preset, config=config, seed=seed)


def _b_libra(seed: int = 0, utility_preset=None, config=None, **_ignored) -> Controller:
    return make_b_libra(utility_preset=utility_preset, config=config, seed=seed)


def _cl_libra(seed: int = 0, config=None, **_ignored) -> Controller:
    return make_clean_slate(config=config, seed=seed)


REGISTRY: dict[str, Callable[..., Controller]] = {
    # classic
    "cubic": _classic(Cubic),
    "bbr": _classic(Bbr),
    "reno": _classic(NewReno),
    "vegas": _classic(Vegas),
    "copa": _classic(Copa),
    "westwood": _classic(Westwood),
    "illinois": _classic(Illinois),
    "sprout": _classic(Sprout),
    "indigo": _classic(Indigo),
    "remy": _classic(Remy),
    # learning-based
    "aurora": _aurora,
    "orca": _orca,
    "vivace": _vivace,
    "proteus": _proteus,
    "modified-rl": _modified_rl,
    # fault-path fixture (raises after N ACKs; see CrashTestController)
    "crash-test": lambda seed=0, **kwargs: CrashTestController(
        **{k: v for k, v in kwargs.items()
           if k in ("rate_bps", "crash_after")}),
    # Libra family
    "c-libra": _c_libra,
    "b-libra": _b_libra,
    "cl-libra": _cl_libra,
}


def make_controller(name: str, seed: int = 0, **kwargs) -> Controller:
    """Instantiate a controller by registry name.

    Beyond the fixed roster, ``"libra:<classic>"`` (e.g.
    ``"libra:westwood"``) builds Libra over any registered classic CCA
    (Sec. 7: the CUBIC/BBR parameter guidance extends to the others).
    """
    key = name.lower()
    if key.startswith("libra:"):
        from .core.factory import make_libra
        return make_libra(key.split(":", 1)[1], seed=seed, **kwargs)
    if key not in REGISTRY:
        raise KeyError(f"unknown CCA {name!r}; choose from {sorted(REGISTRY)}")
    return REGISTRY[key](seed=seed, **kwargs)


def available_ccas() -> list[str]:
    return sorted(REGISTRY)
