"""Content-addressed on-disk cache for completed job results.

The key of a job is the SHA-256 of its canonicalized spec (scenario,
flows, seed, duration — see :func:`repro.parallel.jobs.canonical_spec`)
salted with a code-version digest, so re-running a figure after *any*
change to the simulator, the CCAs, or the bundled policy weights misses
cleanly instead of serving stale results.

Entries are single pickle files written atomically (tmp + rename), laid
out ``<root>/<key[:2]>/<key>.pkl`` to keep directories small.  A corrupt
or unreadable entry is treated as a miss and removed.

The cache directory defaults to ``~/.cache/repro/sweeps`` and can be
overridden with the ``REPRO_CACHE_DIR`` environment variable or the
``--cache-dir`` CLI flag.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import tempfile

from .jobs import Job, JobResult, canonical_spec

#: environment variable overriding the default cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: bump to invalidate every existing cache entry regardless of code state
CACHE_FORMAT_VERSION = 1

_code_salt_memo: str | None = None


def default_cache_dir() -> str:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "sweeps")


def code_salt(fresh: bool = False) -> str:
    """Digest of the installed ``repro`` sources and bundled assets.

    Hashes every ``.py`` and ``.npz`` under the package directory (path
    + content), plus the python/numpy versions and the cache format
    version.  Memoized: the package does not change mid-process.
    """
    global _code_salt_memo
    if _code_salt_memo is not None and not fresh:
        return _code_salt_memo

    import numpy as np

    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    digest.update(f"format={CACHE_FORMAT_VERSION};".encode())
    digest.update(f"python={sys.version_info[0]}.{sys.version_info[1]};"
                  f"numpy={np.__version__};".encode())
    entries = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith((".py", ".npz")):
                continue
            path = os.path.join(dirpath, name)
            entries.append((os.path.relpath(path, root), path))
    for rel, path in sorted(entries):
        digest.update(rel.encode())
        with open(path, "rb") as fh:
            digest.update(hashlib.sha256(fh.read()).digest())
    _code_salt_memo = digest.hexdigest()
    return _code_salt_memo


def job_key(job: Job, salt: str | None = None) -> str:
    """Content address of a job: SHA-256 of canonical spec + code salt."""
    spec = canonical_spec(job)
    doc = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update((salt if salt is not None else code_salt()).encode())
    digest.update(doc.encode())
    return digest.hexdigest()


class ResultCache:
    """Content-addressed store of :class:`JobResult` pickles."""

    def __init__(self, root: str | None = None, salt: str | None = None):
        self.root = root or default_cache_dir()
        self.salt = salt if salt is not None else code_salt()
        self.hits = 0
        self.misses = 0

    def key(self, job: Job) -> str:
        return job_key(job, salt=self.salt)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    def get(self, job: Job) -> JobResult | None:
        """Look a job up; corrupt entries count as misses and are removed."""
        path = self._path(self.key(job))
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # truncated write, unpicklable against current code, ...
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return None
        if not isinstance(result, JobResult):
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        return result

    def put(self, job: Job, result: JobResult) -> str:
        """Store a result atomically; returns the entry's key."""
        key = self.key(job)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        return key

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
