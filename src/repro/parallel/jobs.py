"""Picklable descriptions of one simulation run.

A :class:`Job` bundles everything needed to execute one dumbbell
simulation — the scenario, the flows (CCA name + constructor kwargs,
each with its own seed), the network seed and the duration — in a form
that (a) pickles across process boundaries (the worker pool forks and
ships jobs to children) and (b) canonicalizes to a stable JSON document
(the content-addressed result cache hashes it; see
:func:`canonical_spec`).

``Job.run()`` is the single execution path used by the serial fallback,
the worker pool, and the cache-miss path, so parallel results are
byte-identical to serial ones by construction.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from ..scenarios.presets import Scenario
from ..simnet.network import RunResult


@dataclass(frozen=True)
class FlowSpec:
    """One flow of a job: a registry CCA name plus constructor kwargs.

    ``seed=None`` inherits the job's network seed — the common
    single-flow case.  ``kwargs`` is stored as a sorted item tuple so
    the spec stays hashable and canonicalizes deterministically.

    ``bytes`` makes the flow finite (FIN once that many bytes are
    acknowledged; ``None`` = long-lived) and ``traced`` gates the dense
    per-flow telemetry channels on recorded runs — both are regular
    fields, so churn workloads (generated flow lists with sizes and
    sampled tracing) land under their own cache keys automatically.
    """

    cca: str
    seed: int | None = None
    start: float = 0.0
    stop: float | None = None
    extra_rtt: float = 0.0
    kwargs: tuple = ()
    bytes: float | None = None
    traced: int = 1

    @classmethod
    def make(cls, cca: str, seed: int | None = None, start: float = 0.0,
             stop: float | None = None, extra_rtt: float = 0.0,
             bytes: float | None = None, traced: bool = True,
             **kwargs) -> "FlowSpec":
        return cls(cca=cca, seed=seed, start=start, stop=stop,
                   extra_rtt=extra_rtt, kwargs=tuple(sorted(kwargs.items())),
                   bytes=bytes, traced=1 if traced else 0)

    def build(self, default_seed: int):
        from ..registry import make_controller

        seed = self.seed if self.seed is not None else default_seed
        return make_controller(self.cca, seed=seed, **dict(self.kwargs))


@dataclass(frozen=True)
class Job:
    """One simulation run: flows through a scenario at a seed.

    ``telemetry`` is 0 for a plain run or the telemetry *schema version*
    for a traced one.  Because it is a regular job field it participates
    in :func:`canonical_spec`, so telemetry-bearing results live under a
    schema-versioned cache key — enabling tracing (or bumping the
    schema) can never serve a stale scalar-only cache hit.

    ``sanitize`` switches the :mod:`repro.sanitize` invariant layer on
    for the run (1) or leaves it off (0, the default).  Like telemetry
    it is a regular field, so sanitized results live under their own
    cache key.  The ``REPRO_SANITIZE`` environment variable forces the
    layer on regardless of the field — it is read inside :meth:`run`,
    so fork-pool children inherit the override.
    """

    scenario: Scenario
    flows: tuple[FlowSpec, ...]
    seed: int = 0
    duration: float | None = None
    telemetry: int = 0
    sanitize: int = 0

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError("a job needs at least one flow")
        if self.telemetry < 0:
            raise ValueError("telemetry must be 0 (off) or a schema version")
        if self.sanitize not in (0, 1):
            raise ValueError("sanitize must be 0 (off) or 1 (on)")

    @property
    def effective_duration(self) -> float:
        return self.duration if self.duration is not None \
            else self.scenario.default_duration

    def with_telemetry(self, enabled: bool = True) -> "Job":
        """A copy of this job with tracing switched on (or off)."""
        from ..telemetry import SCHEMA_VERSION

        return dataclasses.replace(
            self, telemetry=SCHEMA_VERSION if enabled else 0)

    def with_sanitize(self, enabled: bool = True) -> "Job":
        """A copy of this job with the invariant layer on (or off)."""
        return dataclasses.replace(self, sanitize=1 if enabled else 0)

    def run(self) -> RunResult:
        """Execute the simulation in-process and return its result."""
        from ..sanitize import invariants as _sanitize

        if self.sanitize or _sanitize.env_forced():
            with _sanitize.activate(_sanitize.SimSanitizer()):
                return self._run()
        return self._run()

    def _run(self) -> RunResult:
        recorder = None
        if self.telemetry:
            from ..telemetry import Recorder

            recorder = Recorder()
        net = self.scenario.build(seed=self.seed, recorder=recorder)
        for flow in self.flows:
            net.add_flow(flow.build(self.seed), start=flow.start,
                         stop=flow.stop, extra_rtt=flow.extra_rtt,
                         flow_bytes=flow.bytes, traced=bool(flow.traced))
        return net.run(self.effective_duration)


def single_flow_job(cca: str, scenario: Scenario, seed: int = 0,
                    duration: float | None = None, telemetry: bool = False,
                    sanitize: bool = False, **cca_kwargs) -> Job:
    """The ``run_single``-shaped job: one flow, flow seed = network seed."""
    job = Job(scenario=scenario, flows=(FlowSpec.make(cca, **cca_kwargs),),
              seed=seed, duration=duration, sanitize=1 if sanitize else 0)
    return job.with_telemetry() if telemetry else job


@dataclass
class FailedRun:
    """Structured summary of a job that raised instead of finishing.

    Under ``on_error="collect"`` (the stress experiment's mode) a
    controller or simulator exception becomes one of these in the result
    list instead of killing the whole sweep; ``cca``/``scenario``/``seed``
    identify the run, ``error`` holds ``repr(exc)`` and ``traceback`` the
    formatted stack from the process that ran it.
    """

    cca: str
    scenario: str
    seed: int
    error: str
    traceback: str = ""
    #: path of the on-disk repro bundle (``repro replay <bundle>``);
    #: empty when ``$REPRO_FAILURES_DIR`` capture is off
    bundle: str = ""

    #: sentinel mirrored by FlowSummary so tables can branch uniformly
    failed = True

    @classmethod
    def from_job(cls, job, exc: BaseException,
                 tb: str = "") -> "FailedRun":
        # Generic tasks (pool.run_tasks) lack flows/scenario; identify
        # them by label/class so error collection still works for them.
        flows = getattr(job, "flows", None)
        scenario = getattr(job, "scenario", None)
        if flows is None or scenario is None:
            name = getattr(job, "label", None) or type(job).__qualname__
            return cls(cca=name, scenario="task",
                       seed=getattr(job, "seed", 0) or 0,
                       error=repr(exc), traceback=tb)
        return cls(cca="+".join(flow.cca for flow in flows),
                   scenario=scenario.name, seed=job.seed,
                   error=repr(exc), traceback=tb)

    def __str__(self) -> str:
        text = (f"FAILED {self.cca} @ {self.scenario} seed={self.seed}: "
                f"{self.error}")
        if self.bundle:
            text += f"\n  repro bundle: {self.bundle}"
        return text


@dataclass
class JobResult:
    """What comes back for one job: the run plus execution metadata.

    Exactly one of ``result`` and ``failure`` is set: a job that raised
    under error collection carries a :class:`FailedRun` instead of a
    :class:`RunResult`.
    """

    result: RunResult | None
    elapsed: float = 0.0          # simulation wall-time in the worker
    cached: bool = False          # served from the result cache
    retries: int = 0              # crashed/timed-out attempts before success
    failure: FailedRun | None = None


def execute(job: Job, capture_errors: bool = False) -> JobResult:
    """Run a job and wrap the result with its timing.

    With ``capture_errors`` a raising job yields a :class:`JobResult`
    whose ``failure`` holds the structured :class:`FailedRun` instead of
    propagating — sweeps keep going past one bad run.
    """
    t0 = time.perf_counter()
    try:
        result = job.run()
    except Exception as exc:
        import traceback as _traceback

        from ..sanitize.replay import maybe_write_bundle

        tb = _traceback.format_exc()
        # Capture the repro bundle on both paths: a raising sweep should
        # still leave its evidence behind when $REPRO_FAILURES_DIR is set.
        bundle = maybe_write_bundle(job, exc, tb)
        if not capture_errors:
            raise
        failure = FailedRun.from_job(job, exc, tb)
        failure.bundle = bundle
        return JobResult(result=None, elapsed=time.perf_counter() - t0,
                         failure=failure)
    return JobResult(result=result, elapsed=time.perf_counter() - t0)


# -- canonicalization -------------------------------------------------------

def canonical_spec(obj):
    """Reduce a job (or any of its parts) to a JSON-stable structure.

    Dataclasses become ``[qualified-name, {field: value}]`` so renaming a
    class or field naturally invalidates old cache entries; floats are
    kept exact via ``repr``; plain objects fall back to their sorted
    ``__dict__``.  The output feeds ``json.dumps(..., sort_keys=True)``
    in :mod:`repro.parallel.cache`.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (list, tuple)):
        return [canonical_spec(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): canonical_spec(v) for k, v in sorted(obj.items())}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: canonical_spec(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return [_qualname(obj), fields]
    if hasattr(obj, "item") and not hasattr(obj, "__len__"):  # numpy scalar
        return canonical_spec(obj.item())
    if callable(obj) and hasattr(obj, "__qualname__"):  # plain function
        return f"{obj.__module__}.{obj.__qualname__}"
    if hasattr(obj, "__dict__"):
        fields = {k: canonical_spec(v) for k, v in sorted(vars(obj).items())}
        return [_qualname(obj), fields]
    return repr(obj)


def _qualname(obj) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"
