"""Parallel sweep executor with a content-addressed result cache.

Every paper artifact is a grid of independent (scenario × CCA × seed)
simulations; this subsystem executes such grids across a process pool
(:mod:`~repro.parallel.pool`), memoizes finished runs on disk keyed by
the SHA-256 of the job spec plus a code-version salt
(:mod:`~repro.parallel.cache`), and reports progress
(:mod:`~repro.parallel.progress`).

The experiment harness (:func:`repro.experiments.harness.run_grid`)
builds on these primitives; ``python -m repro experiment NAME --jobs N``
configures them via :func:`set_execution_config`.  Library defaults are
deliberately conservative — serial, no cache — so importing or testing
``repro`` never forks processes or writes outside the repo.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .cache import CACHE_DIR_ENV, ResultCache, code_salt, default_cache_dir, job_key
from .jobs import (FailedRun, FlowSpec, Job, JobResult, canonical_spec,
                   execute, single_flow_job)
from .pool import (JobFailedError, has_fork, resolve_workers, run_jobs,
                   run_tasks)
from .progress import ProgressReporter

__all__ = [
    "CACHE_DIR_ENV", "ExecutionConfig", "FailedRun", "FlowSpec", "Job",
    "JobFailedError", "JobResult", "ProgressReporter", "ResultCache",
    "canonical_spec", "code_salt", "default_cache_dir", "execute",
    "get_execution_config", "has_fork", "job_key", "resolve_workers",
    "run_jobs", "run_tasks", "set_execution_config", "single_flow_job",
]


@dataclass(frozen=True)
class ExecutionConfig:
    """Process-wide execution defaults consumed by ``run_grid``."""

    jobs: int = 1                  # 1 = serial, 0 = one worker per CPU
    cache: bool = False
    cache_dir: str | None = None   # None = env var / default location
    timeout: float | None = None   # per-attempt wall-time bound (seconds)
    retries: int = 1
    progress: bool = False
    on_error: str = "raise"        # "raise" aborts, "collect" → FailedRun


_config = ExecutionConfig()


def get_execution_config() -> ExecutionConfig:
    return _config


def set_execution_config(**changes) -> ExecutionConfig:
    """Update the process-wide defaults; returns the new config."""
    global _config
    _config = replace(_config, **changes)
    return _config
