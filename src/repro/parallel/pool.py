"""Worker pool executing job batches across processes.

Each job runs in its own forked child (simulations take seconds, fork
takes milliseconds, and one-process-per-job gives clean semantics for
the two failure modes a long sweep actually hits):

- **per-job timeout** — a wedged simulation is killed and retried;
- **bounded retry on worker crash** — a child that dies without
  delivering a result (OOM-killed, segfaulted native code) is retried
  up to ``retries`` times before the sweep fails.

A Python exception inside a job is *not* retried — it is deterministic
— and surfaces as :class:`JobFailedError` with the child's traceback,
or, under ``on_error="collect"``, as a structured
:class:`~repro.parallel.jobs.FailedRun` in the job's result slot so one
pathological run cannot kill a whole sweep.

When ``workers <= 1`` or the platform lacks ``fork`` (Windows, some
macOS configurations), execution falls back to the in-process serial
path, which still honors the result cache and progress reporting.
Results always come back in job order regardless of completion order,
so parallel aggregation is byte-identical to serial.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections

from .cache import ResultCache
from .jobs import Job, JobResult, execute
from .progress import ProgressReporter

#: how long the parent sleeps in one poll cycle at most (seconds)
_POLL_INTERVAL = 0.25


class JobFailedError(RuntimeError):
    """A job exhausted its retries or raised inside the worker."""


@dataclass
class _ChildError:
    """A job raised in the child; carries the formatted traceback."""

    message: str
    traceback: str


@dataclass
class _Running:
    index: int
    job: Job
    attempts: int          # failed attempts so far
    process: mp.Process
    deadline: float | None


def has_fork() -> bool:
    return "fork" in mp.get_all_start_methods()


def resolve_workers(jobs: int | None) -> int:
    """``None``/1 → serial; 0 → one worker per CPU; N → N workers."""
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    return jobs


def _child_main(job: Job, conn) -> None:
    try:
        # Always capture plain exceptions into the JobResult; the parent
        # decides whether to raise or collect them.
        payload = execute(job, capture_errors=True)
    except BaseException as exc:  # noqa: BLE001 — report, parent decides
        import traceback

        payload = _ChildError(repr(exc), traceback.format_exc())
    try:
        conn.send(payload)
    finally:
        conn.close()


def _prewarm_assets() -> None:
    """Load bundled policies before forking so children inherit them."""
    try:
        from ..assets import POLICY_KINDS, load_policy

        for kind in POLICY_KINDS:
            load_policy(kind)
    except Exception:
        pass  # missing/corrupt assets fail later with their own message


def run_jobs(jobs, workers: int | None = 1, cache: ResultCache | None = None,
             timeout: float | None = None, retries: int = 1,
             progress: ProgressReporter | None = None,
             on_error: str = "raise") -> list[JobResult]:
    """Execute ``jobs`` and return their results in input order.

    ``cache`` short-circuits jobs whose content address already has a
    stored result and records fresh results on the way out.  ``timeout``
    bounds one attempt's wall-time (parallel mode only).  ``retries`` is
    the number of *additional* attempts after a crash or timeout.
    ``on_error`` selects what a job's Python exception does: ``"raise"``
    aborts the sweep with :class:`JobFailedError`; ``"collect"`` stores a
    :class:`~repro.parallel.jobs.FailedRun` in the job's ``failure`` slot
    and keeps going (failures are never cached).
    """
    if on_error not in ("raise", "collect"):
        raise ValueError("on_error must be 'raise' or 'collect'")
    jobs = list(jobs)
    results: list[JobResult | None] = [None] * len(jobs)
    pending: deque[tuple[int, int]] = deque()  # (job index, failed attempts)

    for index, job in enumerate(jobs):
        hit = cache.get(job) if cache is not None else None
        if hit is not None:
            results[index] = hit
            if progress is not None:
                progress.update(cached=True)
        else:
            pending.append((index, 0))

    if not pending:
        return results  # type: ignore[return-value]

    workers = resolve_workers(workers)
    if workers <= 1 or not has_fork():
        _run_serial(jobs, pending, results, cache, progress, on_error)
    else:
        _run_parallel(jobs, pending, results, workers, cache, timeout,
                      retries, progress, on_error)
    return results  # type: ignore[return-value]


def _finish(index: int, job: Job, result: JobResult, results: list,
            cache: ResultCache | None,
            progress: ProgressReporter | None) -> None:
    results[index] = result
    if cache is not None and result.failure is None:
        cache.put(job, result)
    if progress is not None:
        progress.update(cached=False, retries=result.retries,
                        failed=result.failure is not None)


def _run_serial(jobs, pending, results, cache, progress, on_error) -> None:
    for index, _attempts in pending:
        result = execute(jobs[index], capture_errors=(on_error == "collect"))
        _finish(index, jobs[index], result, results, cache, progress)


def _run_parallel(jobs, pending, results, workers, cache, timeout, retries,
                  progress, on_error) -> None:
    ctx = mp.get_context("fork")
    _prewarm_assets()
    running: dict = {}  # parent connection -> _Running

    def spawn(index: int, attempts: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(target=_child_main,
                              args=(jobs[index], child_conn), daemon=True)
        process.start()
        child_conn.close()  # the parent only reads
        deadline = time.monotonic() + timeout if timeout is not None else None
        running[parent_conn] = _Running(index, jobs[index], attempts, process,
                                        deadline)

    def reap(conn, slot: _Running) -> None:
        """Kill a slot's process and release its connection."""
        del running[conn]
        conn.close()
        if slot.process.is_alive():
            slot.process.terminate()
            slot.process.join(timeout=2.0)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join()
        else:
            slot.process.join()

    def fail_or_retry(conn, slot: _Running, reason: str) -> None:
        reap(conn, slot)
        if slot.attempts + 1 > retries:
            raise JobFailedError(
                f"job {slot.index} ({_describe(slot.job)}) {reason} after "
                f"{slot.attempts + 1} attempt(s)")
        pending.append((slot.index, slot.attempts + 1))

    try:
        while pending or running:
            while pending and len(running) < workers:
                spawn(*pending.popleft())
            now = time.monotonic()
            poll = _POLL_INTERVAL
            for slot in running.values():
                if slot.deadline is not None:
                    poll = min(poll, max(slot.deadline - now, 0.0))
            for conn in _wait_connections(list(running), timeout=poll):
                slot = running[conn]
                try:
                    payload = conn.recv()
                except (EOFError, OSError):
                    payload = None  # died before sending a result
                if isinstance(payload, JobResult):
                    payload.retries = slot.attempts
                    reap(conn, slot)
                    if payload.failure is not None and on_error == "raise":
                        bundle = payload.failure.bundle
                        raise JobFailedError(
                            f"job {slot.index} ({_describe(slot.job)}) raised "
                            f"{payload.failure.error}\n"
                            + (f"repro bundle: {bundle}\n" if bundle else "")
                            + f"{payload.failure.traceback}")
                    _finish(slot.index, slot.job, payload, results, cache,
                            progress)
                elif isinstance(payload, _ChildError):
                    reap(conn, slot)
                    raise JobFailedError(
                        f"job {slot.index} ({_describe(slot.job)}) raised "
                        f"{payload.message}\n{payload.traceback}")
                else:
                    fail_or_retry(conn, slot, "crashed")
            now = time.monotonic()
            for conn, slot in list(running.items()):
                if slot.deadline is not None and now >= slot.deadline:
                    fail_or_retry(conn, slot,
                                  f"timed out (> {timeout:.1f}s)")
    finally:
        for conn, slot in list(running.items()):
            reap(conn, slot)


def _describe(job) -> str:
    flows = getattr(job, "flows", None)
    scenario = getattr(job, "scenario", None)
    if flows is None or scenario is None:
        return getattr(job, "label", None) or type(job).__qualname__
    names = "+".join(flow.cca for flow in flows)
    return f"{names} @ {scenario.name} seed={job.seed}"


def run_tasks(tasks, workers: int | None = 1, timeout: float | None = None,
              retries: int = 1, progress: ProgressReporter | None = None):
    """Execute arbitrary picklable tasks and return their values in order.

    A *task* is any picklable object with a ``run() -> picklable`` method
    (and optionally a ``label`` attribute for error messages) — the
    training subsystem's rollout and evaluation work units, for example.
    Tasks get the same execution machinery as simulation jobs — forked
    children, per-attempt ``timeout``, bounded crash ``retries``, serial
    fallback below two workers or without ``fork`` — but no result
    cache: task payloads (e.g. policy weights) change every call, so
    content-addressing them would only churn the cache.  A task that
    raises aborts the batch with :class:`JobFailedError`.
    """
    results = run_jobs(tasks, workers=workers, timeout=timeout,
                       retries=retries, progress=progress)
    return [r.result for r in results]
