"""Progress reporting for sweep execution.

The pool calls :meth:`ProgressReporter.update` once per finished job
(cache hits included); the reporter rate-limits its own output so large
sweeps do not flood the terminal.  Output goes to stderr, keeping stdout
byte-identical between serial, parallel, and cached runs — the tables
the experiment modules print are the artifact, the progress is not.
"""

from __future__ import annotations

import sys
import time


class ProgressReporter:
    """Counts done/total, cache hit-rate, retries, and wall-time."""

    def __init__(self, total: int, label: str = "sweep", enabled: bool = True,
                 stream=None, interval: float = 1.0):
        self.total = total
        self.label = label
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.done = 0
        self.cache_hits = 0
        self.executed = 0
        self.retries = 0
        self.failures = 0
        self._start = time.perf_counter()
        self._last_emit = 0.0

    @property
    def wall_time(self) -> float:
        return time.perf_counter() - self._start

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.done if self.done else 0.0

    def update(self, *, cached: bool = False, retries: int = 0,
               failed: bool = False) -> None:
        """Record one finished job and maybe emit a progress line."""
        self.done += 1
        if cached:
            self.cache_hits += 1
        else:
            self.executed += 1
        self.retries += retries
        if failed:
            self.failures += 1
        now = time.perf_counter()
        if self.done == self.total or now - self._last_emit >= self.interval:
            self._last_emit = now
            self._emit(self.render())

    def render(self) -> str:
        parts = [f"{self.done}/{self.total} jobs",
                 f"{self.cache_hits} cached ({self.hit_rate:.0%})",
                 f"{self.wall_time:.1f}s"]
        if self.retries:
            parts.insert(2, f"{self.retries} retries")
        if self.failures:
            parts.insert(2, f"{self.failures} FAILED")
        return f"[{self.label}] " + ", ".join(parts)

    def summary(self) -> str:
        failed = f", {self.failures} FAILED" if self.failures else ""
        return (f"[{self.label}] finished {self.done}/{self.total} jobs in "
                f"{self.wall_time:.1f}s ({self.executed} executed, "
                f"{self.cache_hits} from cache, {self.hit_rate:.0%} hit rate"
                f"{failed})")

    def finish(self) -> str:
        line = self.summary()
        self._emit(line)
        return line

    def _emit(self, line: str) -> None:
        if self.enabled:
            print(line, file=self.stream, flush=True)
