"""Policy training entry points.

Trains the PPO policies used by Libra and the learning-based baselines
in the fluid environment, with the paper's randomized training ranges
(capacity 10-200 Mbps, RTT 10-200 ms, buffer 10 KB-5 MB, stochastic loss;
Sec. 5 "Implementation").  ``examples/train_policy.py`` is the runnable
front-end; pretrained weights ship in ``repro/assets`` and are loaded by
:func:`repro.assets.load_policy`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .core.utility import UtilityParams, utility
from .env.actions import ActionSpace, MimdAuroraActions, MimdOrcaActions
from .env.features import Measurement, Normalizer, STATE_SETS
from .env.fluidenv import FluidEnvConfig, FluidLinkEnv
from .env.reward import RewardConfig, RewardFunction
from .rl.policy import GaussianActorCritic
from .rl.ppo import TrainHistory


class Eq1Reward(RewardFunction):
    """Eq. 1 utility as the RL reward (the Modified RL ablation).

    Divided by a fixed scale (the utility of the training range's top
    capacity) so the reward magnitude is PPO-friendly without coupling
    it to the agent's own running maximum — a self-referential
    normalization would make "stay at your own peak" a degenerate
    optimum.
    """

    #: u(200 Mbps) — the top of the paper's training capacity range
    SCALE = utility(200.0, 0.0, 0.0, UtilityParams())

    def raw(self, m: Measurement, norm: Normalizer) -> float:
        value = utility(m.throughput / 1e6, m.rtt_gradient, m.loss_rate,
                        UtilityParams())
        return value / self.SCALE


@dataclass(frozen=True)
class TrainSpec:
    """What distinguishes one trainable policy kind from another."""

    feature_set_name: str
    action_space: str          # 'mimd-orca' | 'mimd-aurora' | 'aiad'
    action_scale: float
    reward: RewardConfig
    eq1_reward: bool = False


#: the policies the evaluation needs, keyed by their consumer
TRAIN_SPECS: dict[str, TrainSpec] = {
    # Libra's DRL component: the searched state space, MIMD, delta-reward
    "libra": TrainSpec("libra", "mimd-orca", 1.0, RewardConfig()),
    # Aurora: its own (weaker) state space and damped MIMD actions
    "aurora": TrainSpec("aurora", "mimd-aurora", 10.0, RewardConfig()),
    # Orca's agent: Orca state space, 2^a actions with a in [-2, 2]
    "orca": TrainSpec("orca", "mimd-orca", 2.0, RewardConfig()),
    # Modified RL: Libra states but Eq. 1 (its delta) as the reward
    "modified-rl": TrainSpec("libra", "mimd-orca", 1.0,
                             RewardConfig(use_delta=True), eq1_reward=True),
}


def _make_action_space(spec: TrainSpec) -> ActionSpace:
    if spec.action_space == "mimd-orca":
        return MimdOrcaActions(scale=spec.action_scale)
    if spec.action_space == "mimd-aurora":
        return MimdAuroraActions(scale=spec.action_scale)
    raise ValueError(f"unknown action space {spec.action_space!r}")


def make_training_env(kind: str, seed: int = 0, episode_steps: int = 96,
                      rng: np.random.Generator | None = None) -> FluidLinkEnv:
    """Build the randomized training environment for a policy kind.

    ``rng`` overrides the env's Generator (otherwise seeded from
    ``seed``); the parallel rollout workers pass per-(iteration, worker)
    streams here so collection is deterministic across backends.
    """
    spec = TRAIN_SPECS[kind]
    config = FluidEnvConfig(
        seed=seed, episode_steps=episode_steps,
        loss_range=(0.0, 0.05),
        feature_set=STATE_SETS[spec.feature_set_name],
        reward=spec.reward)
    env = FluidLinkEnv(config, _make_action_space(spec), rng=rng)
    if spec.eq1_reward:
        env.reward_fn = Eq1Reward(spec.reward)
    return env


def train_policy(kind: str, epochs: int = 60, seed: int = 0,
                 hidden: tuple[int, ...] = (64, 64),
                 steps_per_epoch: int = 1920,
                 ) -> tuple[GaussianActorCritic, TrainHistory]:
    """Train one policy kind; returns (policy, learning history).

    Thin front-end over the :mod:`repro.train` pipeline (serial backend,
    one worker); ``repro train <kind>`` exposes the full pipeline —
    parallel rollout workers, checkpoints with ``--resume``, structured
    logs, and the promotion gate.  The paper trains 2x512 networks on
    TensorFlow; the defaults here are sized so a full training run takes
    tens of seconds on a laptop while producing the same qualitative
    behaviour (DESIGN.md).
    """
    from .train import TrainRunConfig, train_run

    result = train_run(TrainRunConfig(
        kind=kind, iterations=epochs, workers=1,
        steps_per_iteration=steps_per_epoch, seed=seed,
        hidden=tuple(hidden), backend="serial"))
    return result.policy, result.history


def train_and_save_all(dest_dir: str, epochs: int = 60, seed: int = 0,
                       verbose: bool = True) -> dict[str, str]:
    """Train every policy the evaluation needs and save them as .npz.

    Writes (or refreshes) ``MANIFEST.json`` in ``dest_dir`` so the new
    files pass :func:`repro.assets.load_policy`'s integrity check.
    """
    import os

    from . import assets

    paths: dict[str, str] = {}
    os.makedirs(dest_dir, exist_ok=True)
    for kind in TRAIN_SPECS:
        policy, history = train_policy(kind, epochs=epochs, seed=seed)
        path = os.path.join(dest_dir, f"{kind}.npz")
        policy.save(path)
        paths[kind] = path
        if verbose:
            tail = history.episode_rewards[-50:]
            print(f"trained {kind!r}: {len(history.episode_rewards)} episodes, "
                  f"final avg reward {np.mean(tail):.3f} -> {path}")
    assets.refresh_manifest(dest_dir)
    return paths
