"""Classic congestion control algorithms.

From-scratch implementations of the kernel/userspace CCAs the paper uses
as underlying components (CUBIC, BBR) and as baselines (NewReno, Vegas,
Copa, Westwood+, Illinois, Sprout).
"""

from .base import (Controller, CrashTestController, FixedRateController,
                   RateController, WindowController)
from .bbr import Bbr
from .copa import Copa
from .cubic import Cubic
from .illinois import Illinois
from .reno import NewReno
from .sprout import Sprout
from .vegas import Vegas
from .westwood import Westwood

CLASSIC_CCAS = {
    "cubic": Cubic,
    "bbr": Bbr,
    "reno": NewReno,
    "vegas": Vegas,
    "copa": Copa,
    "westwood": Westwood,
    "illinois": Illinois,
    "sprout": Sprout,
}

__all__ = [
    "Bbr", "CLASSIC_CCAS", "Controller", "Copa", "CrashTestController",
    "Cubic", "FixedRateController", "Illinois", "NewReno", "RateController",
    "Sprout", "Vegas", "Westwood", "WindowController",
]
