"""Sprout-like forecast-based controller (Winstein et al., NSDI 2013).

Sprout forecasts cellular link capacity with a stochastic model and sends
only as much as can drain within a 100 ms delay budget at the 5th
percentile of the forecast.  We reproduce that control objective with an
EWMA bandwidth forecast discounted by its observed variability — a
conservative, delay-bounded rate.  Documented in DESIGN.md as a stand-in
(the full Sprout inference model needs its packet-pair measurement
machinery, which the paper uses only as a baseline point).
"""

from __future__ import annotations

import math

from ..simnet.packet import IntervalReport
from .base import RateController

DELAY_BUDGET = 0.1        # Sprout's 100 ms target
FORECAST_DISCOUNT = 1.0   # how many stddevs to subtract from the forecast
TICK = 0.02               # Sprout's 20 ms tick


class Sprout(RateController):
    """Delay-bounded rate control from a discounted bandwidth forecast."""

    name = "sprout"
    userspace = True

    def __init__(self, initial_rate_bps: float = 1_000_000.0):
        super().__init__(initial_rate_bps)
        self.bw_mean = 0.0
        self.bw_var = 0.0
        self.queue_delay = 0.0
        self._min_rtt = float("inf")

    def interval(self) -> float:
        return TICK

    def on_interval(self, report: IntervalReport) -> None:
        if not report.has_feedback:
            # No feedback: drain conservatively.
            self.set_rate(self.rate_bps * 0.9)
            return
        if report.min_rtt > 0:
            self._min_rtt = min(self._min_rtt, report.min_rtt)
        sample = report.throughput
        if self.bw_mean == 0.0:
            self.bw_mean = sample
        else:
            err = sample - self.bw_mean
            self.bw_mean += 0.25 * err
            self.bw_var = 0.75 * self.bw_var + 0.25 * err * err
        if self._min_rtt < float("inf") and report.avg_rtt > 0:
            self.queue_delay = max(report.avg_rtt - self._min_rtt, 0.0)
        # Cautious forecast: mean minus a stddev, never negative.
        forecast = max(self.bw_mean - FORECAST_DISCOUNT * math.sqrt(self.bw_var), 0.0)
        if self.queue_delay < DELAY_BUDGET / 4.0:
            # Queue nearly empty: probe above the forecast (Sprout's
            # forecaster extrapolates spare capacity in this regime).
            self.set_rate(max(forecast, self.rate_bps) * 1.1)
        else:
            # Send what drains within the delay budget.
            headroom = max(DELAY_BUDGET - self.queue_delay, 0.0) / DELAY_BUDGET
            self.set_rate(max(forecast * headroom, self.MIN_RATE))
