"""TCP NewReno (RFC 2582-style AIMD) — the canonical classic baseline."""

from __future__ import annotations

from ..simnet.packet import AckSample, LossSample
from .base import WindowController


class NewReno(WindowController):
    """AIMD: +1 MSS per RTT in congestion avoidance, halve on loss."""

    name = "reno"

    def on_ack(self, ack: AckSample) -> None:
        super().on_ack(ack)
        if self.in_slow_start():
            self.cwnd_bytes += ack.acked_bytes
        else:
            self.cwnd_bytes += self.mss * ack.acked_bytes / self.cwnd_bytes

    def on_loss(self, loss: LossSample) -> None:
        if not self.reduction_allowed(loss.now):
            return
        self.mark_reduction(loss.now)
        self.cwnd_bytes = max(self.cwnd_bytes / 2.0, self.min_cwnd_bytes)
        self.ssthresh = self.cwnd_bytes

    def adopt_rate(self, rate_bps: float, srtt: float) -> None:
        self.cwnd_bytes = max(rate_bps * srtt / 8.0, self.min_cwnd_bytes)

    def rate_estimate(self, srtt: float) -> float:
        return self.cwnd() * 8.0 / max(srtt, 1e-3)
