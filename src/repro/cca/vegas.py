"""TCP Vegas (Brakmo & Peterson 1995): delay-based congestion avoidance."""

from __future__ import annotations

from ..simnet.packet import AckSample, LossSample
from .base import WindowController

ALPHA = 2.0   # packets of self-inflicted queue tolerated (lower bound)
BETA = 4.0    # upper bound
GAMMA = 1.0   # slow-start exit threshold


class Vegas(WindowController):
    """Vegas: keep ``diff = (expected - actual) * base_rtt`` within [α, β]."""

    name = "vegas"

    def __init__(self, initial_cwnd_packets: int = 10):
        super().__init__(initial_cwnd_packets)
        self.base_rtt = float("inf")
        self._last_adjust = 0.0

    def on_ack(self, ack: AckSample) -> None:
        super().on_ack(ack)
        self.base_rtt = min(self.base_rtt, ack.rtt)
        if ack.now - self._last_adjust < ack.srtt:
            return  # Vegas adjusts once per RTT
        self._last_adjust = ack.now
        cwnd_pkts = self.cwnd_bytes / self.mss
        expected = cwnd_pkts / self.base_rtt
        actual = cwnd_pkts / max(ack.srtt, 1e-6)
        diff = (expected - actual) * self.base_rtt
        if self.in_slow_start():
            if diff > GAMMA:
                self.ssthresh = self.cwnd_bytes
            else:
                self.cwnd_bytes += self.mss
            return
        if diff < ALPHA:
            self.cwnd_bytes += self.mss
        elif diff > BETA:
            self.cwnd_bytes = max(self.cwnd_bytes - self.mss, self.min_cwnd_bytes)

    def on_loss(self, loss: LossSample) -> None:
        if not self.reduction_allowed(loss.now):
            return
        self.mark_reduction(loss.now)
        self.cwnd_bytes = max(self.cwnd_bytes * 0.75, self.min_cwnd_bytes)
        self.ssthresh = self.cwnd_bytes

    def adopt_rate(self, rate_bps: float, srtt: float) -> None:
        self.cwnd_bytes = max(rate_bps * srtt / 8.0, self.min_cwnd_bytes)

    def rate_estimate(self, srtt: float) -> float:
        return self.cwnd() * 8.0 / max(srtt, 1e-3)
