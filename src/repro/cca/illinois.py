"""TCP Illinois — delay-modulated AIMD (concave increase).

Additive increase α and multiplicative decrease β are functions of the
average queueing delay: near-empty queues get aggressive growth
(α up to 10), deep queues get gentle growth and larger backoff.
"""

from __future__ import annotations

from ..simnet.packet import AckSample, LossSample
from .base import WindowController

ALPHA_MAX = 10.0
ALPHA_MIN = 0.3
BETA_MIN = 0.125
BETA_MAX = 0.5
D1_FRACTION = 0.01   # delay below d1*max_delay → alpha_max


class Illinois(WindowController):
    """C-AIMD with delay-dependent alpha/beta."""

    name = "illinois"

    def __init__(self, initial_cwnd_packets: int = 10):
        super().__init__(initial_cwnd_packets)
        self.base_rtt = float("inf")
        self.max_rtt = 0.0
        self._alpha = 1.0
        self._beta = BETA_MAX
        self._last_param_update = 0.0

    def _update_params(self, ack: AckSample) -> None:
        self.base_rtt = min(self.base_rtt, ack.rtt)
        self.max_rtt = max(self.max_rtt, ack.rtt)
        if ack.now - self._last_param_update < ack.srtt:
            return
        self._last_param_update = ack.now
        dm = max(self.max_rtt - self.base_rtt, 1e-6)
        da = max(ack.srtt - self.base_rtt, 0.0)
        d1 = D1_FRACTION * dm
        if da <= d1:
            self._alpha = ALPHA_MAX
        else:
            # alpha decreases in delay: alpha_max at d1 down to alpha_min at dm
            frac = min((da - d1) / (dm - d1 + 1e-12), 1.0)
            self._alpha = ALPHA_MAX + frac * (ALPHA_MIN - ALPHA_MAX)
        self._beta = BETA_MIN + min(da / dm, 1.0) * (BETA_MAX - BETA_MIN)

    def on_ack(self, ack: AckSample) -> None:
        super().on_ack(ack)
        self._update_params(ack)
        if self.in_slow_start():
            self.cwnd_bytes += ack.acked_bytes
        else:
            self.cwnd_bytes += self._alpha * self.mss * ack.acked_bytes / self.cwnd_bytes

    def on_loss(self, loss: LossSample) -> None:
        if not self.reduction_allowed(loss.now):
            return
        self.mark_reduction(loss.now)
        self.cwnd_bytes = max(self.cwnd_bytes * (1.0 - self._beta),
                              self.min_cwnd_bytes)
        self.ssthresh = self.cwnd_bytes

    def adopt_rate(self, rate_bps: float, srtt: float) -> None:
        self.cwnd_bytes = max(rate_bps * srtt / 8.0, self.min_cwnd_bytes)

    def rate_estimate(self, srtt: float) -> float:
        return self.cwnd() * 8.0 / max(srtt, 1e-3)
