"""BBR congestion control (Cardwell et al., 2017), simplified.

Implements the four-state BBR v1 machine — STARTUP, DRAIN, PROBE_BW with
the 8-phase pacing-gain cycle, and PROBE_RTT — on top of windowed max
bottleneck-bandwidth and windowed min RTT filters fed by per-ACK delivery
rate samples.  This is the underlying classic CCA for B-Libra.
"""

from __future__ import annotations

from collections import deque

from ..simnet.packet import AckSample, LossSample
from .base import Controller

STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
CWND_GAIN = 2.0
BTLBW_WINDOW_RTTS = 10
MIN_RTT_WINDOW = 10.0
PROBE_RTT_DURATION = 0.2
FULL_BW_THRESHOLD = 1.25
FULL_BW_COUNT = 3


class Bbr(Controller):
    """BBR v1 (simplified): model-based rate control."""

    name = "bbr"

    def __init__(self, initial_rate_bps: float = 1_500_000.0):
        super().__init__()
        self.state = "STARTUP"
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN
        self.initial_rate = initial_rate_bps
        self.btlbw = 0.0
        self.min_rtt = float("inf")
        self.min_rtt_stamp = 0.0
        self._bw_samples: deque[tuple[float, float]] = deque()
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        self._probe_rtt_done_stamp: float | None = None
        self._last_full_bw_check = 0.0
        self._now = 0.0
        self._srtt = 0.1

    # -- filters ---------------------------------------------------------

    def _update_btlbw(self, now: float, rate: float) -> None:
        window = BTLBW_WINDOW_RTTS * max(self._srtt, 1e-3)
        samples = self._bw_samples
        samples.append((now, rate))
        while samples and samples[0][0] < now - window:
            samples.popleft()
        self.btlbw = max(r for _, r in samples)

    def _update_min_rtt(self, now: float, rtt: float) -> None:
        # The filter only refreshes on new minima; expiry is handled by
        # PROBE_RTT (which drains the queue and re-measures), otherwise a
        # standing queue would keep resetting the stamp and PROBE_RTT
        # would never trigger.
        if self.state == "PROBE_RTT":
            self.min_rtt = rtt  # queue drained: re-measure from scratch
            self.min_rtt_stamp = now
        elif rtt < self.min_rtt:
            self.min_rtt = rtt
            self.min_rtt_stamp = now

    # -- state machine -----------------------------------------------------

    def _check_full_pipe(self, now: float) -> None:
        # Evaluate once per round trip (per-ACK checks would see a flat
        # estimate inside a round and declare the pipe full instantly).
        if now - self._last_full_bw_check < max(self._srtt, 1e-3):
            return
        self._last_full_bw_check = now
        if self.btlbw >= self._full_bw * FULL_BW_THRESHOLD:
            self._full_bw = self.btlbw
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= FULL_BW_COUNT:
            self._enter_drain()

    def _enter_drain(self) -> None:
        self.state = "DRAIN"
        self.pacing_gain = DRAIN_GAIN
        self.cwnd_gain = STARTUP_GAIN

    def _enter_probe_bw(self, now: float) -> None:
        self.state = "PROBE_BW"
        self._cycle_index = 2  # start in a cruise phase like Linux BBR
        self._cycle_stamp = now
        self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]
        self.cwnd_gain = CWND_GAIN

    def _enter_probe_rtt(self, now: float) -> None:
        self.state = "PROBE_RTT"
        self.pacing_gain = 1.0
        self.cwnd_gain = 1.0
        self._probe_rtt_done_stamp = now + PROBE_RTT_DURATION

    def _advance_cycle(self, now: float) -> None:
        if now - self._cycle_stamp > max(self.min_rtt, 1e-3):
            self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
            self._cycle_stamp = now
            self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    # -- feedback -------------------------------------------------------

    def on_ack(self, ack: AckSample) -> None:
        self.meter.count("per_ack")
        now = ack.now
        self._now = now
        self._srtt = ack.srtt
        self._update_min_rtt(now, ack.rtt)
        if ack.delivery_rate > 0:
            self._update_btlbw(now, ack.delivery_rate)

        if self.state == "STARTUP":
            self._check_full_pipe(now)
        elif self.state == "DRAIN":
            if ack.inflight_bytes <= self.bdp_bytes():
                self._enter_probe_bw(now)
        elif self.state == "PROBE_BW":
            self._advance_cycle(now)
            if now - self.min_rtt_stamp > MIN_RTT_WINDOW:
                self._enter_probe_rtt(now)
        elif self.state == "PROBE_RTT":
            if (self._probe_rtt_done_stamp is not None
                    and now >= self._probe_rtt_done_stamp):
                self.min_rtt_stamp = now
                if self._full_bw_count >= FULL_BW_COUNT:
                    self._enter_probe_bw(now)
                else:
                    self.state = "STARTUP"
                    self.pacing_gain = STARTUP_GAIN
                    self.cwnd_gain = STARTUP_GAIN

    def on_loss(self, loss: LossSample) -> None:
        # BBR v1 largely ignores individual losses (its resilience to
        # stochastic loss is why B-Libra keeps utilization at 10% loss).
        self.meter.count("per_ack")

    # -- decisions ---------------------------------------------------------

    def bdp_bytes(self) -> float:
        if self.btlbw <= 0 or self.min_rtt == float("inf"):
            return 10 * self.mss
        return self.btlbw * self.min_rtt / 8.0

    def pacing_rate(self) -> float:
        base = self.btlbw if self.btlbw > 0 else self.initial_rate
        return max(self.pacing_gain * base, 64_000.0)

    def cwnd(self) -> float:
        if self.state == "PROBE_RTT":
            return 4.0 * self.mss
        if self.btlbw <= 0:
            return 10.0 * self.mss
        return max(self.cwnd_gain * self.bdp_bytes(), 4.0 * self.mss)

    # -- Libra integration -----------------------------------------------

    def adopt_rate(self, rate_bps: float, srtt: float) -> None:
        """Seed BBR's bandwidth model with Libra's base rate."""
        self._update_btlbw(self._now, rate_bps)

    def rate_estimate(self, srtt: float) -> float:
        return self.pacing_rate()
