"""Copa (Arun & Balakrishnan, NSDI 2018), simplified.

Targets a sending rate of ``1 / (delta * d_q)`` packets per second where
``d_q`` is the measured queueing delay, moving the window towards the
target with a velocity parameter that doubles while the direction of
change is consistent.  Runs in userspace in Pantheon, hence the elevated
per-packet overhead in Fig. 2(c)/Fig. 12.
"""

from __future__ import annotations

from ..simnet.packet import AckSample, LossSample
from .base import WindowController

DEFAULT_DELTA = 0.5


class Copa(WindowController):
    """Copa: delay-targeting window control with velocity doubling."""

    name = "copa"
    userspace = True

    def __init__(self, initial_cwnd_packets: int = 10, delta: float = DEFAULT_DELTA):
        super().__init__(initial_cwnd_packets)
        self.delta = delta
        self.velocity = 1.0
        self.direction = 0          # +1 increasing, -1 decreasing
        self._direction_rtts = 0
        self._last_direction_check = 0.0
        self._min_rtt = float("inf")
        # RTT_standing: min RTT over the last srtt/2 window
        self._standing_samples: list[tuple[float, float]] = []

    def _rtt_standing(self, now: float, srtt: float) -> float:
        horizon = now - srtt / 2.0
        self._standing_samples = [(t, r) for t, r in self._standing_samples
                                  if t >= horizon]
        if not self._standing_samples:
            return self._min_rtt
        return min(r for _, r in self._standing_samples)

    def on_ack(self, ack: AckSample) -> None:
        super().on_ack(ack)
        now = ack.now
        self._min_rtt = min(self._min_rtt, ack.rtt)
        self._standing_samples.append((now, ack.rtt))
        standing = self._rtt_standing(now, max(ack.srtt, 1e-3))
        queueing_delay = max(standing - self._min_rtt, 0.0)

        cwnd_pkts = self.cwnd_bytes / self.mss
        if queueing_delay <= 1e-6:
            target_rate = float("inf")
        else:
            target_rate = 1.0 / (self.delta * queueing_delay)  # packets/s
        current_rate = cwnd_pkts / max(ack.srtt, 1e-6)

        if current_rate <= target_rate:
            self._set_direction(now, +1, ack.srtt)
            self.cwnd_bytes += self.velocity * self.mss / (self.delta * cwnd_pkts)
        else:
            self._set_direction(now, -1, ack.srtt)
            self.cwnd_bytes -= self.velocity * self.mss / (self.delta * cwnd_pkts)
            self.cwnd_bytes = max(self.cwnd_bytes, self.min_cwnd_bytes)

    def _set_direction(self, now: float, direction: int, srtt: float) -> None:
        if direction == self.direction:
            if now - self._last_direction_check >= srtt:
                self._direction_rtts += 1
                self._last_direction_check = now
                if self._direction_rtts >= 3:
                    self.velocity = min(self.velocity * 2.0, 1024.0)
        else:
            self.direction = direction
            self.velocity = 1.0
            self._direction_rtts = 0
            self._last_direction_check = now

    def on_loss(self, loss: LossSample) -> None:
        if not self.reduction_allowed(loss.now):
            return
        self.mark_reduction(loss.now)
        self.cwnd_bytes = max(self.cwnd_bytes / 2.0, self.min_cwnd_bytes)
        self.velocity = 1.0

    def adopt_rate(self, rate_bps: float, srtt: float) -> None:
        self.cwnd_bytes = max(rate_bps * srtt / 8.0, self.min_cwnd_bytes)

    def rate_estimate(self, srtt: float) -> float:
        return self.cwnd() * 8.0 / max(srtt, 1e-3)
