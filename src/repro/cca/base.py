"""Congestion controller interface used by the simulator's sender.

Every CCA — classic, learning-based, or the Libra framework itself —
implements :class:`Controller`.  The sender drives it with three kinds of
feedback:

- :meth:`on_ack` for every acknowledgement (classic CCAs react here),
- :meth:`on_loss` for every detected loss,
- :meth:`on_interval` once per monitor interval (MI) with aggregated
  statistics (learning-based CCAs and Libra's stage machinery react here).

The controller exposes its current decision through :meth:`pacing_rate`
(bits/second) and/or :meth:`cwnd` (bytes).  A window-only CCA may return
``None`` from :meth:`pacing_rate`, in which case the sender paces at
``cwnd / srtt``; a rate-only CCA may return ``None`` from :meth:`cwnd`.
"""

from __future__ import annotations

from ..overhead.meter import CostMeter
from ..simnet.packet import AckSample, IntervalReport, LossSample
from ..units import DEFAULT_MSS


class Controller:
    """Base congestion controller (no-op; sends at a fixed rate)."""

    # Slotted: controller attribute reads sit on the per-ACK hot path of
    # both simulator engines.  Subclasses that declare no __slots__ of
    # their own still get a __dict__ for their private state — only the
    # base attributes here are descriptor-backed.
    __slots__ = ("mss", "meter", "marker", "telemetry", "telemetry_flow")

    #: whether the paper's implementation of this CCA runs in userspace
    #: (kernel CCAs are far cheaper per packet — see Fig. 2(c))
    userspace = False

    #: human-readable identifier, overridden by subclasses
    name = "base"

    def __init__(self) -> None:
        self.mss = DEFAULT_MSS
        self.meter = CostMeter()
        self.marker = 0
        #: run-wide telemetry recorder, or ``None`` (the default) when the
        #: run is untraced — feedback hot paths guard on this attribute
        self.telemetry = None
        #: flow id assigned by :meth:`attach_telemetry` (channel prefix)
        self.telemetry_flow = 0

    # -- lifecycle -------------------------------------------------------

    def start(self, now: float, mss: int) -> None:
        """Called once when the flow starts sending."""
        self.mss = mss

    def attach_telemetry(self, recorder, flow_id: int = 0) -> None:
        """Point the controller at a run-wide telemetry recorder.

        Called by :class:`~repro.simnet.network.Dumbbell` before the
        flow starts when the run is traced.  Subclasses that keep their
        own private recorder (Libra's decision log) override this to
        redirect it into the shared one.
        """
        self.telemetry = recorder
        self.telemetry_flow = flow_id

    # -- feedback --------------------------------------------------------

    def on_ack(self, ack: AckSample) -> None:
        """Per-ACK feedback; classic CCAs update their window here."""

    def on_loss(self, loss: LossSample) -> None:
        """Per-loss feedback."""

    def on_interval(self, report: IntervalReport) -> None:
        """Per-monitor-interval feedback with aggregated statistics."""

    def interval(self) -> float | None:
        """Requested MI duration in seconds (``None`` = no MI callbacks)."""
        return None

    # -- decisions ---------------------------------------------------------

    def pacing_rate(self) -> float | None:
        """Current pacing rate in bits/second, or ``None`` to derive from cwnd."""
        return None

    def cwnd(self) -> float | None:
        """Current congestion window in bytes, or ``None`` for rate-only CCAs."""
        return None

    # -- Libra integration hooks -------------------------------------------

    def adopt_rate(self, rate_bps: float, srtt: float) -> None:
        """Seed the CCA's state so it explores from ``rate_bps``.

        Libra calls this at the start of each exploration stage when the
        previous cycle's winner was not the classic CCA's own rate.
        Subclasses translate the rate into their internal state (e.g. a
        congestion window); the default is a no-op.
        """

    def rate_estimate(self, srtt: float) -> float:
        """The CCA's current rate decision in bits/second."""
        rate = self.pacing_rate()
        if rate is not None:
            return rate
        cwnd = self.cwnd()
        if cwnd is None:
            raise NotImplementedError(
                f"{type(self).__name__} exposes neither a pacing rate nor a cwnd")
        return cwnd * 8.0 / max(srtt, 1e-3)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


class FixedRateController(Controller):
    """Sends at a constant rate forever — useful for tests and cross traffic."""

    __slots__ = ("_rate",)

    name = "fixed"

    def __init__(self, rate_bps: float):
        super().__init__()
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self._rate = rate_bps

    def pacing_rate(self) -> float:
        return self._rate


class CrashTestController(FixedRateController):
    """Deliberately raises after ``crash_after`` ACKs.

    Exists to exercise the sweep executor's failure path
    (``on_error="collect"`` → :class:`~repro.parallel.FailedRun`) in CI
    and tests without planting bugs in real controllers.
    """

    __slots__ = ("crash_after", "_acks")

    name = "crash-test"

    def __init__(self, rate_bps: float = 5_000_000.0, crash_after: int = 10):
        super().__init__(rate_bps)
        self.crash_after = int(crash_after)
        self._acks = 0

    def on_ack(self, ack: AckSample) -> None:
        self._acks += 1
        if self._acks >= self.crash_after:
            raise RuntimeError(
                f"crash-test controller raised after {self._acks} ACKs")


class WindowController(Controller):
    """Helper base for window-based classic CCAs.

    Maintains ``cwnd`` in bytes, a slow-start threshold, and the common
    loss-validity bookkeeping (one window reduction per RTT).
    """

    __slots__ = ("_initial_cwnd_packets", "cwnd_bytes", "ssthresh",
                 "min_cwnd_bytes", "_last_reduction_time", "_srtt")

    def __init__(self, initial_cwnd_packets: int = 10):
        super().__init__()
        self._initial_cwnd_packets = initial_cwnd_packets
        self.cwnd_bytes = float(initial_cwnd_packets * DEFAULT_MSS)
        self.ssthresh = float("inf")
        self.min_cwnd_bytes = 2.0 * DEFAULT_MSS
        self._last_reduction_time = -1e9
        self._srtt = 0.1

    def start(self, now: float, mss: int) -> None:
        super().start(now, mss)
        self.cwnd_bytes = float(self._initial_cwnd_packets * mss)
        self.min_cwnd_bytes = 2.0 * mss

    def on_ack(self, ack: AckSample) -> None:
        self.meter.count("per_ack")
        self._srtt = ack.srtt

    def in_slow_start(self) -> bool:
        return self.cwnd_bytes < self.ssthresh

    def reduction_allowed(self, now: float) -> bool:
        """At most one multiplicative decrease per RTT (loss burst filter)."""
        return now - self._last_reduction_time > self._srtt

    def mark_reduction(self, now: float) -> None:
        self._last_reduction_time = now

    def cwnd(self) -> float:
        return max(self.cwnd_bytes, self.min_cwnd_bytes)


class RateController(Controller):
    """Helper base for rate-based CCAs; keeps a bounded pacing rate."""

    __slots__ = ("rate_bps",)

    #: absolute floor so flows never stall completely
    MIN_RATE = 64_000.0  # 64 kbps
    MAX_RATE = 2e9       # 2 Gbps

    def __init__(self, initial_rate_bps: float = 1_000_000.0):
        super().__init__()
        self.rate_bps = float(initial_rate_bps)

    def set_rate(self, rate_bps: float) -> None:
        self.rate_bps = float(min(max(rate_bps, self.MIN_RATE), self.MAX_RATE))

    def pacing_rate(self) -> float:
        return self.rate_bps

    def cwnd(self) -> float | None:
        # Safety cap: never hold more than ~2 rate*RTT worth of data in
        # flight even if ACKs stop arriving (rate-based schemes need this
        # to avoid dumping into dead links).
        return None
