"""CUBIC congestion control (Ha, Rhee, Xu 2008).

The paper's default underlying classic CCA for C-Libra.  Implements the
cubic window growth function with fast convergence and the TCP-friendly
region, operating in packet (MSS) units internally like the kernel module.
"""

from __future__ import annotations



from ..simnet.packet import AckSample, LossSample
from .base import WindowController

CUBE_C = 0.4
BETA = 0.7


class Cubic(WindowController):
    """CUBIC: W(t) = C*(t-K)^3 + W_max."""

    # Fully slotted (the whole base chain declares __slots__): CUBIC is
    # the default classic CCA, so its per-ACK attribute traffic is hot in
    # both engines.
    __slots__ = ("fast_convergence", "tcp_friendly", "w_max", "epoch_start",
                 "k", "origin_point", "w_tcp", "ack_count")

    name = "cubic"

    def __init__(self, initial_cwnd_packets: int = 10,
                 fast_convergence: bool = True, tcp_friendly: bool = True):
        super().__init__(initial_cwnd_packets)
        self.fast_convergence = fast_convergence
        self.tcp_friendly = tcp_friendly
        self._reset_epoch()

    def _reset_epoch(self) -> None:
        self.w_max = 0.0          # packets
        self.epoch_start: float | None = None
        self.k = 0.0
        self.origin_point = 0.0
        self.w_tcp = 0.0
        self.ack_count = 0

    # -- window in packets -------------------------------------------------

    @property
    def cwnd_packets(self) -> float:
        return self.cwnd_bytes / self.mss

    @cwnd_packets.setter
    def cwnd_packets(self, value: float) -> None:
        self.cwnd_bytes = max(value, 2.0) * self.mss

    # -- feedback ----------------------------------------------------------

    def on_ack(self, ack: AckSample) -> None:
        # WindowController.on_ack and in_slow_start(), inlined — this is
        # the hottest per-ACK path in the simulator (CUBIC is the default
        # classic CCA), worth flattening the two helper calls.
        self.meter.counts["per_ack"] += 1.0
        self._srtt = ack.srtt
        if self.cwnd_bytes < self.ssthresh:
            self.cwnd_bytes += ack.acked_bytes
            return
        self._cubic_update(ack.now, ack.srtt)

    def _cubic_update(self, now: float, rtt: float) -> None:
        mss = self.mss
        cwnd = self.cwnd_bytes / mss  # cwnd_packets, inlined
        epoch = self.epoch_start
        if epoch is None:
            self.epoch_start = epoch = now
            self.ack_count = 1
            self.w_tcp = cwnd
            w_max = self.w_max
            if cwnd < w_max:
                self.k = ((w_max - cwnd) / CUBE_C) ** (1.0 / 3.0)
                self.origin_point = w_max
            else:
                self.k = 0.0
                self.origin_point = cwnd
        t = now - epoch + rtt
        target = self.origin_point + CUBE_C * (t - self.k) ** 3
        if target > cwnd:
            increment = (target - cwnd) / cwnd
        else:
            increment = 0.01 / cwnd  # minimal probing in the concave plateau
        if self.tcp_friendly:
            # Standard TCP-friendly region: emulate AIMD(1, beta).
            self.w_tcp += 3.0 * (1.0 - BETA) / (1.0 + BETA) / cwnd
            if self.w_tcp > cwnd + increment:
                increment = self.w_tcp - cwnd
        # cwnd_packets setter, inlined (max() as a branch: same float)
        value = cwnd + increment
        self.cwnd_bytes = (value if value > 2.0 else 2.0) * mss

    def on_loss(self, loss: LossSample) -> None:
        if not self.reduction_allowed(loss.now):
            return
        self.mark_reduction(loss.now)
        cwnd = self.cwnd_packets
        self.epoch_start = None
        if self.fast_convergence and cwnd < self.w_max:
            self.w_max = cwnd * (1.0 + BETA) / 2.0
        else:
            self.w_max = cwnd
        self.cwnd_packets = max(cwnd * BETA, 2.0)
        self.ssthresh = self.cwnd_bytes

    # -- Libra integration -----------------------------------------------

    def adopt_rate(self, rate_bps: float, srtt: float) -> None:
        """Seed the window so CUBIC explores from Libra's base rate."""
        self.cwnd_bytes = max(rate_bps * srtt / 8.0, self.min_cwnd_bytes)
        self.epoch_start = None
        self.w_max = max(self.w_max, self.cwnd_packets)

    def rate_estimate(self, srtt: float) -> float:
        return self.cwnd() * 8.0 / max(srtt, 1e-3)
