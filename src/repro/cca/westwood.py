"""TCP Westwood+ — bandwidth-estimate-based loss recovery."""

from __future__ import annotations

from ..simnet.packet import AckSample, LossSample
from .base import WindowController


class Westwood(WindowController):
    """AIMD growth with ssthresh = BWE * RTT_min on loss."""

    name = "westwood"

    def __init__(self, initial_cwnd_packets: int = 10):
        super().__init__(initial_cwnd_packets)
        self.bw_est = 0.0
        self._min_rtt = float("inf")

    def on_ack(self, ack: AckSample) -> None:
        super().on_ack(ack)
        self._min_rtt = min(self._min_rtt, ack.rtt)
        if ack.delivery_rate > 0:
            if self.bw_est == 0.0:
                self.bw_est = ack.delivery_rate
            else:
                self.bw_est = 0.9 * self.bw_est + 0.1 * ack.delivery_rate
        if self.in_slow_start():
            self.cwnd_bytes += ack.acked_bytes
        else:
            self.cwnd_bytes += self.mss * ack.acked_bytes / self.cwnd_bytes

    def on_loss(self, loss: LossSample) -> None:
        if not self.reduction_allowed(loss.now):
            return
        self.mark_reduction(loss.now)
        if self.bw_est > 0 and self._min_rtt < float("inf"):
            self.ssthresh = max(self.bw_est * self._min_rtt / 8.0,
                                self.min_cwnd_bytes)
        else:
            self.ssthresh = max(self.cwnd_bytes / 2.0, self.min_cwnd_bytes)
        self.cwnd_bytes = self.ssthresh

    def adopt_rate(self, rate_bps: float, srtt: float) -> None:
        self.cwnd_bytes = max(rate_bps * srtt / 8.0, self.min_cwnd_bytes)

    def rate_estimate(self, srtt: float) -> float:
        return self.cwnd() * 8.0 / max(srtt, 1e-3)
