"""Unit helpers shared across the package.

Internal conventions:

- time is in **seconds** (float),
- data sizes are in **bytes**,
- rates are in **bits per second** (bps).

The paper quotes rates in Mbps and delays in milliseconds; the helpers
here convert between the two worlds so call sites stay readable.
"""

from __future__ import annotations

MBPS = 1_000_000.0
KBPS = 1_000.0
BYTE = 8.0

MS = 1e-3
KB = 1_000
MB = 1_000_000

DEFAULT_MSS = 1500


def mbps(value: float) -> float:
    """Convert megabits-per-second to bits-per-second."""
    return value * MBPS


def to_mbps(rate_bps: float) -> float:
    """Convert bits-per-second to megabits-per-second."""
    return rate_bps / MBPS


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MS


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MS


def bytes_to_bits(nbytes: float) -> float:
    """Convert bytes to bits."""
    return nbytes * BYTE


def bits_to_bytes(nbits: float) -> float:
    """Convert bits to bytes."""
    return nbits / BYTE


def bdp_bytes(rate_bps: float, rtt_s: float) -> float:
    """Bandwidth-delay product in bytes."""
    return bits_to_bytes(rate_bps * rtt_s)
