"""Baseline comparison: regression verdicts with configurable tolerance.

``repro bench --compare <baseline>`` loads a committed baseline (one
``BENCH_*.json`` file or a directory of them), matches artifacts by
workload name, and judges each on its primary metric, packets per
second::

    current >= baseline * (1 - tolerance)   -> "ok"
    current >  baseline * (1 + tolerance)   -> "improved"
    otherwise                               -> "regression"

Workloads whose artifact is ``"failed"``, missing from the baseline, or
recorded under a different schema version get their own verdicts so CI
output names the problem instead of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .report import BENCH_SCHEMA_VERSION, load_report

#: verdicts that make the comparison (and CI) fail
FAILING_VERDICTS = ("regression", "failed", "schema-mismatch")


@dataclass
class Verdict:
    """One workload's comparison outcome."""

    workload: str
    verdict: str                    # ok | improved | regression | failed |
    #                                 no-baseline | schema-mismatch
    current_pps: float = 0.0
    baseline_pps: float = 0.0
    detail: str = ""

    @property
    def ratio(self) -> float:
        return self.current_pps / self.baseline_pps if self.baseline_pps \
            else float("inf")

    def __str__(self) -> str:
        core = f"{self.workload}: {self.verdict.upper()}"
        if self.baseline_pps:
            core += (f"  {self.current_pps:,.0f} vs baseline "
                     f"{self.baseline_pps:,.0f} pkts/s "
                     f"({self.ratio:.2f}x)")
        if self.detail:
            core += f"  [{self.detail}]"
        return core


def load_baselines(path: str | Path) -> dict:
    """Workload name -> baseline doc from a file or a directory."""
    path = Path(path)
    if path.is_dir():
        docs = [load_report(p) for p in sorted(path.glob("BENCH_*.json"))]
    else:
        docs = [load_report(path)]
    return {doc["workload"]: doc for doc in docs}


def judge(current: dict, baseline: dict | None,
          tolerance: float = 0.2) -> Verdict:
    """Verdict for one current artifact against its baseline (or None)."""
    name = current["workload"]
    if current["status"] != "ok":
        return Verdict(name, "failed",
                       detail=current.get("error", "run failed"))
    cur_pps = float(current["metrics"]["packets_per_sec"])
    if baseline is None:
        return Verdict(name, "no-baseline", current_pps=cur_pps,
                       detail="no committed baseline for this workload")
    if baseline.get("schema_version") != BENCH_SCHEMA_VERSION:
        return Verdict(name, "schema-mismatch", current_pps=cur_pps,
                       detail=f"baseline schema "
                              f"{baseline.get('schema_version')!r}")
    if baseline["status"] != "ok":
        return Verdict(name, "no-baseline", current_pps=cur_pps,
                       detail="baseline artifact is itself failed")
    base_pps = float(baseline["metrics"]["packets_per_sec"])
    if cur_pps < base_pps * (1.0 - tolerance):
        verdict = "regression"
    elif cur_pps > base_pps * (1.0 + tolerance):
        verdict = "improved"
    else:
        verdict = "ok"
    return Verdict(name, verdict, current_pps=cur_pps,
                   baseline_pps=base_pps)


def compare_reports(reports: list, baselines: dict,
                    tolerance: float = 0.2) -> list:
    """Judge every current report against the baseline set."""
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    return [judge(doc, baselines.get(doc["workload"]), tolerance)
            for doc in reports]


def has_failures(verdicts: list) -> bool:
    return any(v.verdict in FAILING_VERDICTS for v in verdicts)
