"""Schema-versioned ``BENCH_<workload>.json`` artifacts.

One JSON document per workload per bench invocation.  The schema is
versioned so baselines stay comparable across repo growth — bump
:data:`BENCH_SCHEMA_VERSION` whenever a field changes meaning, and the
compare layer will refuse to diff across versions instead of producing
a quietly wrong verdict.

Schema (version 1)::

    {
      "schema_version": 1,
      "workload": "wired-single",
      "status": "ok" | "failed",
      "engine": "batched" | "reference" | "netio",
      "config": {"warmup": .., "repeats": .., "seed": .., "scale": ..},
      "counters": {"packets": .., "events": .., "sim_seconds": ..},
      "metrics": {"wall_s": .., "packets_per_sec": ..,
                  "events_per_sec": .., "sim_seconds_per_wall_second": ..,
                  "peak_rss_kb": ..},
      "reference": {.. same metric keys ..} | null,
      "speedup_vs_reference": 3.2 | null,
      "per_cca": {"cubic": {"packets_per_sec": .., "wall_us_per_packet": ..},
                  ...} | null,
      "error": "..."            # failed artifacts only
    }
"""

from __future__ import annotations

import json
from pathlib import Path

BENCH_SCHEMA_VERSION = 1

#: keys every "ok" artifact's metrics block must carry
_METRIC_KEYS = ("wall_s", "packets_per_sec", "events_per_sec",
                "sim_seconds_per_wall_second", "peak_rss_kb")


def build_report(workload: str, engine: str, config: dict,
                 measurement, reference=None, per_cca: dict | None = None) \
        -> dict:
    """Assemble the artifact document for a successful workload run."""
    doc = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": workload,
        "status": "ok",
        "engine": engine,
        "config": dict(config),
        "counters": dict(measurement.counters),
        "metrics": measurement.metrics(),
        "reference": reference.metrics() if reference is not None else None,
        "speedup_vs_reference": (
            round(reference.wall_s / measurement.wall_s, 3)
            if reference is not None else None),
        "per_cca": per_cca,
    }
    return doc


def failed_report(workload: str, config: dict, error: BaseException) -> dict:
    """Artifact for a workload whose run raised (explicit, not absent).

    A crashed workload must still leave a schema-valid ``BENCH_*.json``
    behind — CI reads the directory, and a missing file is
    indistinguishable from a workload nobody ran.
    """
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": workload,
        "status": "failed",
        "engine": None,
        "config": dict(config),
        "counters": {},
        "metrics": {},
        "reference": None,
        "speedup_vs_reference": None,
        "per_cca": None,
        "error": f"{type(error).__name__}: {error}",
    }


def artifact_name(workload: str) -> str:
    return f"BENCH_{workload}.json"


def write_report(doc: dict, outdir: str | Path) -> Path:
    """Write one artifact to ``outdir`` and return its path."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / artifact_name(doc["workload"])
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def validate_report(doc: dict) -> list[str]:
    """Schema check used by tests and the compare layer.

    Returns a list of problems (empty == valid).
    """
    problems = []
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(f"schema_version {doc.get('schema_version')!r} != "
                        f"{BENCH_SCHEMA_VERSION}")
    if not isinstance(doc.get("workload"), str) or not doc.get("workload"):
        problems.append("workload must be a non-empty string")
    status = doc.get("status")
    if status not in ("ok", "failed"):
        problems.append(f"status {status!r} must be 'ok' or 'failed'")
    if not isinstance(doc.get("config"), dict):
        problems.append("config must be a dict")
    if status == "ok":
        metrics = doc.get("metrics")
        if not isinstance(metrics, dict):
            problems.append("metrics must be a dict")
        else:
            for key in _METRIC_KEYS:
                if not isinstance(metrics.get(key), (int, float)):
                    problems.append(f"metrics.{key} must be a number")
        counters = doc.get("counters")
        if not isinstance(counters, dict) or \
                not isinstance(counters.get("packets"), (int, float)):
            problems.append("counters.packets must be a number")
    if status == "failed" and not doc.get("error"):
        problems.append("failed artifacts must carry an error string")
    return problems


def load_report(path: str | Path) -> dict:
    """Read and schema-check one artifact."""
    doc = json.loads(Path(path).read_text())
    problems = validate_report(doc)
    if problems:
        raise ValueError(f"{path}: invalid BENCH artifact: "
                         + "; ".join(problems))
    return doc
