"""Warmed-up, seeded timing meter.

Benchmark timing on a shared machine is noisy; the meter controls what
it can:

- **warmup** runs absorb import costs, allocator growth and branch
  predictor state before anything is timed;
- **repeats** are timed individually and the *minimum* wall time is the
  reported one — the floor is the least-noise estimate of the true cost
  (every slower repeat measured the machine, not the code);
- **determinism** is asserted, not hoped for: deterministic workloads
  must return identical counters on every repeat at the fixed seed, so
  a benchmark can never silently time two different computations;
- **peak RSS** comes from ``getrusage`` (kilobytes on Linux).  It is a
  process-lifetime high-water mark: within one ``repro bench``
  invocation it is monotone across workloads, so compare it between
  invocations, not between workloads of one run.

GC stays *on* during timing — the production configuration is what
users run, and the two engines allocate at very different rates, so
disabling collection would skew exactly the comparison the bench
exists to make.  A full ``gc.collect()`` runs *before* each timed
repeat so every repeat starts from a drained heap instead of paying
for the previous repeat's garbage.

Speedup claims use :meth:`BenchMeter.measure_pair`, which interleaves
the two legs (A, B, A, B, ...) instead of timing all of A then all of
B.  Sequential legs are biased on real machines — whichever leg runs
second sees a warmer CPU and allocator, and the bias easily reaches
10-15% — while interleaving exposes both legs to the same drift.
"""

from __future__ import annotations

import gc
import resource
import time
from dataclasses import dataclass, field

from .workloads import DETERMINISM_KEYS


class BenchDeterminismError(AssertionError):
    """Two seeded repeats of a deterministic workload disagreed."""


@dataclass
class Measurement:
    """Timing of one workload under the meter."""

    wall_s: float                   # min over repeats
    walls: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    peak_rss_kb: float = 0.0

    @property
    def packets_per_sec(self) -> float:
        return self.counters.get("packets", 0) / max(self.wall_s, 1e-9)

    @property
    def events_per_sec(self) -> float:
        return self.counters.get("events", 0) / max(self.wall_s, 1e-9)

    @property
    def sim_seconds_per_wall_second(self) -> float:
        return self.counters.get("sim_seconds", 0.0) / max(self.wall_s, 1e-9)

    def metrics(self) -> dict:
        return {
            "wall_s": self.wall_s,
            "walls_s": [round(w, 6) for w in self.walls],
            "packets_per_sec": round(self.packets_per_sec, 2),
            "events_per_sec": round(self.events_per_sec, 2),
            "sim_seconds_per_wall_second":
                round(self.sim_seconds_per_wall_second, 4),
            "peak_rss_kb": self.peak_rss_kb,
        }


@dataclass
class BenchMeter:
    """Runs a workload callable under the warmup/repeat/verify policy."""

    warmup: int = 1
    repeats: int = 3

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")

    def measure(self, fn, deterministic: bool = True,
                label: str = "workload") -> Measurement:
        """Time ``fn`` (a no-arg callable returning a counter dict)."""
        for _ in range(self.warmup):
            fn()
        walls: list[float] = []
        counters: dict | None = None
        for i in range(self.repeats):
            gc.collect()
            t0 = time.perf_counter()
            c = fn()
            walls.append(time.perf_counter() - t0)
            counters = self._check(c, counters, deterministic, label, i)
        return self._finish(walls, counters)

    def measure_pair(self, fn_a, fn_b, deterministic: bool = True,
                     label: str = "workload") -> "tuple[Measurement, Measurement]":
        """Time two callables with interleaved repeats (A, B, A, B, ...).

        This is the honest way to measure a speedup: both legs see the
        same machine drift instead of the second leg getting the warmer
        CPU.  Returns ``(measurement_a, measurement_b)``.
        """
        for _ in range(self.warmup):
            fn_a()
            fn_b()
        walls_a: list[float] = []
        walls_b: list[float] = []
        counters_a: dict | None = None
        counters_b: dict | None = None
        for i in range(self.repeats):
            gc.collect()
            t0 = time.perf_counter()
            ca = fn_a()
            walls_a.append(time.perf_counter() - t0)
            gc.collect()
            t0 = time.perf_counter()
            cb = fn_b()
            walls_b.append(time.perf_counter() - t0)
            counters_a = self._check(ca, counters_a, deterministic,
                                     label, i)
            counters_b = self._check(cb, counters_b, deterministic,
                                     f"{label}:pair", i)
        return self._finish(walls_a, counters_a), \
            self._finish(walls_b, counters_b)

    def _check(self, c: dict, counters: dict | None, deterministic: bool,
               label: str, i: int) -> dict:
        if counters is None:
            return c
        if deterministic:
            for key in DETERMINISM_KEYS:
                if c.get(key) != counters.get(key):
                    raise BenchDeterminismError(
                        f"{label}: repeat {i} produced "
                        f"{key}={c.get(key)!r} but repeat 0 produced "
                        f"{counters.get(key)!r} — a seeded workload "
                        f"must be bit-deterministic")
        return counters

    @staticmethod
    def _finish(walls: list, counters: dict | None) -> Measurement:
        peak_rss = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        return Measurement(wall_s=min(walls), walls=walls,
                           counters=counters or {}, peak_rss_kb=peak_rss)
