"""Benchmark workload registry.

Each workload is a frozen, picklable description of one representative
load on the stack, with a ``run_once(seed, scale)`` method that executes
it and returns a flat counter dict.  The meter (:mod:`repro.bench.meter`)
wraps ``run_once`` with warmup, repeats and timing; the report layer
(:mod:`repro.bench.report`) turns measurements into ``BENCH_*.json``
artifacts.

Default registry:

- ``wired-single`` — one CUBIC flow through the wired-48 preset, the
  tentpole workload: the batched engine must beat the reference engine
  by >= 3x here (the committed baseline records the measured ratio);
- ``manyflow-16/64/256`` — staggered-start CUBIC flows sharing one
  bottleneck, stressing scheduler fan-out and per-flow state;
- ``faulted-burst`` — the stress-burst-loss preset (Gilbert-Elliott
  burst loss), the faulted trace the batched engine still covers;
- ``churn-256`` — the 256-session flow-churn workload on the scale-96
  preset (finite flows, Poisson arrivals — the attach/detach path);
- ``netio-loopback`` — a real reliable-UDP loopback transfer through
  :mod:`repro.netio` (sockets, asyncio, ARQ), the serving-path number.

``crash-selftest`` is registered but not in :data:`DEFAULT_WORKLOADS`:
its controller raises mid-run by design, exercising the ``"failed"``
artifact path.
"""

from __future__ import annotations

from dataclasses import dataclass

#: counter keys that must agree across repeated seeded runs for a
#: deterministic workload — the meter enforces this
DETERMINISM_KEYS = ("packets", "events")


@dataclass(frozen=True)
class SimWorkload:
    """One simulated-dumbbell benchmark load."""

    name: str
    description: str
    scenario: str                   # named preset
    cca: str = "cubic"
    flows: int = 1
    duration: float = 20.0
    stagger: float = 0.0            # flow i starts at i * stagger
    engine: str = "batched"
    #: measure a reference-engine leg too and record the speedup
    compare_reference: bool = False
    #: extra per-CCA overhead panel (short runs, batched engine)
    cca_panel: tuple = ()
    #: simulated runs are bit-deterministic at a fixed seed
    deterministic: bool = True

    def build_job(self, seed: int, scale: float = 1.0,
                  engine: str | None = None, cca: str | None = None,
                  duration: float | None = None):
        from ..parallel.jobs import FlowSpec, Job, single_flow_job
        from ..scenarios.presets import named_presets

        sc = named_presets()[self.scenario].with_(
            engine=engine if engine is not None else self.engine)
        d = (duration if duration is not None else self.duration) * scale
        use_cca = cca if cca is not None else self.cca
        if self.flows == 1:
            return single_flow_job(use_cca, sc, seed=seed, duration=d)
        flow_specs = tuple(
            FlowSpec.make(use_cca, seed=seed + i, start=i * self.stagger)
            for i in range(self.flows))
        return Job(scenario=sc, flows=flow_specs, seed=seed, duration=d)

    def run_once(self, seed: int, scale: float = 1.0,
                 engine: str | None = None, cca: str | None = None,
                 duration: float | None = None) -> dict:
        result = self.build_job(seed, scale=scale, engine=engine,
                                cca=cca, duration=duration).run()
        return {
            "packets": sum(f.sent_packets for f in result.flows),
            "events": result.events_processed,
            "sim_seconds": result.duration,
            "engine": result.engine_used,
        }


@dataclass(frozen=True)
class ChurnWorkload:
    """One flow-churn benchmark load (finite flows, Poisson arrivals).

    Exercises the attach/detach path the steady-state workloads never
    touch: budget gates, FIN teardown, fin watchdogs, and a flow
    population that turns over while the run is hot.  ``scale``
    shrinks the population, arrival window and horizon together, so a
    scaled-down run keeps the full run's churn shape (and its
    packets-per-second profile — the baseline-compare invariant).
    """

    name: str
    description: str
    workload: str                   # named churn preset
    scenario: str = "scale-96"
    cca: str = "cubic"
    engine: str = "batched"
    compare_reference: bool = False
    cca_panel: tuple = ()
    deterministic: bool = True

    def build_job(self, seed: int, scale: float = 1.0,
                  engine: str | None = None, cca: str | None = None,
                  duration: float | None = None):
        from ..scale import churn_job, churn_preset
        from ..scenarios.presets import named_presets

        sc = named_presets()[self.scenario].with_(
            engine=engine if engine is not None else self.engine)
        spec = churn_preset(self.workload)
        if scale != 1.0:
            spec = spec.with_(n_flows=max(int(spec.n_flows * scale), 4),
                              arrival_window=spec.arrival_window * scale,
                              duration=spec.duration * scale,
                              name=f"{spec.name}@s{scale:g}")
        d = duration if duration is not None else spec.duration
        return churn_job(spec, cca if cca is not None else self.cca, sc,
                         seed=seed, duration=d)

    def run_once(self, seed: int, scale: float = 1.0,
                 engine: str | None = None, cca: str | None = None,
                 duration: float | None = None) -> dict:
        result = self.build_job(seed, scale=scale, engine=engine,
                                cca=cca, duration=duration).run()
        return {
            "packets": sum(f.sent_packets for f in result.flows),
            "events": result.events_processed,
            "sim_seconds": result.duration,
            "engine": result.engine_used,
        }


@dataclass(frozen=True)
class NetioWorkload:
    """One real-socket loopback transfer through the netio stack.

    Wall time here includes asyncio scheduling and kernel UDP, so the
    numbers are throughput of the serving path, not of the simulator.
    Real sockets under load are not perfectly repeatable (an RTO can
    fire on a slow CI runner), so the meter skips the determinism check.
    """

    name: str
    description: str
    nbytes: int = 2_097_152
    cca: str = "cubic"
    mss: int = 1200
    compare_reference: bool = False
    cca_panel: tuple = ()
    deterministic: bool = False

    def run_once(self, seed: int, scale: float = 1.0,
                 engine: str | None = None, cca: str | None = None,
                 duration: float | None = None) -> dict:
        import asyncio

        from ..netio import NetioServer, send_payload
        from ..registry import make_controller

        nbytes = max(int(self.nbytes * scale), 64 * self.mss)
        use_cca = cca if cca is not None else self.cca

        async def transfer():
            server = NetioServer()
            host, port = await server.start()
            try:
                result = await send_payload(
                    host, port, make_controller(use_cca, seed=seed),
                    bytes(nbytes), mss=self.mss, seed=seed,
                    timeout=120.0, cca_name=use_cca)
                await server.serve_one(timeout=5.0)
                return result
            finally:
                await server.close()

        result = asyncio.run(transfer())
        return {
            "packets": result.sent_packets,
            "events": result.sent_packets + result.acked_packets,
            "sim_seconds": result.duration,
            "engine": "netio",
        }


#: per-CCA overhead panel for the tentpole workload — one classic
#: window CCA, one rate CCA, and the paper's framework flavour
_CCA_PANEL = ("cubic", "reno", "bbr", "c-libra")


def registry() -> dict:
    """Name -> workload for every registered benchmark."""
    workloads = [
        SimWorkload(
            name="wired-single",
            description="single CUBIC flow, wired-48 preset (tentpole: "
                        "batched engine vs reference, >=3x)",
            scenario="wired-48", duration=20.0,
            compare_reference=True, cca_panel=_CCA_PANEL),
        SimWorkload(
            name="manyflow-16",
            description="16 staggered CUBIC flows sharing wired-48",
            scenario="wired-48", flows=16, duration=8.0, stagger=0.05),
        SimWorkload(
            name="manyflow-64",
            description="64 staggered CUBIC flows sharing wired-48",
            scenario="wired-48", flows=64, duration=4.0, stagger=0.02),
        SimWorkload(
            name="manyflow-256",
            description="256 staggered CUBIC flows sharing wired-48",
            scenario="wired-48", flows=256, duration=2.0, stagger=0.005),
        SimWorkload(
            name="faulted-burst",
            description="CUBIC through stress-burst-loss (Gilbert-"
                        "Elliott bursts, batched engine engaged)",
            scenario="stress-burst-loss", duration=14.0,
            compare_reference=True),
        ChurnWorkload(
            name="churn-256",
            description="256-session churn workload on scale-96 (finite "
                        "flows, Poisson arrivals, attach/detach hot)",
            workload="churn-256"),
        NetioWorkload(
            name="netio-loopback",
            description="2 MiB reliable-UDP loopback transfer (real "
                        "sockets, CUBIC)"),
        SimWorkload(
            name="crash-selftest",
            description="controller that raises mid-run — exercises the "
                        "failed-artifact path (not in the default set)",
            scenario="wired-24", cca="crash-test", duration=10.0),
    ]
    return {w.name: w for w in workloads}


#: what ``repro bench`` runs when no ``--workloads`` is given
DEFAULT_WORKLOADS = ("wired-single", "manyflow-16", "manyflow-64",
                     "manyflow-256", "faulted-burst", "churn-256",
                     "netio-loopback")
