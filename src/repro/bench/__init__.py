"""repro.bench — standing performance-benchmark subsystem.

Performance only counts once it is measured the same way twice.  This
package runs a registry of representative workloads (simulated dumbbell
single- and many-flow, faulted traces, the real-socket netio loopback)
under a warmed-up, seeded timing meter and writes one schema-versioned
``BENCH_<workload>.json`` artifact per workload.  ``repro bench
--compare`` turns a committed baseline directory into a regression
gate; ``repro diff --mode engine`` (the differential oracle) keeps the
batched fast path these numbers advertise bit-exact against the
reference engine.

Quick start::

    repro bench                                  # default workloads
    repro bench --workloads wired-single --profile
    repro bench --compare benchmarks/baselines --tolerance 0.2
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path

from .compare import (FAILING_VERDICTS, Verdict, compare_reports,
                      has_failures, load_baselines)
from .meter import BenchDeterminismError, BenchMeter, Measurement
from .report import (BENCH_SCHEMA_VERSION, artifact_name, build_report,
                     failed_report, load_report, validate_report,
                     write_report)
from .workloads import DEFAULT_WORKLOADS, NetioWorkload, SimWorkload, registry

#: how much shorter the per-CCA overhead panel runs are than the
#: workload proper — the panel ranks controllers, it does not need the
#: tentpole's statistical weight
PANEL_SCALE = 0.25

#: cProfile rows kept in a ``--profile`` dump
PROFILE_TOP = 25


def run_workload(workload, meter: BenchMeter, seed: int = 1,
                 scale: float = 1.0) -> dict:
    """Execute one workload under the meter and build its artifact doc.

    A raising workload yields a ``status="failed"`` document — the
    artifact set always has one entry per requested workload.
    """
    config = {"warmup": meter.warmup, "repeats": meter.repeats,
              "seed": seed, "scale": scale}
    try:
        reference = None
        if workload.compare_reference:
            # Interleaved repeats — a sequential pair of legs would
            # hand the second one a warmer machine (see meter docs).
            measurement, reference = meter.measure_pair(
                lambda: workload.run_once(seed, scale=scale),
                lambda: workload.run_once(seed, scale=scale,
                                          engine="reference"),
                deterministic=workload.deterministic,
                label=workload.name)
        else:
            measurement = meter.measure(
                lambda: workload.run_once(seed, scale=scale),
                deterministic=workload.deterministic, label=workload.name)
        engine = measurement.counters.get("engine", "batched")

        per_cca = None
        if workload.cca_panel:
            per_cca = {}
            for cca in workload.cca_panel:
                m = meter.measure(
                    lambda c=cca: workload.run_once(
                        seed, scale=scale * PANEL_SCALE, cca=c),
                    deterministic=workload.deterministic,
                    label=f"{workload.name}:{cca}")
                packets = max(m.counters.get("packets", 0), 1)
                per_cca[cca] = {
                    "packets_per_sec": round(m.packets_per_sec, 2),
                    "wall_us_per_packet":
                        round(m.wall_s * 1e6 / packets, 4),
                }
        return build_report(workload.name, engine, config, measurement,
                            reference=reference, per_cca=per_cca)
    except Exception as exc:
        return failed_report(workload.name, config, exc)


def profile_workload(workload, seed: int = 1, scale: float = 1.0) -> str:
    """One profiled run, rendered as a top-N cumulative-time table."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        workload.run_once(seed, scale=scale)
    finally:
        profiler.disable()
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative") \
        .print_stats(PROFILE_TOP)
    return buf.getvalue()


def run_bench(workload_names=None, outdir: str | Path = "bench-artifacts",
              warmup: int = 1, repeats: int = 3, seed: int = 1,
              scale: float = 1.0, profile: bool = False,
              echo=None) -> list:
    """Run the named workloads and write one artifact each.

    Returns the list of artifact documents (in run order).  ``echo`` is
    an optional ``print``-like callable for progress lines.
    """
    names = list(workload_names) if workload_names else \
        list(DEFAULT_WORKLOADS)
    known = registry()
    unknown = [n for n in names if n not in known]
    if unknown:
        raise KeyError(f"unknown workload(s) {unknown}; registered: "
                       f"{', '.join(sorted(known))}")
    meter = BenchMeter(warmup=warmup, repeats=repeats)
    outdir = Path(outdir)
    docs = []
    for name in names:
        workload = known[name]
        doc = run_workload(workload, meter, seed=seed, scale=scale)
        path = write_report(doc, outdir)
        docs.append(doc)
        if echo is not None:
            if doc["status"] == "ok":
                line = (f"{name}: {doc['metrics']['packets_per_sec']:,.0f} "
                        f"pkts/s, {doc['metrics']['wall_s']:.3f}s wall")
                if doc["speedup_vs_reference"] is not None:
                    line += (f", {doc['speedup_vs_reference']:.2f}x vs "
                             f"reference")
            else:
                line = f"{name}: FAILED ({doc['error']})"
            echo(f"{line}  -> {path}")
        if profile and doc["status"] == "ok":
            text = profile_workload(workload, seed=seed, scale=scale)
            ppath = outdir / f"PROFILE_{name}.txt"
            ppath.write_text(text)
            if echo is not None:
                echo(f"{name}: profile -> {ppath}")
    return docs


__all__ = [
    "BENCH_SCHEMA_VERSION", "BenchDeterminismError", "BenchMeter",
    "DEFAULT_WORKLOADS", "FAILING_VERDICTS", "Measurement",
    "NetioWorkload", "SimWorkload", "Verdict", "artifact_name",
    "build_report", "compare_reports", "failed_report", "has_failures",
    "load_baselines", "load_report", "profile_workload", "registry",
    "run_bench", "run_workload", "validate_report", "write_report",
]
