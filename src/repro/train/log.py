"""Structured JSONL training logs.

Replaces the old freeform ``train_log.txt`` with a machine-readable
stream in the *telemetry export schema*: the first line is a ``header``
record declaring the schema version and channel inventory, followed by
``sample`` records (headline per-iteration series: mean episode reward,
policy entropy, approximate KL, rollout throughput, worker utilization;
the time axis ``t`` is the iteration number) and ``event`` records
(full per-iteration stats, checkpoint writes, resumes, promotion
verdicts).  Because the layout is exactly what
:func:`repro.telemetry.export.validate_jsonl` checks, training logs are
validated by the same machinery as flow traces — CI validates the
smoke run's log on every push.

Lines are flushed as written, so a killed run leaves a valid,
truncated-at-a-record-boundary log behind.
"""

from __future__ import annotations

import json
import time

from ..telemetry import SCHEMA_VERSION
from ..telemetry.export import _json_safe

#: per-iteration series channels (sample records, t = iteration)
TRAIN_SERIES = ("train.reward_mean", "train.entropy", "train.approx_kl",
                "train.steps_per_sec", "train.worker_util")

#: structured event channels
TRAIN_EVENTS = ("train.iteration", "train.checkpoint", "train.resume",
                "train.promotion")


class TrainLogger:
    """Incremental JSONL writer for one training run."""

    def __init__(self, path: str, meta: dict | None = None):
        self.path = path
        self._fh = open(path, "w")
        self._t0 = time.perf_counter()
        header = {
            "type": "header",
            "schema_version": SCHEMA_VERSION,
            "series": list(TRAIN_SERIES),
            "events": list(TRAIN_EVENTS),
            "dropped_events": {},
            "meta": _json_safe(dict(meta or {}, log="repro.train")),
        }
        self._write(header)

    # -- records -----------------------------------------------------------

    def log_iteration(self, iteration: int, stats: dict) -> None:
        """One training iteration: headline samples + the full event."""
        t = float(iteration)
        for channel, key in (("train.reward_mean", "reward_mean"),
                             ("train.entropy", "entropy"),
                             ("train.approx_kl", "approx_kl"),
                             ("train.steps_per_sec", "steps_per_sec"),
                             ("train.worker_util", "worker_util")):
            if key in stats and stats[key] is not None:
                self._write({"type": "sample", "channel": channel, "t": t,
                             "v": _json_safe(stats[key])})
        fields = dict(stats, iteration=iteration,
                      wall_s=time.perf_counter() - self._t0)
        self._write({"type": "event", "kind": "train.iteration", "t": t,
                     "fields": _json_safe(fields)})

    def log_checkpoint(self, iteration: int, path: str) -> None:
        self._write({"type": "event", "kind": "train.checkpoint",
                     "t": float(iteration),
                     "fields": {"iteration": iteration, "path": path}})

    def log_resume(self, iteration: int, path: str) -> None:
        self._write({"type": "event", "kind": "train.resume",
                     "t": float(iteration),
                     "fields": {"iteration": iteration, "path": path}})

    def log_promotion(self, iteration: int, decision) -> None:
        fields = {
            "iteration": iteration,
            "kind": decision.kind,
            "promoted": decision.promoted,
            "reason": decision.reason,
            "asset_path": decision.asset_path,
            "candidate_score": decision.candidate.score,
            "incumbent_score": (decision.incumbent.score
                                if decision.incumbent is not None else None),
        }
        self._write({"type": "event", "kind": "train.promotion",
                     "t": float(iteration), "fields": _json_safe(fields)})

    # -- plumbing ----------------------------------------------------------

    def _write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TrainLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
