"""Evaluation gate: score candidate policies on a fixed simnet panel.

Training rewards come from the fluid model; what actually matters is
how a policy behaves inside its consumer controller on the packet-level
simulator.  The gate therefore runs each candidate through a fixed
panel of :mod:`repro.simnet` scenarios — wired, LTE, lossy, and a
``faults`` profile for robustness (blackout recovery) — mirroring the
axes of the paper's Sec. 5 evaluation (Fig. 7's wired/cellular traces,
Fig. 10's lossy links) plus the stress subsystem's pathological link.

Each run is scored with the same shape as the training reward
(Sec. 4.2): ``utilization − w_delay·queueing − w_loss·loss``, averaged
over the panel.  :func:`gate_and_promote` compares the candidate
against the incumbent asset *on the same panel* and only overwrites
``repro/assets/<kind>.npz`` (refreshing ``MANIFEST.json``) when the
candidate's panel score is strictly better — a worse retrain can never
silently degrade the shipped policies.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from ..parallel.pool import run_tasks
from ..rl.policy import GaussianActorCritic

#: names accepted in GateConfig.panel
PANEL_SCENARIOS = ("wired", "lte", "lossy", "faults")


@dataclass(frozen=True)
class GateConfig:
    """What the panel runs and how runs are scored."""

    panel: tuple = PANEL_SCENARIOS
    seeds: tuple = (1, 2)
    duration: float = 10.0
    #: scoring weights, mirroring the training reward's (w1, w2, w3)
    w_delay: float = 0.5
    w_loss: float = 10.0


def panel_scenarios(names=PANEL_SCENARIOS) -> list:
    """Resolve panel names to concrete scenarios (lazy simnet imports)."""
    from ..scenarios.presets import (LTE, WIRED, loss_scenario,
                                     stress_scenario)

    table = {
        "wired": lambda: WIRED["wired-48"],
        "lte": lambda: LTE["lte-stationary"],
        "lossy": lambda: loss_scenario(0.04),
        "faults": lambda: stress_scenario("blackout"),
    }
    out = []
    for name in names:
        if name not in table:
            raise KeyError(f"unknown panel scenario {name!r}; choose from "
                           f"{sorted(table)}")
        out.append((name, table[name]()))
    return out


def _controller_for(kind: str, policy, seed: int):
    """Build the consumer controller for a policy kind with ``policy``."""
    if kind == "libra":
        from ..core.factory import make_c_libra
        return make_c_libra(policy=policy, seed=seed)
    if kind == "aurora":
        from ..learning import Aurora
        return Aurora(policy, seed=seed)
    if kind == "orca":
        from ..learning import Orca
        return Orca(policy, seed=seed)
    if kind == "modified-rl":
        from ..learning import ModifiedRL
        return ModifiedRL(policy, seed=seed)
    raise KeyError(f"no consumer controller for policy kind {kind!r}")


@dataclass
class EvalTask:
    """One panel cell: run ``kind``'s controller on one scenario/seed."""

    kind: str
    weights: dict
    panel_name: str
    seed: int
    duration: float

    @property
    def label(self) -> str:
        return f"eval {self.kind} @ {self.panel_name} seed={self.seed}"

    def run(self) -> dict:
        scenario = dict(panel_scenarios((self.panel_name,)))[self.panel_name]
        policy = GaussianActorCritic.from_weights(self.weights)
        net = scenario.build(seed=self.seed)
        net.add_flow(_controller_for(self.kind, policy, self.seed))
        result = net.run(self.duration)
        flow = result.flows[0]
        return {
            "panel": self.panel_name,
            "seed": self.seed,
            "utilization": float(result.utilization),
            "throughput_mbps": float(flow.throughput_mbps),
            "avg_rtt_ms": float(flow.avg_rtt_ms),
            "base_rtt_ms": float(scenario.rtt * 1e3),
            "loss_rate": float(flow.loss_rate),
        }


def score_row(row: dict, config: GateConfig) -> float:
    """Score one panel run; higher is better.

    ``utilization − w_delay·(RTT/base − 1)⁺ − w_loss·loss`` — the
    training reward's shape (throughput share minus queueing-delay and
    loss penalties) evaluated on end-to-end simulator metrics.
    """
    base = max(row["base_rtt_ms"], 1e-9)
    queueing = max(row["avg_rtt_ms"] / base - 1.0, 0.0)
    return (row["utilization"] - config.w_delay * queueing
            - config.w_loss * row["loss_rate"])


@dataclass
class PanelScore:
    """A policy's panel evaluation: aggregate score + per-run rows."""

    score: float
    rows: list = field(default_factory=list)

    def by_panel(self) -> dict:
        out: dict = {}
        for row in self.rows:
            out.setdefault(row["panel"], []).append(row["score"])
        return {name: float(np.mean(vals)) for name, vals in out.items()}


def evaluate_panel(kind: str, weights: dict,
                   config: GateConfig | None = None, workers: int = 1,
                   timeout: float | None = None) -> PanelScore:
    """Run the full panel for one policy and aggregate its score."""
    config = config or GateConfig()
    tasks = [EvalTask(kind=kind, weights=weights, panel_name=name,
                      seed=seed, duration=config.duration)
             for name, _scenario in panel_scenarios(config.panel)
             for seed in config.seeds]
    rows = run_tasks(tasks, workers=workers, timeout=timeout)
    for row in rows:
        row["score"] = score_row(row, config)
    return PanelScore(score=float(np.mean([row["score"] for row in rows])),
                      rows=rows)


@dataclass
class PromotionDecision:
    """Outcome of gating one candidate against the shipped incumbent."""

    kind: str
    promoted: bool
    reason: str
    asset_path: str
    candidate: PanelScore
    incumbent: PanelScore | None = None


def _atomic_save_policy(policy, path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".promote-",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **policy.get_weights(),
                     obs_dim=policy.obs_dim, act_dim=policy.act_dim,
                     hidden=np.array([w.shape[1]
                                      for w in policy.actor.weights[:-1]]))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def gate_and_promote(kind: str, weights: dict, assets_dir: str | None = None,
                     config: GateConfig | None = None, workers: int = 1,
                     timeout: float | None = None) -> PromotionDecision:
    """Evaluate a candidate and promote it only if it beats the incumbent.

    The incumbent is ``<assets_dir>/<kind>.npz`` evaluated on the same
    panel; a missing or unloadable incumbent concedes.  Promotion writes
    the weights atomically and refreshes the asset manifest entry.
    """
    from .. import assets

    config = config or GateConfig()
    asset_dir = assets_dir or assets._ASSET_DIR
    asset_path = os.path.join(asset_dir, f"{kind}.npz")

    candidate = evaluate_panel(kind, weights, config, workers=workers,
                               timeout=timeout)
    incumbent = None
    if os.path.exists(asset_path):
        try:
            incumbent_policy = GaussianActorCritic.load(asset_path)
        except Exception:
            incumbent_policy = None  # corrupt incumbent concedes
        if incumbent_policy is not None:
            incumbent = evaluate_panel(kind, incumbent_policy.get_weights(),
                                       config, workers=workers,
                                       timeout=timeout)

    if incumbent is not None and candidate.score <= incumbent.score:
        return PromotionDecision(
            kind=kind, promoted=False,
            reason=(f"candidate panel score {candidate.score:.4f} does not "
                    f"beat incumbent {incumbent.score:.4f}"),
            asset_path=asset_path, candidate=candidate, incumbent=incumbent)

    policy = GaussianActorCritic.from_weights(weights)
    _atomic_save_policy(policy, asset_path)
    assets.update_manifest_entry(kind, asset_dir=asset_dir)
    reason = "no loadable incumbent" if incumbent is None else \
        (f"candidate panel score {candidate.score:.4f} beats incumbent "
         f"{incumbent.score:.4f}")
    return PromotionDecision(kind=kind, promoted=True, reason=reason,
                             asset_path=asset_path, candidate=candidate,
                             incumbent=incumbent)
