"""The training pipeline driver: parallel collect → update → checkpoint.

:func:`train_run` executes one PPO training run described by a
:class:`TrainRunConfig`:

1. every iteration, the step budget is split across ``workers``
   :class:`~repro.train.workers.RolloutTask`\\ s executed either
   in-process (``backend="serial"``) or through the fork pool
   (``backend="fork"``; ``"auto"`` forks when ``workers > 1`` and the
   platform has ``fork``) — the two backends are bit-identical by
   construction (see :mod:`repro.train.workers`);
2. the merged batch feeds one central
   :class:`~repro.rl.ppo.PPOUpdater` update;
3. per-iteration metrics stream to a structured JSONL log
   (:mod:`repro.train.log`);
4. on the checkpoint cadence, the full training state is persisted
   atomically (:mod:`repro.train.checkpoint`) — ``resume=True`` picks
   up the latest checkpoint and replays the remaining iterations
   exactly as an uninterrupted run would;
5. optionally, the finished policy faces the evaluation gate
   (:mod:`repro.train.gate`) and is promoted to the asset bundle only
   if it beats the incumbent on the fixed simnet panel.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from ..parallel.pool import has_fork, run_tasks
from ..rl.policy import GaussianActorCritic
from ..rl.ppo import PPOConfig, PPOUpdater, TrainHistory
from .checkpoint import (TrainState, latest_checkpoint, load_checkpoint,
                         restore_optimizer, restore_policy_weights,
                         save_checkpoint)
from .gate import GateConfig, PromotionDecision, gate_and_promote
from .log import TrainLogger
from .workers import build_rollout_tasks, merge_rollouts

#: meta keys that must match between a checkpoint and the resuming config
_RESUME_KEYS = ("kind", "seed", "workers", "steps_per_iteration", "hidden",
                "episode_steps", "gamma", "lam", "lr")


@dataclass(frozen=True)
class TrainRunConfig:
    """Everything one training run depends on."""

    kind: str
    iterations: int = 30
    workers: int = 1
    steps_per_iteration: int = 1920
    seed: int = 0
    hidden: tuple = (64, 64)
    episode_steps: int = 96
    gamma: float = 0.995
    lam: float = 0.97
    lr: float = 3e-4
    train_iters: int = 8
    minibatch_size: int = 64
    clip_ratio: float = 0.2
    vf_coef: float = 0.5
    ent_coef: float = 0.003
    backend: str = "auto"            # auto | serial | fork
    timeout: float | None = None     # per rollout-task attempt (fork mode)
    checkpoint_dir: str | None = None
    checkpoint_every: int = 0        # 0 = final iteration only
    resume: bool = False
    log_path: str | None = None
    promote: bool = False
    assets_dir: str | None = None
    gate: GateConfig = field(default_factory=GateConfig)
    verbose: bool = False

    def ppo_config(self) -> PPOConfig:
        return PPOConfig(
            steps_per_epoch=self.steps_per_iteration,
            train_iters=self.train_iters,
            minibatch_size=self.minibatch_size, gamma=self.gamma,
            lam=self.lam, clip_ratio=self.clip_ratio, lr=self.lr,
            vf_coef=self.vf_coef, ent_coef=self.ent_coef,
            max_episode_steps=self.episode_steps, seed=self.seed)


@dataclass
class TrainRunResult:
    """What a finished (or resumed-to-completion) run hands back."""

    config: TrainRunConfig
    policy: GaussianActorCritic
    history: TrainHistory
    start_iteration: int
    iterations_run: int
    checkpoints: list
    log_path: str | None = None
    promotion: PromotionDecision | None = None
    last_stats: dict = field(default_factory=dict)


def _use_fork(config: TrainRunConfig) -> bool:
    if config.backend == "serial":
        return False
    if config.backend == "fork":
        if not has_fork():
            raise RuntimeError("backend='fork' requires the fork start "
                               "method; use backend='serial' here")
        return True
    if config.backend == "auto":
        return config.workers > 1 and has_fork()
    raise ValueError(f"unknown backend {config.backend!r}; "
                     f"choose auto, serial, or fork")


def _run_meta(config: TrainRunConfig, env) -> dict:
    """The checkpoint meta block: run identity + normalizer config."""
    from ..training import TRAIN_SPECS

    spec = TRAIN_SPECS[config.kind]
    return {
        "kind": config.kind, "seed": config.seed, "workers": config.workers,
        "steps_per_iteration": config.steps_per_iteration,
        "hidden": list(config.hidden), "episode_steps": config.episode_steps,
        "gamma": config.gamma, "lam": config.lam, "lr": config.lr,
        "obs_dim": env.obs_dim, "act_dim": env.act_dim,
        "feature_set": spec.feature_set_name,
        # the fluid env's Normalizer is episode-scoped (re-seeded from
        # the episode's capacity/RTT at reset), so only its configuration
        # is state worth persisting:
        "normalizer": {"scope": "per-episode",
                       "history": env.builder.history,
                       "feature_dim": env.builder.feature_set.dim},
    }


def _validate_resume(meta: dict, expected: dict, path: str) -> None:
    for key in _RESUME_KEYS:
        if meta.get(key) != expected.get(key):
            raise ValueError(
                f"checkpoint {path} was written by a different run: "
                f"{key}={meta.get(key)!r} vs configured "
                f"{expected.get(key)!r}; point --checkpoint-dir at a fresh "
                f"directory or match the original flags")


def train_run(config: TrainRunConfig) -> TrainRunResult:
    """Execute one training run end to end; see the module docstring."""
    from ..training import TRAIN_SPECS, make_training_env

    if config.kind not in TRAIN_SPECS:
        raise KeyError(f"unknown policy kind {config.kind!r}; "
                       f"choose from {sorted(TRAIN_SPECS)}")
    if config.iterations < 1:
        raise ValueError("iterations must be >= 1")

    # A probe env pins the observation dimensionality and normalizer meta.
    probe = make_training_env(config.kind, seed=config.seed,
                              episode_steps=config.episode_steps)
    meta = _run_meta(config, probe)

    policy = GaussianActorCritic(probe.obs_dim, act_dim=probe.act_dim,
                                 hidden=tuple(config.hidden),
                                 seed=config.seed)
    rng = np.random.default_rng(config.seed)
    updater = PPOUpdater(policy, config.ppo_config(), rng=rng)
    history = TrainHistory()

    start_iteration = 0
    resumed_from = None
    if config.resume:
        if not config.checkpoint_dir:
            raise ValueError("resume=True requires checkpoint_dir")
        path = latest_checkpoint(config.checkpoint_dir)
        if path is not None:
            state = load_checkpoint(path)
            _validate_resume(state.meta, meta, path)
            restore_policy_weights(policy, state.weights)
            restore_optimizer(updater.optimizer, state)
            rng.bit_generator.state = state.rng_state
            history.episode_rewards.extend(state.episode_rewards)
            start_iteration = state.iteration
            resumed_from = path

    logger = None
    if config.log_path:
        os.makedirs(os.path.dirname(os.path.abspath(config.log_path)),
                    exist_ok=True)
        logger = TrainLogger(config.log_path,
                             meta=dict(meta, iterations=config.iterations,
                                       backend=config.backend))
        if resumed_from is not None:
            logger.log_resume(start_iteration, resumed_from)

    use_fork = _use_fork(config)
    checkpoints: list = []
    last_stats: dict = {}
    try:
        for iteration in range(start_iteration + 1, config.iterations + 1):
            t0 = time.perf_counter()
            tasks = build_rollout_tasks(
                config.kind, policy.get_weights(), config.hidden,
                config.seed, iteration, config.workers,
                config.steps_per_iteration, config.episode_steps,
                config.episode_steps, config.gamma, config.lam)
            if use_fork:
                # max(2, workers): the pool treats workers<=1 as its
                # serial fallback, but backend="fork" must genuinely fork
                # (slots beyond len(tasks) stay idle).
                results = run_tasks(tasks, workers=max(2, config.workers),
                                    timeout=config.timeout)
            else:
                results = [task.run() for task in tasks]
            collect_wall = time.perf_counter() - t0

            data, episode_rewards, roll_stats = merge_rollouts(results)
            history.episode_rewards.extend(episode_rewards)
            update_stats = updater.update(data)

            last_stats = {
                "reward_mean": (float(np.mean(episode_rewards))
                                if episode_rewards else None),
                "episodes": roll_stats["episodes"],
                "steps": roll_stats["steps"],
                "steps_per_sec": roll_stats["steps"] / max(collect_wall, 1e-9),
                "worker_util": (roll_stats["worker_elapsed"]
                                / max(collect_wall * config.workers, 1e-9)),
                "entropy": update_stats["entropy"],
                "approx_kl": update_stats["approx_kl"],
                "pi_loss": update_stats["pi_loss"],
                "v_loss": update_stats["v_loss"],
                "clip_frac": update_stats["clip_frac"],
            }
            if logger is not None:
                logger.log_iteration(iteration, last_stats)
            if config.verbose:
                reward = last_stats["reward_mean"]
                print(f"[{config.kind}] it {iteration}/{config.iterations} "
                      f"reward={reward if reward is None else f'{reward:.3f}'} "
                      f"kl={last_stats['approx_kl']:.4f} "
                      f"steps/s={last_stats['steps_per_sec']:.0f}")

            if config.checkpoint_dir and _checkpoint_due(config, iteration):
                state = TrainState(
                    iteration=iteration, weights=policy.get_weights(),
                    adam_m=updater.optimizer.m, adam_v=updater.optimizer.v,
                    adam_t=updater.optimizer.t,
                    rng_state=rng.bit_generator.state,
                    episode_rewards=list(history.episode_rewards), meta=meta)
                path = save_checkpoint(config.checkpoint_dir, state)
                checkpoints.append(path)
                if logger is not None:
                    logger.log_checkpoint(iteration, path)

        promotion = None
        if config.promote:
            promotion = gate_and_promote(
                config.kind, policy.get_weights(),
                assets_dir=config.assets_dir, config=config.gate,
                workers=config.workers if use_fork else 1,
                timeout=config.timeout)
            if logger is not None:
                logger.log_promotion(config.iterations, promotion)
            if config.verbose:
                verdict = "promoted" if promotion.promoted else "kept incumbent"
                print(f"[{config.kind}] gate: {verdict} — {promotion.reason}")
    finally:
        if logger is not None:
            logger.close()

    return TrainRunResult(
        config=config, policy=policy, history=history,
        start_iteration=start_iteration,
        iterations_run=max(config.iterations - start_iteration, 0),
        checkpoints=checkpoints, log_path=config.log_path,
        promotion=promotion, last_stats=last_stats)


def _checkpoint_due(config: TrainRunConfig, iteration: int) -> bool:
    if iteration == config.iterations:
        return True
    return config.checkpoint_every > 0 and \
        iteration % config.checkpoint_every == 0
