"""Parallel rollout collection for the PPO training pipeline.

One iteration of training fans out over ``W`` rollout workers.  Each
worker is a picklable :class:`RolloutTask` executed through the generic
fork pool (:func:`repro.parallel.pool.run_tasks`): it rebuilds the
training environment and the policy from shipped weights, collects a
fixed number of steps, computes GAE advantages per trajectory with the
shared :class:`~repro.rl.rollout.RolloutBuffer`, and returns raw arrays
plus completed-episode rewards.

Determinism is the load-bearing property here.  Every stochastic stream
a worker touches is derived from ``SeedSequence([root_seed, iteration,
worker, stream])``, so a worker's rollout depends only on *(seed,
iteration, worker index, policy weights)* — never on execution order,
process boundaries, or how many iterations ran before.  Consequences:

- running the same tasks forked or in-process is bit-identical
  (``numpy`` is deterministic within one machine), and
- training resumed from a checkpoint at iteration ``k`` replays
  iterations ``k+1..N`` exactly as an uninterrupted run would.

Advantages come back *unnormalized*; the runner merges all workers'
arrays in worker order and normalizes once over the full batch, so the
merged update is independent of the execution backend by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..rl.policy import GaussianActorCritic
from ..rl.rollout import RolloutBuffer, normalize_advantages

#: stream discriminators for SeedSequence derivation
_ENV_STREAM = 0
_ACTION_STREAM = 1


def worker_rng(root_seed: int, iteration: int, worker: int,
               stream: int) -> np.random.Generator:
    """The deterministic Generator for one (iteration, worker, stream)."""
    return np.random.default_rng(
        np.random.SeedSequence([root_seed, iteration, worker, stream]))


@dataclass
class RolloutResult:
    """One worker's contribution to an iteration's batch."""

    obs: np.ndarray
    actions: np.ndarray
    logps: np.ndarray
    advantages: np.ndarray      # raw GAE — normalized after the merge
    returns: np.ndarray
    episode_rewards: list
    steps: int
    episodes: int
    elapsed: float              # worker wall-time, for utilization logging


@dataclass
class RolloutTask:
    """Picklable work unit: collect ``steps`` transitions for one worker.

    ``weights`` is the policy's ``get_weights()`` dict — numpy arrays
    pickle across the fork boundary, and in-process execution shares
    them read-only (inference never mutates).
    """

    kind: str
    weights: dict
    hidden: tuple
    root_seed: int
    iteration: int
    worker: int
    steps: int
    max_episode_steps: int
    episode_steps: int
    gamma: float
    lam: float

    @property
    def label(self) -> str:
        return (f"rollout {self.kind} it={self.iteration} "
                f"w={self.worker}")

    def run(self) -> RolloutResult:
        from ..training import make_training_env

        t0 = time.perf_counter()
        env = make_training_env(
            self.kind, seed=self.root_seed, episode_steps=self.episode_steps,
            rng=worker_rng(self.root_seed, self.iteration, self.worker,
                           _ENV_STREAM))
        policy = GaussianActorCritic(env.obs_dim, act_dim=env.act_dim,
                                     hidden=tuple(self.hidden))
        policy.set_weights(self.weights)
        action_rng = worker_rng(self.root_seed, self.iteration, self.worker,
                                _ACTION_STREAM)

        buf = RolloutBuffer(env.obs_dim, env.act_dim, self.steps,
                            self.gamma, self.lam)
        episode_rewards: list = []
        obs = env.reset()
        episode_reward = 0.0
        episode_len = 0
        episodes = 0
        while not buf.full:
            action, logp, value = policy.act(obs, action_rng)
            next_obs, reward, done, _ = env.step(action)
            buf.store(obs, action, reward, value, logp)
            episode_reward += reward
            episode_len += 1
            obs = next_obs
            timeout = episode_len >= self.max_episode_steps
            if done or timeout or buf.full:
                last_value = 0.0 if done else policy.value(obs)
                buf.finish_path(last_value)
                if done or timeout:
                    episode_rewards.append(episode_reward)
                    episodes += 1
                    obs = env.reset()
                    episode_reward = 0.0
                    episode_len = 0
        data = buf.get(normalize=False)
        return RolloutResult(
            obs=data["obs"], actions=data["actions"], logps=data["logps"],
            advantages=data["advantages"], returns=data["returns"],
            episode_rewards=episode_rewards, steps=self.steps,
            episodes=episodes, elapsed=time.perf_counter() - t0)


def build_rollout_tasks(kind: str, weights: dict, hidden: tuple,
                        root_seed: int, iteration: int, workers: int,
                        steps_per_iteration: int, max_episode_steps: int,
                        episode_steps: int, gamma: float,
                        lam: float) -> list[RolloutTask]:
    """Split one iteration's step budget across ``workers`` tasks.

    The split is deterministic (remainder steps go to the lowest worker
    indices), so a (seed, workers) pair fully determines the batch.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    base, extra = divmod(steps_per_iteration, workers)
    tasks = []
    for w in range(workers):
        steps = base + (1 if w < extra else 0)
        if steps == 0:
            continue
        tasks.append(RolloutTask(
            kind=kind, weights=weights, hidden=tuple(hidden),
            root_seed=root_seed, iteration=iteration, worker=w, steps=steps,
            max_episode_steps=max_episode_steps, episode_steps=episode_steps,
            gamma=gamma, lam=lam))
    return tasks


def merge_rollouts(results: list[RolloutResult]) -> tuple[dict, list, dict]:
    """Concatenate worker batches (worker order) into one update batch.

    Returns ``(data, episode_rewards, stats)`` where ``data`` has the
    advantages normalized over the *full* merged batch — the property
    that makes a W-worker update backend-independent.
    """
    if not results:
        raise ValueError("no rollout results to merge")
    data = {
        "obs": np.concatenate([r.obs for r in results]),
        "actions": np.concatenate([r.actions for r in results]),
        "logps": np.concatenate([r.logps for r in results]),
        "advantages": normalize_advantages(
            np.concatenate([r.advantages for r in results])),
        "returns": np.concatenate([r.returns for r in results]),
    }
    episode_rewards: list = []
    for r in results:
        episode_rewards.extend(r.episode_rewards)
    stats = {
        "steps": sum(r.steps for r in results),
        "episodes": sum(r.episodes for r in results),
        "worker_elapsed": sum(r.elapsed for r in results),
    }
    return data, episode_rewards, stats
