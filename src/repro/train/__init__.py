"""Parallel, checkpointed, eval-gated policy training.

The :mod:`repro.train` package turns the single-process training loop
of :mod:`repro.training` into a pipeline suitable for longer runs:

- :mod:`~repro.train.workers` — fork-based parallel rollout collection
  with per-(iteration, worker) derived random streams, bit-identical
  across serial and forked backends;
- :mod:`~repro.train.runner` — the iteration loop driving collection,
  the central PPO update, logging, and checkpointing;
- :mod:`~repro.train.checkpoint` — schema-versioned, atomically written
  checkpoints enabling exact ``--resume``;
- :mod:`~repro.train.gate` — the simnet evaluation panel that decides
  whether a finished policy replaces the shipped asset;
- :mod:`~repro.train.log` — structured JSONL training logs in the
  telemetry export schema.

Entry point: ``repro train <kind>`` (see ``repro train --help``) or
:func:`train_run` programmatically.
"""

from .checkpoint import (CHECKPOINT_SCHEMA_VERSION, CheckpointError,
                         TrainState, checkpoint_path, latest_checkpoint,
                         load_checkpoint, restore_optimizer,
                         restore_policy_weights, save_checkpoint)
from .gate import (PANEL_SCENARIOS, EvalTask, GateConfig, PanelScore,
                   PromotionDecision, evaluate_panel, gate_and_promote,
                   panel_scenarios, score_row)
from .log import TRAIN_EVENTS, TRAIN_SERIES, TrainLogger
from .runner import TrainRunConfig, TrainRunResult, train_run
from .workers import (RolloutResult, RolloutTask, build_rollout_tasks,
                      merge_rollouts, worker_rng)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION", "CheckpointError", "TrainState",
    "checkpoint_path", "latest_checkpoint", "load_checkpoint",
    "restore_optimizer", "restore_policy_weights", "save_checkpoint",
    "PANEL_SCENARIOS", "EvalTask", "GateConfig", "PanelScore",
    "PromotionDecision", "evaluate_panel", "gate_and_promote",
    "panel_scenarios", "score_row",
    "TRAIN_EVENTS", "TRAIN_SERIES", "TrainLogger",
    "TrainRunConfig", "TrainRunResult", "train_run",
    "RolloutResult", "RolloutTask", "build_rollout_tasks",
    "merge_rollouts", "worker_rng",
]
