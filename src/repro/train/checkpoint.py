"""Schema-versioned, crash-safe training checkpoints.

A checkpoint is everything needed to continue a training run exactly
where it stopped: policy weights (including ``log_std``), Adam moment
estimates and step counter, the central updater's Generator state, the
full episode-reward history, and a ``meta`` block describing the run
(spec kind, seed, worker count, step budget, network shape, and the
observation-normalization configuration).  Rollout randomness needs no
state here at all — worker streams are *derived* per (seed, iteration,
worker) (see :mod:`repro.train.workers`), which is what makes resumed
runs bit-identical to uninterrupted ones.

Files are ``.npz`` archives named ``ckpt-<iteration>.npz`` and written
atomically (tmp + ``os.replace``), mirroring the result cache's idiom:
a run killed mid-write leaves the previous checkpoint intact, never a
truncated archive.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import zipfile
from dataclasses import dataclass, field

import numpy as np

#: bump when the on-disk layout changes incompatibly
CHECKPOINT_SCHEMA_VERSION = 1

_CKPT_RE = re.compile(r"^ckpt-(\d+)\.npz$")


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or from another run."""


@dataclass
class TrainState:
    """In-memory form of one checkpoint."""

    iteration: int
    weights: dict
    adam_m: list
    adam_v: list
    adam_t: int
    rng_state: dict
    episode_rewards: list
    meta: dict = field(default_factory=dict)


def checkpoint_path(directory: str, iteration: int) -> str:
    return os.path.join(directory, f"ckpt-{iteration:06d}.npz")


def latest_checkpoint(directory: str) -> str | None:
    """Path of the highest-iteration checkpoint in ``directory`` (or None)."""
    best: tuple[int, str] | None = None
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return None
    for name in names:
        match = _CKPT_RE.match(name)
        if match is None:
            continue
        iteration = int(match.group(1))
        if best is None or iteration > best[0]:
            best = (iteration, os.path.join(directory, name))
    return best[1] if best else None


def save_checkpoint(directory: str, state: TrainState) -> str:
    """Atomically persist ``state``; returns the checkpoint's path."""
    os.makedirs(directory, exist_ok=True)
    path = checkpoint_path(directory, state.iteration)
    arrays: dict = {}
    for name, value in state.weights.items():
        arrays[f"weights__{name}"] = np.asarray(value)
    for i, m in enumerate(state.adam_m):
        arrays[f"adam_m__{i:03d}"] = np.asarray(m)
    for i, v in enumerate(state.adam_v):
        arrays[f"adam_v__{i:03d}"] = np.asarray(v)
    arrays["episode_rewards"] = np.asarray(state.episode_rewards, dtype=float)
    meta = dict(state.meta)
    meta["schema_version"] = CHECKPOINT_SCHEMA_VERSION
    meta["iteration"] = state.iteration
    meta["adam_t"] = state.adam_t
    meta["rng_state"] = state.rng_state
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8)

    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: str) -> TrainState:
    """Read one checkpoint, validating the schema version."""
    try:
        with np.load(path) as archive:
            data = {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint {path} does not exist") from None
    except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is corrupt or truncated "
            f"({type(exc).__name__}: {exc})") from exc
    if "meta_json" not in data:
        raise CheckpointError(f"checkpoint {path} lacks its meta block")
    meta = json.loads(bytes(data["meta_json"].tobytes()).decode())
    schema = meta.get("schema_version")
    if schema != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has schema v{schema}, this code reads "
            f"v{CHECKPOINT_SCHEMA_VERSION} — retrain or convert")
    weights = {name[len("weights__"):]: value
               for name, value in data.items() if name.startswith("weights__")}
    adam_m = [data[name] for name in sorted(data) if name.startswith("adam_m__")]
    adam_v = [data[name] for name in sorted(data) if name.startswith("adam_v__")]
    return TrainState(
        iteration=int(meta["iteration"]), weights=weights,
        adam_m=adam_m, adam_v=adam_v, adam_t=int(meta["adam_t"]),
        rng_state=meta["rng_state"],
        episode_rewards=list(data["episode_rewards"].tolist()),
        meta=meta)


def restore_policy_weights(policy, weights: dict) -> None:
    """Copy checkpointed weights into ``policy`` *in place*.

    In-place (vs. :meth:`GaussianActorCritic.set_weights`, which rebinds
    the arrays) so an Adam optimizer constructed over ``policy.params``
    keeps updating the live parameters after a restore.
    """
    policy.log_std[...] = np.asarray(weights["log_std"], dtype=float).reshape(
        policy.log_std.shape)
    for prefix, net in (("actor", policy.actor), ("critic", policy.critic)):
        for i in range(len(net.weights)):
            w = np.asarray(weights[f"{prefix}_w{i}"], dtype=float)
            b = np.asarray(weights[f"{prefix}_b{i}"], dtype=float)
            if w.shape != net.weights[i].shape:
                raise CheckpointError(
                    f"{prefix} layer {i} shape mismatch: checkpoint "
                    f"{w.shape} vs policy {net.weights[i].shape}")
            net.weights[i][...] = w
            net.biases[i][...] = b


def restore_optimizer(optimizer, state: TrainState) -> None:
    """Copy Adam moments and step count into ``optimizer`` in place."""
    if len(optimizer.m) != len(state.adam_m):
        raise CheckpointError(
            f"optimizer has {len(optimizer.m)} parameter slots, checkpoint "
            f"carries {len(state.adam_m)}")
    for slot, saved in zip(optimizer.m, state.adam_m):
        slot[...] = saved
    for slot, saved in zip(optimizer.v, state.adam_v):
        slot[...] = saved
    optimizer.t = state.adam_t
