"""Offline ideal combination (Fig. 18: C-Ideal / B-Ideal).

The paper's C-Ideal is built by running CUBIC and Clean-Slate Libra
*individually* on the same emulated network, computing the utility of
each over time, and taking the pointwise maximum — an offline combiner
with no interaction between the components.  Comparing Libra against it
shows the online framework loses little and sometimes wins (because the
two CCAs reset each other through the evaluation stage, Remark 10).
"""

from __future__ import annotations

import numpy as np

from ..simnet.endpoint import FlowStats
from .utility import UtilityParams, utility


def utility_series(stats: FlowStats, window: float = 1.0,
                   params: UtilityParams | None = None,
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Per-window utility of a finished flow.

    Throughput comes from the receiver-side delivered bins, the RTT
    gradient from a least-squares slope of the window's RTT samples, and
    loss from the sender's loss bins.
    """
    params = params or UtilityParams()
    if window <= 0:
        raise ValueError("window must be positive")
    duration = stats.duration
    n = max(int(duration / window), 1)
    bins_per_window = max(int(round(window / stats.bin_width)), 1)

    rtt = np.asarray(stats.rtt_samples, dtype=float)
    times, values = [], []
    for i in range(n):
        t0 = stats.start_time + i * window
        t1 = t0 + window
        b0, b1 = i * bins_per_window, (i + 1) * bins_per_window
        delivered = sum(stats.delivered_bins[b0:min(b1, len(stats.delivered_bins))])
        lost = sum(stats.lost_bins[b0:min(b1, len(stats.lost_bins))])
        throughput_mbps = delivered * 8.0 / window / 1e6
        sent = delivered + lost
        loss_rate = lost / sent if sent > 0 else 0.0
        gradient = 0.0
        if rtt.size:
            mask = (rtt[:, 0] >= t0) & (rtt[:, 0] < t1)
            seg = rtt[mask]
            if seg.shape[0] >= 2:
                t = seg[:, 0] - seg[:, 0].mean()
                r = seg[:, 1] - seg[:, 1].mean()
                den = float((t ** 2).sum())
                if den > 0:
                    gradient = float((t * r).sum() / den)
        times.append(t0 + window / 2.0)
        values.append(utility(throughput_mbps, gradient, loss_rate, params))
    return np.asarray(times), np.asarray(values)


def ideal_series(component_stats: list[FlowStats], window: float = 1.0,
                 params: UtilityParams | None = None,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Pointwise-max utility over individually-run component flows."""
    if not component_stats:
        raise ValueError("need at least one component run")
    series = [utility_series(s, window, params) for s in component_stats]
    n = min(len(v) for _, v in series)
    times = series[0][0][:n]
    stacked = np.vstack([v[:n] for _, v in series])
    return times, stacked.max(axis=0)


def normalize_utilities(*series: np.ndarray) -> list[np.ndarray]:
    """Scale several utility series jointly into [0, 1] (Fig. 18's y-axis)."""
    merged = np.concatenate(series)
    lo, hi = float(merged.min()), float(merged.max())
    span = hi - lo if hi > lo else 1.0
    return [(s - lo) / span for s in series]
