"""Libra framework configuration (Sec. 4.3, Sec. 7, Appendix B)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..env.features import FeatureSet, STATE_SETS
from ..telemetry import TelemetryConfig
from .utility import DEFAULT_PARAMS, UtilityParams


@dataclass
class LibraConfig:
    """Tunable parameters of the three-stage control cycle.

    Defaults follow the paper: for CUBIC-like classic CCAs the
    exploration and exploitation stages last 1 estimated RTT each; for
    BBR they last 3 RTTs (covering the 1.25x / 0.75x / 1x probing
    phases).  Each evaluation interval (EI) lasts 0.5 estimated RTT, and
    the early-exit threshold th1 is 0.3x the base sending rate.
    """

    utility: UtilityParams = DEFAULT_PARAMS
    explore_rtts: float = 1.0
    exploit_rtts: float = 1.0
    ei_rtts: float = 0.5
    th1_fraction: float = 0.3
    #: RL decision-making interval, in estimated RTTs
    rl_interval_rtts: float = 1.0
    rl_history: int = 8
    rl_feature_set: FeatureSet = field(default_factory=lambda: STATE_SETS["libra"])
    #: clip for the RL MIMD exponent (x_rl multiplied by 2^a per MI)
    rl_action_scale: float = 1.0
    #: sample the policy stochastically (Orca-style) or act on the mean
    rl_deterministic: bool = True
    #: initial slow-start passthrough before the first control cycle, in RTTs
    startup_rtts: float = 8.0
    #: evaluation order: "lower-first" (the paper's side-effect-minimizing
    #: choice, Sec. 4.1/Fig. 4) or "higher-first" (the ablation)
    eval_order: str = "lower-first"
    # -- graceful degradation (extends the Sec. 3 no-ACK handling) --------
    #: no-ACK watchdog: declare an outage after this many estimated RTTs
    #: without any acknowledgement (RTO-style, floored at watchdog_min)
    watchdog_rtts: float = 8.0
    #: absolute floor of the watchdog timeout, seconds
    watchdog_min: float = 0.5
    #: first RL-arm disable period after a policy fault, seconds
    #: (doubles per consecutive fault up to rl_backoff_max)
    rl_backoff_initial: float = 1.0
    rl_backoff_max: float = 30.0
    #: limits of the controller's decision recorder — the stage log that
    #: backs :attr:`LibraController.decision_log` plus the stage/verdict/
    #: watchdog event channels.  ``max_events_per_kind`` (default 100 000)
    #: replaces the old hard-coded ``_log`` cap; events past it are
    #: counted, not stored.
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    def __post_init__(self) -> None:
        if self.explore_rtts <= 0 or self.exploit_rtts <= 0 or self.ei_rtts <= 0:
            raise ValueError("stage durations must be positive")
        if not 0.0 < self.th1_fraction < 10.0:
            raise ValueError("th1_fraction out of range")
        if self.rl_history < 1:
            raise ValueError("rl_history must be >= 1")
        if self.eval_order not in ("lower-first", "higher-first"):
            raise ValueError("eval_order must be 'lower-first' or 'higher-first'")
        if self.watchdog_rtts <= 0 or self.watchdog_min <= 0:
            raise ValueError("watchdog parameters must be positive")
        if self.rl_backoff_initial <= 0 or \
                self.rl_backoff_max < self.rl_backoff_initial:
            raise ValueError("invalid RL backoff range")


def cubic_config(**overrides) -> LibraConfig:
    """C-Libra defaults: [1 RTT, 0.5 RTT EIs, 1 RTT] stages."""
    return LibraConfig(**overrides)


def bbr_config(**overrides) -> LibraConfig:
    """B-Libra defaults: [3 RTT, 0.5 RTT EIs, 3 RTT] stages (Sec. 5 Setup)."""
    params = {"explore_rtts": 3.0, "exploit_rtts": 3.0}
    params.update(overrides)
    return LibraConfig(**params)
