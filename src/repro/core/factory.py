"""Factories for Libra variants (C-Libra, B-Libra, CL-Libra)."""

from __future__ import annotations

from ..cca.bbr import Bbr
from ..cca.cubic import Cubic
from .clean_slate import CleanSlateLibra
from .config import LibraConfig, bbr_config, cubic_config
from .libra import LibraController
from .utility import PRESETS, UtilityParams


def _resolve_policy(policy):
    """``policy='pretrained'`` loads the bundled Libra policy."""
    if policy == "pretrained":
        from ..assets import load_policy
        return load_policy("libra")
    return policy


def _preset(utility_preset: str | UtilityParams | None) -> UtilityParams | None:
    if utility_preset is None or isinstance(utility_preset, UtilityParams):
        return utility_preset
    key = utility_preset.lower()
    if key not in PRESETS:
        raise KeyError(f"unknown utility preset {utility_preset!r}; "
                       f"choose from {sorted(PRESETS)}")
    return PRESETS[key]


def make_c_libra(policy="pretrained",
                 utility_preset: str | UtilityParams | None = None,
                 config: LibraConfig | None = None,
                 seed: int = 0) -> LibraController:
    """C-Libra: Libra with CUBIC as the underlying classic CCA."""
    cfg = config or cubic_config()
    params = _preset(utility_preset)
    if params is not None:
        cfg.utility = params
    controller = LibraController(Cubic(), _resolve_policy(policy), cfg, seed)
    controller.name = "c-libra"
    return controller


def make_b_libra(policy="pretrained",
                 utility_preset: str | UtilityParams | None = None,
                 config: LibraConfig | None = None,
                 seed: int = 0) -> LibraController:
    """B-Libra: Libra with BBR (3-RTT exploration/exploitation stages)."""
    cfg = config or bbr_config()
    params = _preset(utility_preset)
    if params is not None:
        cfg.utility = params
    controller = LibraController(Bbr(), _resolve_policy(policy), cfg, seed)
    controller.name = "b-libra"
    return controller


def make_libra(classic_name: str, policy="pretrained",
               utility_preset: str | UtilityParams | None = None,
               config: LibraConfig | None = None,
               seed: int = 0) -> LibraController:
    """Libra over any registered classic CCA (Sec. 7: the CUBIC/BBR
    parameter guidance extends to Westwood, Illinois, ...)."""
    from ..cca import CLASSIC_CCAS

    key = classic_name.lower()
    if key not in CLASSIC_CCAS:
        raise KeyError(f"unknown classic CCA {classic_name!r}; "
                       f"choose from {sorted(CLASSIC_CCAS)}")
    cfg = config or (bbr_config() if key == "bbr" else cubic_config())
    params = _preset(utility_preset)
    if params is not None:
        cfg.utility = params
    controller = LibraController(CLASSIC_CCAS[key](), _resolve_policy(policy),
                                 cfg, seed)
    controller.name = f"{key[0]}-libra" if key in ("cubic", "bbr") \
        else f"libra-{key}"
    return controller


def make_clean_slate(policy="pretrained",
                     config: LibraConfig | None = None,
                     seed: int = 0) -> CleanSlateLibra:
    """CL-Libra: the framework without classic-CCA wisdom."""
    return CleanSlateLibra(_resolve_policy(policy), config or cubic_config(),
                           seed)
