"""Libra's utility function (paper Eq. 1) and preference presets.

``u(x) = alpha * x^t - beta * x * max(0, dRTT/dt) - gamma * x * L``

with 0 < t < 1 and alpha, beta, gamma > 0.  Rates are expressed in Mbps
(the convention of the PCC family, from which the default parameters
t = 0.9, alpha = 1, beta = 900, gamma = 11.35 are taken — Sec. 5 Setup).

Strict concavity in the sender's own rate (guaranteed by 0 < t < 1)
gives the unique fair Nash equilibrium of Theorem 4.1; see
:mod:`repro.core.equilibrium` for the executable version of that
analysis and the property tests that pin it down.

The flexibility experiments (Fig. 11) scale alpha (throughput-oriented
presets Th-1/Th-2) or beta (latency-oriented presets La-1/La-2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..sanitize import invariants as _sanitize


@dataclass(frozen=True)
class UtilityParams:
    """Preference parameters of Eq. 1.

    ``gradient_scale`` calibrates the measured RTT slope to the regime
    beta = 900 was tuned for.  PCC's coefficients assume the small
    per-ACK RTT slopes of kernel/testbed measurements; this simulator's
    per-window least-squares slopes on trace-driven links are ~two
    orders of magnitude larger, which would make the delay term
    lexicographically dominant and hide the alpha/beta preference
    trade-off of Fig. 11.  The default rescales slopes so the penalty
    *competes* with the throughput term exactly as in the paper
    (substitution documented in DESIGN.md / EXPERIMENTS.md).
    """

    t: float = 0.9
    alpha: float = 1.0
    beta: float = 900.0
    gamma: float = 11.35
    gradient_scale: float = 1.0 / 300.0

    def __post_init__(self) -> None:
        if not 0.0 < self.t < 1.0:
            raise ValueError("t must be in (0, 1) for strict concavity")
        if self.alpha <= 0 or self.beta <= 0 or self.gamma <= 0:
            raise ValueError("alpha, beta, gamma must be positive")

    def scaled(self, alpha_mult: float = 1.0, beta_mult: float = 1.0,
               gamma_mult: float = 1.0) -> "UtilityParams":
        return replace(self, alpha=self.alpha * alpha_mult,
                       beta=self.beta * beta_mult,
                       gamma=self.gamma * gamma_mult)


DEFAULT_PARAMS = UtilityParams()

#: Fig. 11's preference presets
PRESETS: dict[str, UtilityParams] = {
    "default": DEFAULT_PARAMS,
    "th-1": DEFAULT_PARAMS.scaled(alpha_mult=2.0),
    "th-2": DEFAULT_PARAMS.scaled(alpha_mult=3.0),
    "la-1": DEFAULT_PARAMS.scaled(beta_mult=2.0),
    "la-2": DEFAULT_PARAMS.scaled(beta_mult=3.0),
}


def utility(rate_mbps: float, rtt_gradient: float, loss_rate: float,
            params: UtilityParams = DEFAULT_PARAMS) -> float:
    """Evaluate Eq. 1 for a measured (rate, RTT gradient, loss) triple.

    ``rtt_gradient`` is d(RTT)/dt in seconds-per-second; only positive
    gradients (growing queues) are penalized.
    """
    if rate_mbps < 0:
        raise ValueError("rate must be non-negative")
    x = rate_mbps
    scaled_gradient = max(0.0, rtt_gradient) * params.gradient_scale
    value = (params.alpha * x ** params.t
             - params.beta * x * scaled_gradient
             - params.gamma * x * loss_rate)
    if _sanitize.ACTIVE is not None:
        _sanitize.ACTIVE.check_utility(value, rate_mbps, rtt_gradient,
                                       loss_rate)
    return value


def utility_derivative(rate_mbps: float, rtt_gradient: float, loss_rate: float,
                       params: UtilityParams = DEFAULT_PARAMS) -> float:
    """du/dx at fixed gradient/loss — used by PCC-style gradient ascent."""
    if rate_mbps <= 0:
        return float("inf")
    return (params.alpha * params.t * rate_mbps ** (params.t - 1.0)
            - params.beta * max(0.0, rtt_gradient) * params.gradient_scale
            - params.gamma * loss_rate)
