"""Libra core: utility function, equilibrium analysis, the three-stage
controller, and factories for its variants."""

from .clean_slate import CleanSlateLibra
from .config import LibraConfig, bbr_config, cubic_config
from .equilibrium import (best_response, droptail_gradient, droptail_loss,
                          game_utility, is_concave_in_own_rate,
                          symmetric_equilibrium)
from .factory import make_b_libra, make_c_libra, make_clean_slate, make_libra
from .libra import LibraController
from .utility import (DEFAULT_PARAMS, PRESETS, UtilityParams, utility,
                      utility_derivative)

__all__ = [
    "CleanSlateLibra", "DEFAULT_PARAMS", "LibraConfig", "LibraController",
    "PRESETS", "UtilityParams", "bbr_config", "best_response", "cubic_config",
    "droptail_gradient", "droptail_loss", "game_utility",
    "is_concave_in_own_rate", "make_b_libra", "make_c_libra",
    "make_clean_slate", "make_libra", "symmetric_equilibrium", "utility",
    "utility_derivative",
]
