"""Executable form of the paper's convergence/fairness analysis (Appendix A).

Under a droptail queue with ``n`` senders sharing capacity ``C``
(all rates in Mbps), when the total sending rate S >= C:

- loss rate         L = 1 - C/S,
- RTT gradient      dRTT/dt = (S - C)/C,

so sender ``i``'s utility becomes a closed-form function of the rate
vector.  These helpers evaluate that game, verify concavity /
social-concavity numerically, and locate the symmetric Nash equilibrium
— the quantities Theorem 4.1 and Lemmas A.1-A.4 reason about.  The
property-based tests in ``tests/core/test_equilibrium.py`` check the
lemmas on sampled instances.
"""

from __future__ import annotations

import numpy as np

from .utility import DEFAULT_PARAMS, UtilityParams


def droptail_loss(total_rate: float, capacity: float) -> float:
    """L = max(0, 1 - C/S) under a droptail queue (Appendix A.1)."""
    if total_rate <= 0:
        return 0.0
    return max(0.0, 1.0 - capacity / total_rate)


def droptail_gradient(total_rate: float, capacity: float) -> float:
    """dRTT/dt = max(0, (S - C)/C) under a droptail queue (Appendix A.1)."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    return max(0.0, (total_rate - capacity) / capacity)


def game_utility(rates_mbps, index: int, capacity_mbps: float,
                 params: UtilityParams = DEFAULT_PARAMS) -> float:
    """Sender ``index``'s utility given everyone's rates (Appendix A.1)."""
    rates = np.asarray(rates_mbps, dtype=float)
    if np.any(rates < 0):
        raise ValueError("rates must be non-negative")
    total = float(rates.sum())
    x = float(rates[index])
    return (params.alpha * x ** params.t
            - params.beta * x * droptail_gradient(total, capacity_mbps)
            - params.gamma * x * droptail_loss(total, capacity_mbps))


def best_response(rates_mbps, index: int, capacity_mbps: float,
                  params: UtilityParams = DEFAULT_PARAMS,
                  grid: int = 4000, max_rate: float | None = None) -> float:
    """Numerically maximize sender ``index``'s utility over its own rate."""
    rates = np.asarray(rates_mbps, dtype=float).copy()
    hi = max_rate if max_rate is not None else 3.0 * capacity_mbps
    candidates = np.linspace(1e-3, hi, grid)
    best_x, best_u = 0.0, -np.inf
    for x in candidates:
        rates[index] = x
        u = game_utility(rates, index, capacity_mbps, params)
        if u > best_u:
            best_u, best_x = u, float(x)
    return best_x


def symmetric_equilibrium(n: int, capacity_mbps: float,
                          params: UtilityParams = DEFAULT_PARAMS,
                          iterations: int = 60) -> float:
    """Find the symmetric fixed point x* with best-response dynamics.

    Lemma A.2/A.3: the game has a unique equilibrium and it is the fair
    share — every sender sends x* with n*x* >= C.
    """
    if n < 1:
        raise ValueError("need at least one sender")
    x = capacity_mbps / n
    for _ in range(iterations):
        rates = np.full(n, x)
        response = best_response(rates, 0, capacity_mbps, params)
        x = 0.5 * x + 0.5 * response
    return float(x)


def is_concave_in_own_rate(capacity_mbps: float, others_total: float,
                           params: UtilityParams = DEFAULT_PARAMS,
                           grid: int = 300) -> bool:
    """Numerical check of Lemma A.2 part (1): u_i concave in x_i."""
    xs = np.linspace(0.5, 2.0 * capacity_mbps, grid)
    us = []
    for x in xs:
        rates = np.array([x, others_total])
        us.append(game_utility(rates, 0, capacity_mbps, params))
    us = np.asarray(us)
    second_diff = us[2:] - 2.0 * us[1:-1] + us[:-2]
    return bool(np.all(second_diff <= 1e-6 * max(1.0, np.abs(us).max())))
