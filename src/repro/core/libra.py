"""Libra: the three-stage combined congestion control framework (Alg. 1).

Each control cycle:

1. **Exploration** — the classic CCA drives the sending rate per-ACK,
   starting from the base rate ``x_prev`` decided last cycle, while the
   DRL agent (Alg. 2) updates its backup proposal ``x_rl`` once per
   monitor interval.  The stage ends after ``k`` estimated RTTs, or early
   when ``|x_cl - x_rl| >= th1`` (both conditions of Fig. 3).
2. **Evaluation** — the two candidate rates are each applied for one
   evaluation interval, *lower rate first* (Sec. 4.1's side-effect
   analysis, Fig. 4).  The DRL agent is not invoked here, which is where
   Libra's overhead savings come from (Remark 5).
3. **Exploitation** — ``x_prev`` is replayed while the candidates'
   feedback arrives.  At the cycle boundary the rate with the highest
   utility (Eq. 1) among ``{x_prev, x_cl, x_rl}`` becomes the new base
   rate.

No-ACK handling follows Sec. 3: an exploration stage without feedback
keeps ``x_rl`` unchanged; a candidate window without feedback cannot be
evaluated, so the cycle falls back to ``x_prev``.

Two graceful-degradation mechanisms extend that baseline for the
pathological conditions of the stress experiments:

- **Policy-fault guard** — DRL inference is wrapped; a raised exception
  or a non-finite state/action disables the RL arm (logged once) and
  re-enables it with exponential backoff
  (``rl_backoff_initial`` … ``rl_backoff_max``).  While disabled, Libra
  degrades to the classic-vs-``x_prev`` contest, i.e. behaviour stays
  near the classic CCA exactly as Remark 7 promises.
- **No-ACK watchdog** — an RTO-style outage detector: when no ACK
  arrives for ``watchdog_rtts`` estimated RTTs the controller freezes
  the stage machine, remembers ``x_prev`` and drops to a conservative
  probe rate; the first ACK after the outage restores ``x_prev`` and
  restarts a fresh cycle, so recovery is immediate once capacity
  returns.
"""

from __future__ import annotations

import logging

import numpy as np

log = logging.getLogger(__name__)

from ..cca.base import Controller
from ..env.features import StateBuilder
from ..env.bridge import measurement_from_report
from ..simnet.packet import AckSample, IntervalReport, LossSample
from ..simnet.windows import AckWindow
from ..telemetry import Recorder
from .config import LibraConfig
from .utility import utility

MIN_RATE = 64_000.0
MAX_RATE = 2e9
#: per-cycle clamp on how far x_rl may drift from the base rate
RL_DRIFT_LIMIT = 8.0

STARTUP, EXPLORE, EVAL_LOW, EVAL_HIGH, EXPLOIT = range(5)
STAGE_NAMES = {STARTUP: "startup", EXPLORE: "explore", EVAL_LOW: "eval-low",
               EVAL_HIGH: "eval-high", EXPLOIT: "exploit"}


class LibraController(Controller):
    """The combined framework: classic CCA + DRL agent + utility arbiter.

    Parameters
    ----------
    classic:
        The underlying classic CCA (must provide ``adopt_rate`` and
        ``rate_estimate`` — CUBIC for C-Libra, BBR for B-Libra).
    policy:
        A trained :class:`~repro.rl.policy.GaussianActorCritic`, or
        ``None`` to run without an RL component (the classic CCA then
        competes only against ``x_prev``).
    config:
        Stage durations, threshold, utility preferences.
    """

    name = "libra"

    def __init__(self, classic: Controller, policy=None,
                 config: LibraConfig | None = None, seed: int = 0):
        super().__init__()
        self.classic = classic
        self.policy = policy
        self.config = config or LibraConfig()
        self.rng = np.random.default_rng(seed)
        # Share one meter so classic per-ACK work is attributed to Libra.
        self.classic.meter = self.meter

        self.stage = STARTUP
        self.stage_start = 0.0
        self.x_prev = MIN_RATE
        self.x_rl = MIN_RATE
        self.x_cl = MIN_RATE
        self._eval_lo = MIN_RATE
        self._eval_hi = MIN_RATE
        self._ei_duration = 0.05
        self._lo_is_cl = True

        self.srtt = 0.0
        self.min_rtt = float("inf")
        self._start_time = 0.0
        self._windows: dict[str, AckWindow] = {}

        self.builder = StateBuilder(self.config.rl_feature_set,
                                    self.config.rl_history)
        #: Fig. 17 bookkeeping — how often each candidate wins a cycle
        self.applied_counts = {"prev": 0, "rl": 0, "cl": 0}
        self.cycles = 0
        self._rl_updated = False
        self._last_winner = "cl"
        #: decision recorder: stage transitions, per-cycle utility
        #: verdicts, watchdog and RL-arm events.  Always on (events fire
        #: at cycle frequency, not per packet); its caps come from the
        #: ``config.telemetry`` knob.  When the run is traced the
        #: Dumbbell redirects it into the run-wide recorder via
        #: :meth:`attach_telemetry`, so the events land in the
        #: :class:`~repro.telemetry.FlowTelemetry` artifact.
        self._recorder = Recorder(self.config.telemetry)
        # -- graceful degradation state ---------------------------------
        self._last_ack_time = 0.0
        self._outage = False
        self._saved_x_prev = MIN_RATE
        #: number of no-ACK outages the watchdog declared
        self.outage_count = 0
        self._rl_consecutive_faults = 0
        self._rl_disabled_until = 0.0
        self._rl_fault_logged = False
        #: number of RL inference faults absorbed (exceptions/non-finite)
        self.rl_fault_count = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self, now: float, mss: int) -> None:
        super().start(now, mss)
        self.classic.start(now, mss)
        self._start_time = now
        self._last_ack_time = now
        self.stage = STARTUP
        self.stage_start = now

    def attach_telemetry(self, recorder, flow_id: int = 0) -> None:
        """Redirect the decision recorder into the run-wide one."""
        super().attach_telemetry(recorder, flow_id)
        self.classic.attach_telemetry(recorder, flow_id)
        if recorder is not self._recorder:
            recorder.adopt(self._recorder)
            self._recorder = recorder

    @property
    def decision_log(self) -> list[tuple[float, str, float]]:
        """Read-only ``(time, stage, rate)`` view of the stage events.

        Backward-compatible shape of the pre-telemetry ad-hoc list; the
        events themselves (with base rate and cycle index) live in the
        recorder's ``libra.stage`` channel.
        """
        return [(e.t, e.fields["stage"], e.fields["rate"])
                for e in self._recorder.events("libra.stage")]

    # -- helpers -----------------------------------------------------------

    def _srtt(self) -> float:
        return self.srtt if self.srtt > 0 else 0.1

    def _stage_duration(self) -> float:
        cfg = self.config
        srtt = self._srtt()
        if self.stage == STARTUP:
            return cfg.startup_rtts * srtt
        if self.stage == EXPLORE:
            return cfg.explore_rtts * srtt
        if self.stage in (EVAL_LOW, EVAL_HIGH):
            return self._ei_duration
        return cfg.exploit_rtts * srtt

    def _ei_length(self, rate: float) -> float:
        """EI duration: 0.5 est. RTT (Sec. 7), stretched at low rates so
        the window carries enough packets (>= 4) for a utility sample."""
        base = self.config.ei_rtts * self._srtt()
        packet_time = self.mss * 8.0 / max(rate, MIN_RATE)
        return max(base, 4.0 * packet_time)

    def _clamp(self, rate: float) -> float:
        lo = max(MIN_RATE, self.x_prev / RL_DRIFT_LIMIT)
        hi = min(MAX_RATE, self.x_prev * RL_DRIFT_LIMIT)
        return float(min(max(rate, lo), hi))

    # -- stage machine -----------------------------------------------------

    def _advance(self, now: float) -> None:
        """Run stage transitions due at time ``now``."""
        if self._outage:
            return  # stage machine is frozen until feedback returns
        while now - self.stage_start >= self._stage_duration():
            boundary = self.stage_start + self._stage_duration()
            if self.stage == STARTUP:
                self._finish_startup(boundary)
            elif self.stage == EXPLORE:
                self._enter_evaluation(boundary)
            elif self.stage == EVAL_LOW:
                self._enter_eval_high(boundary)
            elif self.stage == EVAL_HIGH:
                self._enter_exploitation(boundary)
            else:
                self._finish_cycle(boundary)

    def _log(self, now: float) -> None:
        self._recorder.event("libra.stage", now,
                             stage=STAGE_NAMES[self.stage],
                             rate=self.pacing_rate(), base=self.x_prev,
                             cycle=self.cycles)

    def _finish_startup(self, now: float) -> None:
        self.x_prev = self._rate_floor(self.classic.rate_estimate(self._srtt()))
        self.x_rl = self.x_prev
        self._begin_cycle(now)

    def _begin_cycle(self, now: float) -> None:
        self.stage = EXPLORE
        self.stage_start = now
        self.cycles += 1
        self._windows = {"prev": AckWindow(now)}
        if self._last_winner != "cl":
            self.classic.adopt_rate(self.x_prev, self._srtt())
        self.x_cl = self._rate_floor(self.classic.rate_estimate(self._srtt()))
        # Re-anchor the RL proposal to the base rate unless the RL rate
        # just won: Alg. 2's agent proposes *adjustments* from the
        # current operating point, so a losing proposal must not persist
        # across cycles (it would freeze if exploration exits early).
        if self._last_winner != "rl":
            self.x_rl = self.x_prev
        self._rl_updated = False
        self._log(now)

    def _enter_evaluation(self, now: float) -> None:
        self._windows["prev"].end = now
        lo, hi = sorted((self.x_cl, self.x_rl))
        if self.config.eval_order == "higher-first":
            # Ablation of Sec. 4.1: evaluating the higher rate first lets
            # its queue pollute the lower candidate's measurement (Fig. 4).
            lo, hi = hi, lo
        self._eval_lo, self._eval_hi = lo, hi
        self._lo_is_cl = (self.x_cl == lo)
        self.stage = EVAL_LOW
        self.stage_start = now
        self._ei_duration = self._ei_length(self._eval_lo)
        window = AckWindow(now)
        window.end = now + self._ei_duration
        self._windows["lo"] = window
        self._log(now)

    def _enter_eval_high(self, now: float) -> None:
        self.stage = EVAL_HIGH
        self.stage_start = now
        self._ei_duration = self._ei_length(self._eval_hi)
        window = AckWindow(now)
        window.end = now + self._ei_duration
        self._windows["hi"] = window
        self._log(now)

    def _enter_exploitation(self, now: float) -> None:
        self.stage = EXPLOIT
        self.stage_start = now
        self._log(now)

    def _finish_cycle(self, now: float) -> None:
        utilities = {
            "prev": self._window_utility("prev"),
            "cl": self._window_utility("lo" if self._lo_is_cl else "hi"),
            "rl": self._window_utility("hi" if self._lo_is_cl else "lo"),
        }
        rates = {"prev": self.x_prev, "cl": self.x_cl, "rl": self.x_rl}
        scored = {k: u for k, u in utilities.items() if u is not None}
        if scored:
            winner = max(scored, key=scored.get)
        else:
            winner = "prev"  # no feedback at all: repeat the base rate
        self.x_prev = self._rate_floor(rates[winner])
        self._recorder.event("libra.verdict", now, cycle=self.cycles,
                             winner=winner, rates=dict(rates),
                             utilities=dict(utilities),
                             new_base=self.x_prev)
        self.applied_counts[winner] += 1
        self._last_winner = winner
        self._begin_cycle(now)

    def _window_utility(self, key: str) -> float | None:
        window = self._windows.get(key)
        if window is None or window.end is None:
            return None
        if window.acked < 3:
            return None  # too few samples for a meaningful utility
        if window.end - window.start < 0.2 * self._srtt():
            return None  # window too short (early-exit exploration)
        measured = window.measure()
        if measured is None:
            return None
        throughput, gradient, loss_rate = measured
        return utility(throughput / 1e6, gradient, loss_rate,
                       self.config.utility)

    @staticmethod
    def _rate_floor(rate: float) -> float:
        return float(min(max(rate, MIN_RATE), MAX_RATE))

    # -- feedback ---------------------------------------------------------

    def on_ack(self, ack: AckSample) -> None:
        self.srtt = ack.srtt
        self.min_rtt = min(self.min_rtt, ack.min_rtt)
        self._last_ack_time = ack.now
        if self._outage:
            self._recover_from_outage(ack.now)
        self._advance(ack.now)
        for window in self._windows.values():
            if window.contains(ack.sent_time):
                window.add_ack(ack)
        if self.stage in (STARTUP, EXPLORE):
            self.classic.on_ack(ack)
            if self.stage == EXPLORE:
                self.x_cl = self._rate_floor(
                    self.classic.rate_estimate(self._srtt()))
                self._maybe_exit_explore(ack.now)

    def on_loss(self, loss: LossSample) -> None:
        self._advance(loss.now)
        for window in self._windows.values():
            if window.contains(loss.sent_time):
                window.add_loss(loss)
        if self.stage in (STARTUP, EXPLORE):
            self.classic.on_loss(loss)

    def _maybe_exit_explore(self, now: float) -> None:
        if self.policy is not None and not self._rl_updated:
            return  # wait for at least one fresh RL proposal this cycle
        threshold = self.config.th1_fraction * self.x_prev
        if abs(self.x_cl - self.x_rl) >= threshold:
            self._enter_evaluation(now)

    # -- RL component (Alg. 2) ------------------------------------------------

    def interval(self) -> float:
        return max(self.config.rl_interval_rtts * self._srtt(), 0.005)

    def on_interval(self, report: IntervalReport) -> None:
        self._check_watchdog(report.now)
        self._advance(report.now)
        min_rtt = self.min_rtt if self.min_rtt < float("inf") else self._srtt()
        measurement = measurement_from_report(report, self.x_rl, min_rtt)
        self.builder.push(measurement)
        if self.stage != EXPLORE or self.policy is None:
            return
        if not report.has_feedback:
            return  # Sec. 3: no ACKs in exploration -> keep x_rl unchanged
        if report.now < self._rl_disabled_until:
            return  # RL arm disabled after a fault; backoff still running
        try:
            state = self.builder.state()
            if not np.all(np.isfinite(state)):
                raise FloatingPointError("non-finite policy input")
            action, _, _ = self.policy.act(
                state, self.rng, deterministic=self.config.rl_deterministic)
            a = float(action[0])
            if not np.isfinite(a):
                raise FloatingPointError(f"non-finite policy action {a!r}")
        except Exception as exc:  # noqa: BLE001 — any policy fault degrades
            self._disable_rl_arm(report.now, exc)
            return
        if self._rl_consecutive_faults:
            # First successful inference after a fault bench: recovered.
            self._recorder.event("libra.rl_unbench", report.now,
                                 faults_absorbed=self._rl_consecutive_faults)
        self._rl_consecutive_faults = 0
        self.meter.count("nn_forward", self.policy.actor.flops_per_forward)
        a = float(np.clip(a, -self.config.rl_action_scale,
                          self.config.rl_action_scale))
        self.x_rl = self._clamp(self.x_rl * 2.0 ** a)
        self._rl_updated = True
        self._maybe_exit_explore(report.now)

    # -- graceful degradation ---------------------------------------------

    def rl_arm_disabled(self, now: float) -> bool:
        """Whether the RL arm is currently benched by the fault backoff."""
        return now < self._rl_disabled_until

    def _disable_rl_arm(self, now: float, exc: Exception) -> None:
        """Bench the RL arm; re-enable with exponential backoff."""
        self.rl_fault_count += 1
        self._rl_consecutive_faults += 1
        backoff = min(
            self.config.rl_backoff_initial
            * 2.0 ** (self._rl_consecutive_faults - 1),
            self.config.rl_backoff_max)
        self._rl_disabled_until = now + backoff
        self._recorder.event("libra.rl_bench", now,
                             fault=repr(exc), backoff=backoff,
                             until=self._rl_disabled_until,
                             consecutive=self._rl_consecutive_faults)
        if not self._rl_fault_logged:
            self._rl_fault_logged = True
            log.warning(
                "libra: RL inference failed (%s); disabling the RL arm for "
                "%.2fs (exponential backoff; further faults logged at DEBUG)",
                exc, backoff)
        else:
            log.debug("libra: RL fault #%d (%s); arm disabled for %.2fs",
                      self.rl_fault_count, exc, backoff)

    def _watchdog_timeout(self) -> float:
        """RTO-style no-ACK bound: generous multiples of srtt, floored so
        low-rate flows (one MSS can take >100 ms at the probe floor) do
        not self-trigger."""
        packet_time = self.mss * 8.0 / max(self.pacing_rate(), MIN_RATE)
        return max(self.config.watchdog_rtts * self._srtt(),
                   self.config.watchdog_min, 4.0 * packet_time)

    def _check_watchdog(self, now: float) -> None:
        if self._outage or self.stage == STARTUP:
            return
        if now - self._last_ack_time < self._watchdog_timeout():
            return
        self._outage = True
        self.outage_count += 1
        self._saved_x_prev = self.x_prev
        self._recorder.event("libra.watchdog", now, phase="freeze",
                             last_ack=self._last_ack_time,
                             saved_base=self._saved_x_prev)
        self._log(now)
        log.debug("libra: no-ACK watchdog fired at t=%.3f (last ACK %.3f); "
                  "probing conservatively", now, self._last_ack_time)

    def _recover_from_outage(self, now: float) -> None:
        """First ACK after an outage: restore the pre-outage base rate."""
        self._outage = False
        self.x_prev = self._rate_floor(self._saved_x_prev)
        self._recorder.event("libra.watchdog", now, phase="recover",
                             restored_base=self.x_prev)
        # Seed the classic CCA back at the restored rate (regardless of
        # which candidate won last) and start a fresh cycle.
        self._last_winner = "prev"
        self._begin_cycle(now)

    # -- decisions ---------------------------------------------------------

    def pacing_rate(self) -> float:
        if self._outage:
            # Conservative probe during a detected outage: keep a trickle
            # flowing so the first post-blackout ACK arrives promptly.
            return MIN_RATE
        if self.stage in (STARTUP, EXPLORE):
            return self._rate_floor(self.classic.rate_estimate(self._srtt()))
        if self.stage == EVAL_LOW:
            return self._eval_lo
        if self.stage == EVAL_HIGH:
            return self._eval_hi
        return self.x_prev

    def cwnd(self) -> float:
        if self.stage in (STARTUP, EXPLORE) and not self._outage:
            classic_cwnd = self.classic.cwnd()
            if classic_cwnd is not None:
                return classic_cwnd
        # Safety cap: at most two rate*RTT worth of inflight data.
        return max(2.0 * self.pacing_rate() * self._srtt() / 8.0,
                   4.0 * self.mss)

    def applied_fractions(self) -> dict[str, float]:
        """Fig. 17: the fraction of cycles each candidate rate won."""
        total = max(sum(self.applied_counts.values()), 1)
        return {k: v / total for k, v in self.applied_counts.items()}
