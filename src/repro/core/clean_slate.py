"""Clean-Slate Libra (CL-Libra): the framework without a classic CCA.

The paper uses CL-Libra as a benchmark "to emphasize the importance of
combination" (Sec. 5 Setup): it keeps the three-stage utility-driven
cycle and the RL component, but the classic CCA is replaced by a
rate-hold, so every cycle evaluates only {x_prev, x_rl}.  Without the
classic CCA's ramping and loss reaction, CL-Libra adapts more slowly and
costs more (the RL agent carries all of the exploration burden).
"""

from __future__ import annotations

from ..cca.base import Controller
from .config import LibraConfig
from .libra import LibraController


class _HoldRate(Controller):
    """A degenerate 'classic CCA' that holds the adopted rate.

    Only a PCC-style startup is provided (double per RTT until delay or
    loss says stop) so CL-Libra can leave its initial rate; after that,
    all adaptation must come from the RL candidate via the evaluation
    stage — there is no classic wisdom to fall back on.
    """

    name = "hold"

    def __init__(self, initial_rate_bps: float = 1_500_000.0):
        super().__init__()
        self._rate = initial_rate_bps
        self._starting = True
        self._last_double = 0.0

    def adopt_rate(self, rate_bps: float, srtt: float) -> None:
        self._rate = rate_bps

    def rate_estimate(self, srtt: float) -> float:
        return self._rate

    def on_ack(self, ack) -> None:
        if not self._starting:
            return
        if ack.rtt > 1.5 * ack.min_rtt:
            self._starting = False
            return
        if ack.now - self._last_double >= ack.srtt:
            self._last_double = ack.now
            self._rate *= 2.0

    def on_loss(self, loss) -> None:
        self._starting = False

    def pacing_rate(self) -> float:
        return self._rate

    def cwnd(self) -> None:
        return None


class CleanSlateLibra(LibraController):
    """Libra's cycle with only the RL candidate (no classic wisdom)."""

    name = "cl-libra"

    def __init__(self, policy, config: LibraConfig | None = None, seed: int = 0):
        super().__init__(_HoldRate(), policy, config, seed)
