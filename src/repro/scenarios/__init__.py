"""Scenario library: the paper's evaluation network setups."""

from .presets import (BUFFER_SWEEP_BYTES, FIG1_SCENARIOS, FIG7_CELLULAR,
                      FIG7_WIRED, INTERNET, LOSS_SWEEP, LTE, LTE_KINDS,
                      Scenario, STEP_LEVELS_MBPS, WIRED, WIRED_BANDWIDTHS,
                      buffer_scenario, fairness_scenario, loss_scenario,
                      rl_default_scenario, step_scenario)

__all__ = [
    "BUFFER_SWEEP_BYTES", "FIG1_SCENARIOS", "FIG7_CELLULAR", "FIG7_WIRED",
    "INTERNET", "LOSS_SWEEP", "LTE", "LTE_KINDS", "STEP_LEVELS_MBPS",
    "Scenario", "WIRED", "WIRED_BANDWIDTHS", "buffer_scenario",
    "fairness_scenario", "loss_scenario", "rl_default_scenario",
    "step_scenario",
]
