"""Scenario library mirroring the paper's evaluation setups.

Each :class:`Scenario` bundles a trace factory with the bottleneck
parameters (minimum RTT, droptail buffer, stochastic loss) so experiment
modules can build reproducible :class:`~repro.simnet.network.Dumbbell`
instances.  Scenario parameters follow the paper:

- Fig. 1:  wired 24/48/96 Mbps + three LTE traces, 30 ms RTT, 150 KB buffer
- Fig. 2a: step scenario (capacity changes every 10 s), 80 ms RTT, 1 BDP
- Fig. 7:  four wired traces (12/24/48/96 Mbps) + four LTE traces
- Fig. 9:  60 Mbps / 100 ms, buffer 10 KB - 1 MB
- Fig. 13-15: 48 Mbps / 100 ms / 1 BDP
- Fig. 16: emulated inter-/intra-continental WAN paths (DESIGN.md)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from ..simnet.faults import FAULT_PROFILES, FaultSchedule
from ..simnet.network import Dumbbell
from ..simnet.trace import (ConstantTrace, PiecewiseTrace, Trace, lte_trace,
                            step_trace, wired_trace)
from ..units import KB, mbps, ms


@dataclass(frozen=True)
class Scenario:
    """A reproducible bottleneck setup.

    Trace factories are dataclass callables (below) rather than lambdas
    so a Scenario pickles across process boundaries and canonicalizes to
    a stable cache key (see :mod:`repro.parallel`).  ``faults`` attaches
    a deterministic :class:`~repro.simnet.faults.FaultSchedule`; being a
    Scenario field, it is part of that cache key, so changing the fault
    profile invalidates cached results automatically.
    """

    name: str
    trace_factory: Callable[[int], Trace]
    rtt: float
    buffer_bytes: float
    loss_rate: float = 0.0
    default_duration: float = 20.0
    mss: int = 1500
    aqm: str = "droptail"
    faults: FaultSchedule | None = None
    #: simulation core: "reference" (one event per packet stage) or
    #: "batched" (fused events; falls back to reference components when
    #: the AQM or fault schedule requires per-event structure).  Part of
    #: the frozen spec, hence of the parallel-cache key.
    engine: str = "reference"

    def trace(self, seed: int = 0) -> Trace:
        return self.trace_factory(seed)

    def build(self, seed: int = 0, recorder=None) -> Dumbbell:
        """Construct the dumbbell network for this scenario.

        ``recorder`` optionally attaches a
        :class:`~repro.telemetry.Recorder` so the run produces a
        :class:`~repro.telemetry.FlowTelemetry` artifact.
        """
        return Dumbbell(self.trace(seed), buffer_bytes=self.buffer_bytes,
                        rtt=self.rtt, loss_rate=self.loss_rate, seed=seed,
                        mss=self.mss, aqm=self.aqm, faults=self.faults,
                        recorder=recorder, engine=self.engine)

    def with_(self, **changes) -> "Scenario":
        return replace(self, **changes)


# -- picklable trace factories --------------------------------------------

@dataclass(frozen=True)
class ConstTraceFactory:
    """Fixed-rate wired bottleneck."""

    bw_mbps: float

    def __call__(self, seed: int) -> Trace:
        return wired_trace(self.bw_mbps)


@dataclass(frozen=True)
class LteTraceFactory:
    """Seeded cellular trace of one mobility kind."""

    kind: str

    def __call__(self, seed: int) -> Trace:
        return lte_trace(self.kind, seed=seed + 1)


@dataclass(frozen=True)
class StepTraceFactory:
    """Capacity stepping through ``levels`` every ``step_duration`` s."""

    levels: tuple
    step_duration: float

    def __call__(self, seed: int) -> Trace:
        return step_trace(self.levels, self.step_duration)


@dataclass(frozen=True)
class WanTraceFactory:
    """Mildly varying WAN path capacity (cross-traffic induced)."""

    mean_mbps: float
    jitter: float

    def __call__(self, seed: int) -> Trace:
        import numpy as np

        rng = np.random.default_rng(seed + 17)
        n = 120
        rates = self.mean_mbps * (
            1.0 + self.jitter * rng.standard_normal(n)).clip(0.3, 1.7)
        times = [i * 0.5 for i in range(n)]
        return PiecewiseTrace(times, [mbps(r) for r in rates], loop=True)


def _const(bw_mbps: float) -> Callable[[int], Trace]:
    return ConstTraceFactory(bw_mbps)


def _lte(kind: str) -> Callable[[int], Trace]:
    return LteTraceFactory(kind)


# -- Fig. 1 / Fig. 7: wired and cellular ----------------------------------

WIRED_BANDWIDTHS = (12.0, 24.0, 48.0, 96.0)

WIRED: dict[str, Scenario] = {
    f"wired-{int(bw)}": Scenario(
        name=f"wired-{int(bw)}", trace_factory=_const(bw),
        rtt=ms(30), buffer_bytes=150 * KB)
    for bw in WIRED_BANDWIDTHS
}

LTE_KINDS = ("stationary", "walking", "driving", "moving")

LTE: dict[str, Scenario] = {
    f"lte-{kind}": Scenario(
        name=f"lte-{kind}", trace_factory=_lte(kind),
        rtt=ms(30), buffer_bytes=150 * KB)
    for kind in LTE_KINDS
}

#: Fig. 1 uses wired 24/48/96 and the first three LTE traces
FIG1_SCENARIOS = [WIRED["wired-24"], WIRED["wired-48"], WIRED["wired-96"],
                  LTE["lte-stationary"], LTE["lte-walking"], LTE["lte-driving"]]

#: Fig. 7 aggregates over four wired and four cellular traces
FIG7_WIRED = list(WIRED.values())
FIG7_CELLULAR = list(LTE.values())


# -- Fig. 2(a): step scenario --------------------------------------------

STEP_LEVELS_MBPS = (20.0, 5.0, 15.0, 10.0, 25.0)


def step_scenario(rtt: float = ms(80), levels=STEP_LEVELS_MBPS,
                  step_duration: float = 10.0) -> Scenario:
    """Available capacity changes every ``step_duration`` seconds."""
    mean_rate = mbps(sum(levels) / len(levels))
    bdp = mean_rate * rtt / 8.0
    return Scenario(
        name="step",
        trace_factory=StepTraceFactory(tuple(levels), step_duration),
        rtt=rtt, buffer_bytes=bdp, default_duration=len(levels) * step_duration)


# -- Fig. 9 / Fig. 10: sweeps -----------------------------------------------

def buffer_scenario(buffer_bytes: float) -> Scenario:
    """60 Mbps / 100 ms link with the given droptail buffer (Fig. 9)."""
    return Scenario(name=f"buffer-{int(buffer_bytes / KB)}kb",
                    trace_factory=_const(60.0), rtt=ms(100),
                    buffer_bytes=buffer_bytes)


BUFFER_SWEEP_BYTES = (10 * KB, 30 * KB, 100 * KB, 300 * KB, 600 * KB, 1000 * KB)


def loss_scenario(loss_rate: float) -> Scenario:
    """48 Mbps / 100 ms / 1 BDP link with stochastic loss (Fig. 10)."""
    bdp = mbps(48.0) * ms(100) / 8.0
    return Scenario(name=f"loss-{loss_rate:.2f}", trace_factory=_const(48.0),
                    rtt=ms(100), buffer_bytes=bdp, loss_rate=loss_rate)


LOSS_SWEEP = (0.0, 0.02, 0.04, 0.06, 0.08, 0.10)


# -- Fig. 13-15: fairness / convergence link ---------------------------------

def fairness_scenario() -> Scenario:
    """48 Mbps / 100 ms minimum RTT / 1 BDP buffer (Sec. 5.3)."""
    bdp = mbps(48.0) * ms(100) / 8.0
    return Scenario(name="fairness", trace_factory=_const(48.0),
                    rtt=ms(100), buffer_bytes=bdp, default_duration=50.0)


# -- Fig. 16: live-Internet surrogates ------------------------------------

def _wan_trace(mean_mbps: float, jitter: float) -> Callable[[int], Trace]:
    """Mildly varying WAN path capacity (cross-traffic induced)."""
    return WanTraceFactory(mean_mbps, jitter)


INTERNET: dict[str, Scenario] = {
    # inter-continental: long RTT, noticeable stochastic loss, shaped paths
    "inter-continental": Scenario(
        name="inter-continental", trace_factory=_wan_trace(40.0, 0.25),
        rtt=ms(180), buffer_bytes=mbps(40.0) * ms(180) / 8.0,
        loss_rate=0.01, default_duration=30.0),
    # intra-continental: short RTT, clean paths
    "intra-continental": Scenario(
        name="intra-continental", trace_factory=_wan_trace(80.0, 0.10),
        rtt=ms(40), buffer_bytes=mbps(80.0) * ms(40) / 8.0,
        loss_rate=0.001, default_duration=30.0),
}


# -- stress / fault injection ----------------------------------------------

#: base link for the stress experiment: enough headroom that fault effects
#: dominate, shallow enough that recovery behaviour is visible
STRESS_BW_MBPS = 40.0
STRESS_RTT = ms(60)
STRESS_DURATION = 14.0


def stress_scenario(profile: str | FaultSchedule | None) -> Scenario:
    """A 40 Mbps / 60 ms / 1.5 BDP link under one fault profile.

    ``profile`` is a name from
    :data:`repro.simnet.faults.FAULT_PROFILES`, an explicit
    :class:`~repro.simnet.faults.FaultSchedule`, or ``None``/"clean" for
    the unimpaired baseline.
    """
    if isinstance(profile, FaultSchedule):
        schedule = profile
    elif profile is None or profile == "clean":
        schedule = None
    else:
        if profile not in FAULT_PROFILES:
            raise KeyError(f"unknown fault profile {profile!r}; choose from "
                           f"{sorted(FAULT_PROFILES)} or 'clean'")
        schedule = FAULT_PROFILES[profile]
    name = schedule.name if schedule is not None else "clean"
    bdp = mbps(STRESS_BW_MBPS) * STRESS_RTT / 8.0
    return Scenario(name=f"stress-{name}",
                    trace_factory=_const(STRESS_BW_MBPS),
                    rtt=STRESS_RTT, buffer_bytes=1.5 * bdp,
                    default_duration=STRESS_DURATION, faults=schedule)


# -- scale / flow churn ------------------------------------------------------

SCALE_BW_MBPS = 96.0
SCALE_RTT = ms(40)


def scale_scenario() -> Scenario:
    """The flow-churn bottleneck: 96 Mbps / 40 ms / 1.5 BDP, batched.

    Sized so hundreds of finite flows genuinely contend (per-flow fair
    share well under slow-start rates) while a full churn sweep still
    runs in CI; the batched engine is the default because scale runs are
    packet-count-bound and the scenario stays inside its envelope (no
    AQM, no faults).
    """
    bdp = mbps(SCALE_BW_MBPS) * SCALE_RTT / 8.0
    return Scenario(name="scale-96", trace_factory=_const(SCALE_BW_MBPS),
                    rtt=SCALE_RTT, buffer_bytes=1.5 * bdp,
                    default_duration=30.0, engine="batched")


def rl_default_scenario() -> Scenario:
    """The RL ablation setup: 100 Mbps, 100 ms RTT, 1 BDP (Sec. 4.2)."""
    bdp = mbps(100.0) * ms(100) / 8.0
    return Scenario(name="rl-default", trace_factory=_const(100.0),
                    rtt=ms(100), buffer_bytes=bdp)


def named_presets() -> dict[str, Scenario]:
    """Every scenario addressable by name — the CLI lookup table.

    Covers the wired/LTE/Internet preset dicts plus the parameterless
    factory scenarios (step, fairness, rl-default, stress-<profile>).
    """
    presets: dict[str, Scenario] = {}
    presets.update(WIRED)
    presets.update(LTE)
    presets.update(INTERNET)
    presets["step"] = step_scenario()
    presets["fairness"] = fairness_scenario()
    presets["rl-default"] = rl_default_scenario()
    presets["scale-96"] = scale_scenario()
    presets["stress-clean"] = stress_scenario("clean")
    for profile in sorted(FAULT_PROFILES):
        presets[f"stress-{profile}"] = stress_scenario(profile)
    return presets
