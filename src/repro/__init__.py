"""repro — reproduction of Libra (CoNEXT 2021).

A unified congestion control framework combining a classic CCA and an
RL-based CCA through a three-stage explore / evaluate / exploit control
cycle with a utility-based arbiter (Eq. 1).

Quickstart::

    from repro import make_controller, Dumbbell, wired_trace

    net = Dumbbell(wired_trace(48), buffer_bytes=600_000, rtt=0.1)
    net.add_flow(make_controller("c-libra"))
    result = net.run(30.0)
    print(result.flows[0].throughput_mbps, result.flows[0].avg_rtt_ms)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from .core import (LibraConfig, LibraController, UtilityParams, make_b_libra,
                   make_c_libra, make_clean_slate, utility)
from .registry import available_ccas, make_controller
from .simnet import Dumbbell, RunResult, lte_trace, step_trace, wired_trace

__version__ = "1.0.0"

__all__ = [
    "Dumbbell", "LibraConfig", "LibraController", "RunResult",
    "UtilityParams", "available_ccas", "lte_trace", "make_b_libra",
    "make_c_libra", "make_clean_slate", "make_controller", "step_trace",
    "utility", "wired_trace", "__version__",
]
