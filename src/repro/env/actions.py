"""Action-space designs for RL-based rate control (paper Sec. 4.2, Fig. 6).

Two families are evaluated in the paper:

- **AIAD** (RL-TCP, DRL-CC): ``x_{t+1} = x_t + a_t``,
- **MIMD** (Aurora): ``x_{t+1} = x_t * (1 + δ a_t)`` for ``a_t >= 0`` and
  ``x_t / (1 - δ a_t)`` otherwise, with δ = 0.025,
- **MIMD** (Orca): ``x_{t+1} = x_t * 2^{a_t}``.

Each supports the scale factors 1 / 5 / 10 studied in Fig. 6.  The paper
selects MIMD for Libra's RL component because it learns faster and
converges quickly.
"""

from __future__ import annotations

import numpy as np

MIN_RATE = 64_000.0
MAX_RATE = 2e9


class ActionSpace:
    """Maps a scalar policy action to the next sending rate."""

    name = "base"

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def clip_action(self, action: float) -> float:
        return float(np.clip(action, -self.scale, self.scale))

    def apply(self, rate_bps: float, action: float) -> float:
        raise NotImplementedError

    def _bound(self, rate_bps: float) -> float:
        return float(np.clip(rate_bps, MIN_RATE, MAX_RATE))


class AiadActions(ActionSpace):
    """Additive increase / additive decrease; the unit step is 1 Mbps."""

    name = "aiad"
    UNIT_BPS = 1_000_000.0

    def apply(self, rate_bps: float, action: float) -> float:
        a = self.clip_action(action)
        return self._bound(rate_bps + a * self.UNIT_BPS)


class MimdAuroraActions(ActionSpace):
    """Aurora's multiplicative update with damping factor δ = 0.025."""

    name = "mimd-aurora"

    def __init__(self, scale: float = 1.0, delta: float = 0.025):
        super().__init__(scale)
        self.delta = delta

    def apply(self, rate_bps: float, action: float) -> float:
        a = self.clip_action(action)
        if a >= 0:
            return self._bound(rate_bps * (1.0 + self.delta * a))
        return self._bound(rate_bps / (1.0 - self.delta * a))


class MimdOrcaActions(ActionSpace):
    """Orca's exponential update ``x * 2^a`` (a in [-scale, scale])."""

    name = "mimd-orca"

    def apply(self, rate_bps: float, action: float) -> float:
        a = self.clip_action(action)
        return self._bound(rate_bps * (2.0 ** a))


ACTION_SPACES = {
    "aiad": AiadActions,
    "mimd-aurora": MimdAuroraActions,
    "mimd-orca": MimdOrcaActions,
}
