"""State-space feature library (paper Tab. 1 and Tab. 2).

Implements the nine state candidates (i)-(ix) collected from prior
learning-based CCAs, the named state-space combinations used in Fig. 5
(Aurora, RL-TCP, PCC, Remy, DRL-CC, Orca, Libra, and the paper's
Baseline), and the add/remove variants of Tab. 2.

Features are computed from per-MI :class:`Measurement` records and
normalized (rates by the running max, delays by the running min) so the
policy generalizes across links — the paper calls this out explicitly.
A :class:`StateBuilder` stacks the last ``h`` feature vectors into the
state vector S = <f_{t-h+1}, ..., f_t>.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

#: candidate identifiers in paper order
CANDIDATES = ("i", "ii", "iii", "iv", "v", "vi", "vii", "viii", "ix")

#: absolute bound on any feature component; measurements taken during a
#: zero-rate interval (blackouts, ``queueing_delay() == inf``) or with no
#: RTT samples can carry inf/NaN — policy inputs must stay finite
FEATURE_CLIP = 10.0


@dataclass(slots=True)
class Measurement:
    """One monitor interval's worth of network feedback."""

    throughput: float      # delivered bps
    send_rate: float       # pacing-side bps
    avg_rtt: float         # seconds
    latest_rtt: float      # seconds
    min_rtt: float         # flow-lifetime minimum, seconds
    rtt_gradient: float    # d(RTT)/dt, s/s
    loss_rate: float       # fraction
    ack_gap_ewma: float    # seconds between consecutive ACKs (EWMA)
    send_gap_ewma: float   # seconds between consecutive sends (EWMA)
    sent_packets: int
    acked_packets: int
    rate: float            # the sender's current rate decision, bps


class Normalizer:
    """Running normalization state: max rate seen and min delay seen."""

    def __init__(self, init_max_rate: float = 1e6, init_min_delay: float = 1.0):
        self.max_rate = init_max_rate
        self.min_delay = init_min_delay

    def observe(self, m: Measurement) -> None:
        # Track the maximum *delivered* rate (the paper's x_max), not the
        # send rate: normalizing by one's own send rate would penalize
        # probing above previous peaks.  Non-finite samples (zero-rate
        # intervals report inf delays) must not poison the running state.
        if np.isfinite(m.throughput):
            self.max_rate = max(self.max_rate, m.throughput)
        if m.min_rtt > 0 and np.isfinite(m.min_rtt):
            self.min_delay = min(self.min_delay, m.min_rtt)

    def rate(self, bps: float) -> float:
        if self.max_rate <= 0:
            return 0.0
        return min(bps / self.max_rate, 10.0)

    def delay(self, seconds: float) -> float:
        return seconds / self.min_delay if self.min_delay > 0 else 0.0


def _candidate_values(key: str, m: Measurement, norm: Normalizer) -> tuple[float, ...]:
    min_rtt = m.min_rtt if m.min_rtt > 0 else 1e-3
    if key == "i":      # EWMA gap between sequential ACKs
        return (min(m.ack_gap_ewma / min_rtt, 10.0),)
    if key == "ii":     # EWMA gap between sequential sent packets
        return (min(m.send_gap_ewma / min_rtt, 10.0),)
    if key == "iii":    # latest RTT / min RTT
        return (min(m.latest_rtt / min_rtt, 10.0),)
    if key == "iv":     # current sending rate
        return (norm.rate(m.rate),)
    if key == "v":      # sent / acked ratio
        acked = max(m.acked_packets, 1)
        return (min(m.sent_packets / acked, 10.0),)
    if key == "vi":     # current RTT and min RTT (two components)
        return (min(norm.delay(m.avg_rtt), 10.0), min(norm.delay(min_rtt), 10.0))
    if key == "vii":    # average loss rate
        return (m.loss_rate,)
    if key == "viii":   # latency derivative
        return (float(np.clip(m.rtt_gradient, -5.0, 5.0)),)
    if key == "ix":     # average delivery rate
        return (norm.rate(m.throughput),)
    raise KeyError(f"unknown state candidate {key!r}")


class FeatureSet:
    """An ordered set of Tab. 1 candidates, e.g. ``FeatureSet('iv vii viii ix')``."""

    def __init__(self, keys):
        if isinstance(keys, str):
            keys = keys.split()
        keys = tuple(keys)
        for key in keys:
            if key not in CANDIDATES:
                raise KeyError(f"unknown state candidate {key!r}")
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate state candidates")
        self.keys = keys
        self.dim = sum(2 if k == "vi" else 1 for k in keys)

    def extract(self, m: Measurement, norm: Normalizer) -> np.ndarray:
        values: list[float] = []
        for key in self.keys:
            values.extend(_candidate_values(key, m, norm))
        # Clip to the finite feature range: measurements taken while the
        # link rate is zero carry inf (and 0/0 gradients carry NaN), and
        # a policy fed a non-finite state returns non-finite actions.
        vec = np.asarray(values, dtype=float)
        vec = np.nan_to_num(vec, nan=0.0, posinf=FEATURE_CLIP,
                            neginf=-FEATURE_CLIP)
        return np.clip(vec, -FEATURE_CLIP, FEATURE_CLIP)

    def plus(self, *keys: str) -> "FeatureSet":
        return FeatureSet([*self.keys, *keys])

    def minus(self, *keys: str) -> "FeatureSet":
        drop = set(keys)
        missing = drop - set(self.keys)
        if missing:
            raise KeyError(f"cannot remove absent candidates {sorted(missing)}")
        return FeatureSet([k for k in self.keys if k not in drop])

    def __repr__(self) -> str:
        return f"FeatureSet({' '.join(self.keys)})"

    def __eq__(self, other) -> bool:
        return isinstance(other, FeatureSet) and self.keys == other.keys

    def __hash__(self) -> int:
        return hash(self.keys)


#: the state spaces of prior CCAs, per Tab. 1's citations
STATE_SETS: dict[str, FeatureSet] = {
    "aurora": FeatureSet("iii v viii"),
    "rl-tcp": FeatureSet("i ii iii iv"),
    "remy": FeatureSet("i ii iii"),
    "pcc": FeatureSet("iv vii viii"),
    "drl-cc": FeatureSet("iv vi viii ix"),
    "orca": FeatureSet("ii iv vi vii ix"),
    # the paper's search baseline: union of PCC and DRL-CC states
    "baseline": FeatureSet("iv vi vii viii ix"),
    # the winner of the simulated-annealing search: baseline minus (vi)
    "libra": FeatureSet("iv vii viii ix"),
}

#: Tab. 2 rows: label -> FeatureSet (relative to the baseline)
TAB2_VARIANTS: dict[str, FeatureSet] = {
    "Baseline": STATE_SETS["baseline"],
    "-(vi)": STATE_SETS["baseline"].minus("vi"),
    "+(i)(ii)": STATE_SETS["baseline"].plus("i", "ii"),
    "+(i)(ii)(iii)": STATE_SETS["baseline"].plus("i", "ii", "iii"),
    "+(ii)(iii)(v)-(iv)": STATE_SETS["baseline"].plus("ii", "iii", "v").minus("iv"),
    "+(iii)": STATE_SETS["baseline"].plus("iii"),
    "+(ii)": STATE_SETS["baseline"].plus("ii"),
    "+(i)": STATE_SETS["baseline"].plus("i"),
    "-(ix)": STATE_SETS["baseline"].minus("ix"),
}


class StateBuilder:
    """Stacks the last ``h`` normalized feature vectors into the RL state.

    The paper constructs S = <f_{t-h+1}, ..., f_t> so the agent can
    detect network-condition changes from the sequence (Sec. 4.2).
    """

    def __init__(self, feature_set: FeatureSet, history: int = 8,
                 normalizer: Normalizer | None = None):
        if history < 1:
            raise ValueError("history must be >= 1")
        self.feature_set = feature_set
        self.history = history
        self.normalizer = normalizer or Normalizer()
        self._frames: deque[np.ndarray] = deque(maxlen=history)

    @property
    def dim(self) -> int:
        return self.feature_set.dim * self.history

    def reset(self) -> None:
        self._frames.clear()

    def push(self, m: Measurement) -> np.ndarray:
        self.normalizer.observe(m)
        self._frames.append(self.feature_set.extract(m, self.normalizer))
        return self.state()

    def state(self) -> np.ndarray:
        frames = list(self._frames)
        pad = self.history - len(frames)
        if pad > 0:
            zero = np.zeros(self.feature_set.dim)
            frames = [zero] * pad + frames
        return np.concatenate(frames)
