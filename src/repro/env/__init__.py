"""RL training environment: features (Tab. 1), rewards, action spaces,
and the fluid-model single-bottleneck link."""

from .actions import (ACTION_SPACES, ActionSpace, AiadActions,
                      MimdAuroraActions, MimdOrcaActions)
from .features import (CANDIDATES, FeatureSet, Measurement, Normalizer,
                       STATE_SETS, StateBuilder, TAB2_VARIANTS)
from .fluidenv import FluidEnvConfig, FluidLinkEnv, evaluate_policy
from .reward import DEFAULT_WEIGHTS, RewardConfig, RewardFunction

__all__ = [
    "ACTION_SPACES", "ActionSpace", "AiadActions", "CANDIDATES",
    "DEFAULT_WEIGHTS", "FeatureSet", "FluidEnvConfig", "FluidLinkEnv",
    "Measurement", "MimdAuroraActions", "MimdOrcaActions", "Normalizer",
    "RewardConfig", "RewardFunction", "STATE_SETS", "StateBuilder",
    "TAB2_VARIANTS", "evaluate_policy",
]
