"""Reward functions for the RL-based CCA (paper Sec. 4.2, Alg. 2).

The paper's reward is ``r_t = w1*x_t/x_max - w2*d_t/d_min - w3*L_t`` with
the *difference* ``R_t = r_t - r_{t-1}`` fed to PPO.  Two ablations are
studied: dropping the loss term (Tab. 3) and using the absolute value
``r`` instead of the difference ``Δr`` (Tab. 4); both are selectable here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sanitize import invariants as _sanitize
from .features import Measurement, Normalizer

#: the paper's default reward weights (Sec. 5 Setup)
DEFAULT_WEIGHTS = (1.0, 0.5, 10.0)


@dataclass
class RewardConfig:
    w1: float = DEFAULT_WEIGHTS[0]
    w2: float = DEFAULT_WEIGHTS[1]
    w3: float = DEFAULT_WEIGHTS[2]
    include_loss: bool = True
    use_delta: bool = True


class RewardFunction:
    """Stateful reward (keeps r_{t-1} for the Δr variant)."""

    def __init__(self, config: RewardConfig | None = None):
        self.config = config or RewardConfig()
        self._prev_r: float | None = None

    def reset(self) -> None:
        self._prev_r = None

    def raw(self, m: Measurement, norm: Normalizer) -> float:
        """The instantaneous reward value r_t."""
        cfg = self.config
        x_term = cfg.w1 * norm.rate(m.throughput)
        d_term = cfg.w2 * min(norm.delay(m.avg_rtt), 10.0) if m.avg_rtt > 0 else 0.0
        value = x_term - d_term
        if cfg.include_loss:
            value -= cfg.w3 * m.loss_rate
        return value

    def __call__(self, m: Measurement, norm: Normalizer) -> float:
        r = self.raw(m, norm)
        if _sanitize.ACTIVE is not None:
            _sanitize.ACTIVE.check_reward(r)
        if not self.config.use_delta:
            self._prev_r = r
            return r
        delta = r - self._prev_r if self._prev_r is not None else 0.0
        self._prev_r = r
        return delta
