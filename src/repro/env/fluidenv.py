"""Fast fluid-model training environment.

The paper trains Libra's DRL component in emulated networks whose
capacity (10-200 Mbps), RTT (10-200 ms), buffer (10 KB-5 MB) and
stochastic loss (0-10 %) are randomized per episode (Sec. 5
"Implementation").  Training a packet-level simulator for thousands of
episodes is wasteful; congestion control RL work (Aurora and its
successors) trains against exactly this kind of MI-granularity fluid
model of a single bottleneck: per monitor interval the queue integrates
``(send rate - capacity)``, delay is ``rtt_min + queue/capacity``, and
overflow plus Bernoulli loss feed the loss signal.

Policies trained here transfer to :mod:`repro.simnet` because the state
features are normalized ratios (see :mod:`repro.env.features`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .actions import ActionSpace, MimdOrcaActions
from .features import FeatureSet, Measurement, Normalizer, STATE_SETS, StateBuilder
from .reward import RewardConfig, RewardFunction

MSS = 1500.0


@dataclass
class FluidEnvConfig:
    """Training ranges (paper defaults) and episode shape."""

    capacity_range: tuple[float, float] = (10e6, 200e6)
    rtt_range: tuple[float, float] = (0.01, 0.2)
    buffer_range: tuple[float, float] = (10e3, 5e6)
    loss_range: tuple[float, float] = (0.0, 0.10)
    episode_steps: int = 64
    history: int = 8
    feature_set: FeatureSet = field(default_factory=lambda: STATE_SETS["libra"])
    reward: RewardConfig = field(default_factory=RewardConfig)
    seed: int = 0
    # Fix parameters (e.g. the paper's 100 Mbps / 100 ms / 1 BDP ablation
    # setup) by setting ranges to a point, or use these overrides:
    fixed_capacity: float | None = None
    fixed_rtt: float | None = None
    fixed_buffer: float | None = None
    fixed_loss: float | None = None


class FluidLinkEnv:
    """Gym-like single-flow, single-bottleneck fluid environment."""

    def __init__(self, config: FluidEnvConfig | None = None,
                 action_space: ActionSpace | None = None,
                 rng: np.random.Generator | None = None):
        self.config = config or FluidEnvConfig()
        self.action_space = action_space or MimdOrcaActions(scale=1.0)
        # One explicit Generator drives every stochastic draw (episode
        # parameters, starting rate); passing it in lets the training
        # pipeline derive per-(iteration, worker) streams deterministically.
        self.rng = rng if rng is not None \
            else np.random.default_rng(self.config.seed)
        self.builder = StateBuilder(self.config.feature_set,
                                    self.config.history)
        self.reward_fn = RewardFunction(self.config.reward)
        self.obs_dim = self.builder.dim
        self.act_dim = 1
        self._episode_stats: dict[str, float] = {}
        self._reset_state()

    # -- episode management --------------------------------------------------

    def _sample(self, fixed: float | None, lo: float, hi: float) -> float:
        if fixed is not None:
            return fixed
        return float(self.rng.uniform(lo, hi))

    def _reset_state(self) -> None:
        cfg = self.config
        self.capacity = self._sample(cfg.fixed_capacity, *cfg.capacity_range)
        self.rtt_min = self._sample(cfg.fixed_rtt, *cfg.rtt_range)
        self.buffer = self._sample(cfg.fixed_buffer, *cfg.buffer_range)
        self.loss_prob = self._sample(cfg.fixed_loss, *cfg.loss_range)
        self.queue = 0.0
        self.rate = float(self.capacity * self.rng.uniform(0.3, 1.2))
        self.prev_rtt = self.rtt_min
        self.steps = 0
        self._episode_stats = {"throughput": 0.0, "latency": 0.0,
                               "loss": 0.0, "count": 0.0}

    def reset(self) -> np.ndarray:
        self._reset_state()
        self.builder.reset()
        self.builder.normalizer = Normalizer(init_max_rate=self.capacity,
                                             init_min_delay=self.rtt_min)
        self.reward_fn.reset()
        # Prime the state with one neutral measurement.
        m = self._measure(self.rate, self.rate, 0.0, self.rtt_min)
        return self.builder.push(m)

    # -- dynamics ----------------------------------------------------------

    def _measure(self, send_rate: float, throughput: float, loss_rate: float,
                 avg_rtt: float) -> Measurement:
        rtt_grad = (avg_rtt - self.prev_rtt) / max(self.mi_duration(), 1e-6)
        safe_thr = max(throughput, 1.0)
        safe_send = max(send_rate, 1.0)
        return Measurement(
            throughput=throughput, send_rate=send_rate,
            avg_rtt=avg_rtt, latest_rtt=avg_rtt, min_rtt=self.rtt_min,
            rtt_gradient=rtt_grad, loss_rate=loss_rate,
            ack_gap_ewma=MSS * 8.0 / safe_thr,
            send_gap_ewma=MSS * 8.0 / safe_send,
            sent_packets=max(int(send_rate * self.mi_duration() / 8.0 / MSS), 1),
            acked_packets=max(int(throughput * self.mi_duration() / 8.0 / MSS), 1),
            rate=self.rate)

    def mi_duration(self) -> float:
        """One monitor interval = one base RTT (per-MI decisions, Sec. 4.2)."""
        return self.rtt_min

    def step(self, action) -> tuple[np.ndarray, float, bool, dict]:
        a = float(np.asarray(action).reshape(-1)[0])
        self.rate = self.action_space.apply(self.rate, a)
        dt = self.mi_duration()

        arrived = self.rate * dt / 8.0                       # bytes offered
        random_lost = arrived * self.loss_prob
        admitted = arrived - random_lost
        service = self.capacity * dt / 8.0
        backlog = self.queue + admitted
        delivered = min(backlog, service)
        new_queue = backlog - delivered
        overflow = max(new_queue - self.buffer, 0.0)
        new_queue = min(new_queue, self.buffer)

        q_delay0 = self.queue * 8.0 / self.capacity
        q_delay1 = new_queue * 8.0 / self.capacity
        avg_rtt = self.rtt_min + 0.5 * (q_delay0 + q_delay1)
        throughput = delivered * 8.0 / dt
        loss_rate = (random_lost + overflow) / arrived if arrived > 0 else 0.0

        self.queue = new_queue
        m = self._measure(self.rate, throughput, loss_rate, avg_rtt)
        obs = self.builder.push(m)
        reward = self.reward_fn(m, self.builder.normalizer)
        self.prev_rtt = avg_rtt

        stats = self._episode_stats
        stats["throughput"] += throughput
        stats["latency"] += avg_rtt
        stats["loss"] += loss_rate
        stats["count"] += 1

        self.steps += 1
        done = self.steps >= self.config.episode_steps
        info = {
            "throughput": throughput, "avg_rtt": avg_rtt,
            "loss_rate": loss_rate, "rate": self.rate,
            "capacity": self.capacity, "utilization": throughput / self.capacity,
        }
        return obs, reward, done, info

    # -- reporting --------------------------------------------------------

    def episode_summary(self) -> dict[str, float]:
        """Average throughput / latency / loss over the episode so far."""
        stats = self._episode_stats
        n = max(stats["count"], 1.0)
        return {
            "throughput_mbps": stats["throughput"] / n / 1e6,
            "latency_ms": stats["latency"] / n * 1e3,
            "loss_rate": stats["loss"] / n,
            "capacity_mbps": self.capacity / 1e6,
        }


def evaluate_policy(env: FluidLinkEnv, policy, steps: int = 256,
                    seed: int = 0) -> dict[str, float]:
    """Run ``policy`` deterministically and return average performance."""
    rng = np.random.default_rng(seed)
    obs = env.reset()
    totals = {"throughput": 0.0, "latency": 0.0, "loss": 0.0, "reward": 0.0}
    count = 0
    for _ in range(steps):
        action, _, _ = policy.act(obs, rng, deterministic=True)
        obs, reward, done, info = env.step(action)
        totals["throughput"] += info["throughput"]
        totals["latency"] += info["avg_rtt"]
        totals["loss"] += info["loss_rate"]
        totals["reward"] += reward
        count += 1
        if done:
            obs = env.reset()
    return {
        "throughput_mbps": totals["throughput"] / count / 1e6,
        "latency_ms": totals["latency"] / count * 1e3,
        "loss_rate": totals["loss"] / count,
        "avg_reward": totals["reward"] / count,
    }
