"""Shared plumbing for learning-based controllers.

Bridges the simulator's :class:`~repro.simnet.packet.IntervalReport`
stream into the :class:`~repro.env.features.Measurement` records the
feature library understands, so policies trained in the fluid env drop
straight into the packet simulator.
"""

from __future__ import annotations

from ..simnet.packet import IntervalReport
from .features import Measurement


def measurement_from_report(report: IntervalReport, rate_bps: float,
                            min_rtt: float) -> Measurement:
    """Convert a monitor-interval report into a feature measurement."""
    acked = max(report.acked_packets, 1)
    sent = max(report.sent_packets, 1)
    return Measurement(
        throughput=report.throughput,
        send_rate=report.send_rate,
        avg_rtt=report.avg_rtt if report.avg_rtt > 0 else min_rtt,
        latest_rtt=report.avg_rtt if report.avg_rtt > 0 else min_rtt,
        min_rtt=min_rtt,
        rtt_gradient=report.rtt_gradient,
        loss_rate=report.loss_rate,
        ack_gap_ewma=report.duration / acked,
        send_gap_ewma=report.duration / sent,
        sent_packets=report.sent_packets,
        acked_packets=report.acked_packets,
        rate=rate_bps)
