"""Command-line entry point: run experiments or quick single flows.

Usage:
    python -m repro list                       # available CCAs + experiments
    python -m repro run c-libra --bw 48 --rtt 100 --duration 20
    python -m repro trace c-libra --lte stationary --out trace.jsonl
    python -m repro experiment fig7            # print a paper artifact
    python -m repro experiment fig9 --jobs 4   # parallel + cached sweep
    python -m repro train libra --workers 2 --iterations 30 \\
        --checkpoint-every 10                  # parallel, resumable training
    python -m repro train --verify-assets      # bundled-policy integrity
"""

from __future__ import annotations

import argparse
import sys

EXPERIMENT_MODULES = {
    "fig1": "adaptability", "fig7": "adaptability", "fig8": "adaptability",
    "fig2a": "practical_issues", "fig2b": "practical_issues",
    "fig2c": "overhead", "fig12": "overhead",
    "fig5": "rl_ablation", "fig6": "rl_ablation", "tab2": "rl_ablation",
    "tab3": "rl_ablation", "tab4": "rl_ablation",
    "fig9": "sweeps", "fig10": "sweeps",
    "fig11": "flexibility",
    "fig13": "fairness", "fig14": "fairness",
    "fig15": "convergence", "tab5": "convergence",
    "tab6": "safety",
    "fig16": "internet",
    "fig17": "deep_dive", "fig18": "deep_dive",
    "fig19": "sensitivity", "tab7": "sensitivity",
    "ablations": "ablations",
    "stress": "stress",
}


def cmd_list(_args) -> int:
    from .registry import available_ccas

    print("CCAs:", ", ".join(available_ccas()))
    print("Experiments:", ", ".join(sorted(set(EXPERIMENT_MODULES))))
    return 0


def _build_single_flow(args, recorder=None):
    """Shared ``run``/``trace`` setup: one flow through one bottleneck."""
    from .registry import make_controller
    from .simnet.network import Dumbbell
    from .simnet.trace import lte_trace, wired_trace

    if args.lte:
        trace = lte_trace(args.lte, seed=args.seed)
    else:
        trace = wired_trace(args.bw)
    rtt = args.rtt / 1000.0
    buffer_bytes = args.buffer * 1000 if args.buffer else \
        max(args.bw * 1e6 * rtt / 8.0, 30_000)
    net = Dumbbell(trace, buffer_bytes=buffer_bytes, rtt=rtt,
                   loss_rate=args.loss, seed=args.seed, aqm=args.aqm,
                   recorder=recorder)
    net.add_flow(make_controller(args.cca, seed=args.seed))
    return net


def _print_headline(args, result) -> None:
    flow = result.flows[0]
    print(f"{args.cca}: throughput={flow.throughput_mbps:.2f} Mbps "
          f"(util {result.utilization:.1%}), avg RTT={flow.avg_rtt_ms:.1f} ms, "
          f"loss={flow.loss_rate:.2%}")


def cmd_run(args) -> int:
    result = _build_single_flow(args).run(args.duration)
    _print_headline(args, result)
    return 0


def cmd_trace(args) -> int:
    """Run one traced flow, pretty-print the trace, optionally export it."""
    from .telemetry import (Recorder, format_summary, write_csv, write_jsonl)

    recorder = Recorder()
    result = _build_single_flow(args, recorder=recorder).run(args.duration)
    telemetry = result.telemetry
    _print_headline(args, result)
    if args.out:
        if args.format == "csv":
            records = write_csv(telemetry, args.out)
        else:
            records = write_jsonl(telemetry, args.out)
        print(f"wrote {records} {args.format} records to {args.out}")
    print(format_summary(telemetry, tail=args.tail))
    return 0


def cmd_experiment(args) -> int:
    import importlib

    module_name = EXPERIMENT_MODULES.get(args.name)
    if module_name is None:
        print(f"unknown experiment {args.name!r}; "
              f"try one of {sorted(set(EXPERIMENT_MODULES))}", file=sys.stderr)
        return 2
    if args.jobs < 0:
        print("--jobs must be >= 0 (1 = serial, 0 = one worker per CPU)",
              file=sys.stderr)
        return 2
    from . import parallel

    parallel.set_execution_config(
        jobs=args.jobs, cache=not args.no_cache, cache_dir=args.cache_dir,
        timeout=args.timeout, progress=not args.quiet)
    module = importlib.import_module(f"repro.experiments.{module_name}")
    module.main()
    return 0


def cmd_train(args) -> int:
    from .assets import POLICY_KINDS

    if args.verify_assets:
        from .assets import verify_assets

        rows = verify_assets(args.assets_dir)
        width = max(len(row["kind"]) for row in rows)
        bad = 0
        for row in rows:
            line = f"{row['kind']:<{width}}  {row['status']}"
            if row["detail"]:
                line += f"  ({row['detail']})"
            print(line)
            bad += row["status"] != "ok"
        return 1 if bad else 0

    if not args.kind and not args.all:
        print("specify a policy kind, --all, or --verify-assets "
              f"(kinds: {', '.join(POLICY_KINDS)})", file=sys.stderr)
        return 2
    kinds = list(POLICY_KINDS) if args.all else [args.kind]
    unknown = [k for k in kinds if k not in POLICY_KINDS]
    if unknown:
        print(f"unknown policy kind {unknown[0]!r}; "
              f"choose from {', '.join(POLICY_KINDS)}", file=sys.stderr)
        return 2
    if args.all and (args.resume or args.checkpoint_dir or args.save or
                     args.log):
        print("--all cannot be combined with --resume/--checkpoint-dir/"
              "--save/--log (they name per-run files)", file=sys.stderr)
        return 2

    import os

    from .train import GateConfig, TrainRunConfig, train_run

    try:
        hidden = tuple(int(h) for h in args.hidden.split(","))
        gate_seeds = tuple(int(s) for s in args.gate_seeds.split(","))
    except ValueError:
        print("--hidden and --gate-seeds take comma-separated integers",
              file=sys.stderr)
        return 2

    status = 0
    for kind in kinds:
        checkpoint_dir = args.checkpoint_dir
        if checkpoint_dir is None and (args.checkpoint_every > 0 or
                                       args.resume):
            checkpoint_dir = os.path.join("checkpoints", kind)
        config = TrainRunConfig(
            kind=kind, iterations=args.iterations, workers=args.workers,
            steps_per_iteration=args.steps, seed=args.seed, hidden=hidden,
            episode_steps=args.episode_steps, backend=args.backend,
            timeout=args.timeout, checkpoint_dir=checkpoint_dir,
            checkpoint_every=args.checkpoint_every, resume=args.resume,
            log_path=args.log, promote=args.promote,
            assets_dir=args.assets_dir,
            gate=GateConfig(seeds=gate_seeds, duration=args.gate_duration),
            verbose=not args.quiet)
        result = train_run(config)
        rewards = result.history.episode_rewards
        tail = rewards[-20:]
        summary = (f"{kind}: {result.iterations_run} iterations, "
                   f"{len(rewards)} episodes")
        if tail:
            import numpy as np

            summary += f", final avg reward {np.mean(tail):.3f}"
        print(summary)
        if args.save:
            result.policy.save(args.save)
            print(f"wrote weights to {args.save}")
        if result.checkpoints:
            print(f"latest checkpoint: {result.checkpoints[-1]}")
        if result.promotion is not None and not result.promotion.promoted:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list CCAs and experiments")

    def add_flow_args(p) -> None:
        p.add_argument("cca")
        p.add_argument("--bw", type=float, default=48.0, help="Mbps")
        p.add_argument("--lte", choices=("stationary", "walking", "driving",
                                         "moving"), help="use an LTE trace")
        p.add_argument("--rtt", type=float, default=100.0, help="ms")
        p.add_argument("--buffer", type=float, default=None, help="KB")
        p.add_argument("--loss", type=float, default=0.0)
        p.add_argument("--duration", type=float, default=20.0)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--aqm", choices=("droptail", "codel"),
                       default="droptail")

    run = sub.add_parser("run", help="run one flow through a bottleneck")
    add_flow_args(run)

    trace = sub.add_parser(
        "trace", help="run one traced flow and inspect/export its telemetry")
    add_flow_args(trace)
    trace.add_argument("--out", default=None,
                       help="write the trace to this file")
    trace.add_argument("--format", choices=("jsonl", "csv"), default="jsonl",
                       help="export format for --out (default: jsonl)")
    trace.add_argument("--tail", type=int, default=10,
                       help="also print the last N events (0 disables)")

    exp = sub.add_parser("experiment", help="print one paper artifact")
    exp.add_argument("name")
    exp.add_argument("--jobs", type=int, default=1,
                     help="worker processes for sweep grids "
                          "(1 = serial, 0 = one per CPU)")
    exp.add_argument("--no-cache", action="store_true",
                     help="bypass the on-disk result cache")
    exp.add_argument("--cache-dir", default=None,
                     help="result cache location "
                          "(default: $REPRO_CACHE_DIR or ~/.cache/repro/sweeps)")
    exp.add_argument("--timeout", type=float, default=None,
                     help="per-job wall-time bound in seconds (parallel mode)")
    exp.add_argument("--quiet", action="store_true",
                     help="suppress progress output on stderr")

    train = sub.add_parser(
        "train", help="train a policy: parallel rollouts, checkpoints, "
                      "structured logs, eval-gated promotion")
    train.add_argument("kind", nargs="?",
                       help="policy kind (libra, aurora, orca, modified-rl)")
    train.add_argument("--all", action="store_true",
                       help="train every policy kind in sequence")
    train.add_argument("--workers", type=int, default=1,
                       help="parallel rollout workers (default 1)")
    train.add_argument("--iterations", type=int, default=30,
                       help="training iterations (PPO epochs)")
    train.add_argument("--steps", type=int, default=1920,
                       help="environment steps collected per iteration")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--hidden", default="64,64",
                       help="comma-separated hidden layer sizes")
    train.add_argument("--episode-steps", type=int, default=96)
    train.add_argument("--backend", choices=("auto", "serial", "fork"),
                       default="auto",
                       help="rollout execution backend (default auto: fork "
                            "when --workers > 1 and the platform supports it)")
    train.add_argument("--timeout", type=float, default=None,
                       help="per-rollout-task wall-time bound (fork mode)")
    train.add_argument("--checkpoint-every", type=int, default=0,
                       help="checkpoint cadence in iterations "
                            "(0 = final iteration only)")
    train.add_argument("--checkpoint-dir", default=None,
                       help="checkpoint directory "
                            "(default: checkpoints/<kind> when needed)")
    train.add_argument("--resume", action="store_true",
                       help="resume from the latest checkpoint in "
                            "--checkpoint-dir")
    train.add_argument("--log", default=None,
                       help="write a structured JSONL training log here")
    train.add_argument("--save", default=None,
                       help="write the final policy weights to this .npz")
    train.add_argument("--promote", action="store_true",
                       help="run the evaluation gate and replace the bundled "
                            "asset only if the candidate beats it "
                            "(exit 1 when the gate refuses)")
    train.add_argument("--assets-dir", default=None,
                       help="asset directory for --promote/--verify-assets "
                            "(default: the bundled repro/assets)")
    train.add_argument("--gate-duration", type=float, default=10.0,
                       help="seconds of simulated time per gate panel run")
    train.add_argument("--gate-seeds", default="1,2",
                       help="comma-separated seeds per gate panel scenario")
    train.add_argument("--verify-assets", action="store_true",
                       help="check bundled .npz files against MANIFEST.json "
                            "and exit")
    train.add_argument("--quiet", action="store_true",
                       help="suppress per-iteration progress lines")

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "train":
        return cmd_train(args)
    return cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
