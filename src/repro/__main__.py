"""Command-line entry point: run experiments, single flows, or real traffic.

Usage:
    python -m repro list                       # CCAs, experiments, commands
    python -m repro run c-libra --bw 48 --rtt 100 --duration 20
    python -m repro trace c-libra --lte stationary --out trace.jsonl
    python -m repro experiment fig7            # print a paper artifact
    python -m repro experiment fig9 --jobs 4   # parallel + cached sweep
    python -m repro train libra --workers 2 --iterations 30 \\
        --checkpoint-every 10                  # parallel, resumable training
    python -m repro train --verify-assets      # bundled-policy integrity
    python -m repro serve --port 9000          # reliable-UDP receive endpoint
    python -m repro send 127.0.0.1:9000 --cca libra:cubic --bytes 1048576 \\
        --loss 0.02 --delay 20                 # real-socket transfer
    python -m repro chaos --seed 1             # chaos-test the serving path
    python -m repro experiment soak            # full chaos suite as a table
    python -m repro run c-libra --sanitize     # run with invariant checks on
    python -m repro replay failure-….json      # re-execute a captured failure
    python -m repro diff --cca c-libra --scenario wired-48 # differential oracle
"""

from __future__ import annotations

import argparse
import sys

EXPERIMENT_MODULES = {
    "fig1": "adaptability", "fig7": "adaptability", "fig8": "adaptability",
    "fig2a": "practical_issues", "fig2b": "practical_issues",
    "fig2c": "overhead", "fig12": "overhead",
    "fig5": "rl_ablation", "fig6": "rl_ablation", "tab2": "rl_ablation",
    "tab3": "rl_ablation", "tab4": "rl_ablation",
    "fig9": "sweeps", "fig10": "sweeps",
    "fig11": "flexibility",
    "fig13": "fairness", "fig14": "fairness",
    "fig15": "convergence", "tab5": "convergence",
    "tab6": "safety",
    "fig16": "internet",
    "fig17": "deep_dive", "fig18": "deep_dive",
    "fig19": "sensitivity", "tab7": "sensitivity",
    "ablations": "ablations",
    "stress": "stress",
    "soak": "soak",
    "scale": "scale",
}


#: every subcommand with a one-line purpose — ``repro list`` prints this
#: registry surface so operational tooling can discover the CLI without
#: parsing argparse help text
COMMANDS = {
    "list": "list CCAs, experiments and commands",
    "run": "run one flow through a simulated bottleneck",
    "trace": "run one traced flow and inspect/export its telemetry",
    "experiment": "print one paper artifact",
    "train": "train a policy (parallel, checkpointed, eval-gated)",
    "serve": "reliable-UDP receive endpoint (real sockets)",
    "send": "reliable-UDP transfer driven by a CCA (real sockets)",
    "chaos": "run seeded fault scenarios against a real netio server",
    "replay": "re-execute a captured failure bundle with sanitizers on",
    "diff": "run one job under two configurations and diff the metrics",
    "bench": "run the standing performance benchmarks (BENCH_*.json)",
}


def cmd_list(_args) -> int:
    from .registry import available_ccas

    from .scenarios.presets import named_presets

    print("CCAs:", ", ".join(available_ccas()))
    print("Experiments:", ", ".join(sorted(set(EXPERIMENT_MODULES))))
    print("Scenarios:", ", ".join(sorted(named_presets())))
    print("Commands:", ", ".join(sorted(COMMANDS)))
    return 0


def _build_single_flow(args, recorder=None):
    """Shared ``run``/``trace`` setup: one flow through one bottleneck."""
    from .registry import make_controller
    from .simnet.network import Dumbbell
    from .simnet.trace import lte_trace, wired_trace

    if args.lte:
        trace = lte_trace(args.lte, seed=args.seed)
    else:
        trace = wired_trace(args.bw)
    rtt = args.rtt / 1000.0
    buffer_bytes = args.buffer * 1000 if args.buffer else \
        max(args.bw * 1e6 * rtt / 8.0, 30_000)
    net = Dumbbell(trace, buffer_bytes=buffer_bytes, rtt=rtt,
                   loss_rate=args.loss, seed=args.seed, aqm=args.aqm,
                   recorder=recorder)
    net.add_flow(make_controller(args.cca, seed=args.seed))
    return net


def _print_headline(args, result) -> None:
    flow = result.flows[0]
    print(f"{args.cca}: throughput={flow.throughput_mbps:.2f} Mbps "
          f"(util {result.utilization:.1%}), avg RTT={flow.avg_rtt_ms:.1f} ms, "
          f"loss={flow.loss_rate:.2%}")


def _make_sanitizer(args):
    """``--sanitize`` support: a fresh sanitizer, or ``None`` when off."""
    from .sanitize import SimSanitizer

    return SimSanitizer() if getattr(args, "sanitize", False) else None


def _print_sanitizer(sanitizer) -> None:
    if sanitizer is not None:
        print(f"sanitize: {sanitizer.audits} audits, "
              f"{sanitizer.checks} checks, "
              f"{sanitizer.violations} violations")


def cmd_run(args) -> int:
    from .sanitize import activate

    sanitizer = _make_sanitizer(args)
    with activate(sanitizer):
        result = _build_single_flow(args).run(args.duration)
    _print_headline(args, result)
    _print_sanitizer(sanitizer)
    return 0


def cmd_trace(args) -> int:
    """Run one traced flow, pretty-print the trace, optionally export it."""
    from .sanitize import activate
    from .telemetry import (Recorder, format_summary, write_csv, write_jsonl)

    recorder = Recorder()
    sanitizer = _make_sanitizer(args)
    with activate(sanitizer):
        result = _build_single_flow(args, recorder=recorder).run(args.duration)
    _print_sanitizer(sanitizer)
    telemetry = result.telemetry
    _print_headline(args, result)
    if args.out:
        if args.format == "csv":
            records = write_csv(telemetry, args.out)
        else:
            records = write_jsonl(telemetry, args.out)
        print(f"wrote {records} {args.format} records to {args.out}")
    print(format_summary(telemetry, tail=args.tail))
    return 0


def cmd_experiment(args) -> int:
    import importlib

    module_name = EXPERIMENT_MODULES.get(args.name)
    if module_name is None:
        print(f"unknown experiment {args.name!r}; "
              f"try one of {sorted(set(EXPERIMENT_MODULES))}", file=sys.stderr)
        return 2
    if args.jobs < 0:
        print("--jobs must be >= 0 (1 = serial, 0 = one worker per CPU)",
              file=sys.stderr)
        return 2
    from . import parallel

    parallel.set_execution_config(
        jobs=args.jobs, cache=not args.no_cache, cache_dir=args.cache_dir,
        timeout=args.timeout, progress=not args.quiet)
    module = importlib.import_module(f"repro.experiments.{module_name}")
    module.main()
    return 0


def cmd_train(args) -> int:
    from .assets import POLICY_KINDS

    if args.verify_assets:
        from .assets import verify_assets

        rows = verify_assets(args.assets_dir)
        width = max(len(row["kind"]) for row in rows)
        bad = 0
        for row in rows:
            line = f"{row['kind']:<{width}}  {row['status']}"
            if row["detail"]:
                line += f"  ({row['detail']})"
            print(line)
            bad += row["status"] != "ok"
        return 1 if bad else 0

    if not args.kind and not args.all:
        print("specify a policy kind, --all, or --verify-assets "
              f"(kinds: {', '.join(POLICY_KINDS)})", file=sys.stderr)
        return 2
    kinds = list(POLICY_KINDS) if args.all else [args.kind]
    unknown = [k for k in kinds if k not in POLICY_KINDS]
    if unknown:
        print(f"unknown policy kind {unknown[0]!r}; "
              f"choose from {', '.join(POLICY_KINDS)}", file=sys.stderr)
        return 2
    if args.all and (args.resume or args.checkpoint_dir or args.save or
                     args.log):
        print("--all cannot be combined with --resume/--checkpoint-dir/"
              "--save/--log (they name per-run files)", file=sys.stderr)
        return 2

    import os

    from .train import GateConfig, TrainRunConfig, train_run

    try:
        hidden = tuple(int(h) for h in args.hidden.split(","))
        gate_seeds = tuple(int(s) for s in args.gate_seeds.split(","))
    except ValueError:
        print("--hidden and --gate-seeds take comma-separated integers",
              file=sys.stderr)
        return 2

    status = 0
    for kind in kinds:
        checkpoint_dir = args.checkpoint_dir
        if checkpoint_dir is None and (args.checkpoint_every > 0 or
                                       args.resume):
            checkpoint_dir = os.path.join("checkpoints", kind)
        config = TrainRunConfig(
            kind=kind, iterations=args.iterations, workers=args.workers,
            steps_per_iteration=args.steps, seed=args.seed, hidden=hidden,
            episode_steps=args.episode_steps, backend=args.backend,
            timeout=args.timeout, checkpoint_dir=checkpoint_dir,
            checkpoint_every=args.checkpoint_every, resume=args.resume,
            log_path=args.log, promote=args.promote,
            assets_dir=args.assets_dir,
            gate=GateConfig(seeds=gate_seeds, duration=args.gate_duration),
            verbose=not args.quiet)
        result = train_run(config)
        rewards = result.history.episode_rewards
        tail = rewards[-20:]
        summary = (f"{kind}: {result.iterations_run} iterations, "
                   f"{len(rewards)} episodes")
        if tail:
            import numpy as np

            summary += f", final avg reward {np.mean(tail):.3f}"
        print(summary)
        if args.save:
            result.policy.save(args.save)
            print(f"wrote weights to {args.save}")
        if result.checkpoints:
            print(f"latest checkpoint: {result.checkpoints[-1]}")
        if result.promotion is not None and not result.promotion.promoted:
            status = 1
    return status


def cmd_serve(args) -> int:
    """Run the reliable-UDP receive endpoint until signalled (or --one).

    SIGTERM/SIGINT trigger a graceful drain: new SYNs are refused with
    an RST, in-flight transfers get up to ``--drain-deadline`` seconds
    to finish, stragglers are force-reset, telemetry is flushed.
    """
    import asyncio
    import json
    import signal

    from .netio import NetioServer, ServerLimits
    from .telemetry import Recorder, write_jsonl

    try:
        limits = ServerLimits(max_sessions=args.max_sessions,
                              idle_timeout=args.idle_timeout,
                              session_buffer_bytes=args.buffer_cap,
                              drain_deadline=args.drain_deadline)
    except ValueError as exc:
        print(f"bad server limits: {exc}", file=sys.stderr)
        return 2

    def emit(stats) -> None:
        if args.json:
            print(json.dumps(stats.summary(), sort_keys=True), flush=True)

    async def serve() -> int:
        recorder = Recorder() if args.out else None
        server = NetioServer(host=args.host, port=args.port,
                             verbose=not args.quiet, limits=limits,
                             recorder=recorder)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:    # non-unix event loop
                pass
        host, port = await server.start()
        # The listening line doubles as the "safe to signal" marker for
        # supervisors, so the handlers above must already be installed.
        print(f"netio: listening on {host}:{port}", flush=True)
        stop_wait = asyncio.ensure_future(stop.wait())
        try:
            while True:
                next_stats = asyncio.ensure_future(server.serve_one())
                done, _ = await asyncio.wait(
                    {next_stats, stop_wait},
                    return_when=asyncio.FIRST_COMPLETED)
                if next_stats in done:
                    stats = next_stats.result()
                    emit(stats)
                    if args.one:
                        return 0 if stats.complete else 1
                else:
                    next_stats.cancel()
                    break
            report = await server.drain()
            for stats in server.drain_completed():
                emit(stats)
            if not args.quiet:
                print(f"netio: drained in {report['waited_s']}s "
                      f"({report['forced']} session(s) force-reset)",
                      flush=True)
            if args.out and server.telemetry is not None:
                records = write_jsonl(server.telemetry, args.out)
                print(f"wrote {records} telemetry records to {args.out}",
                      flush=True)
            return 0
        finally:
            stop_wait.cancel()
            await server.close()

    from .sanitize import activate

    try:
        with activate(_make_sanitizer(args)):
            return asyncio.run(serve())
    except KeyboardInterrupt:
        return 0


def cmd_send(args) -> int:
    """Transfer a payload to a ``repro serve`` endpoint over real sockets."""
    import asyncio
    import json

    from .netio import (ImpairmentProfile, TransferAbort, TransferTimeout,
                        send_payload)
    from .registry import make_controller
    from .telemetry import Recorder, format_summary, write_csv, write_jsonl

    host, _, port_text = args.target.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"target must be HOST:PORT, got {args.target!r}",
              file=sys.stderr)
        return 2
    profile = ImpairmentProfile(
        loss=args.loss, delay=args.delay / 1000.0,
        jitter=args.jitter / 1000.0, reorder_probability=args.reorder,
        reorder_extra=args.reorder_extra / 1000.0, ack_loss=args.ack_loss,
        seed=args.impair_seed)
    from .sanitize import activate

    recorder = Recorder() if args.out or args.trace_summary else None
    controller = make_controller(args.cca, seed=args.seed)
    payload = bytes(args.bytes)
    sanitizer = _make_sanitizer(args)
    try:
        with activate(sanitizer):
            result = asyncio.run(send_payload(
                host, int(port_text), controller, payload, mss=args.mss,
                impairment=profile, seed=args.impair_seed, recorder=recorder,
                timeout=args.timeout, initial_seq=args.isn, cca_name=args.cca,
                max_consecutive_rtos=args.max_rtos))
    except TransferAbort as exc:
        if args.json:
            print(json.dumps({"aborted": exc.summary()}, sort_keys=True))
        else:
            print(f"transfer aborted: {exc} (reason={exc.reason})",
                  file=sys.stderr)
        return 3
    except TransferTimeout as exc:
        if args.json:
            print(json.dumps({"aborted": {"reason": "timeout",
                                          "error": str(exc)}},
                             sort_keys=True))
        else:
            print(f"transfer timed out: {exc}", file=sys.stderr)
        return 3
    _print_sanitizer(sanitizer)
    if args.json:
        print(json.dumps(result.summary(), sort_keys=True))
    else:
        print(f"{args.cca}: {result.bytes_total} bytes in "
              f"{result.duration:.3f}s "
              f"(throughput {result.throughput_mbps:.2f} Mbps), "
              f"srtt={result.srtt * 1e3:.1f} ms, "
              f"loss={result.loss_rate:.2%}, "
              f"{result.retransmissions} retransmissions")
    if result.telemetry is not None:
        if args.out:
            if args.format == "csv":
                records = write_csv(result.telemetry, args.out)
            else:
                records = write_jsonl(result.telemetry, args.out)
            print(f"wrote {records} {args.format} records to {args.out}")
        if args.trace_summary:
            print(format_summary(result.telemetry, tail=args.tail))
    return 0 if result.bytes_acked >= result.bytes_total else 1


def cmd_chaos(args) -> int:
    """Run seeded chaos scenarios against a real loopback netio server."""
    import json

    from .netio.chaos import run_chaos
    from .telemetry import Recorder, write_jsonl

    recorder = Recorder() if args.out else None
    try:
        reports = run_chaos(names=args.scenario or None, seed=args.seed,
                            recorder=recorder)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    status = 0
    for report in reports:
        if args.json:
            print(json.dumps(report.summary(), sort_keys=True), flush=True)
        else:
            print(report, flush=True)
            for check in report.checks:
                if not check.passed:
                    print(f"  {check}", flush=True)
            if report.traceback:
                print(report.traceback, file=sys.stderr)
        status |= not report.passed
    if args.out and recorder is not None:
        telemetry = recorder.finish(meta={"suite": "chaos",
                                          "seed": args.seed})
        records = write_jsonl(telemetry, args.out)
        if not args.json:
            print(f"wrote {records} telemetry records to {args.out}")
    return status


def cmd_replay(args) -> int:
    """Re-execute a captured failure bundle and report the verdict.

    Exit status: 0 = the recorded exception was reproduced exactly,
    2 = the replay raised a *different* exception (under forced
    sanitizers, often an earlier invariant violation on the same root
    cause), 1 = the replay completed without error.
    """
    import json

    from .sanitize.replay import replay

    try:
        report = replay(args.bundle, sanitize=not args.no_sanitize)
    except (OSError, ValueError) as exc:
        print(f"cannot replay {args.bundle!r}: {exc}", file=sys.stderr)
        return 3
    if args.json:
        print(json.dumps(report.to_json(), sort_keys=True))
    else:
        for warning in report.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        print(f"recorded:  {report.original_type}: "
              f"{report.original_message}")
        if report.replayed_type:
            print(f"replayed:  {report.replayed_type}: "
                  f"{report.replayed_message}")
        else:
            print("replayed:  (completed without error)")
        print(f"verdict:   {report.verdict}"
              + (f"  [{report.audits} sanitizer audits]"
                 if report.sanitize else ""))
        if report.verdict == "different-error" and report.replayed_traceback:
            print(report.replayed_traceback, file=sys.stderr)
    return {"reproduced": 0, "no-error": 1}.get(report.verdict, 2)


def cmd_diff(args) -> int:
    """Differential oracle: same job, two configurations, equal metrics."""
    import json

    from .parallel.jobs import single_flow_job
    from .sanitize.diff import run_diff
    from .scenarios.presets import named_presets

    presets = named_presets()
    if args.scenario not in presets:
        print(f"unknown scenario {args.scenario!r}; choose from "
              f"{', '.join(sorted(presets))}", file=sys.stderr)
        return 2
    if args.churn:
        from .scale import churn_job, churn_preset

        try:
            spec = churn_preset(args.churn)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        job = churn_job(spec, args.cca, presets[args.scenario],
                        seed=args.seed, duration=args.duration)
    else:
        job = single_flow_job(args.cca, presets[args.scenario],
                              seed=args.seed, duration=args.duration)
    modes = ("fork", "telemetry", "sanitize", "engine") if args.mode == "all" \
        else (args.mode,)
    status = 0
    for mode in modes:
        report = run_diff(job, mode=mode, tolerance=args.tolerance)
        if args.json:
            print(json.dumps(report.to_json(), sort_keys=True), flush=True)
        else:
            verdict = "EQUAL" if report.equal else \
                f"DIVERGED on {len(report.discrepancies)} metric(s)"
            print(f"{mode}: {report.label_a} vs {report.label_b} — "
                  f"{verdict} ({len(report.fingerprint_a)} metrics, "
                  f"tolerance {report.tolerance})", flush=True)
            for note in report.notes:
                print(f"  note: {note}")
            for disc in report.discrepancies[:10]:
                print(f"  {disc}")
        status |= not report.equal
    return status


def cmd_bench(args) -> int:
    """Standing perf benchmarks: run, write artifacts, gate on baselines."""
    from .bench import (compare_reports, has_failures, load_baselines,
                        registry, run_bench)

    if args.list_workloads:
        for name, workload in sorted(registry().items()):
            print(f"{name}: {workload.description}")
        return 0
    names = [n.strip() for n in args.workloads.split(",") if n.strip()] \
        if args.workloads else None
    try:
        docs = run_bench(names, outdir=args.out, warmup=args.warmup,
                         repeats=args.repeats, seed=args.seed,
                         scale=args.scale, profile=args.profile, echo=print)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    status = 1 if any(d["status"] == "failed" for d in docs) else 0
    if args.compare:
        baselines = load_baselines(args.compare)
        verdicts = compare_reports(docs, baselines,
                                   tolerance=args.tolerance)
        for verdict in verdicts:
            print(verdict)
        if has_failures(verdicts):
            status = 1
    return status


def main(argv=None) -> int:
    from . import __version__

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help=COMMANDS["list"])

    def add_flow_args(p) -> None:
        p.add_argument("cca")
        p.add_argument("--bw", type=float, default=48.0, help="Mbps")
        p.add_argument("--lte", choices=("stationary", "walking", "driving",
                                         "moving"), help="use an LTE trace")
        p.add_argument("--rtt", type=float, default=100.0, help="ms")
        p.add_argument("--buffer", type=float, default=None, help="KB")
        p.add_argument("--loss", type=float, default=0.0)
        p.add_argument("--duration", type=float, default=20.0)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--aqm", choices=("droptail", "codel"),
                       default="droptail")
        p.add_argument("--sanitize", action="store_true",
                       help="run with the runtime invariant layer on")

    run = sub.add_parser("run", help="run one flow through a bottleneck")
    add_flow_args(run)

    trace = sub.add_parser(
        "trace", help="run one traced flow and inspect/export its telemetry")
    add_flow_args(trace)
    trace.add_argument("--out", default=None,
                       help="write the trace to this file")
    trace.add_argument("--format", choices=("jsonl", "csv"), default="jsonl",
                       help="export format for --out (default: jsonl)")
    trace.add_argument("--tail", type=int, default=10,
                       help="also print the last N events (0 disables)")

    exp = sub.add_parser("experiment", help="print one paper artifact")
    exp.add_argument("name")
    exp.add_argument("--jobs", type=int, default=1,
                     help="worker processes for sweep grids "
                          "(1 = serial, 0 = one per CPU)")
    exp.add_argument("--no-cache", action="store_true",
                     help="bypass the on-disk result cache")
    exp.add_argument("--cache-dir", default=None,
                     help="result cache location "
                          "(default: $REPRO_CACHE_DIR or ~/.cache/repro/sweeps)")
    exp.add_argument("--timeout", type=float, default=None,
                     help="per-job wall-time bound in seconds (parallel mode)")
    exp.add_argument("--quiet", action="store_true",
                     help="suppress progress output on stderr")

    train = sub.add_parser(
        "train", help="train a policy: parallel rollouts, checkpoints, "
                      "structured logs, eval-gated promotion")
    train.add_argument("kind", nargs="?",
                       help="policy kind (libra, aurora, orca, modified-rl)")
    train.add_argument("--all", action="store_true",
                       help="train every policy kind in sequence")
    train.add_argument("--workers", type=int, default=1,
                       help="parallel rollout workers (default 1)")
    train.add_argument("--iterations", type=int, default=30,
                       help="training iterations (PPO epochs)")
    train.add_argument("--steps", type=int, default=1920,
                       help="environment steps collected per iteration")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--hidden", default="64,64",
                       help="comma-separated hidden layer sizes")
    train.add_argument("--episode-steps", type=int, default=96)
    train.add_argument("--backend", choices=("auto", "serial", "fork"),
                       default="auto",
                       help="rollout execution backend (default auto: fork "
                            "when --workers > 1 and the platform supports it)")
    train.add_argument("--timeout", type=float, default=None,
                       help="per-rollout-task wall-time bound (fork mode)")
    train.add_argument("--checkpoint-every", type=int, default=0,
                       help="checkpoint cadence in iterations "
                            "(0 = final iteration only)")
    train.add_argument("--checkpoint-dir", default=None,
                       help="checkpoint directory "
                            "(default: checkpoints/<kind> when needed)")
    train.add_argument("--resume", action="store_true",
                       help="resume from the latest checkpoint in "
                            "--checkpoint-dir")
    train.add_argument("--log", default=None,
                       help="write a structured JSONL training log here")
    train.add_argument("--save", default=None,
                       help="write the final policy weights to this .npz")
    train.add_argument("--promote", action="store_true",
                       help="run the evaluation gate and replace the bundled "
                            "asset only if the candidate beats it "
                            "(exit 1 when the gate refuses)")
    train.add_argument("--assets-dir", default=None,
                       help="asset directory for --promote/--verify-assets "
                            "(default: the bundled repro/assets)")
    train.add_argument("--gate-duration", type=float, default=10.0,
                       help="seconds of simulated time per gate panel run")
    train.add_argument("--gate-seeds", default="1,2",
                       help="comma-separated seeds per gate panel scenario")
    train.add_argument("--verify-assets", action="store_true",
                       help="check bundled .npz files against MANIFEST.json "
                            "and exit")
    train.add_argument("--quiet", action="store_true",
                       help="suppress per-iteration progress lines")

    serve = sub.add_parser("serve", help=COMMANDS["serve"])
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="UDP port (0 = ephemeral; the chosen port is "
                            "printed on the 'netio: listening' line)")
    serve.add_argument("--one", action="store_true",
                       help="exit after the first completed transfer "
                            "(exit 1 if it was incomplete)")
    serve.add_argument("--json", action="store_true",
                       help="print one JSON summary line per transfer")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-transfer progress on stderr")
    serve.add_argument("--idle-timeout", type=float, default=30.0,
                       help="seconds without a datagram before a session "
                            "is reaped with an RST (default 30)")
    serve.add_argument("--max-sessions", type=int, default=256,
                       help="concurrent sessions before SYNs are refused "
                            "(default 256)")
    serve.add_argument("--buffer-cap", type=int, default=4 * 1024 * 1024,
                       help="per-session reorder-buffer byte cap "
                            "(default 4 MiB)")
    serve.add_argument("--drain-deadline", type=float, default=15.0,
                       help="seconds a SIGTERM drain waits for in-flight "
                            "transfers before force-resetting (default 15)")
    serve.add_argument("--out", default=None,
                       help="write server telemetry JSONL here on drain")
    serve.add_argument("--sanitize", action="store_true",
                       help="check rx-buffer invariants on every session")

    send = sub.add_parser("send", help=COMMANDS["send"])
    send.add_argument("target", help="server address as HOST:PORT")
    send.add_argument("--cca", default="libra:cubic",
                      help="controller name (see `repro list`)")
    send.add_argument("--bytes", type=int, default=1_048_576,
                      help="payload size in bytes (default 1 MiB)")
    send.add_argument("--mss", type=int, default=1200,
                      help="datagram payload size (default 1200)")
    send.add_argument("--seed", type=int, default=1,
                      help="controller seed")
    send.add_argument("--isn", type=int, default=0,
                      help="initial sequence number (mod 2^16)")
    send.add_argument("--loss", type=float, default=0.0,
                      help="loopback impairment: data loss probability")
    send.add_argument("--delay", type=float, default=0.0,
                      help="loopback impairment: one-way delay in ms")
    send.add_argument("--jitter", type=float, default=0.0,
                      help="loopback impairment: uniform jitter in ms")
    send.add_argument("--reorder", type=float, default=0.0,
                      help="loopback impairment: reorder probability")
    send.add_argument("--reorder-extra", type=float, default=0.0,
                      help="extra holdback for reordered datagrams in ms")
    send.add_argument("--ack-loss", type=float, default=0.0,
                      help="loopback impairment: ACK loss probability")
    send.add_argument("--impair-seed", type=int, default=0,
                      help="impairment RNG seed")
    send.add_argument("--timeout", type=float, default=120.0,
                      help="abort the transfer after this many seconds")
    send.add_argument("--max-rtos", type=int, default=6,
                      help="consecutive RTOs without an ACK before the "
                           "transfer aborts with rto-exhausted (default 6)")
    send.add_argument("--json", action="store_true",
                      help="print a machine-readable JSON summary")
    send.add_argument("--out", default=None,
                      help="write the flow telemetry to this file")
    send.add_argument("--format", choices=("jsonl", "csv"), default="jsonl",
                      help="export format for --out (default: jsonl)")
    send.add_argument("--trace-summary", action="store_true",
                      help="print the telemetry summary after the transfer")
    send.add_argument("--tail", type=int, default=10,
                      help="events shown by --trace-summary (0 disables)")
    send.add_argument("--sanitize", action="store_true",
                      help="check ARQ seq-ring invariants during the "
                           "transfer")

    chaos = sub.add_parser("chaos", help=COMMANDS["chaos"])
    chaos.add_argument("--scenario", action="append", default=None,
                       help="scenario to run (repeatable; default: all — "
                            "kill-client, syn-flood, fuzz, server-restart, "
                            "drain)")
    chaos.add_argument("--seed", type=int, default=1,
                       help="scenario RNG seed (default 1)")
    chaos.add_argument("--json", action="store_true",
                       help="print one JSON report line per scenario")
    chaos.add_argument("--out", default=None,
                       help="write the combined chaos telemetry JSONL here")

    replay = sub.add_parser("replay", help=COMMANDS["replay"])
    replay.add_argument("bundle",
                        help="repro bundle captured under $REPRO_FAILURES_DIR")
    replay.add_argument("--no-sanitize", action="store_true",
                        help="replay in the pristine configuration instead "
                             "of forcing the invariant layer on")
    replay.add_argument("--json", action="store_true",
                        help="print a machine-readable verdict")

    diff = sub.add_parser("diff", help=COMMANDS["diff"])
    diff.add_argument("--cca", default="c-libra",
                      help="controller name (default c-libra)")
    diff.add_argument("--scenario", default="wired-48",
                      help="scenario preset (default wired-48; see "
                           "`repro list` scenarios)")
    diff.add_argument("--seed", type=int, default=1)
    diff.add_argument("--churn", default=None,
                      help="run a named churn workload (e.g. churn-smoke) "
                           "instead of one long-lived flow")
    diff.add_argument("--duration", type=float, default=None,
                      help="simulated seconds (default: scenario default)")
    diff.add_argument("--mode", default="all",
                      choices=("all", "fork", "telemetry", "sanitize",
                               "engine"),
                      help="which configuration pair to compare "
                           "(default: all)")
    diff.add_argument("--tolerance", type=float, default=0.0,
                      help="relative metric tolerance (default 0.0 = exact)")
    diff.add_argument("--json", action="store_true",
                      help="print one JSON report line per mode")

    bench = sub.add_parser("bench", help=COMMANDS["bench"])
    bench.add_argument("--workloads", default=None,
                       help="comma-separated workload names (default: the "
                            "standing set; --list-workloads to enumerate)")
    bench.add_argument("--list-workloads", action="store_true",
                       help="list registered workloads and exit")
    bench.add_argument("--out", default="bench-artifacts",
                       help="artifact directory (default: bench-artifacts)")
    bench.add_argument("--warmup", type=int, default=1,
                       help="untimed warmup runs per workload (default 1)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repeats; the minimum wall time is "
                            "reported (default 3)")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--scale", type=float, default=1.0,
                       help="duration/size multiplier — CI smoke runs at "
                            "a fraction of the standing durations")
    bench.add_argument("--profile", action="store_true",
                       help="also write a cProfile top-25 cumulative dump "
                            "per workload (PROFILE_<name>.txt)")
    bench.add_argument("--compare", default=None,
                       help="baseline BENCH_*.json file or directory; "
                            "exits 1 on any regression verdict")
    bench.add_argument("--tolerance", type=float, default=0.2,
                       help="relative packets/sec tolerance for --compare "
                            "(default 0.2)")

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "train":
        return cmd_train(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "send":
        return cmd_send(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "replay":
        return cmd_replay(args)
    if args.command == "diff":
        return cmd_diff(args)
    if args.command == "bench":
        return cmd_bench(args)
    return cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
