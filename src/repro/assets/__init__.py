"""Pretrained policy weights bundled with the package.

The evaluation experiments need trained DRL components; shipping the
weights keeps every bench deterministic and fast.  Regenerate them with
``repro train --all`` (or :func:`repro.training.train_and_save_all`);
a single policy is only replaced through the evaluation gate
(``repro train <kind> --promote``), which refuses candidates that do
not beat the shipped incumbent on the simnet panel.

``MANIFEST.json`` records a sha256 digest and schema version for every
bundled ``.npz``.  :func:`load_policy` checks the digest on every cold
load, so silent corruption (truncated checkout, bad merge, partial
copy) surfaces as an actionable error instead of garbage behaviour
deep inside an experiment.  ``repro train --verify-assets`` prints the
full integrity report.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile

from ..rl.policy import GaussianActorCritic

_ASSET_DIR = os.path.dirname(os.path.abspath(__file__))

#: policies expected to ship with the package
POLICY_KINDS = ("libra", "aurora", "orca", "modified-rl")

MANIFEST_NAME = "MANIFEST.json"

#: bump when the manifest layout changes incompatibly
MANIFEST_SCHEMA_VERSION = 1

#: schema of the policy ``.npz`` payload (weights + obs/act/hidden header)
POLICY_NPZ_SCHEMA_VERSION = 1

_cache: dict[str, GaussianActorCritic] = {}


def asset_path(kind: str) -> str:
    return os.path.join(_ASSET_DIR, f"{kind}.npz")


def manifest_path(asset_dir: str | None = None) -> str:
    return os.path.join(asset_dir or _ASSET_DIR, MANIFEST_NAME)


def _sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def load_manifest(asset_dir: str | None = None) -> dict | None:
    """The parsed manifest, or ``None`` when no manifest file exists."""
    path = manifest_path(asset_dir)
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise RuntimeError(
            f"asset manifest {path} is unreadable "
            f"({type(exc).__name__}: {exc}) — regenerate with "
            f"`repro train --verify-assets` after restoring the assets, "
            f"or `repro train --all` to rebuild everything") from exc
    if manifest.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        raise RuntimeError(
            f"asset manifest {path} has schema "
            f"v{manifest.get('schema_version')}, this code reads "
            f"v{MANIFEST_SCHEMA_VERSION} — regenerate it")
    return manifest


def _write_manifest(manifest: dict, asset_dir: str | None = None) -> str:
    directory = asset_dir or _ASSET_DIR
    path = manifest_path(directory)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".manifest-",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path


def _manifest_entry(path: str) -> dict:
    return {
        "sha256": _sha256(path),
        "schema_version": POLICY_NPZ_SCHEMA_VERSION,
        "bytes": os.path.getsize(path),
    }


def update_manifest_entry(kind: str, asset_dir: str | None = None) -> str:
    """Refresh one policy's manifest entry after its ``.npz`` changed.

    Also drops the policy from the in-process cache, so the next
    :func:`load_policy` call sees the new weights — the promotion path
    in :mod:`repro.train.gate` relies on both.
    """
    directory = asset_dir or _ASSET_DIR
    path = os.path.join(directory, f"{kind}.npz")
    manifest = load_manifest(directory) or {
        "schema_version": MANIFEST_SCHEMA_VERSION, "assets": {}}
    manifest.setdefault("assets", {})[kind] = _manifest_entry(path)
    if directory == _ASSET_DIR:
        _cache.pop(kind, None)
    return _write_manifest(manifest, directory)


def refresh_manifest(asset_dir: str | None = None) -> str:
    """Rebuild the manifest from every ``<kind>.npz`` present on disk."""
    directory = asset_dir or _ASSET_DIR
    manifest = {"schema_version": MANIFEST_SCHEMA_VERSION, "assets": {}}
    for kind in POLICY_KINDS:
        path = os.path.join(directory, f"{kind}.npz")
        if os.path.exists(path):
            manifest["assets"][kind] = _manifest_entry(path)
    if directory == _ASSET_DIR:
        _cache.clear()
    return _write_manifest(manifest, directory)


def verify_assets(asset_dir: str | None = None) -> list[dict]:
    """Integrity report: one row per policy kind.

    ``status`` is one of ``ok``, ``missing-file``, ``missing-entry``
    (file exists but is not in the manifest), ``hash-mismatch``,
    ``corrupt`` (hash matches nothing loadable), or ``no-manifest``.
    """
    directory = asset_dir or _ASSET_DIR
    manifest = load_manifest(directory)
    rows = []
    for kind in POLICY_KINDS:
        path = os.path.join(directory, f"{kind}.npz")
        row = {"kind": kind, "path": path}
        if not os.path.exists(path):
            row.update(status="missing-file",
                       detail="asset file does not exist")
        elif manifest is None:
            row.update(status="no-manifest",
                       detail=f"{MANIFEST_NAME} missing — run "
                              f"repro.assets.refresh_manifest()")
        else:
            entry = manifest.get("assets", {}).get(kind)
            if entry is None:
                row.update(status="missing-entry",
                           detail=f"no manifest entry for {kind!r}")
            elif _sha256(path) != entry.get("sha256"):
                row.update(status="hash-mismatch",
                           detail="sha256 differs from manifest — the file "
                                  "changed outside the promotion path")
            else:
                try:
                    _load(path)
                except (RuntimeError, FileNotFoundError) as exc:
                    row.update(status="corrupt", detail=str(exc))
                else:
                    row.update(status="ok", detail="")
        rows.append(row)
    return rows


def _check_manifest(kind: str, path: str) -> None:
    """Raise if ``path`` contradicts its manifest entry (if any exists)."""
    directory = os.path.dirname(path)
    manifest = load_manifest(directory)
    if manifest is None:
        return  # unmanaged directory (tests, scratch dirs) — nothing to check
    entry = manifest.get("assets", {}).get(kind)
    if entry is None:
        return
    schema = entry.get("schema_version")
    if schema != POLICY_NPZ_SCHEMA_VERSION:
        raise RuntimeError(
            f"pretrained policy {path} has npz schema v{schema}, this code "
            f"reads v{POLICY_NPZ_SCHEMA_VERSION} — regenerate with "
            f"`repro train {kind} --promote`")
    if _sha256(path) != entry.get("sha256"):
        raise RuntimeError(
            f"pretrained policy {path} does not match its manifest sha256 — "
            f"the file was modified outside the promotion path; regenerate "
            f"with `repro train {kind} --promote` or restore the original "
            f"and run `repro train --verify-assets`")


def _load(path: str) -> GaussianActorCritic:
    """Load weights, turning corruption into an actionable error."""
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"pretrained policy {path} missing — regenerate with "
            f"`python examples/train_policy.py --all`")
    try:
        return GaussianActorCritic.load(path)
    except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as exc:
        raise RuntimeError(
            f"pretrained policy {path} is corrupt or truncated "
            f"({type(exc).__name__}: {exc}) — regenerate with "
            f"`python examples/train_policy.py --all`") from exc


def load_policy(kind: str, fresh: bool = False) -> GaussianActorCritic:
    """Load a bundled pretrained policy by kind.

    Cold loads are verified against ``MANIFEST.json`` (sha256 + schema
    version) when the asset directory carries one.  ``fresh=True``
    returns a new instance (callers that mutate state or need
    independent RNG streams); the default shares a cached copy, which
    is safe because inference never mutates the weights.
    """
    if kind not in POLICY_KINDS:
        raise KeyError(f"unknown policy kind {kind!r}; "
                       f"choose from {POLICY_KINDS}")
    path = asset_path(kind)
    if fresh:
        _check_manifest(kind, path)
        return _load(path)
    if kind not in _cache:
        _check_manifest(kind, path)
        _cache[kind] = _load(path)
    return _cache[kind]
