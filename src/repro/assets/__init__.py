"""Pretrained policy weights bundled with the package.

The evaluation experiments need trained DRL components; shipping the
weights keeps every bench deterministic and fast.  Regenerate them with
``python examples/train_policy.py --all`` (or
:func:`repro.training.train_and_save_all`).
"""

from __future__ import annotations

import os
import zipfile

from ..rl.policy import GaussianActorCritic

_ASSET_DIR = os.path.dirname(os.path.abspath(__file__))

#: policies expected to ship with the package
POLICY_KINDS = ("libra", "aurora", "orca", "modified-rl")

_cache: dict[str, GaussianActorCritic] = {}


def asset_path(kind: str) -> str:
    return os.path.join(_ASSET_DIR, f"{kind}.npz")


def _load(path: str) -> GaussianActorCritic:
    """Load weights, turning corruption into an actionable error."""
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"pretrained policy {path} missing — regenerate with "
            f"`python examples/train_policy.py --all`")
    try:
        return GaussianActorCritic.load(path)
    except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as exc:
        raise RuntimeError(
            f"pretrained policy {path} is corrupt or truncated "
            f"({type(exc).__name__}: {exc}) — regenerate with "
            f"`python examples/train_policy.py --all`") from exc


def load_policy(kind: str, fresh: bool = False) -> GaussianActorCritic:
    """Load a bundled pretrained policy by kind.

    ``fresh=True`` returns a new instance (callers that mutate state or
    need independent RNG streams); the default shares a cached copy,
    which is safe because inference never mutates the weights.
    """
    if kind not in POLICY_KINDS:
        raise KeyError(f"unknown policy kind {kind!r}; "
                       f"choose from {POLICY_KINDS}")
    if fresh:
        return _load(asset_path(kind))
    if kind not in _cache:
        _cache[kind] = _load(asset_path(kind))
    return _cache[kind]
