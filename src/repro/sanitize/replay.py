"""Deterministic failure replay: on-disk repro bundles for failed jobs.

When ``$REPRO_FAILURES_DIR`` is set, every job that raises under error
capture — in the serial path or inside a fork-pool child, which inherits
the environment — leaves a JSON *repro bundle* behind: the canonical job
spec (human-readable), the pickled :class:`~repro.parallel.jobs.Job`
(the execution path — jobs are picklable by construction, it is how they
cross the pool boundary), the seed, a source/asset digest
(:func:`~repro.parallel.cache.code_salt`), and the exception that was
raised.  ``repro replay <bundle>`` re-executes the job in-process with
sanitizers forced on and compares the outcome against the recorded
exception.

Bundles are plain files meant for the machine (and team) that captured
them; like the result cache they use pickle, so only replay bundles you
produced yourself.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import tempfile
import traceback
from dataclasses import dataclass, field

from .invariants import SimSanitizer, activate

#: directory that captures repro bundles; unset = capture disabled
FAILURES_DIR_ENV = "REPRO_FAILURES_DIR"

#: bundle schema version (bump on incompatible layout changes)
BUNDLE_FORMAT = 1


def failures_dir() -> str | None:
    """The bundle capture directory, or ``None`` when capture is off."""
    return os.environ.get(FAILURES_DIR_ENV) or None


def write_bundle(job, exc: BaseException, tb: str = "",
                 directory: str | None = None) -> str:
    """Write a repro bundle for ``job`` failing with ``exc``; returns its path.

    The filename is derived from the job's canonical spec, so the same
    job failing twice overwrites its own bundle (deterministic failures
    produce identical content) instead of accumulating duplicates.
    """
    from ..parallel.cache import code_salt
    from ..parallel.jobs import canonical_spec

    directory = directory or failures_dir()
    if directory is None:
        raise ValueError(f"no bundle directory (set ${FAILURES_DIR_ENV})")
    os.makedirs(directory, exist_ok=True)
    spec = canonical_spec(job)
    spec_json = json.dumps(spec, sort_keys=True)
    digest = hashlib.sha256(spec_json.encode()).hexdigest()[:12]
    bundle = {
        "format": BUNDLE_FORMAT,
        "spec": spec,
        "seed": getattr(job, "seed", None),
        "code_salt": code_salt(),
        "error_type": _type_name(exc),
        "error_message": str(exc),
        "traceback": tb,
        "job_pickle": base64.b64encode(pickle.dumps(job)).decode("ascii"),
    }
    path = os.path.join(directory, f"failure-{_label(job)}-{digest}.json")
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(bundle, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def maybe_write_bundle(job, exc: BaseException, tb: str = "") -> str:
    """Best-effort :func:`write_bundle` gated on :data:`FAILURES_DIR_ENV`.

    Returns the bundle path, or ``""`` when capture is disabled or the
    write itself fails — a failing job must surface its own error, never
    a bundling error.
    """
    if failures_dir() is None:
        return ""
    try:
        return write_bundle(job, exc, tb)
    except Exception:
        return ""


def load_bundle(path: str) -> dict:
    """Read and validate a repro bundle."""
    with open(path) as fh:
        bundle = json.load(fh)
    if bundle.get("format") != BUNDLE_FORMAT:
        raise ValueError(f"unsupported bundle format "
                         f"{bundle.get('format')!r} in {path}")
    return bundle


@dataclass
class ReplayReport:
    """Outcome of re-executing a captured failure.

    ``verdict`` is one of ``reproduced`` (same exception type and
    message), ``different-error`` (it raised, but not the recorded
    exception — under forced sanitizers this can be an *earlier*
    invariant violation on the same root cause) and ``no-error`` (the
    run completed; the failure was environmental or has been fixed).
    """

    verdict: str
    original_type: str
    original_message: str
    replayed_type: str = ""
    replayed_message: str = ""
    replayed_traceback: str = ""
    sanitize: bool = True
    audits: int = 0
    salt_mismatch: bool = False
    warnings: list = field(default_factory=list)

    @property
    def reproduced(self) -> bool:
        return self.verdict == "reproduced"

    def to_json(self) -> dict:
        return {"verdict": self.verdict, "sanitize": self.sanitize,
                "original": {"type": self.original_type,
                             "message": self.original_message},
                "replayed": {"type": self.replayed_type,
                             "message": self.replayed_message},
                "audits": self.audits, "salt_mismatch": self.salt_mismatch,
                "warnings": self.warnings}


def replay(path: str, sanitize: bool = True) -> ReplayReport:
    """Re-execute the job captured in ``path`` in-process.

    With ``sanitize`` (the default) the run executes under a fresh
    :class:`~repro.sanitize.invariants.SimSanitizer`, so state corruption
    upstream of the recorded crash surfaces as a structured
    :class:`~repro.sanitize.errors.InvariantViolation` instead of the
    (possibly obscure) original exception.  Pass ``sanitize=False`` to
    reproduce the run bit-for-bit in its pristine configuration.
    """
    from ..parallel.cache import code_salt

    bundle = load_bundle(path)
    job = pickle.loads(base64.b64decode(bundle["job_pickle"]))
    report = ReplayReport(verdict="no-error",
                          original_type=bundle["error_type"],
                          original_message=bundle["error_message"],
                          sanitize=sanitize)
    if bundle.get("code_salt") and bundle["code_salt"] != code_salt():
        report.salt_mismatch = True
        report.warnings.append(
            "source/asset digest changed since capture — the replay runs "
            "against different code and may legitimately diverge")
    sanitizer = SimSanitizer() if sanitize else None
    try:
        with activate(sanitizer):
            job.run()
    except Exception as exc:
        report.replayed_type = _type_name(exc)
        report.replayed_message = str(exc)
        report.replayed_traceback = traceback.format_exc()
        same = (report.replayed_type == report.original_type
                and report.replayed_message == report.original_message)
        report.verdict = "reproduced" if same else "different-error"
    if sanitizer is not None:
        report.audits = sanitizer.audits
    return report


def _type_name(exc: BaseException) -> str:
    cls = type(exc)
    module = cls.__module__
    if module in ("builtins", "__main__"):
        return cls.__qualname__
    return f"{module}.{cls.__qualname__}"


def _label(job) -> str:
    flows = getattr(job, "flows", None)
    scenario = getattr(job, "scenario", None)
    if flows is None or scenario is None:
        name = getattr(job, "label", None) or type(job).__qualname__
    else:
        name = "+".join(flow.cca for flow in flows) + "-" + scenario.name
    safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in name)
    seed = getattr(job, "seed", None)
    return f"{safe}-seed{seed}" if seed is not None else safe
