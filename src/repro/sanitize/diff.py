"""Differential oracle: one job, two configurations, identical metrics.

The repo's execution guarantees are strong — fork-pool results are
byte-identical to serial ones, and telemetry must never perturb the run
it observes.  This module makes those guarantees *checkable*: it runs
the same :class:`~repro.parallel.jobs.Job` under two configurations,
reduces each :class:`~repro.simnet.network.RunResult` to a metric
fingerprint, and asserts the fingerprints agree within a tolerance
(default ``0.0`` — exact, because the guarantees are exact).

Built-in modes (``repro diff --mode ...``):

- ``fork`` — in-process serial execution vs. one fork-pool child;
- ``telemetry`` — telemetry off vs. on (same seeds, recorder attached);
- ``sanitize`` — sanitizers off vs. on (checks must observe, not perturb);
- ``engine`` — reference event-per-hop core vs. the batched fast path
  (:mod:`repro.simnet.batched`), at exact tolerance: the batched engine
  claims bit-identical results, and this is the oracle that holds it to
  that claim.

:func:`diff_jobs` compares two arbitrary jobs — the general hook the
``engine`` mode is built on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: fingerprint fields whose disagreement we report per flow
_FLOW_FIELDS = ("delivered_bytes", "sent_packets", "acked_packets",
                "lost_packets", "rtt_sum", "rtt_count", "min_rtt", "max_rtt")

#: run-level fingerprint fields
_RUN_FIELDS = ("duration", "link_served_bytes", "link_capacity_bytes",
               "link_dropped_packets", "link_random_drops")


def metric_fingerprint(result) -> dict:
    """Reduce a :class:`RunResult` to a flat {metric: number} dict.

    Only run-semantics metrics participate — telemetry artifacts,
    controller objects and service logs are observability payloads, not
    results, so the ``telemetry`` mode compares what must be invariant.
    """
    fp = {}
    for name in _RUN_FIELDS:
        fp[name] = float(getattr(result, name))
    for stats in result.flows:
        prefix = f"flow{stats.flow_id}."
        for name in _FLOW_FIELDS:
            fp[prefix + name] = float(getattr(stats, name))
        # Finite flows: the FIN stamp is run semantics (it is the FCT).
        # None maps to nan, which compare_fingerprints treats as equal
        # to nan — long-lived flows agree trivially.
        fin = stats.fin_time
        fp[prefix + "fin_time"] = float("nan") if fin is None else float(fin)
    fp["queue_samples"] = float(len(result.queue_samples))
    if result.queue_samples:
        fp["queue_bytes_sum"] = float(sum(b for _, b in result.queue_samples))
    return fp


@dataclass
class Discrepancy:
    """One fingerprint metric on which the two runs disagree."""

    metric: str
    value_a: float
    value_b: float

    def __str__(self) -> str:
        return f"{self.metric}: {self.value_a!r} != {self.value_b!r}"


@dataclass
class DiffReport:
    """Outcome of one differential comparison."""

    mode: str
    label_a: str
    label_b: str
    tolerance: float
    discrepancies: list = field(default_factory=list)
    fingerprint_a: dict = field(default_factory=dict)
    fingerprint_b: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)

    @property
    def equal(self) -> bool:
        return not self.discrepancies

    def to_json(self) -> dict:
        return {"mode": self.mode, "a": self.label_a, "b": self.label_b,
                "tolerance": self.tolerance, "equal": self.equal,
                "metrics_compared": len(self.fingerprint_a),
                "discrepancies": [{"metric": d.metric, "a": d.value_a,
                                   "b": d.value_b}
                                  for d in self.discrepancies],
                "notes": self.notes}

    def raise_if_unequal(self) -> "DiffReport":
        if not self.equal:
            head = ", ".join(str(d) for d in self.discrepancies[:4])
            raise DifferentialMismatch(
                f"{self.label_a} vs {self.label_b} diverged on "
                f"{len(self.discrepancies)} metric(s) "
                f"(tolerance {self.tolerance}): {head}", report=self)
        return self


class DifferentialMismatch(AssertionError):
    """Two configurations of the same job produced different metrics."""

    def __init__(self, message: str, report: DiffReport | None = None):
        super().__init__(message)
        self.report = report


def compare_fingerprints(fp_a: dict, fp_b: dict,
                         tolerance: float = 0.0) -> list:
    """All metrics where the fingerprints disagree beyond ``tolerance``.

    ``tolerance`` is relative (``|a-b| <= tol * max(|a|, |b|, 1)``);
    ``0.0`` demands exact equality, which is the contract for both
    built-in modes.  A metric present in only one fingerprint is always
    a discrepancy.
    """
    discrepancies = []
    for metric in sorted(set(fp_a) | set(fp_b)):
        if metric not in fp_a or metric not in fp_b:
            discrepancies.append(Discrepancy(
                metric, fp_a.get(metric, float("nan")),
                fp_b.get(metric, float("nan"))))
            continue
        a, b = fp_a[metric], fp_b[metric]
        if a == b:  # covers inf == inf; NaN falls through to the check
            continue
        if math.isnan(a) or math.isnan(b):
            if not (math.isnan(a) and math.isnan(b)):
                discrepancies.append(Discrepancy(metric, a, b))
            continue
        if abs(a - b) > tolerance * max(abs(a), abs(b), 1.0):
            discrepancies.append(Discrepancy(metric, a, b))
    return discrepancies


def diff_results(result_a, result_b, mode: str, label_a: str, label_b: str,
                 tolerance: float = 0.0) -> DiffReport:
    """Compare two already-executed runs."""
    fp_a = metric_fingerprint(result_a)
    fp_b = metric_fingerprint(result_b)
    return DiffReport(mode=mode, label_a=label_a, label_b=label_b,
                      tolerance=tolerance,
                      discrepancies=compare_fingerprints(fp_a, fp_b,
                                                         tolerance),
                      fingerprint_a=fp_a, fingerprint_b=fp_b)


def diff_jobs(job_a, job_b, mode: str = "custom", label_a: str = "A",
              label_b: str = "B", tolerance: float = 0.0) -> DiffReport:
    """Run two jobs in-process and compare their fingerprints.

    The engine-A-vs-engine-B hook: once an alternative simulation core
    exists, point two otherwise-identical jobs at the two engines and
    demand equality.
    """
    return diff_results(job_a.run(), job_b.run(), mode=mode,
                        label_a=label_a, label_b=label_b,
                        tolerance=tolerance)


def run_diff(job, mode: str = "fork", tolerance: float = 0.0) -> DiffReport:
    """Execute ``job`` under two configurations selected by ``mode``."""
    if mode == "fork":
        return _diff_fork(job, tolerance)
    if mode == "telemetry":
        return _diff_telemetry(job, tolerance)
    if mode == "sanitize":
        return _diff_sanitize(job, tolerance)
    if mode == "engine":
        return _diff_engine(job, tolerance)
    raise ValueError(f"unknown diff mode {mode!r}; "
                     f"use 'fork', 'telemetry', 'sanitize' or 'engine'")


def _diff_fork(job, tolerance: float) -> DiffReport:
    """Serial in-process execution vs. one fork-pool child."""
    from ..parallel.jobs import execute
    from ..parallel.pool import has_fork, run_jobs

    serial = execute(job).result
    forked = run_jobs([job], workers=2)[0].result
    report = diff_results(serial, forked, mode="fork",
                          label_a="serial", label_b="fork",
                          tolerance=tolerance)
    if not has_fork():
        report.notes.append("fork unavailable on this platform — the "
                            "'fork' leg ran serially too")
    return report


def _diff_telemetry(job, tolerance: float) -> DiffReport:
    """Telemetry must observe the run, never perturb it."""
    from ..parallel.jobs import execute

    plain = execute(job.with_telemetry(False)).result
    traced = execute(job.with_telemetry(True)).result
    if traced.telemetry is None:
        raise RuntimeError("traced leg produced no telemetry artifact")
    return diff_results(plain, traced, mode="telemetry",
                        label_a="telemetry-off", label_b="telemetry-on",
                        tolerance=tolerance)


def _diff_sanitize(job, tolerance: float) -> DiffReport:
    """The invariant layer must observe the run, never perturb it."""
    from ..parallel.jobs import execute

    plain = execute(job.with_sanitize(False)).result
    checked = execute(job.with_sanitize(True)).result
    return diff_results(plain, checked, mode="sanitize",
                        label_a="sanitize-off", label_b="sanitize-on",
                        tolerance=tolerance)


def _diff_engine(job, tolerance: float) -> DiffReport:
    """Reference core vs. the batched fast path, exact by default.

    Both legs run in-process from the same job with only
    ``Scenario.engine`` flipped.  Scenarios where the batched engine
    falls back (CoDel, reorder/delay-spike/ACK faults) still compare —
    the fallback leg must behave exactly like the reference — and the
    report notes which engine actually ran.
    """
    import dataclasses as _dc

    scenario = job.scenario
    job_ref = _dc.replace(job, scenario=scenario.with_(engine="reference"))
    job_bat = _dc.replace(job, scenario=scenario.with_(engine="batched"))
    result_ref = job_ref.run()
    result_bat = job_bat.run()
    report = diff_results(result_ref, result_bat, mode="engine",
                          label_a="reference", label_b="batched",
                          tolerance=tolerance)
    report.notes.append(f"batched leg ran engine={result_bat.engine_used}")
    if result_bat.engine_used != "batched":
        report.notes.append("scenario is outside the batched envelope "
                            "(AQM or fault schedule); the fallback must "
                            "still match the reference exactly")
    return report
