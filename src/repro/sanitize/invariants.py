"""Opt-in runtime invariant layer for the simulator and the datapath.

A :class:`SimSanitizer` holds the per-run checking state.  It is wired
the same way telemetry's recorder is: every instrumented component keeps
a ``sanitizer`` attribute that is ``None`` by default, and each guarded
hot-path site pays exactly one ``is not None`` attribute check when the
layer is disabled (the structural tests in ``tests/sanitize`` assert
that no sanitizer method — or even constructor — runs on an
unsanitized run).  Pure-function sites that have no object to hang an
attribute on (Eq. 1 utility, the RL reward) consult the module-level
:data:`ACTIVE` slot instead, which costs one module-attribute load.

Checks come in two flavours:

- **per-event checks** — O(1) validations on the hot path (RTT/srtt
  finiteness, event-time monotonicity, ack-window membership);
- **audits** — O(state) conservation sweeps run at a bounded cadence
  (the dumbbell's queue-sampling tick, every ``AUDIT_EVERY``-th netio
  ACK) and once at the end of a run, re-deriving every cached counter
  from first principles.

A failed check raises :class:`~repro.sanitize.errors.InvariantViolation`
with the full context; nothing is ever logged-and-ignored.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager

from .errors import InvariantViolation

#: the process-wide active sanitizer (``None`` = disabled); hot pure
#: functions check this slot, components capture it at construction
ACTIVE = None

#: set (to anything but ``""``/``"0"``) to force sanitizers on for every
#: job — honored inside ``Job.run`` so fork-pool children inherit it
SANITIZE_ENV = "REPRO_SANITIZE"


def env_forced() -> bool:
    """Whether :data:`SANITIZE_ENV` forces the layer on process-wide."""
    return os.environ.get(SANITIZE_ENV, "") not in ("", "0")

#: relative slack for floating-point byte accounting (bytes are sums of
#: integer packet sizes stored in floats, so drift means a real bug;
#: the epsilon only forgives representation noise)
FLOAT_SLACK = 1e-6

#: mod-2^16 ring distance, imported lazily on first use — importing
#: :mod:`repro.netio.framing` at module load would cycle (netio imports
#: this module), and a per-call import is measurable on the ACK path
_seq_dist = None


def _ring_dist():
    global _seq_dist
    if _seq_dist is None:
        from ..netio.framing import seq_dist
        _seq_dist = seq_dist
    return _seq_dist


def current():
    """The active sanitizer, or ``None`` when the layer is disabled."""
    return ACTIVE


@contextmanager
def activate(sanitizer: "SimSanitizer | None"):
    """Install ``sanitizer`` as the process-wide active one for a block.

    Components built inside the block capture it; pure-function check
    sites see it immediately.  Passing ``None`` disables the layer for
    the block (useful to replay a run in its pristine configuration).
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = sanitizer
    try:
        yield sanitizer
    finally:
        ACTIVE = previous


class SimSanitizer:
    """Runtime invariant checker for one simulation run or transfer.

    One instance covers one logical run; counters (``audits``,
    ``checks``) make a clean run's verdict reportable ("N audits, zero
    violations") and let tests assert the layer actually executed.
    """

    #: netio ACK-path audits run every this many acknowledged packets
    AUDIT_EVERY = 64

    def __init__(self) -> None:
        self.audits = 0
        self.checks = 0
        self.violations = 0

    def fail(self, invariant: str, message: str, **context) -> None:
        """Record and raise a structured violation."""
        self.violations += 1
        raise InvariantViolation(invariant, message, **context)

    # -- scalar checks (hot path, O(1)) ---------------------------------

    def check_finite(self, invariant: str, value: float,
                     positive: bool = False, **context) -> None:
        """``value`` must be finite (and ``> 0`` when ``positive``)."""
        if not math.isfinite(value):
            self.fail(invariant, f"non-finite value {value!r}",
                      value=value, **context)
        if positive and value <= 0:
            self.fail(invariant, f"non-positive value {value!r}",
                      value=value, **context)

    def check_fraction(self, invariant: str, value: float, **context) -> None:
        """``value`` must be a finite fraction in ``[0, 1]``."""
        if not (math.isfinite(value) and 0.0 <= value <= 1.0):
            self.fail(invariant, f"value {value!r} outside [0, 1]",
                      value=value, **context)

    def check_event_time(self, event_time: float, now: float, fn) -> None:
        """Event-loop time must never run backwards."""
        if event_time < now:
            from .errors import describe_callback

            self.fail("engine.time_monotonicity",
                      f"event scheduled at t={event_time!r} fired after the "
                      f"clock already reached t={now!r}",
                      event_time=event_time, now=now,
                      callback=describe_callback(fn))

    def check_ack_sample(self, flow_id: int, rtt: float, srtt: float,
                         inflight_bytes: float, delivery_rate: float,
                         now: float) -> None:
        """Per-ACK signal sanity: the values every controller consumes."""
        if not (math.isfinite(rtt) and rtt > 0.0):
            self.fail("simnet.rtt_sample", f"non-positive/non-finite RTT "
                      f"sample {rtt!r}", flow=flow_id, rtt=rtt, now=now)
        if not (math.isfinite(srtt) and srtt > 0.0):
            self.fail("simnet.srtt", f"non-positive/non-finite srtt "
                      f"{srtt!r}", flow=flow_id, srtt=srtt, now=now)
        if not (math.isfinite(inflight_bytes) and inflight_bytes >= 0.0):
            self.fail("simnet.inflight", f"negative/non-finite inflight "
                      f"{inflight_bytes!r}", flow=flow_id,
                      inflight_bytes=inflight_bytes, now=now)
        if not (math.isfinite(delivery_rate) and delivery_rate >= 0.0):
            self.fail("simnet.delivery_rate", f"negative/non-finite delivery "
                      f"rate {delivery_rate!r}", flow=flow_id,
                      delivery_rate=delivery_rate, now=now)

    def check_rate(self, invariant: str, rate: float, **context) -> None:
        """Pacing/sending rates must be finite and positive."""
        if not (math.isfinite(rate) and rate > 0.0):
            self.fail(invariant, f"non-positive/non-finite rate {rate!r}",
                      rate=rate, **context)

    def check_interval_report(self, flow_id: int, report) -> None:
        """Monitor-interval report sanity (what Eq. 1 consumes)."""
        if not (math.isfinite(report.throughput) and report.throughput >= 0):
            self.fail("simnet.mi_throughput",
                      f"bad MI throughput {report.throughput!r}",
                      flow=flow_id, throughput=report.throughput,
                      now=report.now)
        self.check_fraction("simnet.mi_loss_rate", report.loss_rate,
                            flow=flow_id, now=report.now)
        if not math.isfinite(report.rtt_gradient):
            self.fail("simnet.mi_gradient",
                      f"non-finite RTT gradient {report.rtt_gradient!r}",
                      flow=flow_id, now=report.now)

    def check_utility(self, value: float, rate_mbps: float,
                      rtt_gradient: float, loss_rate: float) -> None:
        """Eq. 1 terms and output must be finite."""
        if not math.isfinite(value):
            self.fail("core.utility", f"non-finite utility {value!r}",
                      utility=value, rate_mbps=rate_mbps,
                      rtt_gradient=rtt_gradient, loss_rate=loss_rate)

    def check_reward(self, value: float) -> None:
        """RL reward values must be finite."""
        if not math.isfinite(value):
            self.fail("env.reward", f"non-finite reward {value!r}",
                      reward=value)

    # -- simnet audits (bounded cadence, O(state)) ----------------------

    def audit_queue(self, queue, now: float = 0.0) -> None:
        """Occupancy counter must match the packets actually held and
        never exceed the configured capacity."""
        self.audits += 1
        held = sum(p.size for p in queue.iter_packets())
        if abs(queue.bytes - held) > FLOAT_SLACK * max(held, 1.0):
            self.fail("simnet.queue_accounting",
                      f"queue.bytes={queue.bytes!r} but held packets sum to "
                      f"{held!r}", bytes=queue.bytes, held=held, now=now)
        if queue.bytes > queue.capacity_bytes:
            self.fail("simnet.queue_capacity",
                      f"queue occupancy {queue.bytes!r} exceeds capacity "
                      f"{queue.capacity_bytes!r}", bytes=queue.bytes,
                      capacity=queue.capacity_bytes, now=now)
        self.checks += 2

    def audit_link(self, link) -> None:
        """Per-link packet conservation: every packet offered to the link
        is accounted for exactly once —

        ``arrived == random drops + fault drops + queue drops
        + served + in queue``.
        """
        self.audits += 1
        queued = len(link.queue)
        accounted = (link.random_drops + link.fault_drops
                     + link.queue.dropped_packets + link.served_packets
                     + queued)
        if link.arrived_packets != accounted:
            self.fail("simnet.conservation",
                      f"link saw {link.arrived_packets} packets but accounts "
                      f"for {accounted} (random={link.random_drops}, "
                      f"fault={link.fault_drops}, "
                      f"dropped={link.queue.dropped_packets}, "
                      f"served={link.served_packets}, queued={queued})",
                      arrived=link.arrived_packets,
                      random_drops=link.random_drops,
                      fault_drops=link.fault_drops,
                      queue_drops=link.queue.dropped_packets,
                      served=link.served_packets, queued=queued,
                      now=link.loop.now)
        self.checks += 1

    def audit_flow(self, sender) -> None:
        """Per-flow packet and byte conservation.

        Every sent packet is outstanding, acked, or lost — exactly one
        of the three — and the cached ``inflight_bytes`` must equal the
        bytes of the packets actually outstanding.
        """
        self.audits += 1
        stats = sender.stats
        outstanding = len(sender.outstanding)
        accounted = stats.acked_packets + stats.lost_packets + outstanding
        if stats.sent_packets != accounted:
            self.fail("simnet.flow_conservation",
                      f"flow {sender.flow_id} sent {stats.sent_packets} "
                      f"packets but accounts for {accounted} "
                      f"(acked={stats.acked_packets}, "
                      f"lost={stats.lost_packets}, "
                      f"outstanding={outstanding})",
                      flow=sender.flow_id, sent=stats.sent_packets,
                      acked=stats.acked_packets, lost=stats.lost_packets,
                      outstanding=outstanding, now=sender.loop.now)
        # records are (sent_time, size, delivered_at_send, marker) tuples
        inflight = float(sum(r[1] for r in sender.outstanding.values()))
        if abs(sender.inflight_bytes - inflight) > \
                FLOAT_SLACK * max(inflight, 1.0):
            self.fail("simnet.inflight_accounting",
                      f"flow {sender.flow_id} caches inflight_bytes="
                      f"{sender.inflight_bytes!r} but outstanding packets "
                      f"sum to {inflight!r}", flow=sender.flow_id,
                      cached=sender.inflight_bytes, actual=inflight,
                      now=sender.loop.now)
        self.checks += 2
        limit = sender.flow_bytes
        if limit is not None:
            # Finite flows: the budget gate admits at most one packet of
            # overshoot (the gate is checked before each send, so the
            # last admitted packet may straddle the limit).  The gate's
            # accounting is sender-side: ``sender.delivered_bytes`` is
            # acked bytes, so acked + inflight == sent - lost — bytes
            # the sender has committed and not written off.
            ceiling = limit + sender.mss + FLOAT_SLACK * max(limit, 1.0)
            committed = sender.delivered_bytes + sender.inflight_bytes
            if committed > ceiling:
                self.fail("simnet.flow_budget",
                          f"flow {sender.flow_id} has acked "
                          f"{sender.delivered_bytes!r} + inflight "
                          f"{sender.inflight_bytes!r} bytes against a "
                          f"budget of {limit!r} (+1 mss allowance)",
                          flow=sender.flow_id,
                          acked=sender.delivered_bytes,
                          inflight=sender.inflight_bytes, budget=limit,
                          now=sender.loop.now)
            if sender._finished:
                if sender.delivered_bytes < limit:
                    self.fail("simnet.flow_fin",
                              f"flow {sender.flow_id} FINned with only "
                              f"{sender.delivered_bytes!r} of {limit!r} "
                              f"budgeted bytes acknowledged",
                              flow=sender.flow_id,
                              acked=sender.delivered_bytes,
                              budget=limit, now=sender.loop.now)
                if sender._running:
                    self.fail("simnet.flow_fin",
                              f"flow {sender.flow_id} is finished but "
                              f"still marked running",
                              flow=sender.flow_id, now=sender.loop.now)
            self.checks += 2

    def audit_network(self, net) -> None:
        """Whole-dumbbell conservation sweep (periodic + end of run).

        On top of the per-component audits: every packet a sender
        transmitted reached the link's ingress, and receivers can never
        have taken delivery of more bytes than the link served —

        ``injected == delivered + drops + in-queue + in-flight``
        restated at the boundaries where each term is observable.
        """
        now = net.loop.now
        self.audit_queue(net.link.queue, now=now)
        self.audit_link(net.link)
        sent = 0
        delivered = 0.0
        for sender in net._senders:
            self.audit_flow(sender)
            sent += sender.stats.sent_packets
            delivered += sender.stats.delivered_bytes
        if sent != net.link.arrived_packets:
            self.fail("simnet.injection",
                      f"flows sent {sent} packets but the link ingress saw "
                      f"{net.link.arrived_packets}", sent=sent,
                      arrived=net.link.arrived_packets, now=now)
        served = float(net.link.served_bytes)
        if delivered > served * (1.0 + FLOAT_SLACK) + FLOAT_SLACK:
            self.fail("simnet.delivery",
                      f"receivers took delivery of {delivered!r} bytes but "
                      f"the link only served {served!r}",
                      delivered=delivered, served=served, now=now)
        self.checks += 2

    # -- netio (seq-ring) audits ----------------------------------------

    def check_ack_window(self, sender, ack) -> None:
        """An ACK may never acknowledge data that was not sent.

        The sent range on the mod-2^16 ring is ``[base, next_seq)``; a
        cumulative ACK or SACK block landing inside the send window but
        past ``next_seq`` acknowledges unsent data and would silently
        corrupt the window (``base`` sliding past ``next_seq`` stalls
        the transfer forever).
        """
        seq_dist = _seq_dist or _ring_dist()
        sent = seq_dist(sender.base, sender.next_seq)
        cum = seq_dist(sender.base, ack.cum_ack)
        if cum <= sender.window and cum > sent:
            self.fail("netio.ack_beyond_sent",
                      f"cumulative ack {ack.cum_ack} is {cum} past base "
                      f"{sender.base} but only {sent} packets are unacked-"
                      f"sent (next_seq={sender.next_seq})",
                      base=sender.base, next_seq=sender.next_seq,
                      cum_ack=ack.cum_ack)
        for start, end in ack.sack_blocks:
            lo = seq_dist(sender.base, start)
            hi = seq_dist(sender.base, end)
            if (lo <= sender.window and lo > sent) or \
                    (hi <= sender.window and hi > sent):
                self.fail("netio.sack_beyond_sent",
                          f"SACK block [{start}, {end}) covers unsent "
                          f"sequence space (base={sender.base}, "
                          f"next_seq={sender.next_seq})",
                          base=sender.base, next_seq=sender.next_seq,
                          sack_start=start, sack_end=end)
        self.checks += 1

    def audit_tx(self, sender) -> None:
        """ARQ sender byte accounting, re-derived from the record set.

        ``inflight_bytes`` counts exactly the payload of outstanding
        records not currently declared lost; the window never holds more
        than ``window`` packets.
        """
        seq_dist = _seq_dist or _ring_dist()
        self.audits += 1
        inflight = float(sum(len(r.payload)
                             for r in sender.outstanding.values()
                             if not r.lost))
        if abs(sender.inflight_bytes - inflight) > \
                FLOAT_SLACK * max(inflight, 1.0):
            self.fail("netio.tx_accounting",
                      f"ARQ sender caches inflight_bytes="
                      f"{sender.inflight_bytes!r} but live outstanding "
                      f"payloads sum to {inflight!r}",
                      cached=sender.inflight_bytes, actual=inflight,
                      outstanding=len(sender.outstanding))
        span = seq_dist(sender.base, sender.next_seq)
        if span > sender.window:
            self.fail("netio.tx_window",
                      f"send window spans {span} packets, cap is "
                      f"{sender.window}", base=sender.base,
                      next_seq=sender.next_seq, window=sender.window)
        self.checks += 2

    def audit_rx(self, receiver) -> None:
        """Reorder-buffer byte accounting vs. the configured cap.

        ``buffered_bytes`` counts exactly the held out-of-order
        payloads, and the :class:`~repro.netio.lifecycle.ServerLimits`
        per-session cap is never breached.
        """
        self.audits += 1
        held = float(sum(len(p) for p in receiver._held.values()))
        if abs(receiver.buffered_bytes - held) > \
                FLOAT_SLACK * max(held, 1.0):
            self.fail("netio.rx_accounting",
                      f"reorder buffer caches buffered_bytes="
                      f"{receiver.buffered_bytes!r} but held payloads sum "
                      f"to {held!r}", cached=receiver.buffered_bytes,
                      actual=held, holes=len(receiver._held))
        cap = receiver.max_buffer_bytes
        if cap is not None and receiver.buffered_bytes > cap:
            self.fail("netio.rx_cap",
                      f"reorder buffer holds {receiver.buffered_bytes!r} "
                      f"bytes, cap is {cap}",
                      buffered=receiver.buffered_bytes, cap=cap)
        self.checks += 2
