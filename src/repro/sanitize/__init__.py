"""Runtime sanitizers, deterministic failure replay, differential oracle.

Three tools, one goal: make silent corruption loud so the perf refactors
on the roadmap can land without changing results.

- :mod:`repro.sanitize.invariants` — opt-in invariant layer (packet and
  byte conservation, queue occupancy, time monotonicity, finite-signal
  checks, seq-ring safety) with zero overhead when disabled;
- :mod:`repro.sanitize.replay` — on-disk repro bundles for failed jobs
  and the ``repro replay`` CLI that re-executes them;
- :mod:`repro.sanitize.diff` — the differential oracle behind
  ``repro diff`` (serial vs. fork, telemetry on vs. off, engine A/B).
"""

from .errors import EventBudgetExceeded, InvariantViolation
from .invariants import ACTIVE, SimSanitizer, activate, current

__all__ = [
    "ACTIVE",
    "EventBudgetExceeded",
    "InvariantViolation",
    "SimSanitizer",
    "activate",
    "current",
]
