"""Structured invariant-violation errors.

This module is import-light on purpose: it pulls in nothing from the
rest of the package, so hot subsystems (:mod:`repro.simnet.engine`,
:mod:`repro.netio.arq`) can raise structured errors without creating an
import cycle with the sanitizer machinery that normally detects them.
"""

from __future__ import annotations


class InvariantViolation(RuntimeError):
    """A runtime invariant of the simulator or datapath was broken.

    ``invariant`` is a stable machine-readable code (dotted, e.g.
    ``simnet.conservation`` or ``netio.ack_beyond_sent``); tooling —
    the replay CLI, the chaos harness, CI assertions — branches on it,
    never on the message text.  ``context`` carries whatever state the
    checking site had (counters, sequence numbers, simulation time), so
    a violation is diagnosable from the exception alone.
    """

    def __init__(self, invariant: str, message: str, **context):
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.context = context

    def summary(self) -> dict:
        """Machine-readable form for JSON output and failure bundles."""
        return {"invariant": self.invariant, "error": str(self),
                "context": {k: repr(v) for k, v in self.context.items()}}


class EventBudgetExceeded(InvariantViolation):
    """The event loop processed more events than one call may consume.

    Raised by :meth:`repro.simnet.engine.EventLoop.run_until` /
    ``run_all`` when a run burns through its per-call event budget —
    the signature of a zero-delay self-rescheduling timer.  ``callback``
    names the event handler that was executing when the budget tripped
    (for a runaway timer, that is the offender), ``events`` the number
    of events the call processed and ``time`` the simulation clock at
    the point of the overrun.  Subclasses :class:`RuntimeError` via
    :class:`InvariantViolation`, so pre-existing ``except RuntimeError``
    handling of runaway loops keeps working.
    """

    def __init__(self, events: int, time: float, callback: str):
        super().__init__(
            "engine.event_budget",
            f"event loop exceeded {events} events at t={time:.6f} "
            f"(last callback: {callback}) — suspect a zero-delay "
            f"self-rescheduling timer",
            events=events, time=time, callback=callback)
        self.events = events
        self.time = time
        self.callback = callback


def describe_callback(fn) -> str:
    """Human-readable name of an event callback for error messages."""
    qualname = getattr(fn, "__qualname__", None)
    if qualname is None:
        return repr(fn)
    module = getattr(fn, "__module__", None)
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        return f"{type(owner).__name__}.{fn.__name__}"
    return f"{module}.{qualname}" if module else qualname
