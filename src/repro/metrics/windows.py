"""Windowed fairness/utilization metrics for churning flow populations.

Whole-run throughput shares are meaningless under flow churn: a flow
that lived for 2 % of the run would drag a naive Jain index toward zero
even if it received exactly its fair share *while it was alive*.  Every
metric here therefore weights a flow by the fraction of the window it
was actually active — a flow's windowed rate is

    bytes delivered inside the window / seconds active inside the window

(not ``/ window length``), so partial-lifetime flows compare on equal
footing with full-lifetime ones.  Delivered bytes come from the
``FlowStats.delivered_bins`` histogram with edge bins pro-rated by
overlap, matching how the bins themselves spread bytes uniformly.
"""

from __future__ import annotations

from .fairness import jain_index

#: ignore flows active for less than this fraction of a window — their
#: rate estimate divides by a sliver of time and is pure noise
MIN_ACTIVE_FRACTION = 0.05


def active_overlap(stats, t0: float, t1: float) -> float:
    """Seconds of ``[t0, t1)`` during which the flow was active.

    A flow is active from ``start_time`` to ``end_time`` (its FIN for a
    completed finite flow, the run horizon otherwise).
    """
    lo = max(stats.start_time, t0)
    hi = min(stats.end_time, t1)
    return max(hi - lo, 0.0)


def bytes_in_window(stats, t0: float, t1: float) -> float:
    """Receiver-side bytes the flow delivered inside ``[t0, t1)``.

    Summed from ``delivered_bins``; the bins at the window edges are
    pro-rated by their overlap with the window, consistent with the
    bins' own uniform-spread approximation.
    """
    width = stats.bin_width
    total = 0.0
    for i, amount in enumerate(stats.delivered_bins):
        if not amount:
            continue
        lo = stats.start_time + i * width
        hi = lo + width
        overlap = min(hi, t1) - max(lo, t0)
        if overlap <= 0.0:
            continue
        total += amount * min(overlap / width, 1.0)
    return total


def windowed_rates(flows, t0: float, t1: float) -> dict[int, float]:
    """Active-time-normalized delivery rate (bps) per flow in a window.

    Only flows active for at least :data:`MIN_ACTIVE_FRACTION` of the
    window participate; each rate divides by the flow's *active* seconds
    so arriving/departing flows are not penalized for partial presence.
    """
    window = max(t1 - t0, 1e-9)
    rates = {}
    for stats in flows:
        active = active_overlap(stats, t0, t1)
        if active < MIN_ACTIVE_FRACTION * window:
            continue
        rates[stats.flow_id] = bytes_in_window(stats, t0, t1) * 8.0 / active
    return rates


def windowed_jain(flows, t0: float, t1: float) -> float | None:
    """Jain's index over the flows active in ``[t0, t1)``.

    ``None`` when fewer than two flows were active — fairness over an
    empty or singleton population carries no information.
    """
    rates = windowed_rates(flows, t0, t1)
    if len(rates) < 2:
        return None
    return jain_index(rates.values())


def concurrency(flows, t0: float, t1: float) -> float:
    """Time-averaged number of active flows over ``[t0, t1)``."""
    window = max(t1 - t0, 1e-9)
    return sum(active_overlap(s, t0, t1) for s in flows) / window


def window_series(flows, duration: float, width: float = 1.0,
                  capacity_bps: float | None = None) -> list[dict]:
    """Per-window fairness/load/utilization series for one run.

    Each entry covers ``[t0, t0 + width)`` and carries the windowed Jain
    index, the time-averaged concurrency, the aggregate delivery rate in
    bps and — when the bottleneck ``capacity_bps`` is known — the
    aggregate utilization fraction.  This is the series the scale
    experiment aggregates into its utilization-vs-concurrency curve.
    """
    if width <= 0:
        raise ValueError("window width must be positive")
    flows = list(flows)
    series = []
    t0 = 0.0
    while t0 < duration - 1e-9:
        t1 = min(t0 + width, duration)
        window = t1 - t0
        total = sum(bytes_in_window(s, t0, t1) for s in flows)
        entry = {
            "t0": t0,
            "t1": t1,
            "jain": windowed_jain(flows, t0, t1),
            "concurrency": concurrency(flows, t0, t1),
            "rate_bps": total * 8.0 / window,
        }
        if capacity_bps:
            entry["utilization"] = min(entry["rate_bps"] / capacity_bps, 1.0)
        series.append(entry)
        t0 = t1
    return series


def utilization_vs_concurrency(flows, duration: float, capacity_bps: float,
                               width: float = 1.0) -> list[tuple[float, float]]:
    """(concurrency, utilization) samples, one per window, sorted by load.

    The scale experiment's headline curve: does aggregate utilization
    hold up as the number of simultaneously active flows grows?
    """
    series = window_series(flows, duration, width, capacity_bps)
    pairs = [(entry["concurrency"], entry["utilization"])
             for entry in series]
    pairs.sort(key=lambda p: p[0])
    return pairs
