"""Flow-completion-time distributions for finite-flow workloads.

Under churn the interesting number is not steady-state throughput but
how long each transfer took — and because FCT is dominated by queueing
for short flows and by bandwidth share for long ones, the distribution
is reported *per size class* (the datacenter-workload convention):

- ``mouse``    — under 100 KB (latency-bound: a handful of RTTs);
- ``medium``   — 100 KB to 1 MB (slow-start-bound);
- ``elephant`` — 1 MB and up (bandwidth-bound).

Percentiles are nearest-rank so two runs with identical FCT multisets
report bit-identical tails regardless of interpolation conventions.
"""

from __future__ import annotations

from .convergence import convergence_time

#: upper byte bounds of the named size classes, checked in order; sizes
#: at or past the last bound fall into the final class
SIZE_CLASSES: tuple[tuple[str, float], ...] = (
    ("mouse", 100_000.0),
    ("medium", 1_000_000.0),
    ("elephant", float("inf")),
)

#: the FCT percentiles every summary reports
FCT_PERCENTILES = (50, 95, 99)


def size_class(flow_bytes: float) -> str:
    """The size-class label for a flow of ``flow_bytes`` bytes."""
    if flow_bytes <= 0:
        raise ValueError("flow_bytes must be positive")
    for name, bound in SIZE_CLASSES:
        if flow_bytes < bound:
            return name
    return SIZE_CLASSES[-1][0]


def percentile_nearest_rank(values, pct: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("need at least one value")
    if not 0 < pct <= 100:
        raise ValueError("pct must be in (0, 100]")
    rank = max(int(-(-pct * len(ordered) // 100)), 1)  # ceil without float
    return float(ordered[rank - 1])


def fct_summary(flows) -> dict:
    """FCT distribution by size class for one run's finite flows.

    Returns ``{"classes": {name: {...}}, "overall": {...}}`` where each
    per-class dict carries the population (``count``), how many FINned
    inside the horizon (``completed``, ``completion_rate``), and the
    nearest-rank ``p50``/``p95``/``p99`` plus mean FCT in seconds over
    the completed flows (percentile keys absent when nothing completed).
    Unbounded flows (``flow_bytes is None``) are not part of an FCT
    population and are skipped.
    """
    buckets: dict[str, list] = {name: [] for name, _ in SIZE_CLASSES}
    for stats in flows:
        if stats.flow_bytes is None:
            continue
        buckets[size_class(stats.flow_bytes)].append(stats)

    def _cell(population) -> dict:
        fcts = [s.fct for s in population if s.fct is not None]
        cell = {
            "count": len(population),
            "completed": len(fcts),
            "completion_rate": len(fcts) / len(population)
            if population else 0.0,
        }
        if fcts:
            for pct in FCT_PERCENTILES:
                cell[f"p{pct}"] = percentile_nearest_rank(fcts, pct)
            cell["mean"] = sum(fcts) / len(fcts)
        return cell

    classes = {name: _cell(population)
               for name, population in buckets.items() if population}
    everyone = [s for population in buckets.values() for s in population]
    return {"classes": classes, "overall": _cell(everyone)}


def convergence_after_arrival(stats, stability_window: float = 2.0,
                              tolerance: float = 0.25) -> float | None:
    """Seconds from a flow's arrival until its throughput stabilizes.

    The churn analogue of the paper's convergence time: the entry point
    is the flow's own ``start_time`` (its arrival into a running
    system), and the default stability window is shorter than the
    steady-state experiment's 5 s because churned flows may only live a
    few seconds.  ``None`` when the flow never stabilized (or did not
    live long enough to certify it).
    """
    times, rates = stats.throughput_series()
    return convergence_time(times, rates, entry_time=stats.start_time,
                            stability_window=stability_window,
                            tolerance=tolerance)
