"""Summary statistics helpers for the experiment harness."""

from __future__ import annotations

import numpy as np


def cdf_points(values) -> tuple[list[float], list[float]]:
    """Empirical CDF as (sorted values, cumulative probabilities)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("need at least one value")
    n = len(data)
    probs = [(i + 1) / n for i in range(n)]
    return data, probs


def summary(values) -> dict[str, float]:
    """mean / range (max-min) / std — Tab. 6's safety-assurance row set."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    return {
        "mean": float(data.mean()),
        "range": float(data.max() - data.min()),
        "std": float(data.std()),
        "min": float(data.min()),
        "max": float(data.max()),
    }


def normalize(values, reference: float | None = None) -> list[float]:
    """Scale values by their max (or an explicit reference)."""
    data = [float(v) for v in values]
    ref = reference if reference is not None else max(data)
    if ref <= 0:
        return [0.0 for _ in data]
    return [v / ref for v in data]
