"""Fairness metrics (Fig. 13/14: Jain's index over 98 % for Libra)."""

from __future__ import annotations

import numpy as np


def jain_index(allocations) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]."""
    x = np.asarray(list(allocations), dtype=float)
    if x.size == 0:
        raise ValueError("need at least one allocation")
    if np.any(x < 0):
        raise ValueError("allocations must be non-negative")
    denom = x.size * float((x ** 2).sum())
    if denom == 0:
        return 1.0
    return float(x.sum()) ** 2 / denom


def throughput_ratio(flow_a: float, flow_b: float) -> float:
    """Share of flow A in the pair's total (0.5 = perfectly fair)."""
    total = flow_a + flow_b
    if total <= 0:
        return 0.5
    return flow_a / total
