"""Convergence metrics (Fig. 15 / Tab. 5).

The paper defines convergence time as the time from a flow's entry to the
earliest moment after which its throughput stays within ±25 % of a stable
value for 5 seconds; stability is the post-convergence standard deviation.
"""

from __future__ import annotations

import numpy as np


def convergence_time(times, rates, entry_time: float,
                     stability_window: float = 5.0,
                     tolerance: float = 0.25) -> float | None:
    """Time from ``entry_time`` until the series stays within ±tolerance
    of its window mean for ``stability_window`` seconds; None if never.
    """
    times = np.asarray(list(times), dtype=float)
    rates = np.asarray(list(rates), dtype=float)
    if times.size != rates.size:
        raise ValueError("times and rates must align")
    mask = times >= entry_time
    times, rates = times[mask], rates[mask]
    if times.size < 2:
        return None
    for i in range(times.size):
        window_end = times[i] + stability_window
        window = (times >= times[i]) & (times <= window_end)
        if times[-1] < window_end:
            break  # not enough future data to certify stability
        segment = rates[window]
        if segment.size < 2:
            continue
        mean = segment.mean()
        if mean <= 0:
            continue
        if np.all(np.abs(segment - mean) <= tolerance * mean):
            return float(times[i] - entry_time)
    return None


def post_convergence_stats(times, rates, entry_time: float,
                           stability_window: float = 5.0,
                           tolerance: float = 0.25) -> dict[str, float | None]:
    """Tab. 5's row for one flow: conv. time, throughput deviation, mean."""
    conv = convergence_time(times, rates, entry_time, stability_window,
                            tolerance)
    times = np.asarray(list(times), dtype=float)
    rates = np.asarray(list(rates), dtype=float)
    if conv is None:
        return {"convergence_time": None, "stability": None,
                "avg_throughput": None}
    mask = times >= entry_time + conv
    segment = rates[mask]
    return {
        "convergence_time": conv,
        "stability": float(segment.std()),
        "avg_throughput": float(segment.mean()),
    }
