"""Evaluation metrics: fairness, convergence, summary statistics."""

from .convergence import convergence_time, post_convergence_stats
from .fairness import jain_index, throughput_ratio
from .stats import cdf_points, normalize, summary

__all__ = ["cdf_points", "convergence_time", "jain_index", "normalize",
           "post_convergence_stats", "summary", "throughput_ratio"]
