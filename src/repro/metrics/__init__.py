"""Evaluation metrics: fairness, convergence, FCT, windowed statistics."""

from .convergence import convergence_time, post_convergence_stats
from .fairness import jain_index, throughput_ratio
from .fct import (convergence_after_arrival, fct_summary,
                  percentile_nearest_rank, size_class)
from .stats import cdf_points, normalize, summary
from .windows import (active_overlap, bytes_in_window, concurrency,
                      utilization_vs_concurrency, window_series,
                      windowed_jain, windowed_rates)

__all__ = ["active_overlap", "bytes_in_window", "cdf_points", "concurrency",
           "convergence_after_arrival", "convergence_time", "fct_summary",
           "jain_index", "normalize", "percentile_nearest_rank",
           "post_convergence_stats", "size_class", "summary",
           "throughput_ratio", "utilization_vs_concurrency", "window_series",
           "windowed_jain", "windowed_rates"]
