#!/bin/sh
# Correlated (bursty) loss on DEV (default: lo): 20 ms delay plus 5%
# loss with 25% correlation — netem's approximation of a Gilbert-Elliott
# channel, the real-interface analogue of FaultSchedule.burst_loss.
# Needs CAP_NET_ADMIN.
set -eu
DEV="${1:-lo}"
tc qdisc replace dev "$DEV" root netem delay 20ms loss 5% 25%
echo "netem: $DEV shaped with bursty 5% loss (undo: ./clean.sh $DEV)"
