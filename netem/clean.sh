#!/bin/sh
# Remove any netem qdisc from DEV (default: lo). Needs CAP_NET_ADMIN.
set -eu
DEV="${1:-lo}"
tc qdisc del dev "$DEV" root 2>/dev/null || true
echo "netem: $DEV restored to default qdisc"
