#!/bin/sh
# 2% random loss + 20 ms delay on DEV (default: lo) — the profile the CI
# netio smoke job applies in-process, here for a real interface.
# Needs CAP_NET_ADMIN.
set -eu
DEV="${1:-lo}"
tc qdisc replace dev "$DEV" root netem delay 20ms loss 2%
echo "netem: $DEV shaped with 20ms delay + 2% loss (undo: ./clean.sh $DEV)"
