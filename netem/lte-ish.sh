#!/bin/sh
# LTE-flavoured path on DEV (default: lo): 40 ms +/- 10 ms jittery delay
# (normal distribution), 0.5% loss, 1% reordering. Needs CAP_NET_ADMIN.
set -eu
DEV="${1:-lo}"
tc qdisc replace dev "$DEV" root netem \
    delay 40ms 10ms distribution normal loss 0.5% reorder 1% 50%
echo "netem: $DEV shaped LTE-ish (undo: ./clean.sh $DEV)"
