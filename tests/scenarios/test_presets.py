"""Tests for the scenario library."""

import pytest

from repro.scenarios import (BUFFER_SWEEP_BYTES, FIG1_SCENARIOS, FIG7_CELLULAR,
                             FIG7_WIRED, INTERNET, LOSS_SWEEP, LTE, WIRED,
                             buffer_scenario, fairness_scenario, loss_scenario,
                             rl_default_scenario, step_scenario)
from repro.units import mbps, ms


def test_wired_scenarios_match_paper():
    assert set(WIRED) == {"wired-12", "wired-24", "wired-48", "wired-96"}
    s = WIRED["wired-48"]
    assert s.rtt == pytest.approx(ms(30))
    assert s.buffer_bytes == 150_000
    assert s.trace(0).rate_at(0.0) == mbps(48)


def test_lte_scenarios_present():
    assert set(LTE) == {"lte-stationary", "lte-walking", "lte-driving",
                        "lte-moving"}


def test_fig1_uses_six_scenarios():
    assert len(FIG1_SCENARIOS) == 6


def test_fig7_uses_four_plus_four():
    assert len(FIG7_WIRED) == 4 and len(FIG7_CELLULAR) == 4


def test_step_scenario_parameters():
    s = step_scenario()
    assert s.rtt == pytest.approx(ms(80))
    trace = s.trace(0)
    assert trace.rate_at(5.0) == mbps(20)
    assert trace.rate_at(15.0) == mbps(5)


def test_buffer_scenario_sweep():
    for size in BUFFER_SWEEP_BYTES:
        s = buffer_scenario(size)
        assert s.buffer_bytes == size
        assert s.trace(0).rate_at(0.0) == mbps(60)


def test_loss_scenario_sweep():
    assert LOSS_SWEEP[0] == 0.0 and LOSS_SWEEP[-1] == 0.10
    s = loss_scenario(0.04)
    assert s.loss_rate == 0.04


def test_fairness_scenario_one_bdp():
    s = fairness_scenario()
    assert s.buffer_bytes == pytest.approx(mbps(48) * ms(100) / 8.0)


def test_internet_scenarios():
    inter = INTERNET["inter-continental"]
    intra = INTERNET["intra-continental"]
    assert inter.rtt > intra.rtt
    assert inter.loss_rate > intra.loss_rate


def test_scenario_build_is_reproducible():
    s = LTE["lte-driving"]
    assert s.trace(3).rate_at(7.0) == s.trace(3).rate_at(7.0)
    assert s.trace(3).rate_at(7.0) != s.trace(4).rate_at(7.0)


def test_with_override():
    s = WIRED["wired-24"].with_(rtt=0.2)
    assert s.rtt == 0.2
    assert WIRED["wired-24"].rtt == pytest.approx(ms(30))


def test_rl_default_scenario():
    s = rl_default_scenario()
    assert s.trace(0).rate_at(0.0) == mbps(100)
    assert s.rtt == pytest.approx(ms(100))
