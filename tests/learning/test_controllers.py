"""Behavioural tests for the learning-based baseline controllers."""

import numpy as np
import pytest

from repro.assets import load_policy
from repro.learning import (Aurora, Indigo, ModifiedRL, Orca, Proteus, Remy,
                            Vivace)
from repro.simnet.network import Dumbbell
from repro.simnet.trace import wired_trace


def _run(controller, bw=24, rtt=0.03, buffer_bytes=150_000, duration=10.0,
         seed=1):
    net = Dumbbell(wired_trace(bw), buffer_bytes=buffer_bytes, rtt=rtt,
                   seed=seed)
    net.add_flow(controller)
    return net.run(duration)


class TestAurora:
    def test_reaches_reasonable_utilization(self):
        result = _run(Aurora(load_policy("aurora"), seed=1))
        assert result.utilization > 0.6

    def test_policy_dim_checked(self):
        with pytest.raises(ValueError):
            Aurora(load_policy("libra"))  # wrong feature set for Aurora

    def test_meters_nn_forward(self):
        controller = Aurora(load_policy("aurora"), seed=1)
        _run(controller, duration=5.0)
        assert controller.meter.counts["nn_forward"] > 0

    def test_userspace_flag(self):
        assert Aurora.userspace is True


class TestOrca:
    def test_cubic_plus_agent_works(self):
        result = _run(Orca(load_policy("orca"), seed=1))
        assert result.utilization > 0.8

    def test_stochastic_decisions_vary_across_seeds(self):
        utils = [ _run(Orca(load_policy("orca"), seed=s), duration=6.0,
                       seed=s).utilization for s in (1, 2, 3, 4) ]
        assert np.std(utils) > 1e-4

    def test_agent_rescales_cubic_window(self):
        controller = Orca(load_policy("orca"), seed=1)
        _run(controller, duration=5.0)
        assert controller.meter.counts["nn_forward"] > 0


class TestVivaceProteus:
    def test_vivace_converges_near_capacity(self):
        result = _run(Vivace(seed=1), duration=14.0)
        assert result.utilization > 0.7

    def test_vivace_probing_metered(self):
        controller = Vivace(seed=1)
        _run(controller, duration=5.0)
        assert controller.meter.counts["gradient_probe"] > 0

    def test_proteus_is_latency_sensitised_vivace(self):
        assert Proteus(seed=1).params.beta > Vivace(seed=1).params.beta


class TestIndigo:
    def test_tracks_but_underutilizes(self):
        result = _run(Indigo(), duration=12.0)
        assert 0.5 < result.utilization <= 1.0

    def test_low_delay(self):
        result = _run(Indigo(), duration=12.0)
        flow = result.flows[0]
        assert flow.avg_rtt_ms < 1.8 * flow.min_rtt_ms


class TestRemy:
    def test_runs_and_utilizes(self):
        result = _run(Remy(), duration=10.0)
        assert result.utilization > 0.7

    def test_rule_match_order(self):
        from repro.learning.remy import DEFAULT_TABLE, Remy
        remy = Remy()
        assert remy._match(1.01) is DEFAULT_TABLE[0]
        assert remy._match(3.0) is DEFAULT_TABLE[-1]


class TestModifiedRL:
    def test_uses_libra_state_space(self):
        from repro.env.features import STATE_SETS
        controller = ModifiedRL(load_policy("modified-rl"))
        assert controller.builder.feature_set == STATE_SETS["libra"]

    def test_runs_without_crashing(self):
        result = _run(ModifiedRL(load_policy("modified-rl"), seed=1),
                      duration=8.0)
        assert result.flows[0].sent_packets > 0
