"""Differential oracle for the batched engine.

The speedups the bench subsystem advertises are only meaningful if the
batched engine computes the *same run* as the reference engine.  These
tests drive ``repro diff --mode engine`` (exact tolerance) across the
tier-1 preset families: plain wired, a trace-driven cellular preset,
and the two in-envelope fault profiles.  A preset outside the batched
envelope must fall back to the reference engine and still match.
"""

import pytest

from repro.parallel import single_flow_job
from repro.sanitize.diff import run_diff
from repro.scenarios.presets import named_presets


def _job(scenario, cca="cubic", seed=11, duration=5.0):
    return single_flow_job(cca, named_presets()[scenario], seed=seed,
                           duration=duration)


class TestEngineDiffExact:
    @pytest.mark.parametrize("scenario", ["wired-12", "wired-48"])
    def test_wired_presets_match_exactly(self, scenario):
        report = run_diff(_job(scenario), mode="engine")
        assert report.equal, report.discrepancies
        assert any("engine=batched" in n for n in report.notes)

    def test_faulted_blackout_matches_exactly(self):
        report = run_diff(_job("stress-blackout", duration=6.0),
                          mode="engine")
        assert report.equal, report.discrepancies
        assert any("engine=batched" in n for n in report.notes)

    def test_faulted_burst_loss_matches_exactly(self):
        report = run_diff(_job("stress-burst-loss", duration=6.0),
                          mode="engine")
        assert report.equal, report.discrepancies
        assert any("engine=batched" in n for n in report.notes)

    def test_mi_controller_under_burst_loss_matches_exactly(self):
        # c-libra drives a monitor-interval timer whose ticks can land
        # bit-exactly on an ACK's arrival time; the reference resolves
        # that tie by event push order (MI timer first), which the fused
        # delivery+ACK commit used to invert.  Pins the two-stage pipe.
        report = run_diff(_job("stress-burst-loss", cca="c-libra",
                               duration=6.0), mode="engine")
        assert report.equal, report.discrepancies
        assert any("engine=batched" in n for n in report.notes)

    def test_trace_driven_preset_matches_exactly(self):
        report = run_diff(_job("lte-stationary", duration=4.0),
                          mode="engine")
        assert report.equal, report.discrepancies

    def test_multiple_ccas_match_on_wired(self):
        for cca in ("reno", "bbr"):
            report = run_diff(_job("wired-24", cca=cca, duration=4.0),
                              mode="engine")
            assert report.equal, (cca, report.discrepancies)


class TestEngineFallback:
    def test_out_of_envelope_fault_falls_back_and_matches(self):
        # Reordering faults are outside the batched envelope: the run
        # must silently use the reference engine and still be identical.
        report = run_diff(_job("stress-reorder", duration=4.0),
                          mode="engine")
        assert report.equal, report.discrepancies
        assert any("engine=reference" in n for n in report.notes)
        assert any("outside the batched envelope" in n
                   for n in report.notes)
