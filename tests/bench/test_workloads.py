"""Workload registry and the end-to-end run_bench path."""

import pytest

from repro.bench import (DEFAULT_WORKLOADS, BenchMeter, load_report,
                         registry, run_bench, run_workload, validate_report)


class TestRegistry:
    def test_default_workloads_are_registered(self):
        known = registry()
        for name in DEFAULT_WORKLOADS:
            assert name in known

    def test_crash_selftest_registered_but_not_default(self):
        assert "crash-selftest" in registry()
        assert "crash-selftest" not in DEFAULT_WORKLOADS

    def test_unknown_workload_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no-such-bench"):
            run_bench(["no-such-bench"], outdir=tmp_path)


class TestRunWorkload:
    def test_sim_workload_produces_valid_artifact(self):
        w = registry()["manyflow-16"]
        doc = run_workload(w, BenchMeter(warmup=0, repeats=1), seed=3,
                           scale=0.1)
        assert doc["status"] == "ok"
        assert doc["engine"] == "batched"
        assert validate_report(doc) == []
        assert doc["counters"]["packets"] > 0

    def test_crashing_workload_yields_failed_artifact(self):
        w = registry()["crash-selftest"]
        doc = run_workload(w, BenchMeter(warmup=0, repeats=1), scale=0.2)
        assert doc["status"] == "failed"
        assert "crash-test" in doc["error"]
        assert validate_report(doc) == []


class TestRunBench:
    def test_writes_one_artifact_per_workload(self, tmp_path):
        lines = []
        docs = run_bench(["manyflow-16", "crash-selftest"],
                         outdir=tmp_path, warmup=0, repeats=1, scale=0.1,
                         echo=lines.append)
        assert len(docs) == 2
        ok = load_report(tmp_path / "BENCH_manyflow-16.json")
        failed = load_report(tmp_path / "BENCH_crash-selftest.json")
        assert ok["status"] == "ok"
        assert failed["status"] == "failed"
        assert len(lines) == 2 and "FAILED" in lines[1]

    def test_profile_dump(self, tmp_path):
        run_bench(["manyflow-16"], outdir=tmp_path, warmup=0, repeats=1,
                  scale=0.1, profile=True)
        text = (tmp_path / "PROFILE_manyflow-16.txt").read_text()
        assert "cumulative" in text
