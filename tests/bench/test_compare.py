"""Baseline comparison verdicts (the CI regression gate)."""

import pytest

from repro.bench import (Measurement, build_report, compare_reports,
                         failed_report, has_failures, load_baselines,
                         write_report)
from repro.bench.compare import judge


def _doc(workload="w", pps=1000.0):
    m = Measurement(wall_s=1.0, walls=[1.0],
                    counters={"packets": pps, "events": pps * 2,
                              "sim_seconds": 10.0})
    return build_report(workload, "batched", {}, m)


class TestJudge:
    def test_within_tolerance_is_ok(self):
        v = judge(_doc(pps=950), _doc(pps=1000), tolerance=0.2)
        assert v.verdict == "ok"
        assert v.ratio == pytest.approx(0.95)

    def test_regression_below_tolerance(self):
        v = judge(_doc(pps=700), _doc(pps=1000), tolerance=0.2)
        assert v.verdict == "regression"
        assert "REGRESSION" in str(v)

    def test_improvement_above_tolerance(self):
        v = judge(_doc(pps=1300), _doc(pps=1000), tolerance=0.2)
        assert v.verdict == "improved"

    def test_failed_current_artifact(self):
        v = judge(failed_report("w", {}, RuntimeError("boom")),
                  _doc(pps=1000))
        assert v.verdict == "failed"
        assert "boom" in v.detail

    def test_missing_baseline(self):
        assert judge(_doc(), None).verdict == "no-baseline"

    def test_schema_mismatch(self):
        base = _doc(pps=1000)
        base["schema_version"] = 0
        assert judge(_doc(), base).verdict == "schema-mismatch"

    def test_failed_baseline_counts_as_missing(self):
        assert judge(_doc(),
                     failed_report("w", {}, RuntimeError("x"))).verdict \
            == "no-baseline"


class TestCompareReports:
    def test_matches_by_workload_name(self):
        current = [_doc("a", 1000), _doc("b", 500)]
        baselines = {"a": _doc("a", 1000)}
        verdicts = compare_reports(current, baselines, tolerance=0.2)
        assert [v.verdict for v in verdicts] == ["ok", "no-baseline"]
        assert not has_failures(verdicts)

    def test_has_failures_on_regression(self):
        verdicts = compare_reports([_doc("a", 100)], {"a": _doc("a", 1000)})
        assert has_failures(verdicts)

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            compare_reports([], {}, tolerance=1.5)


class TestLoadBaselines:
    def test_loads_a_directory_of_artifacts(self, tmp_path):
        write_report(_doc("a", 100), tmp_path)
        write_report(_doc("b", 200), tmp_path)
        (tmp_path / "not-a-bench.json").write_text("{}")
        docs = load_baselines(tmp_path)
        assert sorted(docs) == ["a", "b"]

    def test_loads_a_single_file(self, tmp_path):
        path = write_report(_doc("a", 100), tmp_path)
        assert list(load_baselines(path)) == ["a"]
