"""Meter policy: warmup, repeats, min-wall, determinism enforcement."""

import pytest

from repro.bench import BenchDeterminismError, BenchMeter, registry
from repro.bench.meter import Measurement


class TestMeterPolicy:
    def test_warmup_runs_are_not_timed(self):
        calls = []

        def fn():
            calls.append(1)
            return {"packets": 10, "events": 20}

        m = BenchMeter(warmup=2, repeats=3).measure(fn)
        assert len(calls) == 5
        assert len(m.walls) == 3
        assert m.wall_s == min(m.walls)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            BenchMeter(warmup=-1)
        with pytest.raises(ValueError):
            BenchMeter(repeats=0)

    def test_peak_rss_is_positive_on_linux(self):
        m = BenchMeter(warmup=0, repeats=1).measure(
            lambda: {"packets": 1, "events": 1})
        assert m.peak_rss_kb > 0


class TestDeterminism:
    def test_nondeterministic_counters_raise(self):
        seq = iter([{"packets": 10, "events": 20},
                    {"packets": 11, "events": 20}])
        with pytest.raises(BenchDeterminismError, match="packets"):
            BenchMeter(warmup=0, repeats=2).measure(lambda: next(seq))

    def test_nondeterministic_flag_skips_the_check(self):
        seq = iter([{"packets": 10, "events": 20},
                    {"packets": 11, "events": 20}])
        m = BenchMeter(warmup=0, repeats=2).measure(lambda: next(seq),
                                                    deterministic=False)
        assert m.counters["packets"] == 10  # first repeat's counters

    def test_seeded_sim_workload_is_deterministic(self):
        # Two independent meter passes over the same seeded workload
        # must agree on every determinism key — this is the guarantee
        # that a benchmark never times two different computations.
        w = registry()["manyflow-16"]
        a = BenchMeter(warmup=0, repeats=2).measure(
            lambda: w.run_once(seed=7, scale=0.1))
        b = BenchMeter(warmup=0, repeats=1).measure(
            lambda: w.run_once(seed=7, scale=0.1))
        assert a.counters["packets"] == b.counters["packets"]
        assert a.counters["events"] == b.counters["events"]


class TestMeasurePair:
    def test_interleaves_and_returns_both_legs(self):
        order = []

        def fa():
            order.append("a")
            return {"packets": 5, "events": 9}

        def fb():
            order.append("b")
            return {"packets": 5, "events": 9}

        ma, mb = BenchMeter(warmup=1, repeats=2).measure_pair(fa, fb)
        # warmup pair + two interleaved timed pairs
        assert order == ["a", "b", "a", "b", "a", "b"]
        assert isinstance(ma, Measurement) and isinstance(mb, Measurement)
        assert len(ma.walls) == len(mb.walls) == 2

    def test_pair_enforces_determinism_per_leg(self):
        seq = iter([{"packets": 1, "events": 1},
                    {"packets": 2, "events": 1}])
        with pytest.raises(BenchDeterminismError):
            BenchMeter(warmup=0, repeats=2).measure_pair(
                lambda: next(seq), lambda: {"packets": 3, "events": 3})
