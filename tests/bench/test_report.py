"""BENCH artifact schema: build, validate, write, reload."""

import json

import pytest

from repro.bench import (BENCH_SCHEMA_VERSION, Measurement, artifact_name,
                         build_report, failed_report, load_report,
                         validate_report, write_report)


def _measurement(packets=1000, wall=0.5):
    return Measurement(wall_s=wall, walls=[wall, wall * 1.1],
                       counters={"packets": packets, "events": packets * 2,
                                 "sim_seconds": 10.0},
                       peak_rss_kb=50_000.0)


class TestBuildReport:
    def test_ok_report_is_schema_valid(self):
        doc = build_report("wired-single", "batched",
                           {"warmup": 1, "repeats": 3, "seed": 1,
                            "scale": 1.0},
                           _measurement())
        assert validate_report(doc) == []
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["status"] == "ok"
        assert doc["speedup_vs_reference"] is None

    def test_reference_leg_records_speedup(self):
        doc = build_report("wired-single", "batched", {},
                           _measurement(wall=0.5),
                           reference=_measurement(wall=1.6))
        assert doc["speedup_vs_reference"] == pytest.approx(3.2)
        assert doc["reference"]["wall_s"] == 1.6
        assert validate_report(doc) == []

    def test_metrics_are_derived_from_counters(self):
        doc = build_report("w", "batched", {}, _measurement(packets=1000,
                                                            wall=0.5))
        assert doc["metrics"]["packets_per_sec"] == pytest.approx(2000.0)
        assert doc["metrics"]["events_per_sec"] == pytest.approx(4000.0)
        assert doc["metrics"]["sim_seconds_per_wall_second"] == \
            pytest.approx(20.0)


class TestFailedReport:
    def test_failed_report_is_schema_valid(self):
        doc = failed_report("crash-selftest", {"seed": 1},
                            RuntimeError("controller raised"))
        assert validate_report(doc) == []
        assert doc["status"] == "failed"
        assert "RuntimeError" in doc["error"]

    def test_failed_report_without_error_is_invalid(self):
        doc = failed_report("w", {}, RuntimeError("x"))
        doc["error"] = ""
        assert validate_report(doc) != []


class TestValidation:
    def test_wrong_schema_version_is_flagged(self):
        doc = build_report("w", "batched", {}, _measurement())
        doc["schema_version"] = 999
        assert any("schema_version" in p for p in validate_report(doc))

    def test_missing_metric_key_is_flagged(self):
        doc = build_report("w", "batched", {}, _measurement())
        del doc["metrics"]["packets_per_sec"]
        assert any("packets_per_sec" in p for p in validate_report(doc))

    def test_bad_status_is_flagged(self):
        doc = build_report("w", "batched", {}, _measurement())
        doc["status"] = "maybe"
        assert any("status" in p for p in validate_report(doc))


class TestRoundTrip:
    def test_write_and_load(self, tmp_path):
        doc = build_report("wired-single", "batched", {"seed": 1},
                           _measurement())
        path = write_report(doc, tmp_path)
        assert path.name == artifact_name("wired-single") == \
            "BENCH_wired-single.json"
        assert load_report(path) == doc

    def test_load_rejects_invalid_artifact(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"workload": "bad"}))
        with pytest.raises(ValueError, match="invalid BENCH artifact"):
            load_report(path)
