"""End-to-end integration tests tying the paper's headline claims to the
simulator (scaled-down durations; the benches run the full versions)."""

import pytest

from repro import Dumbbell, lte_trace, make_controller, step_trace, wired_trace
from repro.metrics import jain_index


def _single(cca, trace, rtt=0.03, buffer_bytes=150_000, duration=12.0,
            seed=1, loss=0.0, **kw):
    net = Dumbbell(trace, buffer_bytes=buffer_bytes, rtt=rtt,
                   loss_rate=loss, seed=seed)
    net.add_flow(make_controller(cca, seed=seed, **kw))
    return net.run(duration)


class TestAdaptabilityClaims:
    def test_c_libra_keeps_cubic_throughput_with_less_delay(self):
        """Fig. 7: C-Libra ~0.97x CUBIC throughput at a fraction of the
        delay on wired links."""
        cubic = _single("cubic", wired_trace(24))
        libra = _single("c-libra", wired_trace(24))
        assert libra.utilization > 0.9 * cubic.utilization
        assert libra.flows[0].avg_rtt_ms < 0.8 * cubic.flows[0].avg_rtt_ms

    def test_b_libra_cuts_delay_on_cellular(self):
        """Fig. 7: B-Libra reduces delay vs BBR on cellular links."""
        bbr = _single("bbr", lte_trace("walking", seed=3), seed=3)
        blibra = _single("b-libra", lte_trace("walking", seed=3), seed=3)
        assert blibra.flows[0].avg_rtt_ms <= bbr.flows[0].avg_rtt_ms * 1.1

    def test_libra_tracks_step_capacity(self):
        """Fig. 2(a): Libra converges to each new capacity level."""
        result = _single("c-libra", step_trace([20, 5, 15], 6.0), rtt=0.08,
                         buffer_bytes=150_000, duration=18.0)
        assert result.utilization > 0.7


class TestPracticalityClaims:
    def test_libra_overhead_below_orca(self):
        """Remark 5: the DRL agent runs only in exploration."""
        from repro.overhead.costmodel import cpu_utilization

        libra = _single("c-libra", wired_trace(24))
        orca = _single("orca", wired_trace(24))
        libra_cpu = cpu_utilization(libra.controllers[0], 12.0)
        orca_cpu = cpu_utilization(orca.controllers[0], 12.0)
        assert libra_cpu < orca_cpu

    def test_intra_protocol_fairness_above_090(self):
        """Fig. 14: Libra's intra-protocol Jain index stays high."""
        net = Dumbbell(wired_trace(48), buffer_bytes=600_000, rtt=0.1, seed=2)
        net.add_flow(make_controller("c-libra", seed=1))
        net.add_flow(make_controller("c-libra", seed=2))
        result = net.run(25.0)
        assert jain_index([f.throughput_mbps for f in result.flows]) > 0.9

    def test_inter_protocol_no_starvation(self):
        """Fig. 13: Libra neither starves CUBIC nor is starved."""
        net = Dumbbell(wired_trace(48), buffer_bytes=600_000, rtt=0.1, seed=2)
        net.add_flow(make_controller("c-libra", seed=1))
        net.add_flow(make_controller("cubic"))
        result = net.run(25.0)
        shares = [f.throughput_mbps for f in result.flows]
        ratio = shares[0] / sum(shares)
        assert 0.25 < ratio < 0.75

    def test_b_libra_loss_resilience(self):
        """Fig. 10: B-Libra keeps utilization high under stochastic loss."""
        result = _single("b-libra", wired_trace(24), loss=0.06, duration=14.0)
        assert result.utilization > 0.6

    def test_c_libra_beats_cubic_under_loss(self):
        """Remark 3: x_rl / x_prev out-vote CUBIC's spurious reductions."""
        cubic = _single("cubic", wired_trace(24), loss=0.04, duration=14.0)
        libra = _single("c-libra", wired_trace(24), loss=0.04, duration=14.0)
        assert libra.utilization > cubic.utilization


class TestFlexibilityClaims:
    def test_la_preset_not_slower_than_th_preset(self):
        """Fig. 11: latency presets trade throughput for delay."""
        th = _single("c-libra", lte_trace("walking", seed=3), seed=3,
                     duration=16.0, utility_preset="th-2")
        la = _single("c-libra", lte_trace("walking", seed=3), seed=3,
                     duration=16.0, utility_preset="la-2")
        assert la.flows[0].avg_rtt_ms <= th.flows[0].avg_rtt_ms + 2.0


class TestSafetyClaims:
    def test_libra_less_variable_than_orca(self):
        """Tab. 6: Libra's utilization varies less across repeated runs."""
        import numpy as np

        def spread(cca):
            utils = [_single(cca, lte_trace("walking", seed=s), seed=s,
                             duration=8.0).utilization for s in range(1, 5)]
            return float(np.std(utils))

        assert spread("c-libra") <= spread("orca") + 0.05
