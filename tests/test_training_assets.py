"""Tests for policy training entry points and bundled assets."""

import zipfile

import numpy as np
import pytest

from repro.assets import POLICY_KINDS, asset_path, load_policy
from repro.env.features import Measurement, Normalizer
from repro.training import (Eq1Reward, TRAIN_SPECS, make_training_env,
                            train_policy)


class TestAssets:
    def test_all_policies_load(self):
        for kind in POLICY_KINDS:
            policy = load_policy(kind)
            assert policy.obs_dim > 0

    def test_cache_shares_instance(self):
        assert load_policy("libra") is load_policy("libra")

    def test_fresh_gives_new_instance(self):
        assert load_policy("libra", fresh=True) is not load_policy("libra")

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            load_policy("gpt-cc")

    def test_every_bundled_npz_is_a_valid_archive(self):
        """Integrity: the shipped files are complete, loadable zips."""
        for kind in POLICY_KINDS:
            path = asset_path(kind)
            assert zipfile.is_zipfile(path), f"{path} is not a zip archive"
            with np.load(path) as archive:
                assert len(archive.files) > 0
                for name in archive.files:
                    archive[name]  # decompresses; raises if truncated

    def test_truncated_asset_gives_actionable_error(self, tmp_path,
                                                    monkeypatch):
        import repro.assets as assets

        broken_dir = tmp_path / "assets"
        broken_dir.mkdir()
        with open(asset_path("libra"), "rb") as fh:
            blob = fh.read()
        with open(broken_dir / "libra.npz", "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        monkeypatch.setattr(assets, "_ASSET_DIR", str(broken_dir))
        with pytest.raises(RuntimeError, match="train_policy.py --all"):
            load_policy("libra", fresh=True)

    def test_missing_asset_gives_actionable_error(self, tmp_path,
                                                  monkeypatch):
        import repro.assets as assets

        monkeypatch.setattr(assets, "_ASSET_DIR", str(tmp_path))
        with pytest.raises(FileNotFoundError, match="train_policy.py --all"):
            load_policy("orca", fresh=True)


class TestTrainingEnv:
    def test_specs_cover_policy_kinds(self):
        assert set(TRAIN_SPECS) == set(POLICY_KINDS)

    def test_env_feature_set_matches_spec(self):
        env = make_training_env("aurora")
        from repro.env.features import STATE_SETS
        assert env.builder.feature_set == STATE_SETS["aurora"]

    def test_eq1_reward_attached_for_modified_rl(self):
        env = make_training_env("modified-rl")
        assert isinstance(env.reward_fn, Eq1Reward)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            train_policy("alphago")


class TestEq1Reward:
    def test_raw_uses_utility(self):
        reward = Eq1Reward()
        norm = Normalizer(init_max_rate=100e6)
        m = Measurement(throughput=50e6, send_rate=50e6, avg_rtt=0.1,
                        latest_rtt=0.1, min_rtt=0.1, rtt_gradient=0.0,
                        loss_rate=0.0, ack_gap_ewma=0.001,
                        send_gap_ewma=0.001, sent_packets=10,
                        acked_packets=10, rate=50e6)
        value = reward.raw(m, norm)
        assert 0.0 < value < 1.0

    def test_scale_is_positive_and_fixed(self):
        """SCALE = u(200 Mbps, no gradient, no loss) — the range's top."""
        from repro.core.utility import UtilityParams, utility

        assert Eq1Reward.SCALE > 0.0
        assert Eq1Reward.SCALE == pytest.approx(
            utility(200.0, 0.0, 0.0, UtilityParams()))

    def test_reward_bounded_on_training_ranges(self):
        """|raw| stays O(1) across the paper's randomized training ranges
        (capacity 10-200 Mbps, loss 0-5%, RTT-gradient swings)."""
        reward = Eq1Reward()
        norm = Normalizer(init_max_rate=200e6)
        for tput_mbps in (10.0, 50.0, 200.0):
            for loss in (0.0, 0.02, 0.05):
                for grad in (-1.0, 0.0, 1.0):
                    m = Measurement(
                        throughput=tput_mbps * 1e6, send_rate=tput_mbps * 1e6,
                        avg_rtt=0.1, latest_rtt=0.1, min_rtt=0.1,
                        rtt_gradient=grad, loss_rate=loss,
                        ack_gap_ewma=0.001, send_gap_ewma=0.001,
                        sent_packets=10, acked_packets=10,
                        rate=tput_mbps * 1e6)
                    value = reward.raw(m, norm)
                    assert np.isfinite(value)
                    assert -10.0 <= value <= 1.0

    def test_top_of_range_maps_to_one(self):
        """The best measurable outcome normalizes to exactly 1."""
        reward = Eq1Reward()
        norm = Normalizer(init_max_rate=200e6)
        m = Measurement(throughput=200e6, send_rate=200e6, avg_rtt=0.1,
                        latest_rtt=0.1, min_rtt=0.1, rtt_gradient=0.0,
                        loss_rate=0.0, ack_gap_ewma=0.001,
                        send_gap_ewma=0.001, sent_packets=10,
                        acked_packets=10, rate=200e6)
        assert reward.raw(m, norm) == pytest.approx(1.0)


def test_quick_training_improves_reward():
    policy, history = train_policy("libra", epochs=4, seed=11,
                                   hidden=(16, 16), steps_per_epoch=384)
    rewards = history.episode_rewards
    assert len(rewards) > 4
    assert np.mean(rewards[-4:]) > np.mean(rewards[:4]) - 0.5
