"""Tests for the PPO trainer on a toy environment."""

import numpy as np
import pytest

from repro.rl.policy import GaussianActorCritic
from repro.rl.ppo import PPOConfig, PPOTrainer


class TargetEnv:
    """Reward = -(position - target)^2; action moves the position.

    A 1-D control problem PPO must solve quickly if the plumbing
    (advantages, gradients, clipping) is correct.
    """

    def __init__(self, seed=0):
        self.rng = np.random.default_rng(seed)
        self.position = 0.0
        self.target = 1.0
        self.steps = 0

    def reset(self):
        self.position = float(self.rng.uniform(-2, 2))
        self.steps = 0
        return self._obs()

    def _obs(self):
        return np.array([self.position, self.target - self.position])

    def step(self, action):
        self.position += float(np.clip(action[0], -0.5, 0.5))
        self.steps += 1
        reward = -(self.position - self.target) ** 2
        done = self.steps >= 16
        return self._obs(), reward, done, {}


def test_ppo_improves_on_toy_problem():
    env = TargetEnv(seed=1)
    policy = GaussianActorCritic(2, hidden=(16, 16), seed=1)
    trainer = PPOTrainer(env, policy, PPOConfig(
        steps_per_epoch=256, max_episode_steps=16, lr=3e-3, seed=1))
    history = trainer.train(epochs=12)
    rewards = history.episode_rewards
    first = np.mean(rewards[:10])
    last = np.mean(rewards[-10:])
    assert last > first + 1.0, (first, last)


def test_collect_fills_buffer():
    env = TargetEnv(seed=2)
    policy = GaussianActorCritic(2, hidden=(8,), seed=2)
    trainer = PPOTrainer(env, policy, PPOConfig(steps_per_epoch=64,
                                                max_episode_steps=16, seed=2))
    data = trainer.collect()
    assert len(data["obs"]) == 64
    assert set(data) == {"obs", "actions", "logps", "advantages", "returns"}


def test_update_returns_stats():
    env = TargetEnv(seed=3)
    policy = GaussianActorCritic(2, hidden=(8,), seed=3)
    trainer = PPOTrainer(env, policy, PPOConfig(steps_per_epoch=64,
                                                max_episode_steps=16, seed=3))
    stats = trainer.update(trainer.collect())
    assert 0.0 <= stats["clip_frac"] <= 1.0
    assert stats["v_loss"] >= 0.0


def test_training_is_deterministic_given_seed():
    def run():
        env = TargetEnv(seed=4)
        policy = GaussianActorCritic(2, hidden=(8,), seed=4)
        trainer = PPOTrainer(env, policy, PPOConfig(
            steps_per_epoch=64, max_episode_steps=16, seed=4))
        trainer.train(2)
        return policy.actor.weights[0].copy()

    assert np.array_equal(run(), run())


def test_history_smoothing():
    from repro.rl.ppo import TrainHistory

    history = TrainHistory(episode_rewards=[0.0, 10.0, 20.0])
    smoothed = history.smoothed(window=2)
    assert smoothed == [0.0, 5.0, 15.0]
