"""Tests for the Gaussian actor-critic policy."""

import numpy as np
import pytest

from repro.rl.policy import GaussianActorCritic


@pytest.fixture
def policy():
    return GaussianActorCritic(obs_dim=6, hidden=(16, 16), seed=3)


class TestActing:
    def test_action_shape_and_logp(self, policy):
        rng = np.random.default_rng(0)
        action, logp, value = policy.act(np.zeros(6), rng)
        assert action.shape == (1,)
        assert isinstance(logp, float)
        assert isinstance(value, float)

    def test_deterministic_returns_mean(self, policy):
        rng = np.random.default_rng(0)
        a1, _, _ = policy.act(np.zeros(6), rng, deterministic=True)
        a2, _, _ = policy.act(np.zeros(6), rng, deterministic=True)
        assert np.array_equal(a1, a2)

    def test_stochastic_varies(self, policy):
        rng = np.random.default_rng(0)
        actions = [policy.act(np.zeros(6), rng)[0][0] for _ in range(10)]
        assert len(set(actions)) > 1

    def test_logp_consistent_with_batch_eval(self, policy):
        rng = np.random.default_rng(0)
        obs = rng.normal(size=6)
        action, logp, _ = policy.act(obs, rng)
        batch_logp = policy.logp(obs.reshape(1, -1), action.reshape(1, -1))
        assert batch_logp[0] == pytest.approx(logp)

    def test_entropy_positive_at_default_std(self, policy):
        assert policy.entropy() > 0


class TestSerialization:
    def test_save_load_roundtrip(self, policy, tmp_path):
        path = str(tmp_path / "weights.npz")
        policy.save(path)
        loaded = GaussianActorCritic.load(path)
        rng = np.random.default_rng(0)
        obs = np.ones(6)
        a1, _, v1 = policy.act(obs, rng, deterministic=True)
        a2, _, v2 = loaded.act(obs, rng, deterministic=True)
        assert np.allclose(a1, a2)
        assert v1 == pytest.approx(v2)

    def test_set_weights_rejects_shape_mismatch(self, policy):
        weights = policy.get_weights()
        weights["actor_w0"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            policy.set_weights(weights)


def test_params_include_log_std(policy):
    assert any(p is policy.log_std for p in policy.params)
