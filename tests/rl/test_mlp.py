"""Tests for the numpy MLP and Adam, including a numerical grad-check."""

import numpy as np
import pytest

from repro.rl.mlp import MLP, Adam, _orthogonal


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestForward:
    def test_output_shape(self, rng):
        net = MLP(4, (8, 8), 2, rng)
        out = net.forward(np.zeros((5, 4)))
        assert out.shape == (5, 2)

    def test_single_sample_promoted(self, rng):
        net = MLP(4, (8,), 1, rng)
        out = net.forward(np.zeros(4))
        assert out.shape == (1, 1)

    def test_deterministic(self, rng):
        net = MLP(4, (8,), 1, rng)
        x = np.ones((3, 4))
        assert np.array_equal(net.forward(x), net.forward(x))


class TestBackward:
    def test_requires_cached_forward(self, rng):
        net = MLP(2, (4,), 1, rng)
        with pytest.raises(RuntimeError):
            net.backward(np.zeros((1, 1)))

    def test_gradient_matches_numerical(self, rng):
        net = MLP(3, (5,), 1, rng)
        x = rng.normal(size=(7, 3))
        target = rng.normal(size=(7, 1))

        def loss():
            return float(((net.forward(x) - target) ** 2).sum())

        out = net.forward(x, cache=True)
        grads = net.backward(2.0 * (out - target))
        params = net.params
        eps = 1e-6
        for p, g in zip(params, grads):
            flat = p.reshape(-1)
            gflat = np.asarray(g).reshape(-1)
            for idx in range(0, flat.size, max(flat.size // 5, 1)):
                orig = flat[idx]
                flat[idx] = orig + eps
                up = loss()
                flat[idx] = orig - eps
                down = loss()
                flat[idx] = orig
                numeric = (up - down) / (2 * eps)
                assert gflat[idx] == pytest.approx(numeric, rel=1e-3, abs=1e-5)

    def test_param_count(self, rng):
        net = MLP(3, (5, 7), 2, rng)
        assert net.num_params() == (3 * 5 + 5) + (5 * 7 + 7) + (7 * 2 + 2)


class TestAdam:
    def test_minimizes_quadratic(self):
        x = np.array([5.0])
        opt = Adam([x], lr=0.1)
        for _ in range(300):
            opt.step([2.0 * x])
        assert abs(x[0]) < 0.05

    def test_grad_count_checked(self):
        x = np.array([1.0])
        opt = Adam([x])
        with pytest.raises(ValueError):
            opt.step([])

    def test_trains_mlp_on_regression(self, rng):
        net = MLP(2, (16,), 1, rng, out_gain=1.0)
        opt = Adam(net.params, lr=1e-2)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] + 0.5 * x[:, 1:])
        first = None
        for step in range(200):
            out = net.forward(x, cache=True)
            err = out - y
            if step == 0:
                first = float((err ** 2).mean())
            opt.step(net.backward(2 * err / len(x)))
        final = float(((net.forward(x) - y) ** 2).mean())
        assert final < first * 0.1


def test_orthogonal_init_is_orthogonal():
    rng = np.random.default_rng(1)
    q = _orthogonal((6, 6), gain=1.0, rng=rng)
    assert np.allclose(q @ q.T, np.eye(6), atol=1e-8)


def test_flops_accounting():
    rng = np.random.default_rng(0)
    net = MLP(4, (8,), 2, rng)
    assert net.flops_per_forward == 2 * (4 * 8 + 8 * 2)
