"""Tests for the rollout buffer and GAE computation."""

import numpy as np
import pytest

from repro.rl.rollout import RolloutBuffer, normalize_advantages


def test_store_and_capacity():
    buf = RolloutBuffer(2, 1, capacity=3)
    for i in range(3):
        buf.store(np.zeros(2), np.zeros(1), 1.0, 0.0, 0.0)
    assert buf.full
    with pytest.raises(RuntimeError):
        buf.store(np.zeros(2), np.zeros(1), 1.0, 0.0, 0.0)


def test_gae_hand_computed():
    gamma, lam = 0.9, 0.8
    buf = RolloutBuffer(1, 1, capacity=3, gamma=gamma, lam=lam)
    rewards = [1.0, 2.0, 3.0]
    values = [0.5, 0.6, 0.7]
    for r, v in zip(rewards, values):
        buf.store(np.zeros(1), np.zeros(1), r, v, 0.0)
    buf.finish_path(last_value=0.0)

    deltas = [rewards[0] + gamma * values[1] - values[0],
              rewards[1] + gamma * values[2] - values[1],
              rewards[2] + gamma * 0.0 - values[2]]
    adv2 = deltas[2]
    adv1 = deltas[1] + gamma * lam * adv2
    adv0 = deltas[0] + gamma * lam * adv1
    expected = np.array([adv0, adv1, adv2])

    assert np.allclose(buf.advantages[:3], expected)
    assert np.allclose(buf.returns[:3], expected + np.array(values))


def test_gae_numeric_fixture():
    """Fixed numbers worked out by hand, no symbolic recomputation.

    gamma=0.5, lam=0.5, rewards (1,1,1), values (0.5,0.4,0.3),
    bootstrap 0.2:
      deltas     = (0.7, 0.75, 0.8)
      advantages = (0.9375, 0.95, 0.8)   (discount factor 0.25)
      returns    = advantages + values = (1.4375, 1.35, 1.1)
    """
    buf = RolloutBuffer(1, 1, capacity=3, gamma=0.5, lam=0.5)
    for r, v in zip((1.0, 1.0, 1.0), (0.5, 0.4, 0.3)):
        buf.store(np.zeros(1), np.zeros(1), r, v, 0.0)
    buf.finish_path(last_value=0.2)
    assert np.allclose(buf.advantages[:3], [0.9375, 0.95, 0.8])
    assert np.allclose(buf.returns[:3], [1.4375, 1.35, 1.1])


def test_get_raw_advantages_unnormalized():
    """normalize=False returns GAE values untouched (the workers path)."""
    buf = RolloutBuffer(1, 1, capacity=3, gamma=0.5, lam=0.5)
    for r, v in zip((1.0, 1.0, 1.0), (0.5, 0.4, 0.3)):
        buf.store(np.zeros(1), np.zeros(1), r, v, 0.0)
    buf.finish_path(last_value=0.2)
    data = buf.get(normalize=False)
    assert np.allclose(data["advantages"], [0.9375, 0.95, 0.8])


def test_normalize_advantages_matches_get():
    buf = RolloutBuffer(1, 1, capacity=4)
    for r in (1.0, 5.0, 2.0, 7.0):
        buf.store(np.zeros(1), np.zeros(1), r, 0.0, 0.0)
    buf.finish_path()
    raw = buf.get(normalize=False)["advantages"]
    buf2 = RolloutBuffer(1, 1, capacity=4)
    for r in (1.0, 5.0, 2.0, 7.0):
        buf2.store(np.zeros(1), np.zeros(1), r, 0.0, 0.0)
    buf2.finish_path()
    assert np.allclose(normalize_advantages(raw),
                       buf2.get(normalize=True)["advantages"])


def test_get_normalizes_advantages():
    buf = RolloutBuffer(1, 1, capacity=4)
    for r in (1.0, 5.0, 2.0, 7.0):
        buf.store(np.zeros(1), np.zeros(1), r, 0.0, 0.0)
    buf.finish_path()
    data = buf.get()
    assert abs(data["advantages"].mean()) < 1e-9
    assert data["advantages"].std() == pytest.approx(1.0, abs=1e-6)


def test_get_requires_finished_paths():
    buf = RolloutBuffer(1, 1, capacity=2)
    buf.store(np.zeros(1), np.zeros(1), 1.0, 0.0, 0.0)
    with pytest.raises(RuntimeError):
        buf.get()


def test_multiple_paths_do_not_leak():
    buf = RolloutBuffer(1, 1, capacity=4, gamma=1.0, lam=1.0)
    buf.store(np.zeros(1), np.zeros(1), 1.0, 0.0, 0.0)
    buf.finish_path(last_value=0.0)
    buf.store(np.zeros(1), np.zeros(1), 10.0, 0.0, 0.0)
    buf.store(np.zeros(1), np.zeros(1), 10.0, 0.0, 0.0)
    buf.finish_path(last_value=0.0)
    # first path's return must not include the second path's rewards
    assert buf.returns[0] == pytest.approx(1.0)
    assert buf.returns[1] == pytest.approx(20.0)


def test_bootstrap_value_used_on_timeout():
    buf = RolloutBuffer(1, 1, capacity=1, gamma=0.5, lam=1.0)
    buf.store(np.zeros(1), np.zeros(1), 1.0, 0.0, 0.0)
    buf.finish_path(last_value=4.0)
    assert buf.returns[0] == pytest.approx(1.0 + 0.5 * 4.0)


def test_reset_after_get():
    buf = RolloutBuffer(1, 1, capacity=2)
    for _ in range(2):
        buf.store(np.zeros(1), np.zeros(1), 1.0, 0.0, 0.0)
    buf.finish_path()
    buf.get()
    assert buf.ptr == 0
    buf.store(np.ones(1), np.zeros(1), 2.0, 0.0, 0.0)
    assert buf.obs[0, 0] == 1.0
