"""Churn workload generator: determinism, cache keys, presets."""

import pytest

from repro.parallel.cache import job_key
from repro.parallel.jobs import FlowSpec
from repro.scale import (CHURN_PRESETS, ChurnSpec, churn_flows, churn_job,
                         churn_preset)
from repro.scenarios.presets import scale_scenario

SPEC = ChurnSpec(name="t", n_flows=40, arrival_window=5.0, duration=12.0,
                 onoff_fraction=0.3, trace_cap=6,
                 rtt_classes=((0.0, 0.6), (0.03, 0.4)), seed=7)


class TestDeterminism:
    def test_identical_seed_bit_identical(self):
        assert churn_flows(SPEC, "cubic", 3) == churn_flows(SPEC, "cubic", 3)

    def test_run_seed_varies_realization(self):
        assert churn_flows(SPEC, "cubic", 3) != churn_flows(SPEC, "cubic", 4)

    def test_spec_seed_varies_realization(self):
        assert churn_flows(SPEC, "cubic", 3) != \
            churn_flows(SPEC.with_(seed=8), "cubic", 3)

    def test_serial_vs_fork_identical(self):
        """The generator must be pure data — a fork-pool child running
        the same churn job reproduces the serial run bit-for-bit."""
        from repro.sanitize.diff import run_diff

        job = churn_job(churn_preset("churn-smoke"), "cubic",
                        scale_scenario(), seed=2)
        run_diff(job, mode="fork").raise_if_unequal()

    def test_flows_are_plain_flowspecs(self):
        flows = churn_flows(SPEC, "cubic", 1)
        assert all(isinstance(f, FlowSpec) for f in flows)
        assert all(f.bytes is not None and f.bytes >= 1500.0 for f in flows)
        assert all(f.seed == i for i, f in enumerate(flows))


class TestStructure:
    def test_arrivals_inside_window(self):
        flows = churn_flows(SPEC.with_(onoff_fraction=0.0), "cubic", 1)
        assert len(flows) == SPEC.n_flows
        assert all(0.0 <= f.start < SPEC.arrival_window for f in flows)

    def test_onoff_sessions_emit_phases(self):
        flows = churn_flows(SPEC, "cubic", 1)
        # 30% of 40 sessions split into 3 phases each → more flows than
        # sessions, and phase think-gaps can push starts past the window
        assert len(flows) > SPEC.n_flows

    def test_trace_cap_bounds_traced_flows(self):
        flows = churn_flows(SPEC, "cubic", 1)
        assert sum(f.traced for f in flows) == SPEC.trace_cap

    def test_rtt_classes_applied(self):
        flows = churn_flows(SPEC, "cubic", 1)
        extras = {f.extra_rtt for f in flows}
        assert extras == {0.0, 0.03}

    def test_offered_load_positive(self):
        assert SPEC.offered_load(96e6) > 0.0
        log = SPEC.with_(size_dist="lognormal")
        assert log.offered_load(96e6) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnSpec(name="bad", n_flows=0, arrival_window=1.0,
                      duration=1.0)
        with pytest.raises(ValueError):
            ChurnSpec(name="bad", n_flows=1, arrival_window=1.0,
                      duration=1.0, size_dist="uniform")
        with pytest.raises(ValueError):
            ChurnSpec(name="bad", n_flows=1, arrival_window=1.0,
                      duration=1.0, onoff_fraction=1.5)

    def test_presets_wellformed(self):
        for name, spec in CHURN_PRESETS.items():
            assert spec.name == name
            assert churn_preset(name) is spec
        with pytest.raises(KeyError, match="churn-smoke"):
            churn_preset("nope")


class TestCacheKeys:
    def test_key_stable_for_same_spec(self):
        scen = scale_scenario()
        a = churn_job(SPEC, "cubic", scen, seed=1)
        b = churn_job(SPEC, "cubic", scen, seed=1)
        assert job_key(a) == job_key(b)

    def test_key_tracks_churn_parameters(self):
        """Any spec change must reach the cache key via the flow tuple."""
        scen = scale_scenario()
        base = job_key(churn_job(SPEC, "cubic", scen, seed=1))
        assert job_key(churn_job(SPEC.with_(seed=9), "cubic",
                                 scen, seed=1)) != base
        assert job_key(churn_job(SPEC.with_(n_flows=41), "cubic",
                                 scen, seed=1)) != base
        assert job_key(churn_job(SPEC.with_(max_kb=9000.0), "cubic",
                                 scen, seed=1)) != base
        assert job_key(churn_job(SPEC, "bbr", scen, seed=1)) != base
        assert job_key(churn_job(SPEC, "cubic", scen, seed=2)) != base

    def test_key_tracks_trace_cap(self):
        scen = scale_scenario()
        base = job_key(churn_job(SPEC, "cubic", scen, seed=1))
        assert job_key(churn_job(SPEC.with_(trace_cap=7), "cubic",
                                 scen, seed=1)) != base
