"""Finite-size flows: budget gates, FIN semantics, loss completion."""

import dataclasses

import pytest

from repro.parallel.jobs import FlowSpec, Job, single_flow_job
from repro.sanitize.diff import diff_results, metric_fingerprint
from repro.scenarios.presets import named_presets

PRESETS = named_presets()
WIRED = PRESETS["wired-12"]


def run_finite(nbytes, cca="cubic", scenario=WIRED, duration=20.0,
               sanitize=True, engine=None, **extra_flows):
    scen = scenario if engine is None else scenario.with_(engine=engine)
    job = Job(scenario=scen,
              flows=(FlowSpec.make(cca, bytes=nbytes),),
              seed=3, duration=duration, sanitize=1 if sanitize else 0)
    return job.run()


class TestFinSemantics:
    def test_flow_fins_at_budget(self):
        result = run_finite(600_000.0)
        stats = result.flows[0]
        assert stats.completed
        assert stats.fin_time is not None
        assert 0.0 < stats.fin_time < 20.0
        # FIN == all budgeted bytes acknowledged; receiver-side delivery
        # is at least the budget (the last packet may straddle it).
        assert stats.delivered_bytes >= 600_000.0
        assert stats.acked_packets * 1500 >= 600_000.0

    def test_fct_is_fin_minus_start(self):
        result = run_finite(600_000.0)
        stats = result.flows[0]
        assert stats.fct == pytest.approx(stats.fin_time - stats.start_time)
        # end_time freezes at the FIN, not the horizon
        assert stats.end_time == stats.fin_time

    def test_unbounded_flow_never_fins(self):
        result = run_finite(None)
        stats = result.flows[0]
        assert not stats.completed
        assert stats.fct is None
        assert stats.end_time == pytest.approx(20.0)

    def test_budget_never_overshoots_one_packet(self):
        result = run_finite(90_000.0)
        stats = result.flows[0]
        # zero loss on the clean link: sent == budget packets exactly
        assert stats.sent_packets == 60
        assert stats.lost_packets == 0

    def test_horizon_truncates_without_fin(self):
        result = run_finite(50_000_000.0, duration=2.0)
        stats = result.flows[0]
        assert not stats.completed
        assert stats.flow_bytes == 50_000_000.0

    def test_scheduled_stop_does_not_overwrite_fin(self):
        job = Job(scenario=WIRED,
                  flows=(FlowSpec.make("cubic", bytes=300_000.0, stop=10.0),),
                  seed=3, duration=20.0, sanitize=1)
        stats = job.run().flows[0]
        assert stats.completed
        assert stats.end_time == stats.fin_time < 10.0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            run_finite(-1.0)
        with pytest.raises(ValueError):
            run_finite(0.0)


class TestLossCompletion:
    """Lost packets free budget for replacement sends (retransmission
    emulation), so finite flows complete under loss — on both engines."""

    @pytest.mark.parametrize("cca", ["cubic", "reno", "vivace", "bbr"])
    def test_completes_under_heavy_loss(self, cca):
        lossy = WIRED.with_(loss_rate=0.15, name="lossy")
        job = Job(scenario=lossy,
                  flows=(FlowSpec.make(cca, bytes=400_000.0),),
                  seed=7, duration=120.0, sanitize=1)
        stats = job.run().flows[0]
        assert stats.completed, (stats.sent_packets, stats.acked_packets,
                                 stats.lost_packets)
        assert stats.lost_packets > 0
        # every lost packet was replaced: acked bytes cover the budget
        assert stats.acked_packets * 1500 >= 400_000.0

    def test_engines_identical_under_loss(self):
        lossy = WIRED.with_(loss_rate=0.1, name="lossy")
        flows = (FlowSpec.make("cubic", bytes=500_000.0),
                 FlowSpec.make("reno", seed=5, start=0.5, bytes=300_000.0))
        job = Job(scenario=lossy, flows=flows, seed=9, duration=90.0)
        ref = dataclasses.replace(
            job, scenario=lossy.with_(engine="reference")).run()
        bat = dataclasses.replace(
            job, scenario=lossy.with_(engine="batched")).run()
        assert bat.engine_used == "batched"
        diff_results(ref, bat, mode="engine", label_a="ref",
                     label_b="bat").raise_if_unequal()


class TestFingerprint:
    def test_fin_time_in_fingerprint(self):
        result = run_finite(600_000.0)
        fp = metric_fingerprint(result)
        assert fp["flow0.fin_time"] == result.flows[0].fin_time

    def test_unbounded_fin_is_nan_and_compares_equal(self):
        import math

        result = run_finite(None, duration=4.0)
        fp = metric_fingerprint(result)
        assert math.isnan(fp["flow0.fin_time"])
        result2 = run_finite(None, duration=4.0)
        diff_results(result, result2, mode="custom", label_a="a",
                     label_b="b").raise_if_unequal()


class TestSanitizerBudget:
    def test_sanitizer_passes_on_finite_flows(self):
        from repro.sanitize.invariants import SimSanitizer, activate

        with activate(SimSanitizer()) as sanitizer:
            job = Job(scenario=WIRED,
                      flows=(FlowSpec.make("cubic", bytes=400_000.0),
                             FlowSpec.make("bbr", seed=4, start=0.5,
                                           bytes=200_000.0)),
                      seed=5, duration=20.0)
            job.run()
        assert sanitizer.audits > 0
        assert sanitizer.violations == 0

    def test_sanitizer_catches_budget_breach(self):
        from repro.sanitize.errors import InvariantViolation
        from repro.sanitize.invariants import SimSanitizer

        class FakeLoop:
            now = 1.0

        class FakeStats:
            sent_packets = 2
            acked_packets = 1
            lost_packets = 0
            delivered_bytes = 1500.0

        class FakeSender:
            flow_id = 0
            loop = FakeLoop()
            stats = FakeStats()
            outstanding = {7: (0.5, 1500, 0.0, 0)}
            inflight_bytes = 1500.0
            delivered_bytes = 100_000.0   # acked way past the budget
            flow_bytes = 3_000.0
            mss = 1500
            _finished = False
            _running = True

        with pytest.raises(InvariantViolation, match="flow_budget"):
            SimSanitizer().audit_flow(FakeSender())

    def test_sanitizer_catches_premature_fin(self):
        from repro.sanitize.errors import InvariantViolation
        from repro.sanitize.invariants import SimSanitizer

        class FakeLoop:
            now = 1.0

        class FakeStats:
            sent_packets = 1
            acked_packets = 1
            lost_packets = 0
            delivered_bytes = 1500.0

        class FakeSender:
            flow_id = 0
            loop = FakeLoop()
            stats = FakeStats()
            outstanding = {}
            inflight_bytes = 0.0
            delivered_bytes = 1500.0
            flow_bytes = 30_000.0
            mss = 1500
            _finished = True              # claims FIN with bytes missing
            _running = False

        with pytest.raises(InvariantViolation, match="flow_fin"):
            SimSanitizer().audit_flow(FakeSender())


class TestJobPlumbing:
    def test_flowspec_carries_bytes_and_traced(self):
        spec = FlowSpec.make("cubic", bytes=1000.0, traced=False)
        assert spec.bytes == 1000.0
        assert spec.traced == 0
        default = FlowSpec.make("cubic")
        assert default.bytes is None
        assert default.traced == 1

    def test_untraced_flows_skip_dense_telemetry(self):
        flows = (FlowSpec.make("cubic", bytes=400_000.0, traced=True),
                 FlowSpec.make("cubic", seed=4, bytes=400_000.0,
                               traced=False))
        job = Job(scenario=WIRED, flows=flows, seed=5,
                  duration=10.0).with_telemetry()
        result = job.run()
        tel = result.telemetry
        assert tel is not None
        names = tel.series_names()
        assert any(n.startswith("flow0.") for n in names)
        assert not any(n.startswith("flow1.") for n in names)
        assert "link.active_flows" in names
        assert tel.meta["flows_traced"] == 1

    def test_telemetry_meta_counts_completions(self):
        job = single_flow_job("cubic", WIRED, seed=3, duration=20.0,
                              telemetry=True)
        job = dataclasses.replace(
            job, flows=(FlowSpec.make("cubic", bytes=300_000.0),))
        result = job.run()
        assert result.telemetry.meta["flows_completed"] == 1
