"""Differential oracle coverage for churn workloads.

Attach/detach (mid-run flow starts, FIN teardown) must not open
daylight between any execution configuration pair: serial vs fork,
telemetry off/on (with reservoir-sampled tracing), sanitize off/on,
reference vs batched — including the CoDel fallback where the batched
envelope cannot hold.
"""

import pytest

from repro.sanitize.diff import run_diff
from repro.scale import churn_job, churn_preset
from repro.scenarios.presets import scale_scenario

SPEC = churn_preset("churn-smoke")


@pytest.fixture(scope="module")
def job():
    return churn_job(SPEC, "cubic", scale_scenario(), seed=1)


class TestChurnDiffs:
    def test_engine_exact(self, job):
        report = run_diff(job, mode="engine").raise_if_unequal()
        assert "engine=batched" in report.notes[0]

    def test_telemetry_does_not_perturb(self, job):
        run_diff(job, mode="telemetry").raise_if_unequal()

    def test_sanitize_does_not_perturb(self, job):
        run_diff(job, mode="sanitize").raise_if_unequal()

    def test_engine_exact_on_codel_fallback(self):
        """CoDel pushes the batched leg onto the reference components —
        the fallback must still match the reference bit-for-bit."""
        scen = scale_scenario().with_(aqm="codel", name="scale-codel")
        report = run_diff(churn_job(SPEC, "cubic", scen, seed=1),
                          mode="engine").raise_if_unequal()
        assert any("outside the batched envelope" in n
                   for n in report.notes)

    def test_engine_exact_rate_cca(self):
        """MI controllers exercise the two-stage pipe with churn."""
        run_diff(churn_job(SPEC, "vivace", scale_scenario(), seed=2),
                 mode="engine").raise_if_unequal()

    def test_fingerprints_cover_fin_times(self, job):
        report = run_diff(job, mode="engine")
        fins = [k for k in report.fingerprint_a if k.endswith(".fin_time")]
        assert len(fins) == len(job.flows)
