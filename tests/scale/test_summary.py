"""Scale summary documents and the scale experiment surface."""

import json

import pytest

from repro.scale import (SUMMARY_SCHEMA_VERSION, build_summary, churn_job,
                         churn_preset, validate_summary)
from repro.scenarios.presets import scale_scenario


@pytest.fixture(scope="module")
def doc():
    spec = churn_preset("churn-smoke")
    result = churn_job(spec, "cubic", scale_scenario(), seed=1).run()
    doc = build_summary(result, spec, "cubic")
    doc["scenario"] = "scale-96"
    doc["seed"] = 1
    return doc


class TestSummary:
    def test_roundtrips_json_and_validates(self, doc):
        validate_summary(doc)
        validate_summary(json.loads(json.dumps(doc)))
        assert doc["schema_version"] == SUMMARY_SCHEMA_VERSION
        assert doc["flows"] == 32
        assert doc["engine"] == "batched"

    def test_fct_tail_present(self, doc):
        overall = doc["fct"]["overall"]
        assert overall["completed"] > 0
        assert overall["p99"] >= overall["p95"] >= overall["p50"] > 0.0

    def test_rejects_missing_key(self, doc):
        broken = dict(doc)
        del broken["fct"]
        with pytest.raises(ValueError, match="fct"):
            validate_summary(broken)

    def test_rejects_bad_schema_version(self, doc):
        broken = dict(doc)
        broken["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_summary(broken)

    def test_rejects_impossible_counts(self, doc):
        broken = dict(doc)
        broken["completed"] = broken["flows"] + 1
        with pytest.raises(ValueError, match="completions"):
            validate_summary(broken)

    def test_rejects_out_of_range_jain(self, doc):
        broken = json.loads(json.dumps(doc))
        broken["fairness"]["jain_mean"] = 1.5
        with pytest.raises(ValueError, match="jain_mean"):
            validate_summary(broken)


class TestExperiment:
    def test_registered_in_cli(self):
        from repro.__main__ import EXPERIMENT_MODULES

        assert EXPERIMENT_MODULES["scale"] == "scale"

    def test_run_scale_small(self):
        from repro.experiments.scale import run_scale

        data = run_scale(ccas=("cubic",), workloads=("churn-smoke",),
                         loads=(1.0,), seeds=(1,))
        row = data["churn-smoke"][1.0]["cubic"]
        assert row["runs"] == 1
        assert row["failures"] == []
        assert row["completion_rate"] == pytest.approx(1.0)
        assert row["flows"] == 32
        assert row["fct"]  # at least one size class populated

    def test_load_spec_scales_window(self):
        from repro.experiments.scale import load_spec

        base = load_spec("churn-128", 1.0)
        half = load_spec("churn-128", 0.5)
        assert half.arrival_window == pytest.approx(2 * base.arrival_window)
        assert half.name == "churn-128@x0.5"
        assert base.offered_load(96e6) == pytest.approx(
            2 * half.offered_load(96e6))
        with pytest.raises(ValueError):
            load_spec("churn-128", 0.0)

    def test_engine_selftest(self):
        from repro.experiments.scale import run_engine_selftest

        report = run_engine_selftest()
        assert report.equal
