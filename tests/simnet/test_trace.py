"""Tests for bandwidth traces, including integration/inversion properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.trace import (ConstantTrace, PiecewiseTrace, lte_trace,
                                step_trace, wired_trace)
from repro.units import mbps


class TestConstantTrace:
    def test_rate_everywhere(self):
        trace = ConstantTrace(mbps(10))
        assert trace.rate_at(0.0) == mbps(10)
        assert trace.rate_at(1000.0) == mbps(10)

    def test_time_to_send(self):
        trace = ConstantTrace(mbps(8))  # 1 MB/s
        assert trace.time_to_send(0.0, 1_000_000) == pytest.approx(1.0)

    def test_capacity_bytes(self):
        trace = ConstantTrace(mbps(8))
        assert trace.capacity_bytes(1.0, 3.0) == pytest.approx(2_000_000)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            ConstantTrace(0.0)


class TestPiecewiseTrace:
    def test_segment_lookup(self):
        trace = PiecewiseTrace([0.0, 1.0, 2.0],
                               [mbps(10), mbps(20), mbps(30)], loop=False)
        assert trace.rate_at(0.5) == mbps(10)
        assert trace.rate_at(1.5) == mbps(20)
        assert trace.rate_at(100.0) == mbps(30)

    def test_loop_wraps(self):
        trace = PiecewiseTrace([0.0, 1.0], [mbps(10), mbps(20)], loop=True)
        assert trace.rate_at(0.5) == trace.rate_at(0.5 + trace.period)

    def test_capacity_spans_segments(self):
        trace = PiecewiseTrace([0.0, 1.0], [mbps(8), mbps(16)], loop=False)
        # 1s at 1MB/s + 1s at 2MB/s
        assert trace.capacity_bytes(0.0, 2.0) == pytest.approx(3_000_000)

    def test_time_to_send_crosses_boundary(self):
        trace = PiecewiseTrace([0.0, 1.0], [mbps(8), mbps(16)], loop=False)
        # 1.5 MB: first 1 MB takes 1s, remaining 0.5 MB takes 0.25s
        assert trace.time_to_send(0.0, 1_500_000) == pytest.approx(1.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseTrace([1.0], [mbps(1)])       # must start at 0
        with pytest.raises(ValueError):
            PiecewiseTrace([0.0, 0.0], [mbps(1), mbps(2)])  # increasing
        with pytest.raises(ValueError):
            PiecewiseTrace([0.0], [mbps(1), mbps(2)])  # length mismatch

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 1000), st.floats(0.0, 50.0))
    def test_time_to_send_inverts_capacity(self, kilobytes, start):
        """capacity_bytes(t, t + time_to_send(t, n)) == n (integration
        and its inverse agree)."""
        trace = PiecewiseTrace([0.0, 0.7, 1.3], [mbps(5), mbps(40), mbps(12)])
        nbytes = kilobytes * 1000
        duration = trace.time_to_send(start, nbytes)
        recovered = trace.capacity_bytes(start, start + duration)
        assert recovered == pytest.approx(nbytes, rel=1e-6)


class TestStepTrace:
    def test_levels_and_period(self):
        trace = step_trace([10, 20, 30], step_duration=10.0)
        assert trace.rate_at(5.0) == mbps(10)
        assert trace.rate_at(15.0) == mbps(20)
        assert trace.rate_at(25.0) == mbps(30)
        # loops back to first level
        assert trace.rate_at(5.0 + trace.period) == mbps(10)


class TestLteTrace:
    def test_deterministic_given_seed(self):
        a = lte_trace("driving", seed=4)
        b = lte_trace("driving", seed=4)
        assert [a.rate_at(t) for t in (0.1, 5.0, 17.3)] == \
               [b.rate_at(t) for t in (0.1, 5.0, 17.3)]

    def test_seed_changes_trace(self):
        a = lte_trace("driving", seed=4)
        b = lte_trace("driving", seed=5)
        samples = [(a.rate_at(t), b.rate_at(t)) for t in (1.0, 3.0, 9.0)]
        assert any(x != y for x, y in samples)

    def test_envelope_bounds(self):
        trace = lte_trace("driving", seed=1, max_mbps=40.0, min_mbps=0.5)
        rates = [trace.rate_at(t * 0.2) for t in range(500)]
        assert max(rates) <= mbps(40.0) + 1e-6
        assert min(rates) >= mbps(0.5) * 0.2  # fades may dip below min level

    def test_mobility_increases_variability(self):
        import numpy as np
        stationary = lte_trace("stationary", seed=2)
        driving = lte_trace("driving", seed=2)
        s = np.std([stationary.rate_at(i * 0.2) for i in range(400)])
        d = np.std([driving.rate_at(i * 0.2) for i in range(400)])
        assert d > s

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            lte_trace("teleporting")


def test_wired_trace_helper():
    assert wired_trace(48).rate_at(0.0) == mbps(48)
