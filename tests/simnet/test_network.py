"""Tests for the dumbbell topology and run results."""

import pytest

from repro.cca.base import FixedRateController
from repro.cca.cubic import Cubic
from repro.simnet.network import Dumbbell
from repro.simnet.trace import wired_trace
from repro.units import mbps


def test_requires_flows():
    net = Dumbbell(wired_trace(10), buffer_bytes=1e6, rtt=0.05)
    with pytest.raises(ValueError):
        net.run(1.0)


def test_rejects_bad_rtt():
    with pytest.raises(ValueError):
        Dumbbell(wired_trace(10), buffer_bytes=1e6, rtt=0.0)


def test_utilization_bounded():
    net = Dumbbell(wired_trace(10), buffer_bytes=1e6, rtt=0.05)
    net.add_flow(FixedRateController(mbps(50)))
    result = net.run(2.0)
    assert 0.0 <= result.utilization <= 1.0
    assert result.utilization > 0.9


def test_delivered_never_exceeds_capacity():
    net = Dumbbell(wired_trace(10), buffer_bytes=1e6, rtt=0.05)
    net.add_flow(FixedRateController(mbps(50)))
    result = net.run(2.0)
    assert result.link_served_bytes <= result.link_capacity_bytes * (1 + 1e-9)


def test_two_flows_share_link():
    net = Dumbbell(wired_trace(10), buffer_bytes=150_000, rtt=0.05)
    net.add_flow(FixedRateController(mbps(8)))
    net.add_flow(FixedRateController(mbps(8)))
    result = net.run(4.0)
    total = result.flows[0].throughput_mbps + result.flows[1].throughput_mbps
    assert total == pytest.approx(10.0, rel=0.08)
    # equal offered load -> roughly equal shares
    ratio = result.flows[0].throughput_mbps / result.flows[1].throughput_mbps
    assert 0.8 < ratio < 1.25


def test_staggered_start():
    net = Dumbbell(wired_trace(10), buffer_bytes=1e6, rtt=0.05)
    net.add_flow(FixedRateController(mbps(5)), start=0.0)
    net.add_flow(FixedRateController(mbps(5)), start=1.0)
    result = net.run(2.0)
    assert result.flows[1].delivered_bytes < result.flows[0].delivered_bytes
    assert result.flows[1].start_time == 1.0


def test_flow_stop_time():
    net = Dumbbell(wired_trace(10), buffer_bytes=1e6, rtt=0.05)
    net.add_flow(FixedRateController(mbps(5)), stop=1.0)
    result = net.run(3.0)
    expected = mbps(5) * 1.0 / 8.0
    assert result.flows[0].delivered_bytes == pytest.approx(expected, rel=0.1)


def test_extra_rtt_per_flow():
    net = Dumbbell(wired_trace(10), buffer_bytes=1e6, rtt=0.04)
    net.add_flow(FixedRateController(mbps(1)))
    net.add_flow(FixedRateController(mbps(1)), extra_rtt=0.05)
    result = net.run(2.0)
    assert result.flows[1].min_rtt_ms == pytest.approx(
        result.flows[0].min_rtt_ms + 50.0, abs=2.5)


def test_queue_samples_collected():
    net = Dumbbell(wired_trace(10), buffer_bytes=1e6, rtt=0.05)
    net.add_flow(FixedRateController(mbps(20)))
    result = net.run(1.0)
    assert len(result.queue_samples) >= 15
    assert any(q > 0 for _, q in result.queue_samples)


def test_controllers_exposed_in_result():
    net = Dumbbell(wired_trace(10), buffer_bytes=1e6, rtt=0.05)
    cubic = Cubic()
    net.add_flow(cubic)
    result = net.run(0.5)
    assert result.controllers[0] is cubic


def test_avg_metrics_aggregate():
    net = Dumbbell(wired_trace(10), buffer_bytes=1e6, rtt=0.05)
    net.add_flow(FixedRateController(mbps(4)))
    net.add_flow(FixedRateController(mbps(4)))
    result = net.run(2.0)
    assert result.total_throughput_mbps == pytest.approx(8.0, rel=0.1)
    assert result.avg_rtt_ms > 49.0
    assert result.avg_loss_rate == 0.0


def test_deterministic_given_seed():
    def run(seed):
        net = Dumbbell(wired_trace(10), buffer_bytes=30_000, rtt=0.05,
                       loss_rate=0.02, seed=seed)
        net.add_flow(Cubic())
        return net.run(2.0).flows[0].delivered_bytes

    assert run(3) == run(3)
    assert run(3) != run(4)
