"""Tests for the CoDel AQM queue."""

import pytest

from repro.simnet.codel import CoDelQueue
from repro.simnet.network import Dumbbell
from repro.simnet.packet import Packet
from repro.simnet.trace import wired_trace
from repro.cca.cubic import Cubic


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _packet(seq, size=1500):
    return Packet(flow_id=0, seq=seq, size=size, sent_time=0.0)


class TestQueueBasics:
    def test_fifo_when_uncongested(self):
        clock = FakeClock()
        q = CoDelQueue(100_000, clock)
        for i in range(3):
            assert q.push(_packet(i))
        assert [q.pop().seq for _ in range(3)] == [0, 1, 2]
        assert q.dropped_packets == 0

    def test_capacity_overflow_still_droptail(self):
        clock = FakeClock()
        q = CoDelQueue(3000, clock)
        assert q.push(_packet(0))
        assert q.push(_packet(1))
        assert not q.push(_packet(2))
        assert q.dropped_packets == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            CoDelQueue(0, FakeClock())

    def test_pop_empty_raises(self):
        q = CoDelQueue(1000, FakeClock())
        with pytest.raises(IndexError):
            q.pop()


class TestCoDelDropping:
    def test_persistent_sojourn_triggers_drops(self):
        clock = FakeClock()
        q = CoDelQueue(1e9, clock)
        # Keep a standing queue: sojourn far above target for > interval.
        drops_before = q.dropped_packets
        seq = 0
        for step in range(400):
            clock.now = step * 0.01
            q.push(_packet(seq)); seq += 1
            q.push(_packet(seq)); seq += 1
            if len(q) > 5:
                q.pop()  # service slower than arrivals -> sojourn grows
        assert q.dropped_packets > drops_before

    def test_no_drops_below_target(self):
        clock = FakeClock()
        q = CoDelQueue(1e9, clock)
        for step in range(200):
            clock.now = step * 0.01
            q.push(_packet(step))
            q.pop()  # immediate service: sojourn ~ 0
        assert q.dropped_packets == 0


class TestEndToEnd:
    def test_codel_cuts_cubic_bufferbloat(self):
        def run(aqm):
            net = Dumbbell(wired_trace(24), buffer_bytes=600_000, rtt=0.03,
                           seed=1, aqm=aqm)
            net.add_flow(Cubic())
            return net.run(8.0)

        droptail = run("droptail")
        codel = run("codel")
        assert codel.flows[0].avg_rtt_ms < 0.6 * droptail.flows[0].avg_rtt_ms
        assert codel.utilization > 0.8

    def test_unknown_aqm_rejected(self):
        with pytest.raises(ValueError):
            Dumbbell(wired_trace(10), buffer_bytes=1e6, rtt=0.05, aqm="red")
