"""Tests for the droptail queue."""

import pytest

from repro.simnet.packet import Packet
from repro.simnet.queue import DropTailQueue


def _packet(seq: int, size: int = 1500) -> Packet:
    return Packet(flow_id=0, seq=seq, size=size, sent_time=0.0)


def test_fifo_order():
    q = DropTailQueue(10_000)
    for i in range(3):
        assert q.push(_packet(i))
    assert [q.pop().seq for _ in range(3)] == [0, 1, 2]


def test_drops_when_full():
    q = DropTailQueue(3000)
    assert q.push(_packet(0))
    assert q.push(_packet(1))
    assert not q.push(_packet(2))  # 4500 > 3000
    assert q.dropped_packets == 1
    assert q.dropped_bytes == 1500


def test_byte_accounting():
    q = DropTailQueue(10_000)
    q.push(_packet(0))
    q.push(_packet(1))
    assert q.bytes == 3000
    q.pop()
    assert q.bytes == 1500


def test_max_bytes_seen_high_watermark():
    q = DropTailQueue(10_000)
    for i in range(4):
        q.push(_packet(i))
    q.pop()
    assert q.max_bytes_seen == 6000


def test_drop_frees_no_space():
    q = DropTailQueue(1500)
    assert q.push(_packet(0))
    assert not q.push(_packet(1))
    q.pop()
    assert q.push(_packet(2))


def test_peek_and_truthiness():
    q = DropTailQueue(10_000)
    assert not q
    assert q.peek() is None
    q.push(_packet(7))
    assert q
    assert q.peek().seq == 7
    assert len(q) == 1


def test_infinite_capacity():
    q = DropTailQueue(float("inf"))
    for i in range(1000):
        assert q.push(_packet(i))
    assert q.dropped_packets == 0


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        DropTailQueue(0)
