"""Tests for the trace-driven bottleneck link."""

import pytest

from repro.simnet.engine import EventLoop
from repro.simnet.link import BottleneckLink
from repro.simnet.packet import Packet
from repro.simnet.trace import ConstantTrace
from repro.units import mbps


def _send_burst(link, count, size=1500):
    for i in range(count):
        link.send(Packet(flow_id=0, seq=i, size=size, sent_time=0.0))


def test_serves_at_trace_rate():
    loop = EventLoop()
    delivered = []
    link = BottleneckLink(loop, ConstantTrace(mbps(12)), buffer_bytes=1e9,
                          propagation_delay=0.0, deliver=delivered.append)
    _send_burst(link, 10)
    # 10 * 1500B * 8 / 12Mbps = 10ms
    loop.run_until(0.01 + 1e-9)
    assert len(delivered) == 10


def test_propagation_delay_added_after_service():
    loop = EventLoop()
    times = []
    link = BottleneckLink(loop, ConstantTrace(mbps(12)), buffer_bytes=1e9,
                          propagation_delay=0.05,
                          deliver=lambda p: times.append(loop.now))
    _send_burst(link, 1)
    loop.run_until(1.0)
    assert times[0] == pytest.approx(0.001 + 0.05)


def test_droptail_overflow():
    loop = EventLoop()
    delivered = []
    link = BottleneckLink(loop, ConstantTrace(mbps(1)), buffer_bytes=4500,
                          propagation_delay=0.0, deliver=delivered.append)
    _send_burst(link, 10)
    loop.run_until(60.0)
    # the head packet occupies the buffer while in service, so 3 fit
    assert link.queue.dropped_packets == 7
    assert len(delivered) == 3


def test_stochastic_loss_rate():
    loop = EventLoop()
    delivered = []
    link = BottleneckLink(loop, ConstantTrace(mbps(100)), buffer_bytes=1e9,
                          propagation_delay=0.0, deliver=delivered.append,
                          loss_rate=0.3, seed=7)
    _send_burst(link, 2000)
    loop.run_until(10.0)
    dropped_fraction = link.random_drops / 2000
    assert 0.25 < dropped_fraction < 0.35


def test_loss_rate_validation():
    loop = EventLoop()
    with pytest.raises(ValueError):
        BottleneckLink(loop, ConstantTrace(mbps(1)), 1e6, 0.0,
                       deliver=lambda p: None, loss_rate=1.5)


def test_served_byte_accounting():
    loop = EventLoop()
    link = BottleneckLink(loop, ConstantTrace(mbps(12)), buffer_bytes=1e9,
                          propagation_delay=0.0, deliver=lambda p: None)
    _send_burst(link, 5)
    loop.run_until(1.0)
    assert link.served_bytes == 5 * 1500
    assert link.served_packets == 5


def test_windowed_utilization_ignores_idle_prefix():
    """Regression: utilization(t0, t1) once divided *lifetime* served bytes
    by the window capacity, over-reporting any window after an idle start."""
    loop = EventLoop()
    link = BottleneckLink(loop, ConstantTrace(mbps(12)), buffer_bytes=1e9,
                          propagation_delay=0.0, deliver=lambda p: None)
    # idle for 1 s, then serve 10 packets (takes 10 ms at 12 Mbps)
    loop.schedule(1.0, lambda: _send_burst(link, 10))
    loop.run_until(2.0)
    # the idle first second has zero utilization, not 10 packets' worth
    assert link.utilization(0.0, 1.0) == 0.0
    assert link.served_bytes_between(0.0, 1.0) == 0.0
    # the active window contains exactly the burst
    assert link.served_bytes_between(1.0, 2.0) == 10 * 1500
    expected = 10 * 1500 / ConstantTrace(mbps(12)).capacity_bytes(1.0, 2.0)
    assert link.utilization(1.0, 2.0) == pytest.approx(expected)
    # full-lifetime utilization still consistent
    assert link.utilization(0.0, 2.0) == pytest.approx(expected / 2.0)


def test_windowed_utilization_caps_at_one():
    loop = EventLoop()
    link = BottleneckLink(loop, ConstantTrace(mbps(12)), buffer_bytes=1e9,
                          propagation_delay=0.0, deliver=lambda p: None)
    _send_burst(link, 10)
    loop.run_until(1.0)
    # a window covering the burst is (nearly) fully utilized, never > 1
    assert 0.9 <= link.utilization(0.0, 0.0101) <= 1.0
    # even if served bytes round past capacity, the cap holds
    assert link.utilization(1e-9, 0.01) <= 1.0


def test_service_log_horizon_validation():
    loop = EventLoop()
    with pytest.raises(ValueError):
        BottleneckLink(loop, ConstantTrace(mbps(1)), 1e6, 0.0,
                       deliver=lambda p: None, service_log_horizon=0.0)


def test_unbounded_service_log_by_default():
    loop = EventLoop()
    link = BottleneckLink(loop, ConstantTrace(mbps(12)), buffer_bytes=1e9,
                          propagation_delay=0.0, deliver=lambda p: None)
    assert link.service_log_horizon is None
    _send_burst(link, 20)
    loop.run_until(1.0)
    assert len(link._service_log) == 20


def test_service_log_compaction_bounds_memory():
    """With a horizon set, the log stops growing with run length while
    windowed queries inside the horizon stay exact."""
    loop = EventLoop()
    link = BottleneckLink(loop, ConstantTrace(mbps(120)), buffer_bytes=1e9,
                          propagation_delay=0.0, deliver=lambda p: None,
                          service_log_horizon=0.05)
    # 3 compaction cadences of packets, arriving over ~1.25 s
    total = 3 * BottleneckLink.LOG_COMPACT_EVERY
    for i in range(total):
        loop.schedule(i * 1e-4, lambda: _send_burst(link, 1))
    loop.run_until(total * 1e-4 + 1.0)
    assert link.served_packets == total
    # bounded: horizon (0.05 s / 0.1 ms per packet = 500 entries) plus at
    # most one uncompacted cadence — far below the total appended
    assert len(link._service_log) < BottleneckLink.LOG_COMPACT_EVERY + 600
    # queries inside the horizon remain exact
    now = link._last_service
    expected = 0.02 / 1e-4 * 1500
    assert link.served_bytes_between(now - 0.02, now) == \
        pytest.approx(expected, abs=1500)


def test_compaction_keeps_boundary_entry_exact():
    """served_bytes_between for a window starting at the cutoff must see
    the cumulative count carried by the retained boundary entry."""
    loop = EventLoop()
    link = BottleneckLink(loop, ConstantTrace(mbps(12)), buffer_bytes=1e9,
                          propagation_delay=0.0, deliver=lambda p: None,
                          service_log_horizon=0.5)
    _send_burst(link, 100)
    loop.run_until(10.0)
    reference = link.served_bytes_between(0.05, 0.1)
    link._compact_service_log()  # cutoff = 10.0 - 0.5 → trims everything
    assert len(link._service_log) == 1  # one boundary entry retained
    # windows after the cutoff still answer exactly: zero bytes served
    assert link.served_bytes_between(9.6, 10.0) == 0.0
    # lifetime totals keep working through the boundary entry
    assert link.served_bytes_between(9.6, 10.0) + link._service_log[0][1] \
        == link.served_bytes
    assert reference > 0  # the pre-compaction window really had traffic


def test_queueing_delay_estimate():
    loop = EventLoop()
    link = BottleneckLink(loop, ConstantTrace(mbps(12)), buffer_bytes=1e9,
                          propagation_delay=0.0, deliver=lambda p: None)
    _send_burst(link, 11)
    # 10 packets of 1500B queued behind the one in service
    expected = link.queue.bytes * 8.0 / mbps(12)
    assert link.queueing_delay() == pytest.approx(expected)
