"""Tests for Mahimahi trace import/export."""

import pytest

from repro.simnet.mahimahi import (parse_mahimahi, save_mahimahi,
                                   load_mahimahi, to_mahimahi)
from repro.simnet.trace import wired_trace
from repro.units import mbps


class TestParse:
    def test_uniform_opportunities_give_constant_rate(self):
        # one 1500B opportunity per ms = 12 Mbps
        trace = parse_mahimahi(str(t) for t in range(1000))
        assert trace.rate_at(0.3) == pytest.approx(mbps(12), rel=0.01)

    def test_burstiness_preserved_across_bins(self):
        # 100ms of dense opportunities then 100ms silence
        stamps = [str(t) for t in range(100)] + ["199"]
        trace = parse_mahimahi(stamps, bin_ms=100)
        assert trace.rate_at(0.05) > trace.rate_at(0.15)

    def test_comments_and_blanks_skipped(self):
        trace = parse_mahimahi(["# header", "", "0", "1", "2"])
        assert trace.rate_at(0.0) > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_mahimahi([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parse_mahimahi(["-5"])


class TestExport:
    def test_opportunity_count_matches_rate(self):
        stamps = to_mahimahi(wired_trace(12), duration=1.0)
        # 12 Mbps / 1500 B = 1000 opportunities per second
        assert len(stamps) == pytest.approx(1000, abs=2)

    def test_monotone_timestamps(self):
        stamps = to_mahimahi(wired_trace(24), duration=0.5)
        assert stamps == sorted(stamps)

    def test_duration_validated(self):
        with pytest.raises(ValueError):
            to_mahimahi(wired_trace(12), duration=0.0)


class TestRoundtrip:
    def test_rate_survives_roundtrip(self):
        original = wired_trace(48)
        stamps = to_mahimahi(original, duration=2.0)
        recovered = parse_mahimahi(str(s) for s in stamps)
        assert recovered.rate_at(0.5) == pytest.approx(mbps(48), rel=0.02)

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        save_mahimahi(wired_trace(12), 1.0, path)
        trace = load_mahimahi(path)
        assert trace.rate_at(0.2) == pytest.approx(mbps(12), rel=0.02)
