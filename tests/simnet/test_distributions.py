"""Shared impairment samplers: seed streams, draw discipline, and the
pinned compatibility contract with the historical fault injector."""

import numpy as np
import pytest

from repro.simnet.distributions import (FAULT_STREAM_TAG,
                                        IMPAIRMENT_STREAM_TAG,
                                        GilbertElliottSampler, bernoulli,
                                        fault_rng, impairment_rng,
                                        uniform_jitter)
from repro.simnet.faults import BurstLoss, FaultInjector, FaultSchedule


class TestStreamIdentity:
    def test_fault_tag_pinned(self):
        # Cache keys of every faulted sweep depend on this value.
        assert FAULT_STREAM_TAG == 0xFA017

    def test_fault_rng_matches_historical_construction(self):
        """``FaultInjector`` has seeded its RNG this exact way since the
        fault subsystem landed; the factored-out helper must not shift
        the stream (identical samples for identical seeds)."""
        ours = fault_rng(3, 7)
        historical = np.random.default_rng((0xFA017, 3, 7))
        assert ours.random(64).tolist() == historical.random(64).tolist()

    def test_impairment_stream_is_domain_separated(self):
        assert IMPAIRMENT_STREAM_TAG != FAULT_STREAM_TAG
        a = fault_rng(1, 1).random(16)
        b = impairment_rng(1, 1).random(16)
        assert a.tolist() != b.tolist()

    def test_same_seeds_same_stream(self):
        assert fault_rng(5, 9).random(32).tolist() == \
            fault_rng(5, 9).random(32).tolist()
        assert impairment_rng(5, 9).random(32).tolist() == \
            impairment_rng(5, 9).random(32).tolist()


class TestDrawDiscipline:
    def test_bernoulli_consumes_one_draw(self):
        rng = fault_rng(0, 0)
        shadow = fault_rng(0, 0)
        bernoulli(rng, 0.5)
        shadow.random()
        assert rng.random() == shadow.random()

    def test_uniform_jitter_consumes_one_draw_and_scales(self):
        rng = fault_rng(0, 1)
        shadow = fault_rng(0, 1)
        value = uniform_jitter(rng, 0.25)
        assert value == pytest.approx(0.25 * shadow.random())
        assert rng.random() == shadow.random()

    def test_ge_good_state_zero_loss_single_draw(self):
        """In the good state with ``loss_good == 0`` only the transition
        draw is consumed — the historical ``drop_data`` order."""
        ge = GilbertElliottSampler(p_enter=0.0, p_exit=0.5, loss_good=0.0)
        rng = fault_rng(2, 2)
        shadow = fault_rng(2, 2)
        for _ in range(10):
            drop, transitioned = ge.step(rng)
            shadow.random()          # transition draw only
            assert not drop and not transitioned
        assert rng.random() == shadow.random()

    def test_ge_bad_state_consumes_two_draws(self):
        ge = GilbertElliottSampler(p_enter=1.0, p_exit=0.0, loss_bad=0.5)
        rng = fault_rng(3, 3)
        shadow = fault_rng(3, 3)
        ge.step(rng)                 # enters bad: transition + loss draw
        shadow.random(2)
        assert ge.bad
        assert rng.random() == shadow.random()

    def test_ge_validates_probabilities(self):
        with pytest.raises(ValueError):
            GilbertElliottSampler(p_enter=1.2, p_exit=0.1)


class TestFaultInjectorCompatibility:
    """The refactor onto shared samplers must not change any fault
    realization: two injectors with the same seeds stay bit-identical,
    and the injector's decisions equal the raw sampler stream."""

    SCHEDULE = FaultSchedule(
        name="t", burst_loss=BurstLoss(p_enter=0.05, p_exit=0.3,
                                       loss_bad=0.6), seed=4)

    def test_injector_reproducible(self):
        a = FaultInjector(self.SCHEDULE, seed=9)
        b = FaultInjector(self.SCHEDULE, seed=9)
        decisions_a = [a.drop_data(t * 0.01) for t in range(400)]
        decisions_b = [b.drop_data(t * 0.01) for t in range(400)]
        assert decisions_a == decisions_b
        assert a.data_drops == b.data_drops > 0

    def test_injector_equals_raw_sampler_stream(self):
        injector = FaultInjector(self.SCHEDULE, seed=9)
        ge = GilbertElliottSampler(0.05, 0.3, 0.0, 0.6)
        rng = fault_rng(4, 9)
        for t in range(400):
            expected, _ = ge.step(rng)
            assert injector.drop_data(t * 0.01) == expected
