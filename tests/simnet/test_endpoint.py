"""Tests for sender/receiver endpoints: pacing, RTT, loss detection, MIs."""

import pytest

from repro.cca.base import Controller, FixedRateController
from repro.simnet.network import Dumbbell
from repro.simnet.trace import wired_trace
from repro.units import mbps


class RecordingController(FixedRateController):
    """Fixed-rate controller that records every callback."""

    def __init__(self, rate_bps, interval=None):
        super().__init__(rate_bps)
        self.acks = []
        self.losses = []
        self.reports = []
        self._interval = interval

    def on_ack(self, ack):
        self.acks.append(ack)

    def on_loss(self, loss):
        self.losses.append(loss)

    def interval(self):
        return self._interval

    def on_interval(self, report):
        self.reports.append(report)


def _run(controller, bw_mbps=10, rtt=0.04, buffer_bytes=1e9, duration=2.0,
         loss_rate=0.0, seed=0):
    net = Dumbbell(wired_trace(bw_mbps), buffer_bytes=buffer_bytes, rtt=rtt,
                   loss_rate=loss_rate, seed=seed)
    net.add_flow(controller)
    return net.run(duration)


class TestPacing:
    def test_send_rate_matches_pacing_rate(self):
        c = RecordingController(mbps(5))
        result = _run(c, bw_mbps=50, duration=3.0)
        sent_rate = result.flows[0].sent_packets * 1500 * 8 / 3.0
        assert sent_rate == pytest.approx(mbps(5), rel=0.05)

    def test_underload_delivers_everything(self):
        c = RecordingController(mbps(5))
        result = _run(c, bw_mbps=50, duration=2.0)
        flow = result.flows[0]
        assert flow.lost_packets == 0
        # everything sent more than an RTT before the end is delivered
        assert flow.delivered_bytes >= (flow.sent_packets - 10) * 1500


class TestRttEstimation:
    def test_min_rtt_matches_base_rtt(self):
        c = RecordingController(mbps(5))
        result = _run(c, rtt=0.04, bw_mbps=50)
        # min RTT = base RTT + one serialization delay
        assert result.flows[0].min_rtt_ms == pytest.approx(40.24, abs=0.3)

    def test_queueing_inflates_rtt(self):
        c = RecordingController(mbps(20))  # 2x the 10 Mbps link
        result = _run(c, bw_mbps=10, duration=2.0)
        flow = result.flows[0]
        assert flow.avg_rtt_ms > 1.5 * flow.min_rtt_ms

    def test_srtt_smoothing_present_on_acks(self):
        c = RecordingController(mbps(5))
        _run(c, bw_mbps=50)
        assert all(a.srtt > 0 for a in c.acks)


class TestLossDetection:
    def test_no_losses_without_congestion(self):
        c = RecordingController(mbps(5))
        _run(c, bw_mbps=50)
        assert c.losses == []

    def test_overflow_losses_detected(self):
        c = RecordingController(mbps(30))
        result = _run(c, bw_mbps=10, buffer_bytes=30_000, duration=3.0)
        assert result.flows[0].lost_packets > 0
        assert len(c.losses) == result.flows[0].lost_packets

    def test_loss_rate_roughly_matches_overload(self):
        c = RecordingController(mbps(20))
        result = _run(c, bw_mbps=10, buffer_bytes=15_000, duration=5.0)
        # sending 2x capacity: about half the packets must be dropped
        assert result.flows[0].loss_rate == pytest.approx(0.5, abs=0.1)

    def test_stochastic_losses_reported(self):
        c = RecordingController(mbps(5))
        result = _run(c, bw_mbps=50, loss_rate=0.05, duration=5.0, seed=3)
        assert result.flows[0].loss_rate == pytest.approx(0.05, abs=0.02)


class TestMonitorIntervals:
    def test_interval_cadence(self):
        c = RecordingController(mbps(5), interval=0.1)
        _run(c, duration=2.05)
        assert 18 <= len(c.reports) <= 21

    def test_report_throughput_matches_rate(self):
        c = RecordingController(mbps(5), interval=0.2)
        _run(c, bw_mbps=50, duration=3.0)
        steady = c.reports[3:]
        mean_thr = sum(r.throughput for r in steady) / len(steady)
        assert mean_thr == pytest.approx(mbps(5), rel=0.1)

    def test_no_feedback_flag(self):
        # Rate floor keeps a trickle, but a tiny interval can be empty.
        c = RecordingController(mbps(0.1), interval=0.001)
        _run(c, duration=0.5)
        assert any(not r.has_feedback for r in c.reports)

    def test_rtt_gradient_positive_under_overload(self):
        c = RecordingController(mbps(30), interval=0.2)
        _run(c, bw_mbps=10, buffer_bytes=1e9, duration=2.0)
        grads = [r.rtt_gradient for r in c.reports if r.has_feedback]
        assert max(grads) > 0


class TestFlowStats:
    def test_throughput_series_sums_to_delivered(self):
        c = RecordingController(mbps(5))
        result = _run(c, duration=2.0)
        flow = result.flows[0]
        _, rates = flow.throughput_series()
        total = sum(r * flow.bin_width / 8.0 * 1e6 for r in rates)
        assert total == pytest.approx(flow.delivered_bytes, rel=1e-6)

    def test_p95_above_min(self):
        c = RecordingController(mbps(20))
        result = _run(c, bw_mbps=10, duration=2.0)
        flow = result.flows[0]
        assert flow.p95_rtt_ms() >= flow.min_rtt_ms


class TestMarkerPropagation:
    def test_controller_marker_echoed_in_acks(self):
        class Marked(RecordingController):
            def on_ack(self, ack):
                super().on_ack(ack)
                self.marker = 7

        c = Marked(mbps(5))
        _run(c, duration=1.0)
        assert any(a.marker == 7 for a in c.acks)
        assert c.acks[0].marker == 0  # first packets carried the default
