"""Tests for sent-time ACK bucketing."""

import pytest

from repro.simnet.packet import AckSample, LossSample
from repro.simnet.windows import AckWindow, rtt_slope


def _ack(sent_time, rtt=0.05, size=1500, now=None):
    return AckSample(now=now or sent_time + rtt, seq=0, rtt=rtt, min_rtt=rtt,
                     srtt=rtt, acked_bytes=size, delivery_rate=0.0,
                     inflight_bytes=0.0, sent_time=sent_time)


def test_contains_respects_bounds():
    w = AckWindow(1.0, end=2.0)
    assert not w.contains(0.99)
    assert w.contains(1.0)
    assert w.contains(1.99)
    assert not w.contains(2.0)


def test_open_window_contains_future():
    w = AckWindow(1.0)
    assert w.contains(100.0)


def test_measure_requires_end_and_acks():
    w = AckWindow(0.0)
    w.add_ack(_ack(0.5))
    assert w.measure() is None  # no end
    w2 = AckWindow(0.0, end=1.0)
    assert w2.measure() is None  # no acks


def test_measure_throughput():
    w = AckWindow(0.0, end=1.0)
    for i in range(10):
        w.add_ack(_ack(i * 0.1))
    throughput, gradient, loss = w.measure()
    assert throughput == pytest.approx(10 * 1500 * 8 / 1.0)
    assert loss == 0.0


def test_measure_loss_rate():
    w = AckWindow(0.0, end=1.0)
    for i in range(8):
        w.add_ack(_ack(i * 0.1))
    w.add_loss(LossSample(now=1.0, seq=99, lost_bytes=1500, sent_time=0.85,
                          inflight_bytes=0.0))
    w.add_loss(LossSample(now=1.0, seq=100, lost_bytes=1500, sent_time=0.95,
                          inflight_bytes=0.0))
    _, _, loss = w.measure()
    assert loss == pytest.approx(0.2)


def test_gradient_reflects_rising_rtt():
    w = AckWindow(0.0, end=1.0)
    for i in range(10):
        w.add_ack(_ack(i * 0.1, rtt=0.05 + 0.01 * i))
    _, gradient, _ = w.measure()
    assert gradient == pytest.approx(0.1, rel=1e-6)


def test_settled_waits_for_feedback():
    w = AckWindow(0.0, end=1.0)
    assert not w.settled(1.0, srtt=0.1)
    assert w.settled(1.2, srtt=0.1)


def test_rtt_slope_basics():
    assert rtt_slope([]) == 0.0
    assert rtt_slope([(0.0, 0.1)]) == 0.0
    assert rtt_slope([(0.0, 0.1), (1.0, 0.2)]) == pytest.approx(0.1)
    # constant rtt -> zero slope
    assert rtt_slope([(0.0, 0.1), (1.0, 0.1), (2.0, 0.1)]) == 0.0
