"""Tests for the discrete-event loop."""

import pytest

from repro.simnet.engine import EventLoop


def test_runs_events_in_time_order():
    loop = EventLoop()
    order = []
    loop.schedule(2.0, lambda: order.append("b"))
    loop.schedule(1.0, lambda: order.append("a"))
    loop.schedule(3.0, lambda: order.append("c"))
    loop.run_until(10.0)
    assert order == ["a", "b", "c"]


def test_ties_break_in_scheduling_order():
    loop = EventLoop()
    order = []
    for name in "abc":
        loop.schedule(1.0, lambda n=name: order.append(n))
    loop.run_until(1.0)
    assert order == ["a", "b", "c"]


def test_now_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(1.5, lambda: seen.append(loop.now))
    loop.run_until(5.0)
    assert seen == [1.5]
    assert loop.now == 5.0


def test_run_until_is_inclusive():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(True))
    loop.run_until(1.0)
    assert fired == [True]


def test_events_beyond_horizon_stay_queued():
    loop = EventLoop()
    fired = []
    loop.schedule(5.0, lambda: fired.append(True))
    loop.run_until(4.0)
    assert not fired
    assert loop.pending() == 1
    loop.run_until(6.0)
    assert fired


def test_cancelled_timer_does_not_fire():
    loop = EventLoop()
    fired = []
    timer = loop.schedule(1.0, lambda: fired.append(True))
    timer.cancel()
    loop.run_until(2.0)
    assert not fired
    assert loop.pending() == 0


def test_events_can_schedule_more_events():
    loop = EventLoop()
    order = []

    def first():
        order.append("first")
        loop.schedule(1.0, lambda: order.append("second"))

    loop.schedule(1.0, first)
    loop.run_until(3.0)
    assert order == ["first", "second"]


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run_until(2.0)
    with pytest.raises(ValueError):
        loop.schedule_at(1.0, lambda: None)


def test_run_all_drains_queue():
    loop = EventLoop()
    count = []
    for i in range(5):
        loop.schedule(float(i + 1), lambda: count.append(1))
    loop.run_all()
    assert len(count) == 5


def test_heap_compaction_bounds_cancelled_timers():
    """Regression: cancelled timers used to sit in the heap until popped;
    a sender re-arming its pacing timer per packet grew it without bound."""
    loop = EventLoop()
    keeper_fired = []
    loop.schedule(1e6, lambda: keeper_fired.append(True))
    for _ in range(10 * EventLoop.COMPACT_THRESHOLD):
        loop.schedule(1e5, lambda: None).cancel()
    # compaction keeps the heap near the count of live timers
    assert len(loop._heap) < 2 * EventLoop.COMPACT_THRESHOLD
    assert loop.pending() == 1
    loop.run_until(1e6)
    assert keeper_fired == [True]


def test_compaction_preserves_order_and_callbacks():
    loop = EventLoop()
    order = []
    timers = [loop.schedule(float(i + 1), lambda i=i: order.append(i))
              for i in range(200)]
    for t in timers[::2]:   # cancel the even ones
        t.cancel()
    loop.run_until(300.0)
    assert order == list(range(1, 200, 2))


def test_cancel_inside_callback_is_safe():
    loop = EventLoop()
    fired = []
    later = [loop.schedule(2.0, lambda i=i: fired.append(i))
             for i in range(2 * EventLoop.COMPACT_THRESHOLD)]

    def cancel_half():
        for t in later[::2]:
            t.cancel()

    loop.schedule(1.0, cancel_half)
    loop.run_until(3.0)
    assert fired == list(range(1, 2 * EventLoop.COMPACT_THRESHOLD, 2))


def test_run_all_guards_against_runaway():
    loop = EventLoop()

    def rearm():
        loop.schedule(0.001, rearm)

    loop.schedule(0.001, rearm)
    with pytest.raises(RuntimeError):
        loop.run_all(max_events=100)


def test_run_until_event_budget_names_offender():
    from repro.sanitize.errors import EventBudgetExceeded

    loop = EventLoop()

    def runaway_rearm():
        loop.schedule(0.0, runaway_rearm)

    loop.schedule(0.001, runaway_rearm)
    with pytest.raises(EventBudgetExceeded) as ei:
        loop.run_until(10.0, max_events=50)
    exc = ei.value
    assert exc.invariant == "engine.event_budget"
    assert exc.events == 50
    assert "runaway_rearm" in exc.callback
    assert "runaway_rearm" in str(exc)
    # structured error is still a RuntimeError for legacy handlers
    assert isinstance(exc, RuntimeError)


def test_run_until_budget_not_tripped_by_exact_count():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
    loop.run_until(5.0, max_events=10)
    assert fired == list(range(10))


def test_run_all_budget_error_is_structured():
    from repro.sanitize.errors import EventBudgetExceeded

    loop = EventLoop()

    def rearm():
        loop.schedule(0.001, rearm)

    loop.schedule(0.001, rearm)
    with pytest.raises(EventBudgetExceeded) as ei:
        loop.run_all(max_events=7)
    assert "rearm" in ei.value.callback


def test_default_budget_is_generous():
    # the default exists to catch zero-delay spins, not to throttle
    # legitimate long runs
    assert EventLoop.MAX_EVENTS >= 1_000_000
