"""Tests for deterministic network fault injection."""

import pickle

import pytest

from repro.simnet.engine import EventLoop
from repro.simnet.faults import (FAULT_PROFILES, AckFault, Blackout, BurstLoss,
                                 DelaySpike, FaultInjector, FaultSchedule,
                                 FaultedTrace, Reorder)
from repro.simnet.link import BottleneckLink
from repro.simnet.network import Dumbbell
from repro.simnet.packet import Packet
from repro.simnet.trace import ConstantTrace
from repro.cca.base import FixedRateController
from repro.units import mbps


def _schedule(**kwargs):
    return FaultSchedule(name="test", **kwargs)


class TestSpecs:
    def test_validation(self):
        with pytest.raises(ValueError):
            Blackout(start=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            Blackout(start=0.0, duration=0.0)
        with pytest.raises(ValueError):
            BurstLoss(p_enter=1.5)
        with pytest.raises(ValueError):
            Reorder(probability=0.5, extra=0.0)
        with pytest.raises(ValueError):
            AckFault(loss=1.0)

    def test_active_flag(self):
        assert not FaultSchedule().active
        assert _schedule(blackouts=(Blackout(1.0, 1.0),)).active
        assert _schedule(ack=AckFault(loss=0.1)).active

    def test_schedules_pickle(self):
        for schedule in FAULT_PROFILES.values():
            assert pickle.loads(pickle.dumps(schedule)) == schedule

    def test_impairment_windows_merge_and_clip(self):
        sched = _schedule(
            blackouts=(Blackout(2.0, 2.0), Blackout(3.0, 3.0)),
            delay_spikes=(DelaySpike(start=10.0, duration=5.0, extra=0.1),))
        assert sched.impairment_windows(12.0) == [(2.0, 6.0), (10.0, 12.0)]

    def test_open_ended_faults_span_duration(self):
        sched = _schedule(burst_loss=BurstLoss(start=1.0))
        assert sched.impairment_windows(8.0) == [(1.0, 8.0)]


class TestFaultedTrace:
    def test_rate_zero_in_blackout(self):
        trace = FaultedTrace(ConstantTrace(mbps(10)), (Blackout(1.0, 1.0),))
        assert trace.rate_at(0.5) == mbps(10)
        assert trace.rate_at(1.5) == 0.0
        assert trace.rate_at(2.0) == mbps(10)

    def test_capacity_excludes_blackouts(self):
        base = ConstantTrace(mbps(8))  # 1e6 bytes/s
        trace = FaultedTrace(base, (Blackout(1.0, 2.0),))
        assert trace.capacity_bytes(0.0, 4.0) == pytest.approx(2e6)
        assert trace.capacity_bytes(1.2, 1.8) == 0.0
        assert trace.capacity_bytes(0.0, 4.0) == \
            base.capacity_bytes(0.0, 4.0) - base.capacity_bytes(1.0, 3.0)

    def test_time_to_send_waits_out_blackout(self):
        trace = FaultedTrace(ConstantTrace(mbps(8)), (Blackout(1.0, 2.0),))
        # 1500 bytes at 1e6 B/s = 1.5 ms, entirely before the blackout
        assert trace.time_to_send(0.0, 1500) == pytest.approx(0.0015)
        # started mid-blackout: waits until t=3 then serves
        assert trace.time_to_send(2.0, 1500) == pytest.approx(1.0 + 0.0015)
        # 0.5 s of capacity before the blackout, the rest after
        need = 1e6  # one second worth of bytes
        assert trace.time_to_send(0.5, need) == pytest.approx(0.5 + 2.0 + 0.5)

    def test_consistency_capacity_vs_time_to_send(self):
        trace = FaultedTrace(ConstantTrace(mbps(8)),
                             (Blackout(0.5, 0.25), Blackout(1.0, 0.5)))
        nbytes = 1.2e6
        dt = trace.time_to_send(0.1, nbytes)
        assert trace.capacity_bytes(0.1, 0.1 + dt) == pytest.approx(nbytes)


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        sched = _schedule(burst_loss=BurstLoss(p_enter=0.2, p_exit=0.2,
                                               loss_bad=0.8))
        a = FaultInjector(sched, seed=3)
        b = FaultInjector(sched, seed=3)
        decisions = [(a.drop_data(t), b.drop_data(t))
                     for t in [i * 0.01 for i in range(500)]]
        assert all(x == y for x, y in decisions)
        assert a.data_drops == b.data_drops > 0

    def test_different_seed_differs(self):
        sched = _schedule(burst_loss=BurstLoss(p_enter=0.2, p_exit=0.2,
                                               loss_bad=0.8))
        a = FaultInjector(sched, seed=3)
        b = FaultInjector(sched, seed=4)
        da = [a.drop_data(i * 0.01) for i in range(500)]
        db = [b.drop_data(i * 0.01) for i in range(500)]
        assert da != db

    def test_schedule_seed_independent_of_network_seed(self):
        sched_a = _schedule(burst_loss=BurstLoss(loss_bad=0.9), seed=1)
        sched_b = _schedule(burst_loss=BurstLoss(loss_bad=0.9), seed=2)
        a = FaultInjector(sched_a, seed=7)
        b = FaultInjector(sched_b, seed=7)
        da = [a.drop_data(i * 0.01) for i in range(500)]
        db = [b.drop_data(i * 0.01) for i in range(500)]
        assert da != db


class TestInjectorHooks:
    def test_burst_loss_respects_window(self):
        sched = _schedule(burst_loss=BurstLoss(p_enter=1.0, p_exit=0.0,
                                               loss_bad=1.0, start=5.0,
                                               stop=6.0))
        inj = FaultInjector(sched)
        assert not inj.drop_data(4.0)
        assert inj.drop_data(5.5)
        assert not inj.drop_data(6.5)

    def test_delay_spike_adds_extra(self):
        sched = _schedule(delay_spikes=(DelaySpike(start=1.0, duration=1.0,
                                                   extra=0.2),))
        inj = FaultInjector(sched)
        assert inj.delivery_extra_delay(0.5) == 0.0
        assert inj.delivery_extra_delay(1.5) == pytest.approx(0.2)

    def test_jitter_bounded_and_seeded(self):
        sched = _schedule(delay_spikes=(DelaySpike(start=0.0, duration=10.0,
                                                   extra=0.1, jitter=0.05),))
        inj = FaultInjector(sched, seed=1)
        delays = [inj.delivery_extra_delay(t * 0.1) for t in range(100)]
        assert all(0.1 <= d < 0.15 for d in delays)
        inj2 = FaultInjector(sched, seed=1)
        assert delays == [inj2.delivery_extra_delay(t * 0.1)
                          for t in range(100)]

    def test_ack_compression_quantizes(self):
        sched = _schedule(ack=AckFault(compression=0.01))
        inj = FaultInjector(sched)
        assert inj.ack_release_time(0.003) == pytest.approx(0.01)
        assert inj.ack_release_time(0.0999) == pytest.approx(0.10)
        assert inj.ack_release_time(0.02) == pytest.approx(0.02)

    def test_ack_loss_counts(self):
        sched = _schedule(ack=AckFault(loss=1.0 - 1e-9))
        inj = FaultInjector(sched)
        assert inj.drop_ack(1.0)
        assert inj.ack_drops == 1


class TestLinkIntegration:
    def test_ge_drops_on_link(self):
        sched = _schedule(burst_loss=BurstLoss(p_enter=1.0, p_exit=0.0,
                                               loss_bad=1.0))
        loop = EventLoop()
        delivered = []
        link = BottleneckLink(loop, ConstantTrace(mbps(10)), buffer_bytes=1e9,
                              propagation_delay=0.0,
                              deliver=delivered.append,
                              injector=FaultInjector(sched))
        for i in range(10):
            link.send(Packet(flow_id=0, seq=i, size=1500, sent_time=0.0))
        loop.run_until(1.0)
        assert delivered == []
        assert link.fault_drops == 10

    def test_blackout_run_is_deterministic(self):
        def run_once():
            net = Dumbbell(ConstantTrace(mbps(10)), buffer_bytes=100_000,
                           rtt=0.04, seed=2,
                           faults=FAULT_PROFILES["pathological"])
            net.add_flow(FixedRateController(mbps(8)))
            result = net.run(8.0)
            return (result.link_served_bytes, result.link_capacity_bytes,
                    net.injector.data_drops, net.injector.ack_drops)

        assert run_once() == run_once()

    def test_blackout_halts_service_and_shrinks_capacity(self):
        sched = _schedule(blackouts=(Blackout(start=1.0, duration=1.0),))
        net = Dumbbell(ConstantTrace(mbps(10)), buffer_bytes=200_000,
                       rtt=0.04, seed=1, faults=sched)
        net.add_flow(FixedRateController(mbps(8)))
        result = net.run(3.0)
        assert result.served_bytes_between(1.05, 1.95) == 0.0
        # capacity denominator excludes the blackout second
        clean = ConstantTrace(mbps(10)).capacity_bytes(0.0, 3.0)
        assert result.link_capacity_bytes == pytest.approx(clean * 2.0 / 3.0)

    def test_reorder_delivers_out_of_order(self):
        sched = _schedule(reorder=Reorder(probability=0.3, extra=0.05))
        net = Dumbbell(ConstantTrace(mbps(10)), buffer_bytes=200_000,
                       rtt=0.02, seed=5, faults=sched)
        net.add_flow(FixedRateController(mbps(8)))
        net.run(2.0)
        assert net.injector.reordered > 0
