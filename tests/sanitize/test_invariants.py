"""Invariant-layer behaviour: clean runs stay clean, corruption trips.

The fuzz section is the PR's property test: across every canned fault
profile and a handful of seeds, injected faults (blackouts, burst loss,
delay spikes, reordering, ACK mangling) must never trip a conservation
invariant — faults drop and delay packets through the accounted paths,
they do not teleport them.  The directed section then corrupts state by
hand and asserts each audit actually fires.
"""

import pytest

from repro.parallel import execute, single_flow_job
from repro.registry import make_controller
from repro.sanitize import InvariantViolation, SimSanitizer, activate, current
from repro.sanitize import invariants as invariants_mod
from repro.scenarios.presets import WIRED, stress_scenario
from repro.simnet.faults import FAULT_PROFILES
from repro.simnet.network import Dumbbell
from repro.simnet.trace import wired_trace


class TestActivation:
    def test_disabled_by_default(self):
        assert invariants_mod.ACTIVE is None
        assert current() is None

    def test_activate_restores_previous(self):
        outer = SimSanitizer()
        inner = SimSanitizer()
        with activate(outer):
            assert current() is outer
            with activate(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_activate_none_disables(self):
        with activate(SimSanitizer()):
            with activate(None):
                assert current() is None

    def test_env_forced(self, monkeypatch):
        monkeypatch.delenv(invariants_mod.SANITIZE_ENV, raising=False)
        assert not invariants_mod.env_forced()
        monkeypatch.setenv(invariants_mod.SANITIZE_ENV, "0")
        assert not invariants_mod.env_forced()
        monkeypatch.setenv(invariants_mod.SANITIZE_ENV, "1")
        assert invariants_mod.env_forced()


class TestScalarChecks:
    def test_check_finite(self):
        s = SimSanitizer()
        s.check_finite("x", 1.0)
        with pytest.raises(InvariantViolation) as ei:
            s.check_finite("x", float("nan"))
        assert ei.value.invariant == "x"
        with pytest.raises(InvariantViolation):
            s.check_finite("x", 0.0, positive=True)
        assert s.violations == 2

    def test_check_fraction(self):
        s = SimSanitizer()
        s.check_fraction("f", 0.5)
        with pytest.raises(InvariantViolation):
            s.check_fraction("f", 1.5)

    def test_violation_carries_context(self):
        s = SimSanitizer()
        with pytest.raises(InvariantViolation) as ei:
            s.check_rate("simnet.pacing_rate", float("inf"), flow=3)
        exc = ei.value
        assert exc.invariant == "simnet.pacing_rate"
        assert exc.context["flow"] == 3
        assert exc.summary()["invariant"] == "simnet.pacing_rate"

    def test_utility_check_fires_through_module_slot(self):
        from repro.core.utility import utility

        with activate(SimSanitizer()) as s:
            utility(10.0, 0.0, 0.0)  # sane inputs pass
            with pytest.raises(InvariantViolation) as ei:
                utility(float("nan"), 0.0, 0.0)
        assert ei.value.invariant == "core.utility"
        assert s.violations == 1


def _run_sanitized(cca: str, scenario, seed: int, duration: float):
    """Execute one sanitized job; returns its RunResult."""
    job = single_flow_job(cca, scenario, seed=seed, duration=duration,
                          sanitize=True)
    return execute(job).result


class TestFaultFuzz:
    """Property: injected faults never break conservation."""

    @pytest.mark.parametrize("profile",
                             ["clean"] + sorted(FAULT_PROFILES))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_faulted_runs_never_trip_invariants(self, profile, seed):
        result = _run_sanitized("c-libra", stress_scenario(profile),
                                seed=seed, duration=4.0)
        assert result.flows[0].sent_packets > 0

    @pytest.mark.parametrize("cca", ["cubic", "bbr", "b-libra"])
    def test_cca_roster_under_pathological_profile(self, cca):
        result = _run_sanitized(cca, stress_scenario("pathological"),
                                seed=1, duration=4.0)
        assert result.duration == pytest.approx(4.0)

    def test_sanitized_run_actually_audits(self):
        with activate(SimSanitizer()) as sanitizer:
            net = Dumbbell(wired_trace(24.0), buffer_bytes=150_000,
                           rtt=0.03, seed=1)
            net.add_flow(make_controller("cubic", seed=1))
            net.run(2.0)
        assert sanitizer.audits > 0
        assert sanitizer.checks > sanitizer.audits
        assert sanitizer.violations == 0

    def test_codel_runs_clean_under_sanitizers(self):
        result = _run_sanitized(
            "cubic", WIRED["wired-24"].with_(aqm="codel"), seed=1,
            duration=2.0)
        assert result.flows[0].delivered_bytes > 0


class TestDirectedCorruption:
    """Each audit must fire when its invariant is actually broken."""

    def _net(self, sanitizer):
        with activate(sanitizer):
            net = Dumbbell(wired_trace(24.0), buffer_bytes=150_000,
                           rtt=0.03, seed=1)
            net.add_flow(make_controller("cubic", seed=1))
            net.run(1.0)
        return net

    def test_link_conservation_trips_on_lost_packet(self):
        sanitizer = SimSanitizer()
        net = self._net(sanitizer)
        net.link.arrived_packets += 1  # a packet the link never accounts
        with pytest.raises(InvariantViolation) as ei:
            sanitizer.audit_link(net.link)
        assert ei.value.invariant == "simnet.conservation"

    def test_queue_accounting_trips_on_byte_drift(self):
        sanitizer = SimSanitizer()
        net = self._net(sanitizer)
        net.link.queue.bytes += 7777.0
        with pytest.raises(InvariantViolation) as ei:
            sanitizer.audit_queue(net.link.queue)
        assert ei.value.invariant in ("simnet.queue_accounting",
                                      "simnet.queue_capacity")

    def test_flow_conservation_trips_on_phantom_send(self):
        sanitizer = SimSanitizer()
        net = self._net(sanitizer)
        sender = net._senders[0]
        sender.stats.sent_packets += 1
        with pytest.raises(InvariantViolation) as ei:
            sanitizer.audit_flow(sender)
        assert ei.value.invariant == "simnet.flow_conservation"

    def test_inflight_accounting_trips_on_cache_drift(self):
        sanitizer = SimSanitizer()
        net = self._net(sanitizer)
        sender = net._senders[0]
        sender.inflight_bytes += 1500.0
        with pytest.raises(InvariantViolation) as ei:
            sanitizer.audit_flow(sender)
        assert ei.value.invariant == "simnet.inflight_accounting"

    def test_injection_trips_on_link_counter_rollback(self):
        sanitizer = SimSanitizer()
        net = self._net(sanitizer)
        # Keep the link internally consistent but out of step with the
        # flows: pretend one served packet never arrived.
        net.link.arrived_packets -= 1
        net.link.served_packets -= 1
        with pytest.raises(InvariantViolation) as ei:
            sanitizer.audit_network(net)
        assert ei.value.invariant == "simnet.injection"
