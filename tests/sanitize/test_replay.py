"""Deterministic failure replay: capture a crash, re-run it, same crash.

Uses the registry's deliberately-crashing ``crash-test`` controller so
the captured exception is deterministic by construction, then asserts
the whole loop: bundle written under ``$REPRO_FAILURES_DIR`` → bundle
loads → in-process replay under forced sanitizers raises the identical
exception type and message.
"""

import json
import os

import pytest

from repro.parallel import FailedRun, execute, single_flow_job
from repro.sanitize.replay import (FAILURES_DIR_ENV, failures_dir,
                                   load_bundle, maybe_write_bundle, replay,
                                   write_bundle)
from repro.scenarios.presets import stress_scenario


def _crashing_job(seed=1):
    return single_flow_job("crash-test", stress_scenario("clean"), seed=seed,
                           duration=2.0, crash_after=5)


@pytest.fixture
def bundle_dir(tmp_path, monkeypatch):
    directory = tmp_path / "failures"
    monkeypatch.setenv(FAILURES_DIR_ENV, str(directory))
    return directory


class TestBundleCapture:
    def test_capture_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(FAILURES_DIR_ENV, raising=False)
        assert failures_dir() is None
        assert maybe_write_bundle(_crashing_job(), RuntimeError("x")) == ""
        failure = execute(_crashing_job(), capture_errors=True).failure
        assert isinstance(failure, FailedRun)
        assert failure.bundle == ""

    def test_execute_writes_bundle_when_enabled(self, bundle_dir):
        failure = execute(_crashing_job(), capture_errors=True).failure
        assert isinstance(failure, FailedRun)
        assert failure.bundle
        assert os.path.isfile(failure.bundle)
        assert str(failure.bundle) in str(failure)

    def test_bundle_contents(self, bundle_dir):
        failure = execute(_crashing_job(), capture_errors=True).failure
        bundle = load_bundle(failure.bundle)
        assert bundle["error_type"] == "RuntimeError"
        assert "crash-test controller raised" in bundle["error_message"]
        assert bundle["seed"] == 1
        assert bundle["spec"]  # canonical human-readable job spec
        assert bundle["code_salt"]
        assert bundle["job_pickle"]

    def test_same_failure_overwrites_same_bundle(self, bundle_dir):
        first = execute(_crashing_job(), capture_errors=True).failure
        second = execute(_crashing_job(), capture_errors=True).failure
        assert first.bundle == second.bundle
        assert len(list(bundle_dir.iterdir())) == 1

    def test_uncaptured_raise_still_writes_bundle(self, bundle_dir):
        with pytest.raises(RuntimeError):
            execute(_crashing_job(), capture_errors=False)
        assert len(list(bundle_dir.iterdir())) == 1

    def test_unsupported_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError):
            load_bundle(str(path))


class TestReplay:
    def test_replay_reproduces_identical_exception(self, bundle_dir):
        failure = execute(_crashing_job(), capture_errors=True).failure
        report = replay(failure.bundle)
        assert report.reproduced, report.to_json()
        assert report.verdict == "reproduced"
        assert report.replayed_type == report.original_type == "RuntimeError"
        assert report.replayed_message == report.original_message
        # sanitizers were forced on for the replay and actually ran
        assert report.sanitize and report.audits > 0

    def test_replay_without_sanitizers(self, bundle_dir):
        failure = execute(_crashing_job(), capture_errors=True).failure
        report = replay(failure.bundle, sanitize=False)
        assert report.reproduced
        assert not report.sanitize and report.audits == 0

    def test_replay_is_deterministic(self, bundle_dir):
        failure = execute(_crashing_job(), capture_errors=True).failure
        first = replay(failure.bundle)
        second = replay(failure.bundle)
        assert first.replayed_message == second.replayed_message
        assert first.verdict == second.verdict == "reproduced"

    def test_fixed_failure_reports_no_error(self, tmp_path):
        # capture a bundle for a job that does NOT fail: the "bug" is
        # gone, so the replay verdict must be no-error, not a crash
        job = single_flow_job("cubic", stress_scenario("clean"), seed=1,
                              duration=2.0)
        path = write_bundle(job, RuntimeError("flaky env"),
                            directory=str(tmp_path))
        report = replay(path)
        assert report.verdict == "no-error"
        assert not report.reproduced

    def test_salt_mismatch_warns_but_replays(self, bundle_dir):
        failure = execute(_crashing_job(), capture_errors=True).failure
        bundle = load_bundle(failure.bundle)
        bundle["code_salt"] = "different"
        with open(failure.bundle, "w") as fh:
            json.dump(bundle, fh)
        report = replay(failure.bundle)
        assert report.salt_mismatch and report.warnings
        assert report.reproduced
