"""Disabled-sanitizer overhead guarantees, checked structurally.

Mirrors ``tests/telemetry/test_overhead.py``: a wall-clock comparison
cannot run inside one revision, so zero cost is enforced by construction
— an unsanitized run must never construct a :class:`SimSanitizer`, never
call any of its check or audit methods (asserted by making every public
method raise), and the guarded hot sites must reduce to one ``is not
None`` attribute check.
"""

import time

import pytest

from repro.parallel import single_flow_job
from repro.registry import make_controller
from repro.sanitize import SimSanitizer
from repro.sanitize import invariants as invariants_mod
from repro.scenarios.presets import WIRED, stress_scenario
from repro.simnet.network import Dumbbell
from repro.simnet.trace import wired_trace

#: every checking entry point the instrumented subsystems may call
_SANITIZER_METHODS = [
    name for name in vars(SimSanitizer)
    if not name.startswith("_") and callable(getattr(SimSanitizer, name))
]


@pytest.fixture
def forbidden_sanitizer(monkeypatch):
    """Make every SimSanitizer method (and the constructor) explode."""
    def _make_forbidden(name):
        def _forbidden(self, *args, **kwargs):
            raise AssertionError(
                f"SimSanitizer.{name} called during an unsanitized run")
        return _forbidden

    for name in _SANITIZER_METHODS:
        monkeypatch.setattr(SimSanitizer, name, _make_forbidden(name))
    monkeypatch.setattr(SimSanitizer, "__init__",
                        _make_forbidden("__init__"))


class TestDisabledPathIsInert:
    def test_method_inventory_is_nontrivial(self):
        # the forbidden fixture must actually cover the checking surface
        assert "audit_network" in _SANITIZER_METHODS
        assert "check_ack_sample" in _SANITIZER_METHODS
        assert len(_SANITIZER_METHODS) >= 10

    def test_unsanitized_sim_never_touches_sanitizer(
            self, forbidden_sanitizer, monkeypatch):
        monkeypatch.delenv(invariants_mod.SANITIZE_ENV, raising=False)
        job = single_flow_job("cubic", WIRED["wired-24"], seed=1,
                              duration=2.0)
        result = job.run()
        assert result.flows[0].throughput_mbps > 0

    def test_unsanitized_faulted_run_is_inert_too(
            self, forbidden_sanitizer, monkeypatch):
        monkeypatch.delenv(invariants_mod.SANITIZE_ENV, raising=False)
        job = single_flow_job("c-libra", stress_scenario("burst-loss"),
                              seed=1, duration=3.0)
        assert job.run().flows[0].sent_packets > 0

    def test_unsanitized_netio_arq_is_inert(self, forbidden_sanitizer):
        from repro.netio.arq import SRSender
        from repro.netio.framing import AckPacket
        from repro.netio.rxbuf import SRReceiver

        sender = SRSender(window=64)
        assert sender.sanitizer is None
        sender.register_send(b"x" * 100, now=0.0)
        sender.on_ack(AckPacket(cum_ack=1, echo_seq=0, delivered_bytes=100,
                                sack_blocks=()), now=0.01)
        receiver = SRReceiver()
        assert receiver.sanitizer is None

    def test_components_capture_none_by_default(self):
        net = Dumbbell(wired_trace(24.0), buffer_bytes=150_000, rtt=0.03,
                       seed=1)
        net.add_flow(make_controller("cubic", seed=1))
        assert net.sanitizer is None
        assert net.loop.sanitizer is None
        net.run(0.1)  # senders are built at run start
        assert net._senders[0].sanitizer is None


class TestGuardMicrocost:
    def test_attribute_guard_is_cheap(self):
        """The per-event cost when disabled is one ``is not None`` check."""
        class Host:
            sanitizer = None

        host = Host()
        n = 200_000
        t0 = time.perf_counter()
        hits = 0
        for _ in range(n):
            if host.sanitizer is not None:  # the hot-path guard pattern
                hits += 1  # pragma: no cover
        elapsed = time.perf_counter() - t0
        assert hits == 0
        assert elapsed / n < 2e-6, f"guard cost {elapsed / n:.2e}s"
