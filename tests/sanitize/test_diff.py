"""Differential oracle: the same job under two configurations agrees.

Covers the fingerprint comparator in isolation (tolerance semantics,
missing metrics, NaN), then the three built-in modes end-to-end on a
short job: serial vs fork, telemetry off vs on, sanitizers off vs on —
each must report *exact* metric equality, which is the repo's execution
guarantee.
"""

import pytest

from repro.parallel import single_flow_job
from repro.sanitize.diff import (DifferentialMismatch, compare_fingerprints,
                                 diff_jobs, metric_fingerprint, run_diff)
from repro.scenarios.presets import WIRED, stress_scenario


def _job(seed=1, duration=3.0, **kw):
    return single_flow_job("c-libra", WIRED["wired-24"], seed=seed,
                           duration=duration, **kw)


class TestCompareFingerprints:
    def test_exact_equality_by_default(self):
        assert compare_fingerprints({"a": 1.0}, {"a": 1.0}) == []
        diffs = compare_fingerprints({"a": 1.0}, {"a": 1.0 + 1e-12})
        assert [d.metric for d in diffs] == ["a"]

    def test_relative_tolerance(self):
        assert compare_fingerprints({"a": 100.0}, {"a": 100.5},
                                    tolerance=0.01) == []
        assert compare_fingerprints({"a": 100.0}, {"a": 102.0},
                                    tolerance=0.01) != []

    def test_missing_metric_is_always_a_discrepancy(self):
        diffs = compare_fingerprints({"a": 1.0, "b": 2.0}, {"a": 1.0},
                                     tolerance=100.0)
        assert [d.metric for d in diffs] == ["b"]

    def test_nan_agrees_with_nan(self):
        nan = float("nan")
        assert compare_fingerprints({"a": nan}, {"a": nan}) == []
        assert compare_fingerprints({"a": nan}, {"a": 1.0}) != []

    def test_inf_agrees_with_inf(self):
        inf = float("inf")
        assert compare_fingerprints({"a": inf}, {"a": inf}) == []


class TestFingerprint:
    def test_fingerprint_covers_run_and_flows(self):
        result = _job(duration=2.0).run()
        fp = metric_fingerprint(result)
        assert "duration" in fp and "link_served_bytes" in fp
        assert "flow0.delivered_bytes" in fp
        assert "queue_samples" in fp
        assert all(isinstance(v, float) for v in fp.values())


class TestDiffModes:
    def test_fork_mode_equal(self):
        report = run_diff(_job(), mode="fork")
        assert report.equal, [str(d) for d in report.discrepancies]
        assert report.label_a == "serial" and report.label_b == "fork"
        assert len(report.fingerprint_a) > 10

    def test_telemetry_mode_equal(self):
        report = run_diff(_job(), mode="telemetry")
        assert report.equal, [str(d) for d in report.discrepancies]

    def test_sanitize_mode_equal_under_faults(self):
        job = single_flow_job("c-libra", stress_scenario("burst-loss"),
                              seed=1, duration=3.0)
        report = run_diff(job, mode="sanitize")
        assert report.equal, [str(d) for d in report.discrepancies]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_diff(_job(), mode="nope")

    def test_report_json_shape(self):
        payload = run_diff(_job(duration=2.0), mode="sanitize").to_json()
        assert payload["equal"] is True
        assert payload["mode"] == "sanitize"
        assert payload["metrics_compared"] > 0


class TestMismatchSurfaces:
    def test_different_seeds_diverge_and_raise(self):
        # the clean wired link is seed-independent, so diverge on a
        # scenario with stochastic loss where the seed matters
        from repro.scenarios.presets import loss_scenario

        def lossy(seed):
            return single_flow_job("c-libra", loss_scenario(0.04),
                                   seed=seed, duration=2.0)

        report = diff_jobs(lossy(1), lossy(2),
                           label_a="seed1", label_b="seed2")
        assert not report.equal
        with pytest.raises(DifferentialMismatch) as ei:
            report.raise_if_unequal()
        assert ei.value.report is report
        assert "seed1 vs seed2" in str(ei.value)

    def test_equal_report_passes_through(self):
        report = diff_jobs(_job(duration=2.0), _job(duration=2.0))
        assert report.raise_if_unequal() is report
