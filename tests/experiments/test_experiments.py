"""Smoke and shape tests for the experiment harness (tiny parameters)."""

import pytest

from repro.experiments import harness
from repro.experiments.adaptability import run_fig1, run_fig8
from repro.experiments.deep_dive import run_fig17, run_fig18
from repro.experiments.fairness import run_inter, run_intra
from repro.experiments.flexibility import run_vs_cubic
from repro.experiments.overhead import libra_reduction, run_fig12
from repro.experiments.practical_issues import run_fig2b, step_tracking_error
from repro.experiments.rl_ablation import curve_rise_time, run_tab3
from repro.experiments.safety import run_tab6
from repro.experiments.sensitivity import run_tab7
from repro.experiments.sweeps import buffer_sensitivity, run_fig9
from repro.scenarios import WIRED


class TestHarness:
    def test_run_single_summary(self):
        s = harness.run_single("cubic", WIRED["wired-24"], seed=1,
                               duration=4.0)
        assert s.throughput_mbps > 10
        assert s.queue_delay_ms >= 0

    def test_mean_metrics(self):
        runs = harness.run_seeds("cubic", WIRED["wired-24"], (1, 2),
                                 duration=3.0)
        metrics = harness.mean_metrics(runs)
        assert set(metrics) == {"utilization", "throughput_mbps",
                                "avg_rtt_ms", "loss_rate", "runs", "failures"}
        assert metrics["runs"] == 2 and metrics["failures"] == 0

    def test_mean_metrics_requires_runs(self):
        with pytest.raises(ValueError):
            harness.mean_metrics([])

    def test_format_table(self):
        out = harness.format_table(["a", "b"], [["x", 1.5]], title="T")
        assert "T" in out and "x" in out and "1.500" in out


class TestAdaptability:
    def test_fig1_shape(self):
        data = run_fig1(ccas=("cubic", "c-libra"), seeds=(1,), duration=5.0)
        assert len(data) == 6
        first = next(iter(data.values()))
        assert set(first) == {"cubic", "c-libra"}

    def test_fig8_series(self):
        data = run_fig8(ccas=("cubic",), duration=6.0)
        times, rates = data["series"]["cubic"]
        assert len(times) == len(rates) > 10


class TestPracticalIssues:
    def test_fig2b_cdf(self):
        data = run_fig2b(ccas=("cubic",), trials=3, duration=4.0)
        values, probs = data["cubic"]["cdf"]
        assert probs[-1] == 1.0
        assert all(0 <= v <= 1 for v in values)

    def test_tracking_error_metric(self):
        from repro.simnet.trace import wired_trace

        trace = wired_trace(10)
        err = step_tracking_error(([1.0, 2.0], [10.0, 5.0]), trace, 10.0)
        assert err == pytest.approx(0.25)


class TestOverheadExperiment:
    def test_fig12_and_reduction(self):
        data = run_fig12(ccas=("cubic", "c-libra", "orca"),
                         capacities_mbps=(10, 20), duration=4.0)
        assert set(data) == {"cubic", "c-libra", "orca"}
        reduction = libra_reduction(data, "orca")
        assert 0.0 < reduction <= 1.0


class TestFairnessExperiment:
    def test_inter_shares_sum_to_one(self):
        data = run_inter(ccas=("cubic",), seeds=(1,), duration=8.0)
        m = data["cubic"]
        assert m["cca_share"] + m["cubic_share"] == pytest.approx(1.0)
        assert m["jain"] > 0.8

    def test_intra_libra_fair(self):
        data = run_intra(ccas=("c-libra",), seeds=(1,), duration=12.0)
        assert data["c-libra"]["jain"] > 0.8


class TestFlexibilityExperiment:
    def test_vs_cubic_ratio_bounded(self):
        data = run_vs_cubic(variants=("c-libra",), presets=("default",),
                            seeds=(1,), duration=10.0)
        ratio = data["c-libra-default"]["throughput_ratio"]
        assert 0.1 < ratio < 0.9


class TestSweeps:
    def test_fig9_buffer_sensitivity(self):
        data = run_fig9(ccas=("cubic",), buffers=(30_000, 300_000),
                        seeds=(1,), duration=6.0)
        assert buffer_sensitivity(data["cubic"]) > 0  # delay grows


class TestSafety:
    def test_tab6_stats_fields(self):
        data = run_tab6(ccas=("c-libra",),
                        networks={"w24": WIRED["wired-24"]},
                        trials=2, duration=4.0)
        stats = data["w24"]["c-libra"]
        assert {"mean", "range", "std"} <= set(stats)


class TestSensitivity:
    def test_tab7_sweep(self):
        data = run_tab7(thresholds=(0.3,), seeds=(1,), duration=4.0)
        assert "0.3x" in data
        assert {"wired", "cellular"} == set(data["0.3x"])


class TestDeepDive:
    def test_fig17_fractions_sum(self):
        data = run_fig17(variants=("c-libra",), seeds=(1,), duration=6.0)
        for per_scenario in data.values():
            for fractions in per_scenario.values():
                assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fig18_normalized(self):
        data = run_fig18(duration=8.0)
        assert 0.0 <= data["libra_mean"] <= 1.0
        assert 0.0 <= data["ideal_mean"] <= 1.0


class TestRlAblation:
    def test_tab3_runs_tiny(self):
        data = run_tab3(epochs=1, seed=2)
        assert set(data) == {"with loss rate", "w/o loss rate"}

    def test_curve_rise_time(self):
        assert curve_rise_time([0.0, 0.5, 0.9, 1.0, 1.0]) <= 3
