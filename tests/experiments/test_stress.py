"""Stress experiment: degradation and recovery under injected faults."""

import numpy as np
import pytest

from repro.core.factory import make_c_libra
from repro.experiments.stress import (RECOVERY_THRESHOLD, RECOVERY_WINDOW,
                                      recovery_time, run_failure_selftest,
                                      run_stress)
from repro.experiments.harness import run_single
from repro.parallel import FailedRun
from repro.scenarios.presets import STRESS_BW_MBPS, stress_scenario
from repro.simnet.faults import FAULT_PROFILES
from repro.simnet.network import Dumbbell
from repro.simnet.trace import wired_trace


class TestBlackoutRecovery:
    """The headline acceptance criterion: C-Libra survives a 2 s blackout
    and is back above 80 % utilization within 2 s of restoration."""

    @pytest.fixture(scope="class")
    def blackout_run(self):
        return run_single("c-libra", stress_scenario("blackout"), seed=1)

    def test_recovers_within_two_seconds(self, blackout_run):
        blackout = FAULT_PROFILES["blackout"].blackouts[0]
        result = blackout_run.result
        rec = recovery_time(result, blackout, STRESS_BW_MBPS * 1e6)
        assert rec is not None and rec <= 2.0
        # and the recovery window really does carry >= 80 % of capacity
        t = blackout.end + rec
        served = result.served_bytes_between(t, t + RECOVERY_WINDOW)
        need = RECOVERY_THRESHOLD * STRESS_BW_MBPS * 1e6 * RECOVERY_WINDOW / 8
        assert served >= need

    def test_nothing_served_during_blackout(self, blackout_run):
        blackout = FAULT_PROFILES["blackout"].blackouts[0]
        result = blackout_run.result
        assert result.served_bytes_between(blackout.start + 0.1,
                                           blackout.end - 0.1) == 0.0

    def test_watchdog_declared_the_outage(self, blackout_run):
        controller = blackout_run.result.controllers[0]
        assert controller.outage_count >= 1

    def test_overall_utilization_stays_high(self, blackout_run):
        # capacity denominator excludes the blackout, so a clean recovery
        # keeps overall utilization high despite the 2 s hole
        assert blackout_run.utilization >= 0.8


class TestRlArmDegradation:
    def test_rl_arm_disabled_and_reenabled_via_backoff(self):
        """A faulting policy benches the RL arm; backoff re-enables it and
        the next fault benches it again — the flow itself keeps running."""

        class _Explosive:
            class actor:
                flops_per_forward = 100

            def act(self, state, rng, deterministic=False):
                raise RuntimeError("inference blew up")

        controller = make_c_libra(seed=1)
        controller.policy = _Explosive()
        # short backoff so disable -> re-enable -> disable fits in one run
        controller.config.rl_backoff_initial = 0.5
        controller.config.rl_backoff_max = 2.0
        net = Dumbbell(wired_trace(24), buffer_bytes=150_000, rtt=0.03,
                       seed=1)
        net.add_flow(controller)
        result = net.run(8.0)
        # >= 2 faults proves the arm was re-enabled after the first backoff
        assert controller.rl_fault_count >= 2
        # degraded = classic-vs-x_prev contest, still a working controller
        assert result.utilization > 0.7
        # no successful inference ever ran (x_rl stayed pinned to x_prev)
        assert controller.meter.counts.get("nn_forward", 0) == 0


class TestRunStress:
    def test_tiny_grid_completes_without_unhandled_errors(self):
        data = run_stress(ccas=("cubic", "c-libra"),
                          profiles=("clean", "blackout"), seeds=(1,),
                          duration=10.0)
        assert set(data) == {"clean", "blackout"}
        for profile, per_cca in data.items():
            for cca, row in per_cca.items():
                assert row["failures"] == []
                assert row["runs"] == 1
                assert 0.0 <= row["utilization"] <= 1.0
        # clean profile has no impairment window or recovery metric
        assert data["clean"]["cubic"]["impaired_goodput_mbps"] is None
        assert data["clean"]["cubic"]["recovery_s"] is None
        assert data["blackout"]["c-libra"]["recovery_s"] is not None

    def test_crashing_cca_collected_not_raised(self):
        data = run_stress(ccas=("crash-test",), profiles=("clean",),
                          seeds=(1,), duration=3.0)
        row = data["clean"]["crash-test"]
        assert row["runs"] == 0
        assert len(row["failures"]) == 1
        assert isinstance(row["failures"][0], FailedRun)
        assert row["utilization"] is None

    def test_failure_selftest(self):
        failed = run_failure_selftest()
        assert isinstance(failed, FailedRun)
        assert failed.cca == "crash-test"


class TestRecoveryTime:
    def test_never_recovering_run_returns_none(self):
        class _Result:
            duration = 10.0

            @staticmethod
            def served_bytes_between(t0, t1):
                return 0.0

        blackout = FAULT_PROFILES["blackout"].blackouts[0]
        assert recovery_time(_Result(), blackout, 40e6) is None

    def test_instant_recovery_is_zero(self):
        class _Result:
            duration = 10.0

            @staticmethod
            def served_bytes_between(t0, t1):
                return 40e6 * (t1 - t0) / 8.0

        blackout = FAULT_PROFILES["blackout"].blackouts[0]
        assert recovery_time(_Result(), blackout, 40e6) == 0.0
