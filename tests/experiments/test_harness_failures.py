"""Harness behavior when grids interleave FailedRun entries."""

import logging

import pytest

from repro.experiments import harness
from repro.parallel import FailedRun
from repro.scenarios.presets import WIRED


def _failure(seed=0) -> FailedRun:
    return FailedRun(cca="crash-test", scenario="wired-24", seed=seed,
                     error="RuntimeError('boom')")


def _summaries(n=2):
    return harness.run_seeds("cubic", WIRED["wired-24"], range(1, n + 1),
                             duration=1.0)


class TestMeanMetrics:
    def test_skips_failed_runs(self):
        ok = _summaries(2)
        metrics = harness.mean_metrics([*ok, _failure()])
        assert metrics["runs"] == 2
        assert metrics["failures"] == 1
        assert metrics == harness.mean_metrics(ok) | {"failures": 1}

    def test_all_failed_raises_with_count(self):
        with pytest.raises(ValueError, match="2 failures"):
            harness.mean_metrics([_failure(0), _failure(1)])

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no runs"):
            harness.mean_metrics([])


class TestRunSeeds:
    def test_filters_failures_and_warns(self, caplog, monkeypatch):
        real_run_grid = harness.run_grid

        def flaky_grid(jobs, **execution):
            results = real_run_grid(jobs, **execution)
            results[0] = _failure(seed=jobs[0].seed)
            return results

        monkeypatch.setattr(harness, "run_grid", flaky_grid)
        with caplog.at_level(logging.WARNING, logger=harness.log.name):
            summaries = harness.run_seeds("cubic", WIRED["wired-24"], (1, 2),
                                          duration=1.0)
        assert len(summaries) == 1
        assert all(not s.failed for s in summaries)
        assert "1/2 runs failed" in caplog.text

    def test_clean_grid_passes_through(self):
        summaries = _summaries(2)
        assert len(summaries) == 2
        assert {s.result.flows[0].flow_id for s in summaries} == {0}
