"""Determinism guarantees of the training pipeline.

The contract: with the same seed, the trained weights and episode-reward
history are bit-identical regardless of execution backend (in-process
vs. forked workers) and regardless of whether the run was interrupted
and resumed from a checkpoint.
"""

import os

import numpy as np
import pytest

from repro.parallel.pool import has_fork
from repro.train import TrainRunConfig, train_run
from repro.train.workers import worker_rng

BASE = dict(kind="libra", steps_per_iteration=96, episode_steps=24,
            seed=13, hidden=(8, 8))

needs_fork = pytest.mark.skipif(not has_fork(),
                                reason="fork start method unavailable")


def _weights_equal(a, b):
    wa, wb = a.get_weights(), b.get_weights()
    return set(wa) == set(wb) and \
        all(np.array_equal(wa[k], wb[k]) for k in wa)


class TestWorkerStreams:
    def test_streams_are_reproducible(self):
        a = worker_rng(3, 5, 0, 0).normal(size=4)
        b = worker_rng(3, 5, 0, 0).normal(size=4)
        assert np.array_equal(a, b)

    def test_streams_are_distinct(self):
        draws = [worker_rng(3, it, w, s).normal()
                 for it in (1, 2) for w in (0, 1) for s in (0, 1)]
        assert len(set(draws)) == len(draws)


class TestBackendIndependence:
    @needs_fork
    def test_serial_vs_fork_one_worker_bit_identical(self):
        """The ISSUE's headline property: same seed, 1 worker, serial vs
        forked collection, bit-identical history and weights."""
        serial = train_run(TrainRunConfig(**BASE, iterations=2, workers=1,
                                          backend="serial"))
        forked = train_run(TrainRunConfig(**BASE, iterations=2, workers=1,
                                          backend="fork"))
        assert serial.history.episode_rewards == forked.history.episode_rewards
        assert _weights_equal(serial.policy, forked.policy)

    @needs_fork
    def test_serial_vs_fork_two_workers_bit_identical(self):
        serial = train_run(TrainRunConfig(**BASE, iterations=2, workers=2,
                                          backend="serial"))
        forked = train_run(TrainRunConfig(**BASE, iterations=2, workers=2,
                                          backend="fork"))
        assert serial.history.episode_rewards == forked.history.episode_rewards
        assert _weights_equal(serial.policy, forked.policy)

    def test_different_seeds_differ(self):
        a = train_run(TrainRunConfig(**BASE, iterations=1, backend="serial"))
        b = train_run(TrainRunConfig(**dict(BASE, seed=14), iterations=1,
                                     backend="serial"))
        assert not _weights_equal(a.policy, b.policy)


class TestResume:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        ck = str(tmp_path / "ck")
        full = train_run(TrainRunConfig(**BASE, iterations=4,
                                        backend="serial"))
        train_run(TrainRunConfig(**BASE, iterations=2, backend="serial",
                                 checkpoint_dir=ck, checkpoint_every=1))
        resumed = train_run(TrainRunConfig(**BASE, iterations=4,
                                           backend="serial",
                                           checkpoint_dir=ck, resume=True))
        assert resumed.start_iteration == 2
        assert full.history.episode_rewards == resumed.history.episode_rewards
        assert _weights_equal(full.policy, resumed.policy)

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        ck = str(tmp_path / "empty")
        os.makedirs(ck)
        result = train_run(TrainRunConfig(**BASE, iterations=1,
                                          backend="serial",
                                          checkpoint_dir=ck, resume=True))
        assert result.start_iteration == 0

    def test_resume_rejects_mismatched_run(self, tmp_path):
        ck = str(tmp_path / "ck")
        train_run(TrainRunConfig(**BASE, iterations=1, backend="serial",
                                 checkpoint_dir=ck))
        with pytest.raises(ValueError, match="different run"):
            train_run(TrainRunConfig(**dict(BASE, seed=99), iterations=2,
                                     backend="serial", checkpoint_dir=ck,
                                     resume=True))

    def test_resumed_past_target_runs_nothing(self, tmp_path):
        ck = str(tmp_path / "ck")
        train_run(TrainRunConfig(**BASE, iterations=3, backend="serial",
                                 checkpoint_dir=ck))
        again = train_run(TrainRunConfig(**BASE, iterations=3,
                                         backend="serial",
                                         checkpoint_dir=ck, resume=True))
        assert again.iterations_run == 0
