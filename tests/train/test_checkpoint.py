"""Tests for schema-versioned, crash-safe training checkpoints."""

import json
import os

import numpy as np
import pytest

from repro.rl.policy import GaussianActorCritic
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.train.checkpoint import (CHECKPOINT_SCHEMA_VERSION,
                                    CheckpointError, TrainState,
                                    checkpoint_path, latest_checkpoint,
                                    load_checkpoint, restore_optimizer,
                                    restore_policy_weights, save_checkpoint)


def _state(iteration=3, seed=0):
    policy = GaussianActorCritic(4, hidden=(8, 8), seed=seed)
    updater = PPOUpdater(policy, PPOConfig(seed=seed),
                         rng=np.random.default_rng(seed))
    rng = np.random.default_rng(seed)
    rng.normal(size=17)  # advance so the state is non-trivial
    return policy, updater, TrainState(
        iteration=iteration, weights=policy.get_weights(),
        adam_m=updater.optimizer.m, adam_v=updater.optimizer.v,
        adam_t=updater.optimizer.t, rng_state=rng.bit_generator.state,
        episode_rewards=[1.0, -2.5, 3.25],
        meta={"kind": "libra", "seed": seed})


class TestRoundtrip:
    def test_save_load_roundtrip(self, tmp_path):
        policy, updater, state = _state()
        path = save_checkpoint(str(tmp_path), state)
        assert os.path.basename(path) == "ckpt-000003.npz"
        loaded = load_checkpoint(path)
        assert loaded.iteration == 3
        assert loaded.adam_t == state.adam_t
        assert loaded.episode_rewards == [1.0, -2.5, 3.25]
        assert loaded.meta["kind"] == "libra"
        for name, value in state.weights.items():
            assert np.array_equal(loaded.weights[name], value)
        for a, b in zip(loaded.adam_m, state.adam_m):
            assert np.array_equal(a, b)

    def test_rng_state_roundtrips_exactly(self, tmp_path):
        _, _, state = _state()
        loaded = load_checkpoint(save_checkpoint(str(tmp_path), state))
        rng = np.random.default_rng(0)
        rng.bit_generator.state = loaded.rng_state
        reference = np.random.default_rng(0)
        reference.normal(size=17)
        assert np.array_equal(rng.normal(size=5), reference.normal(size=5))

    def test_no_tmp_files_left_behind(self, tmp_path):
        _, _, state = _state()
        save_checkpoint(str(tmp_path), state)
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []


class TestLatest:
    def test_picks_highest_iteration(self, tmp_path):
        for it in (1, 12, 5):
            _, _, state = _state(iteration=it)
            save_checkpoint(str(tmp_path), state)
        assert latest_checkpoint(str(tmp_path)) == \
            checkpoint_path(str(tmp_path), 12)

    def test_missing_dir_gives_none(self, tmp_path):
        assert latest_checkpoint(str(tmp_path / "nope")) is None

    def test_ignores_foreign_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hi")
        (tmp_path / "ckpt-abc.npz").write_text("hi")
        assert latest_checkpoint(str(tmp_path)) is None


class TestValidation:
    def test_truncated_file_gives_actionable_error(self, tmp_path):
        _, _, state = _state()
        path = save_checkpoint(str(tmp_path), state)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            load_checkpoint(path)

    def test_missing_file_gives_actionable_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(str(tmp_path / "ckpt-000001.npz"))

    def test_future_schema_rejected(self, tmp_path):
        _, _, state = _state()
        path = save_checkpoint(str(tmp_path), state)
        with np.load(path) as archive:
            data = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(data["meta_json"].tobytes()).decode())
        meta["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        data["meta_json"] = np.frombuffer(json.dumps(meta).encode(),
                                          dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path)


class TestInPlaceRestore:
    def test_restore_keeps_optimizer_references_live(self, tmp_path):
        """After a restore, Adam must still update the policy's arrays."""
        policy, updater, state = _state(seed=1)
        loaded = load_checkpoint(save_checkpoint(str(tmp_path), state))

        target = GaussianActorCritic(4, hidden=(8, 8), seed=9)
        opt = PPOUpdater(target, PPOConfig(seed=9),
                         rng=np.random.default_rng(9)).optimizer
        params_before = [id(p) for p in target.params]
        restore_policy_weights(target, loaded.weights)
        restore_optimizer(opt, loaded)
        assert [id(p) for p in target.params] == params_before
        assert opt.t == loaded.adam_t
        for name, value in state.weights.items():
            assert np.array_equal(target.get_weights()[name], value)
        # the optimizer's slots must alias the restored arrays' owners
        grads = [np.ones_like(p) for p in target.params]
        before = [p.copy() for p in target.params]
        opt.step(grads)
        assert any(not np.array_equal(p, b)
                   for p, b in zip(target.params, before))

    def test_shape_mismatch_rejected(self, tmp_path):
        _, _, state = _state()
        loaded = load_checkpoint(save_checkpoint(str(tmp_path), state))
        other = GaussianActorCritic(4, hidden=(16, 16), seed=0)
        with pytest.raises(CheckpointError, match="shape mismatch"):
            restore_policy_weights(other, loaded.weights)
