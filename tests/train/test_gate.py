"""Tests for the evaluation gate and asset promotion."""

import os

import numpy as np
import pytest

from repro.rl.policy import GaussianActorCritic
from repro.train.gate import (PANEL_SCENARIOS, GateConfig, PanelScore,
                              gate_and_promote, panel_scenarios, score_row)
from repro.training import make_training_env

FAST = GateConfig(seeds=(1,), duration=2.0)


def _policy(seed=0, sabotage=False):
    env = make_training_env("libra")
    policy = GaussianActorCritic(env.obs_dim, hidden=(8, 8), seed=seed)
    if sabotage:
        # slam the output layer so the controller collapses its rate
        policy.actor.biases[-1][...] = -40.0
    return policy


class TestScoring:
    def test_score_row_rewards_utilization(self):
        config = GateConfig()
        row = {"utilization": 0.9, "avg_rtt_ms": 100.0, "base_rtt_ms": 100.0,
               "loss_rate": 0.0}
        assert score_row(row, config) == pytest.approx(0.9)

    def test_score_row_penalizes_queueing_and_loss(self):
        config = GateConfig(w_delay=0.5, w_loss=10.0)
        row = {"utilization": 0.9, "avg_rtt_ms": 200.0, "base_rtt_ms": 100.0,
               "loss_rate": 0.01}
        # 0.9 − 0.5·(2−1) − 10·0.01 = 0.3
        assert score_row(row, config) == pytest.approx(0.3)

    def test_rtt_below_base_is_not_a_bonus(self):
        config = GateConfig(w_delay=0.5, w_loss=10.0)
        row = {"utilization": 0.5, "avg_rtt_ms": 50.0, "base_rtt_ms": 100.0,
               "loss_rate": 0.0}
        assert score_row(row, config) == pytest.approx(0.5)


class TestPanel:
    def test_panel_covers_required_axes(self):
        assert set(PANEL_SCENARIOS) == {"wired", "lte", "lossy", "faults"}

    def test_panel_scenarios_resolve(self):
        resolved = panel_scenarios()
        assert [name for name, _ in resolved] == list(PANEL_SCENARIOS)
        for _name, scenario in resolved:
            assert scenario.rtt > 0

    def test_unknown_panel_name_rejected(self):
        with pytest.raises(KeyError):
            panel_scenarios(("wired", "marshmallow"))

    def test_by_panel_groups_scores(self):
        score = PanelScore(score=0.5, rows=[
            {"panel": "wired", "score": 0.4},
            {"panel": "wired", "score": 0.6},
            {"panel": "lte", "score": 0.2}])
        assert score.by_panel() == {"wired": pytest.approx(0.5),
                                    "lte": pytest.approx(0.2)}


class TestPromotion:
    def test_promotes_into_empty_dir(self, tmp_path):
        decision = gate_and_promote("libra", _policy().get_weights(),
                                    assets_dir=str(tmp_path), config=FAST)
        assert decision.promoted
        assert "incumbent" in decision.reason
        assert os.path.exists(tmp_path / "libra.npz")
        assert os.path.exists(tmp_path / "MANIFEST.json")
        promoted = GaussianActorCritic.load(str(tmp_path / "libra.npz"))
        ours = _policy().get_weights()
        for name, value in promoted.get_weights().items():
            assert np.array_equal(value, ours[name])

    def test_refuses_worse_candidate(self, tmp_path):
        gate_and_promote("libra", _policy().get_weights(),
                         assets_dir=str(tmp_path), config=FAST)
        before = open(tmp_path / "libra.npz", "rb").read()
        decision = gate_and_promote("libra",
                                    _policy(sabotage=True).get_weights(),
                                    assets_dir=str(tmp_path), config=FAST)
        assert not decision.promoted
        assert "does not beat" in decision.reason
        assert open(tmp_path / "libra.npz", "rb").read() == before

    def test_corrupt_incumbent_concedes(self, tmp_path):
        (tmp_path / "libra.npz").write_bytes(b"not an archive")
        decision = gate_and_promote("libra", _policy().get_weights(),
                                    assets_dir=str(tmp_path), config=FAST)
        assert decision.promoted
        assert decision.incumbent is None

    def test_refusal_is_deterministic_with_equal_scores(self, tmp_path):
        """A candidate identical to the incumbent ties — and ties lose."""
        weights = _policy().get_weights()
        gate_and_promote("libra", weights, assets_dir=str(tmp_path),
                         config=FAST)
        decision = gate_and_promote("libra", weights,
                                    assets_dir=str(tmp_path), config=FAST)
        assert not decision.promoted
