"""Tests for the bundled-asset manifest and integrity verification."""

import json
import shutil

import pytest

import repro.assets as assets
from repro.assets import (MANIFEST_SCHEMA_VERSION, POLICY_KINDS,
                          load_manifest, load_policy, manifest_path,
                          refresh_manifest, update_manifest_entry,
                          verify_assets)


@pytest.fixture
def scratch_assets(tmp_path, monkeypatch):
    """A private copy of the bundled assets, patched in as _ASSET_DIR."""
    directory = tmp_path / "assets"
    directory.mkdir()
    for kind in POLICY_KINDS:
        shutil.copy(assets.asset_path(kind), directory / f"{kind}.npz")
    monkeypatch.setattr(assets, "_ASSET_DIR", str(directory))
    monkeypatch.setattr(assets, "_cache", {})
    refresh_manifest()
    return directory


class TestShippedManifest:
    def test_bundled_assets_verify_clean(self):
        """The committed MANIFEST.json matches the committed .npz files."""
        for row in verify_assets():
            assert row["status"] == "ok", f"{row['kind']}: {row['detail']}"

    def test_manifest_covers_every_policy_kind(self):
        manifest = load_manifest()
        assert manifest is not None
        assert set(manifest["assets"]) == set(POLICY_KINDS)
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        for entry in manifest["assets"].values():
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] > 0


class TestVerification:
    def test_tampered_asset_detected(self, scratch_assets):
        with open(scratch_assets / "libra.npz", "ab") as fh:
            fh.write(b"\0")
        rows = {row["kind"]: row for row in verify_assets()}
        assert rows["libra"]["status"] == "hash-mismatch"
        assert rows["aurora"]["status"] == "ok"

    def test_missing_file_detected(self, scratch_assets):
        (scratch_assets / "orca.npz").unlink()
        rows = {row["kind"]: row for row in verify_assets()}
        assert rows["orca"]["status"] == "missing-file"

    def test_missing_entry_detected(self, scratch_assets):
        manifest = load_manifest()
        del manifest["assets"]["aurora"]
        with open(manifest_path(), "w") as fh:
            json.dump(manifest, fh)
        rows = {row["kind"]: row for row in verify_assets()}
        assert rows["aurora"]["status"] == "missing-entry"

    def test_unmanaged_dir_reports_no_manifest(self, tmp_path, monkeypatch):
        src = assets.asset_path("libra")
        monkeypatch.setattr(assets, "_ASSET_DIR", str(tmp_path))
        shutil.copy(src, tmp_path / "libra.npz")
        rows = {row["kind"]: row for row in verify_assets()}
        assert rows["libra"]["status"] == "no-manifest"
        assert rows["orca"]["status"] == "missing-file"


class TestLoadPolicyIntegrity:
    def test_load_checks_sha(self, scratch_assets):
        with open(scratch_assets / "libra.npz", "ab") as fh:
            fh.write(b"\0")
        with pytest.raises(RuntimeError, match="manifest sha256"):
            load_policy("libra", fresh=True)

    def test_load_without_manifest_still_works(self, scratch_assets):
        (scratch_assets / "MANIFEST.json").unlink()
        assert load_policy("libra", fresh=True).obs_dim > 0

    def test_schema_bump_rejected(self, scratch_assets):
        manifest = load_manifest()
        manifest["assets"]["libra"]["schema_version"] += 1
        with open(manifest_path(), "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(RuntimeError, match="npz schema"):
            load_policy("libra", fresh=True)

    def test_corrupt_manifest_is_actionable(self, scratch_assets):
        with open(manifest_path(), "w") as fh:
            fh.write("{ nope")
        with pytest.raises(RuntimeError, match="unreadable"):
            load_policy("libra", fresh=True)


class TestUpdateEntry:
    def test_update_refreshes_sha_and_cache(self, scratch_assets):
        cached = load_policy("libra")
        old_sha = load_manifest()["assets"]["libra"]["sha256"]
        # replace the asset with a different valid policy file
        shutil.copy(scratch_assets / "aurora.npz",
                    scratch_assets / "libra.npz")
        update_manifest_entry("libra")
        assert load_manifest()["assets"]["libra"]["sha256"] != old_sha
        fresh = load_policy("libra")
        assert fresh is not cached  # cache was invalidated

    def test_update_in_foreign_dir_leaves_cache_alone(self, scratch_assets,
                                                      tmp_path):
        other = tmp_path / "other"
        other.mkdir()
        shutil.copy(scratch_assets / "libra.npz", other / "libra.npz")
        cached = load_policy("libra")
        update_manifest_entry("libra", asset_dir=str(other))
        assert load_policy("libra") is cached
        assert load_manifest(str(other))["assets"]["libra"]["sha256"]
