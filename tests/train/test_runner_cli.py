"""End-to-end tests for train_run and the ``repro train`` CLI."""

import json
import os

import numpy as np
import pytest

from repro.__main__ import main
from repro.telemetry.export import validate_jsonl
from repro.train import TrainRunConfig, train_run

FAST = dict(kind="libra", iterations=2, steps_per_iteration=96,
            episode_steps=24, seed=5, hidden=(8, 8), backend="serial")


class TestTrainRun:
    def test_basic_run_collects_and_learns(self):
        result = train_run(TrainRunConfig(**FAST))
        assert result.iterations_run == 2
        assert len(result.history.episode_rewards) == 2 * (96 // 24)
        assert result.last_stats["steps"] == 96
        assert np.isfinite(result.last_stats["entropy"])

    def test_unknown_kind_raises_keyerror(self):
        with pytest.raises(KeyError, match="alphago"):
            train_run(TrainRunConfig(**dict(FAST, kind="alphago")))

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            train_run(TrainRunConfig(**dict(FAST, backend="threads")))

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            train_run(TrainRunConfig(**FAST, resume=True))

    def test_checkpoint_cadence(self, tmp_path):
        result = train_run(TrainRunConfig(
            **dict(FAST, iterations=5), checkpoint_dir=str(tmp_path),
            checkpoint_every=2))
        names = [os.path.basename(p) for p in result.checkpoints]
        assert names == ["ckpt-000002.npz", "ckpt-000004.npz",
                         "ckpt-000005.npz"]

    def test_log_written_and_valid(self, tmp_path):
        log = str(tmp_path / "train.jsonl")
        train_run(TrainRunConfig(**FAST, log_path=log))
        validate_jsonl(log)
        with open(log) as fh:
            records = [json.loads(line) for line in fh]
        iters = [r for r in records
                 if r["type"] == "event" and r["kind"] == "train.iteration"]
        assert [r["fields"]["iteration"] for r in iters] == [1, 2]


class TestCli:
    def test_verify_assets_ok(self, capsys):
        assert main(["train", "--verify-assets"]) == 0
        out = capsys.readouterr().out
        assert "libra" in out and "ok" in out

    def test_verify_assets_flags_tampering(self, tmp_path, capsys):
        import shutil

        import repro.assets as assets

        shutil.copy(assets.asset_path("libra"), tmp_path / "libra.npz")
        assets.refresh_manifest(str(tmp_path))
        with open(tmp_path / "libra.npz", "ab") as fh:
            fh.write(b"\0")
        assert main(["train", "--verify-assets",
                     "--assets-dir", str(tmp_path)]) == 1
        assert "hash-mismatch" in capsys.readouterr().out

    def test_requires_kind_or_all(self, capsys):
        assert main(["train"]) == 2
        assert "policy kind" in capsys.readouterr().err

    def test_unknown_kind_rejected(self, capsys):
        assert main(["train", "alphago"]) == 2
        assert "unknown policy kind" in capsys.readouterr().err

    def test_small_training_run(self, tmp_path, capsys):
        ck = str(tmp_path / "ck")
        log = str(tmp_path / "train.jsonl")
        code = main(["train", "libra", "--iterations", "2", "--steps", "96",
                     "--episode-steps", "24", "--hidden", "8,8",
                     "--backend", "serial", "--checkpoint-every", "1",
                     "--checkpoint-dir", ck, "--log", log, "--quiet",
                     "--save", str(tmp_path / "w.npz")])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 iterations" in out
        assert sorted(os.listdir(ck)) == ["ckpt-000001.npz",
                                          "ckpt-000002.npz"]
        validate_jsonl(log)
        assert os.path.exists(tmp_path / "w.npz")

    def test_cli_resume_continues(self, tmp_path, capsys):
        ck = str(tmp_path / "ck")
        base = ["--steps", "96", "--episode-steps", "24", "--hidden", "8,8",
                "--backend", "serial", "--checkpoint-dir", ck, "--quiet"]
        assert main(["train", "libra", "--iterations", "1",
                     "--checkpoint-every", "1"] + base) == 0
        assert main(["train", "libra", "--iterations", "2",
                     "--resume"] + base) == 0
        out = capsys.readouterr().out
        assert "1 iterations" in out.splitlines()[-2] or \
            "1 iterations" in out
        assert os.path.exists(os.path.join(ck, "ckpt-000002.npz"))

    def test_all_rejects_per_run_flags(self, capsys):
        assert main(["train", "--all", "--resume"]) == 2
        assert "--all cannot" in capsys.readouterr().err

    def test_bad_hidden_rejected(self, capsys):
        assert main(["train", "libra", "--hidden", "64,banana"]) == 2
        assert "comma-separated" in capsys.readouterr().err
