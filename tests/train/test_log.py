"""Tests for structured JSONL training logs."""

import json

import pytest

from repro.telemetry.export import validate_jsonl
from repro.train.gate import PanelScore, PromotionDecision
from repro.train.log import TRAIN_EVENTS, TRAIN_SERIES, TrainLogger


def _read(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh]


STATS = {"reward_mean": 1.5, "entropy": 0.9, "approx_kl": 0.01,
         "steps_per_sec": 1000.0, "worker_util": 0.8, "episodes": 4,
         "steps": 128, "pi_loss": -0.1, "v_loss": 2.0, "clip_frac": 0.05}


class TestTrainLogger:
    def test_log_passes_telemetry_validation(self, tmp_path):
        """Training logs ride the telemetry export schema, so the same
        validator CI runs on flow traces accepts them unchanged."""
        path = str(tmp_path / "train.jsonl")
        with TrainLogger(path, meta={"kind": "libra"}) as logger:
            logger.log_iteration(1, STATS)
            logger.log_checkpoint(1, "/tmp/ckpt-000001.npz")
        validate_jsonl(path)

    def test_header_declares_channels(self, tmp_path):
        path = str(tmp_path / "train.jsonl")
        TrainLogger(path, meta={"kind": "libra"}).close()
        header = _read(path)[0]
        assert header["type"] == "header"
        assert header["series"] == list(TRAIN_SERIES)
        assert header["events"] == list(TRAIN_EVENTS)
        assert header["meta"]["kind"] == "libra"

    def test_iteration_writes_samples_and_event(self, tmp_path):
        path = str(tmp_path / "train.jsonl")
        with TrainLogger(path) as logger:
            logger.log_iteration(7, STATS)
        records = _read(path)[1:]
        samples = [r for r in records if r["type"] == "sample"]
        assert {s["channel"] for s in samples} == set(TRAIN_SERIES)
        assert all(s["t"] == 7.0 for s in samples)
        events = [r for r in records if r["type"] == "event"]
        assert len(events) == 1
        assert events[0]["kind"] == "train.iteration"
        assert events[0]["fields"]["episodes"] == 4
        assert "wall_s" in events[0]["fields"]

    def test_missing_stats_skip_their_samples(self, tmp_path):
        path = str(tmp_path / "train.jsonl")
        with TrainLogger(path) as logger:
            logger.log_iteration(1, {"entropy": 0.5, "reward_mean": None})
        samples = [r for r in _read(path) if r["type"] == "sample"]
        assert [s["channel"] for s in samples] == ["train.entropy"]
        validate_jsonl(path)

    def test_resume_and_promotion_events(self, tmp_path):
        path = str(tmp_path / "train.jsonl")
        decision = PromotionDecision(
            kind="libra", promoted=False, reason="tie",
            asset_path="/x/libra.npz",
            candidate=PanelScore(score=0.5),
            incumbent=PanelScore(score=0.5))
        with TrainLogger(path) as logger:
            logger.log_resume(10, "/tmp/ckpt-000010.npz")
            logger.log_promotion(30, decision)
        events = {r["kind"]: r for r in _read(path) if r["type"] == "event"}
        assert events["train.resume"]["fields"]["iteration"] == 10
        promo = events["train.promotion"]["fields"]
        assert promo["promoted"] is False
        assert promo["candidate_score"] == pytest.approx(0.5)
        validate_jsonl(path)

    def test_lines_are_flushed_incrementally(self, tmp_path):
        """A killed run must leave complete records behind."""
        path = str(tmp_path / "train.jsonl")
        logger = TrainLogger(path)
        logger.log_iteration(1, STATS)
        # file is readable and valid *before* close
        validate_jsonl(path)
        logger.close()
