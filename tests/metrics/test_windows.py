"""Windowed fairness/FCT metrics: partial-lifetime weighting."""

import math

import pytest

from repro.metrics import (active_overlap, bytes_in_window, concurrency,
                           fct_summary, percentile_nearest_rank, size_class,
                           utilization_vs_concurrency, window_series,
                           windowed_jain, windowed_rates)
from repro.simnet.endpoint import FlowStats


def flow(flow_id, start, end, rate_bps, fin=None, flow_bytes=None,
         bin_width=0.25):
    """A synthetic FlowStats delivering at a constant rate while alive."""
    stats = FlowStats(flow_id=flow_id, start_time=start, end_time=end,
                      flow_bytes=flow_bytes, fin_time=fin,
                      bin_width=bin_width)
    t = start
    while t < end - 1e-12:
        step = min(bin_width, end - t)
        stats._bump_bin(stats.delivered_bins, t, rate_bps / 8.0 * step)
        stats.delivered_bytes += rate_bps / 8.0 * step
        t += step
    return stats


class TestOverlapAndBytes:
    def test_active_overlap_clamps(self):
        s = flow(0, 2.0, 6.0, 8e6)
        assert active_overlap(s, 0.0, 10.0) == pytest.approx(4.0)
        assert active_overlap(s, 3.0, 4.0) == pytest.approx(1.0)
        assert active_overlap(s, 7.0, 9.0) == 0.0

    def test_bytes_in_window_prorates_edges(self):
        s = flow(0, 0.0, 4.0, 8e6)  # 1 MB/s
        # window [0.5, 1.5) catches half of two edge bins + full middles
        assert bytes_in_window(s, 0.5, 1.5) == pytest.approx(1e6, rel=1e-6)
        assert bytes_in_window(s, 0.0, 4.0) == pytest.approx(4e6, rel=1e-6)


class TestPartialLifetimeWeighting:
    def test_late_arrival_not_penalized(self):
        """A flow active for half the window at the same rate as a
        full-window flow must report the SAME windowed rate — this is
        the partial-lifetime fix."""
        full = flow(0, 0.0, 10.0, 8e6)
        half = flow(1, 5.0, 10.0, 8e6)  # arrives mid-window
        rates = windowed_rates([full, half], 0.0, 10.0)
        assert rates[0] == pytest.approx(8e6, rel=1e-3)
        assert rates[1] == pytest.approx(8e6, rel=1e-3)

    def test_jain_fair_despite_churn(self):
        """Equal-rate flows with staggered lifetimes → Jain ≈ 1."""
        flows = [flow(i, i * 1.0, i * 1.0 + 4.0, 8e6) for i in range(4)]
        jain = windowed_jain(flows, 0.0, 7.0)
        assert jain == pytest.approx(1.0, abs=1e-3)

    def test_naive_jain_would_have_failed(self):
        """Sanity: window-length normalization would punish the short
        flow; active-time normalization must not."""
        full = flow(0, 0.0, 10.0, 8e6)
        sliver = flow(1, 9.0, 10.0, 8e6)
        jain = windowed_jain([full, sliver], 0.0, 10.0)
        assert jain == pytest.approx(1.0, abs=1e-3)
        naive = (2.0 ** 2) / (2 * (1.0 + (0.1) ** 2)) / \
            ((1.0 + 0.1) ** 2 / (2 * (1.0 + 0.01)))  # ≠ 1 by construction
        assert naive != pytest.approx(1.0, abs=1e-3)

    def test_sliver_flows_excluded(self):
        """Flows alive under MIN_ACTIVE_FRACTION of the window carry no
        rate information and are dropped from the population."""
        full = flow(0, 0.0, 10.0, 8e6)
        blink = flow(1, 5.0, 5.2, 8e6)  # 2% of the window
        rates = windowed_rates([full, blink], 0.0, 10.0)
        assert 1 not in rates
        assert windowed_jain([full, blink], 0.0, 10.0) is None

    def test_jain_none_for_singleton(self):
        assert windowed_jain([flow(0, 0.0, 4.0, 8e6)], 0.0, 4.0) is None


class TestSeries:
    def test_concurrency_time_average(self):
        flows = [flow(0, 0.0, 10.0, 8e6), flow(1, 0.0, 5.0, 8e6)]
        assert concurrency(flows, 0.0, 10.0) == pytest.approx(1.5)

    def test_window_series_shape(self):
        flows = [flow(0, 0.0, 10.0, 8e6), flow(1, 2.0, 8.0, 8e6)]
        series = window_series(flows, 10.0, 1.0, capacity_bps=20e6)
        assert len(series) == 10
        assert all(0.0 <= w["utilization"] <= 1.0 for w in series)
        assert series[3]["concurrency"] == pytest.approx(2.0)

    def test_utilization_vs_concurrency_sorted(self):
        flows = [flow(i, i * 2.0, i * 2.0 + 6.0, 8e6) for i in range(3)]
        pairs = utilization_vs_concurrency(flows, 12.0, 48e6, width=1.0)
        assert len(pairs) == 12
        assert pairs == sorted(pairs, key=lambda p: p[0])

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            window_series([], 10.0, 0.0)


class TestFct:
    def test_size_classes(self):
        assert size_class(50_000) == "mouse"
        assert size_class(500_000) == "medium"
        assert size_class(5_000_000) == "elephant"
        with pytest.raises(ValueError):
            size_class(0)

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile_nearest_rank(values, 50) == 5.0
        assert percentile_nearest_rank(values, 95) == 10.0
        assert percentile_nearest_rank(values, 99) == 10.0
        assert percentile_nearest_rank([3.0], 99) == 3.0
        with pytest.raises(ValueError):
            percentile_nearest_rank([], 50)

    def test_fct_summary_by_class(self):
        flows = [
            flow(0, 0.0, 0.5, 8e6, fin=0.5, flow_bytes=50_000.0),
            flow(1, 1.0, 1.4, 8e6, fin=1.4, flow_bytes=80_000.0),
            flow(2, 0.0, 10.0, 8e6, fin=None, flow_bytes=5e6),  # cut off
            flow(3, 0.0, 10.0, 8e6, fin=None, flow_bytes=None),  # unbounded
        ]
        doc = fct_summary(flows)
        mouse = doc["classes"]["mouse"]
        assert mouse["count"] == 2
        assert mouse["completed"] == 2
        assert mouse["p50"] == pytest.approx(0.4)
        assert mouse["p99"] == pytest.approx(0.5)
        elephant = doc["classes"]["elephant"]
        assert elephant["completed"] == 0
        assert "p99" not in elephant
        assert doc["overall"]["count"] == 3  # unbounded flow excluded
        assert doc["overall"]["completion_rate"] == pytest.approx(2 / 3)

    def test_fct_summary_empty(self):
        doc = fct_summary([])
        assert doc["classes"] == {}
        assert doc["overall"]["count"] == 0


class TestConvergenceAfterArrival:
    def test_stable_flow_converges(self):
        from repro.metrics import convergence_after_arrival

        s = flow(0, 2.0, 12.0, 8e6)
        conv = convergence_after_arrival(s)
        assert conv is not None
        assert conv >= 0.0

    def test_truncated_flow_returns_none(self):
        from repro.metrics import convergence_after_arrival

        s = flow(0, 0.0, 0.5, 8e6)
        assert convergence_after_arrival(s) is None
